"""NMR-CNN — augmentation-trained conv ANN vs IHM on experimental spectra.

Regenerates the §III.B.3 accuracy comparison: the 10 532-parameter conv
network (trained purely on IHM-simulated spectra) and the IHM fitting
baseline are both scored against the high-field reference labels of the
experimental campaign.

Expected shape (paper): the conv ANN's MSE is at or below IHM's (paper
reports ~5 % lower).

The benchmark times one IHM fit (the expensive baseline).
"""

import numpy as np
import pytest

from repro import nn
from repro.nmr import IHMAnalysis

from conftest import print_table, scale, write_results
from nmr_setup import campaign, trained_conv


@pytest.fixture(scope="module")
def comparison():
    models, dataset = campaign()
    conv = trained_conv()
    subset = np.linspace(0, len(dataset) - 1, scale(40, 297)).astype(int)
    conv_pred = conv.predict(dataset.spectra)
    ihm = IHMAnalysis(models)
    ihm_pred = ihm.predict(dataset.spectra[subset])
    return dataset, subset, conv_pred, ihm_pred, ihm


def test_nmr_cnn_vs_ihm(benchmark, comparison):
    """Regenerate the accuracy comparison; the benchmarked op is one IHM fit."""
    dataset, subset, conv_pred, ihm_pred, ihm = comparison
    benchmark.pedantic(
        lambda: ihm.analyze(dataset.spectra[0]), iterations=1, rounds=3
    )
    reference = dataset.reference_labels
    conv_mse_all = nn.mean_squared_error(conv_pred, reference)
    conv_mse = nn.mean_squared_error(conv_pred[subset], reference[subset])
    ihm_mse = nn.mean_squared_error(ihm_pred, reference[subset])

    rows = [
        {"method": "conv ANN (10532 params)", "mse": conv_mse,
         "rmse_mol_per_l": float(np.sqrt(conv_mse))},
        {"method": "IHM fit", "mse": ihm_mse,
         "rmse_mol_per_l": float(np.sqrt(ihm_mse))},
    ]
    print_table(
        "NMR: conv ANN vs IHM on experimental spectra "
        "(paper: ANN ~5 % lower MSE)",
        rows,
        ["method", "mse", "rmse_mol_per_l"],
    )
    per_component = {
        name: float(np.mean((conv_pred[:, j] - reference[:, j]) ** 2))
        for j, name in enumerate(dataset.component_names)
    }
    write_results(
        "nmr_cnn_vs_ihm",
        {
            "conv_mse_all": conv_mse_all,
            "conv_mse_subset": conv_mse,
            "ihm_mse_subset": ihm_mse,
            "mse_ratio_conv_over_ihm": conv_mse / ihm_mse,
            "per_component_conv_mse": per_component,
            "subset_size": int(len(subset)),
        },
    )

    # Shape: the ANN matches or beats IHM (paper: 5 % lower MSE).
    assert conv_mse <= ihm_mse * 1.1
    # And the ANN is genuinely accurate: RMSE below 8 mM on a ~0.5 M scale.
    assert conv_mse_all < 6e-5

"""Shared MS experiment setup for the Fig. 4-7 / Table 2 benchmarks.

The benches share one virtual prototype, one calibration campaign style and
one evaluation protocol so their numbers are comparable, mirroring the
paper's single MMS project.  A reduced m/z axis (step 0.2 instead of 0.1)
keeps default runs fast; ``REPRO_FULL=1`` switches to the fine axis and
paper-scale dataset sizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import nn
from repro.core import MSToolchain, TopologySpec, table1_topology
from repro.core.evaluation import evaluate_per_compound, measurements_to_arrays
from repro.ms import (
    MassFlowControllerRig,
    MassSpectrometerSimulator,
    VirtualMassSpectrometer,
    default_library,
)
from repro.ms.compounds import DEFAULT_TASK_COMPOUNDS
from repro.ms.mixtures import default_mixture_plan
from repro.ms.spectrum import MzAxis

from conftest import FULL_SCALE, scale

TASK = DEFAULT_TASK_COMPOUNDS

# Reduced axis for default runs; the paper-scale axis at full scale.
AXIS = MzAxis(1.0, 50.0, 0.1 if FULL_SCALE else 0.2)


def make_prototype(seed: int = 0) -> Tuple[VirtualMassSpectrometer, MassFlowControllerRig]:
    """The ground-truth MMS prototype with humidity contamination.

    Contamination and drift levels are set so the simulated-vs-measured
    accuracy gap of the paper's Figs. 5-7 is clearly visible above the
    networks' training floor.
    """
    instrument = VirtualMassSpectrometer(
        contamination={"H2O": 0.03},
        library=default_library(),
        axis=AXIS,
        drift_per_hour=0.003,
        seed=seed,
    )
    return instrument, MassFlowControllerRig(instrument, seed=seed)


def calibration_measurements(
    rig: MassFlowControllerRig,
    samples_per_mixture: int,
    n_mixtures: int = 14,
    seed: int = 2021,
):
    plan = default_mixture_plan(TASK, n_mixtures, seed=seed)
    return rig.measure_plan(plan, samples_per_mixture)


def evaluation_measurements(
    instrument: VirtualMassSpectrometer,
    rig: MassFlowControllerRig,
    hours_of_drift: float = 48.0,
    n_mixtures: int = 10,
    samples_per_mixture: int = 4,
    seed: int = 99,
):
    """Fresh mixtures measured after the prototype has drifted."""
    instrument.advance_time(hours_of_drift)
    plan = default_mixture_plan(TASK, n_mixtures, seed=seed)
    return rig.measure_plan(plan, samples_per_mixture)


@dataclass
class TrainedNetwork:
    """One trained network with its simulated and measured scores."""

    name: str
    model: nn.Sequential
    validation_mae: float
    measured_report: Dict[str, float]


def train_and_score(
    simulator: MassSpectrometerSimulator,
    topology: TopologySpec,
    eval_measurements,
    n_train: Optional[int] = None,
    epochs: Optional[int] = None,
    seed: int = 0,
) -> TrainedNetwork:
    """Train one topology on simulated data; score on sim + measured."""
    n_train = n_train if n_train is not None else scale(3500, 100_000)
    epochs = epochs if epochs is not None else scale(10, 40)
    rng = np.random.default_rng(seed)
    x, y = simulator.generate_dataset(TASK, n_train, rng)
    x_val, y_val = simulator.generate_dataset(TASK, max(n_train // 5, 200), rng)
    model = topology.build((AXIS.size,), seed=seed)
    model.compile(nn.Adam(0.006), "mae")
    model.fit(
        x, y, epochs=epochs, batch_size=64,
        validation_data=(x_val, y_val),
        callbacks=[nn.EarlyStopping(patience=6, restore_best_weights=True)],
        seed=seed,
    )
    validation_mae = model.evaluate(x_val, y_val)
    x_meas, y_meas = measurements_to_arrays(eval_measurements, TASK, AXIS)
    report = evaluate_per_compound(model.predict(x_meas), y_meas, TASK)
    return TrainedNetwork(topology.name, model, validation_mae, report)

"""COMPUTE — scaling of the parallel executor and the artifact cache.

Two claims the compute subsystem makes, measured:

(a) **Executor scaling** — a 4-topology training sweep fanned over the
    ``process`` backend finishes faster than the serial loop, while every
    backend produces byte-identical models, metrics and ``select_best``
    outcomes.  The speedup assertion only applies on machines with >= 4
    cores (a 1-core container can demonstrate determinism, not scaling;
    the core count is recorded in the results JSON either way).
(b) **Cache amortization** — regenerating an NMR training set through the
    content-addressed cache turns the second call into a checksummed read,
    at least an order of magnitude faster than rendering.

Set ``REPRO_BENCH_WORKERS`` to bound the worker pool (CI uses 2).
"""

import os
import tempfile
import time

import numpy as np
import pytest

from repro.compute import BACKENDS, ArtifactCache, ParallelExecutor
from repro.compute.datasets import generate_nmr_dataset
from repro.core.datasets import SpectraDataset
from repro.core.topologies import mlp_topology
from repro.core.training_service import TrainingConfig, TrainingService
from repro.nmr.hard_model import mndpa_reaction_models
from repro.nmr.simulator import NMRSpectrumSimulator

from conftest import print_table, scale, write_results

CORES = os.cpu_count() or 1
WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", str(min(CORES, 4))))

NMR_RANGES = {
    "p-toluidine": (0.0, 0.5),
    "Li-toluidide": (0.0, 0.5),
    "o-FNB": (0.0, 0.6),
    "MNDPA": (0.0, 0.45),
}


def _sweep_dataset(n, length=64, outputs=3, seed=0):
    rng = np.random.default_rng(seed)
    y = rng.dirichlet(np.ones(outputs), size=n)
    x = y @ rng.random((outputs, length)) + 0.01 * rng.random((n, length))
    return SpectraDataset(x, y, tuple(f"c{i}" for i in range(outputs)))


@pytest.fixture(scope="module")
def executor_rows():
    """Time the same 4-topology sweep on every backend; verify identity."""
    topologies = [
        mlp_topology(3, hidden_units=(64,)),
        mlp_topology(3, hidden_units=(128,)),
        mlp_topology(3, hidden_units=(64, 32)),
        mlp_topology(3, hidden_units=(128, 64)),
    ]
    dataset = _sweep_dataset(scale(600, 6000))
    config = TrainingConfig(
        epochs=scale(4, 20), batch_size=32, patience=None, seed=1
    )
    rows = []
    services = {}
    for backend in BACKENDS:
        executor = ParallelExecutor(backend=backend, max_workers=WORKERS)
        service = TrainingService(config, executor=executor)
        start = time.perf_counter()
        service.train_all(topologies, dataset, sweep_name=f"bench-{backend}")
        elapsed = time.perf_counter() - start
        services[backend] = service
        rows.append(
            {"backend": backend, "seconds": elapsed,
             "workers": WORKERS if backend != "serial" else 1,
             "best": service.select_best().topology_name}
        )
    serial_s = rows[0]["seconds"]
    for row in rows:
        row["speedup_vs_serial"] = serial_s / row["seconds"]
    print_table(
        f"executor scaling ({CORES} cores, {WORKERS} workers)",
        rows,
        ["backend", "workers", "seconds", "speedup_vs_serial", "best"],
    )
    return rows, services


@pytest.fixture(scope="module")
def cache_rows():
    """Time one NMR generation cold (render) and warm (verified read)."""
    simulator = NMRSpectrumSimulator(mndpa_reaction_models(), NMR_RANGES)
    n = scale(400, 10_000)
    with tempfile.TemporaryDirectory() as root:
        cache = ArtifactCache(os.path.join(root, "cache"))
        start = time.perf_counter()
        x_cold, y_cold, info_cold = generate_nmr_dataset(
            simulator, n, seed=0, cache=cache
        )
        cold_s = time.perf_counter() - start
        start = time.perf_counter()
        x_warm, y_warm, info_warm = generate_nmr_dataset(
            simulator, n, seed=0, cache=cache
        )
        warm_s = time.perf_counter() - start
    assert (info_cold["hit"], info_warm["hit"]) == (False, True)
    np.testing.assert_array_equal(x_warm, x_cold)
    np.testing.assert_array_equal(y_warm, y_cold)
    rows = [
        {"path": "cold (render)", "seconds": cold_s, "speedup": 1.0},
        {"path": "warm (cache)", "seconds": warm_s, "speedup": cold_s / warm_s},
    ]
    print_table(
        f"cache amortization ({n} NMR spectra)",
        rows,
        ["path", "seconds", "speedup"],
    )
    return rows


def test_backends_byte_identical(executor_rows):
    rows, services = executor_rows
    reference = services["serial"]
    for backend in BACKENDS[1:]:
        service = services[backend]
        for run, ref in zip(service.runs, reference.runs):
            assert run.metrics == ref.metrics, backend
            for got, want in zip(
                run.model.get_weights(), ref.model.get_weights()
            ):
                np.testing.assert_array_equal(got, want)
        assert (
            service.select_best().topology_name
            == reference.select_best().topology_name
        ), backend


def test_process_backend_scales(executor_rows):
    rows, _ = executor_rows
    times = {row["backend"]: row["seconds"] for row in rows}
    speedup = times["serial"] / times["process"]
    if CORES >= 4 and WORKERS >= 4:
        assert speedup >= 1.8, (
            f"process backend only {speedup:.2f}x vs serial on {CORES} cores"
        )
    else:
        pytest.skip(
            f"speedup assertion needs >= 4 cores and workers "
            f"(have {CORES} cores, {WORKERS} workers); "
            f"measured {speedup:.2f}x"
        )


def test_warm_cache_at_least_10x(cache_rows):
    speedup = cache_rows[1]["speedup"]
    assert speedup >= 10.0, (
        f"warm cache only {speedup:.1f}x faster than cold generation"
    )


def test_write_results(executor_rows, cache_rows):
    sweep_rows, _ = executor_rows
    write_results(
        "compute_scaling",
        {
            "cores": CORES,
            "workers": WORKERS,
            "full_scale": bool(int(os.environ.get("REPRO_FULL", "0"))),
            "executor": sweep_rows,
            "cache": cache_rows,
        },
    )

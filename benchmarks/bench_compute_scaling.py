"""COMPUTE — scaling of the parallel executor and the artifact cache.

Three claims the compute subsystem makes, measured:

(a) **Executor scaling** — a balanced campaign-shaped workload fanned
    over the warm ``process`` pool beats the serial loop by >= 1.8x on
    machines with >= 2 cores (a 1-core container can demonstrate
    determinism and warm reuse, not scaling; the core count is recorded
    in the results JSON either way).  A 4-topology training sweep is also
    timed on every backend with per-phase breakdowns (pool startup vs
    dispatch vs task compute vs result transfer), so a scaling
    regression is diagnosable rather than a single opaque ratio — and
    every backend must produce byte-identical models, metrics and
    ``select_best`` outcomes.
(b) **Warm pool reuse** — the second ``map_tasks`` call on the same
    executor records *zero* pool-startup time: workers are created once
    per executor lifetime, not once per call.
(c) **Cache amortization** — regenerating an NMR training set through the
    content-addressed cache turns the second call into a checksummed
    read, at least an order of magnitude faster than rendering.

Set ``REPRO_BENCH_WORKERS`` to bound the worker pool (CI uses 2).
"""

import os
import tempfile
import time

import numpy as np
import pytest

from repro.compute import BACKENDS, ArtifactCache, ParallelExecutor
from repro.compute.datasets import generate_nmr_dataset
from repro.core.datasets import SpectraDataset
from repro.core.topologies import mlp_topology
from repro.core.training_service import TrainingConfig, TrainingService
from repro.nmr.hard_model import mndpa_reaction_models
from repro.nmr.simulator import NMRSpectrumSimulator

from conftest import print_table, scale, write_results

CORES = os.cpu_count() or 1
WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", str(min(CORES, 4))))

PHASES = ("pool_startup_s", "dispatch_s", "task_compute_s", "result_wait_s")

NMR_RANGES = {
    "p-toluidine": (0.0, 0.5),
    "Li-toluidide": (0.0, 0.5),
    "o-FNB": (0.0, 0.6),
    "MNDPA": (0.0, 0.45),
}


def _sweep_dataset(n, length=64, outputs=3, seed=0):
    rng = np.random.default_rng(seed)
    y = rng.dirichlet(np.ones(outputs), size=n)
    x = y @ rng.random((outputs, length)) + 0.01 * rng.random((n, length))
    return SpectraDataset(x, y, tuple(f"c{i}" for i in range(outputs)))


def _cpu_task(payload, rng):
    """One balanced, compute-bound campaign-shaped cell (module-level).

    Deliberately elementwise (ufunc) work: numpy runs it single-threaded,
    so the serial baseline cannot silently borrow the other cores through
    a multi-threaded BLAS and poison the speedup measurement.
    """
    data = rng.random(payload["size"])
    for _ in range(payload["iterations"]):
        data = np.sin(data) * 1.1 + 0.01
    return float(np.sum(data))


def _phase_row(backend, seconds, stats, extra=None):
    row = {"backend": backend, "seconds": seconds}
    for phase in PHASES:
        row[phase] = float(stats.get(phase, 0.0))
    row.update(extra or {})
    return row


@pytest.fixture(scope="module")
def balanced_rows():
    """Time WORKERS*4 equal-cost tasks serial vs warm process pool.

    This is the workload shape the campaign orchestrator produces: many
    same-sized compute-bound cells with tiny payloads.  The process pool
    is warmed by a throwaway wave first, so the measured wave shows the
    steady-state dispatch cost a long campaign actually pays.
    """
    n_tasks = max(WORKERS, 1) * 4
    payloads = [
        {"size": 150_000, "iterations": scale(150, 600)}
        for _ in range(n_tasks)
    ]
    rows = []
    results = {}
    for backend in ("serial", "process"):
        with ParallelExecutor(
            backend=backend, max_workers=WORKERS, seed=13
        ) as executor:
            # Warm the pool (and its workers' imports) outside the clock.
            executor.map_tasks(
                _cpu_task, [{"size": 64, "iterations": 1}] * 2,
                label="warmup",
            )
            start = time.perf_counter()
            results[backend] = executor.map_tasks(
                _cpu_task, payloads, label="balanced"
            )
            elapsed = time.perf_counter() - start
            rows.append(
                _phase_row(
                    backend, elapsed, executor.last_map_stats,
                    {"workers": WORKERS if backend != "serial" else 1,
                     "tasks": n_tasks},
                )
            )
    assert results["process"] == results["serial"]  # determinism, again
    serial_s = rows[0]["seconds"]
    for row in rows:
        row["speedup_vs_serial"] = serial_s / row["seconds"]
    print_table(
        f"balanced campaign workload ({n_tasks} tasks, {CORES} cores, "
        f"{WORKERS} workers)",
        rows,
        ["backend", "workers", "seconds", "speedup_vs_serial",
         "pool_startup_s", "dispatch_s", "task_compute_s", "result_wait_s"],
    )
    return rows


@pytest.fixture(scope="module")
def executor_rows():
    """Time the same 4-topology sweep on every backend; verify identity."""
    topologies = [
        mlp_topology(3, hidden_units=(64,)),
        mlp_topology(3, hidden_units=(128,)),
        mlp_topology(3, hidden_units=(64, 32)),
        mlp_topology(3, hidden_units=(128, 64)),
    ]
    dataset = _sweep_dataset(scale(600, 6000))
    config = TrainingConfig(
        epochs=scale(4, 20), batch_size=32, patience=None, seed=1
    )
    rows = []
    services = {}
    for backend in BACKENDS:
        with ParallelExecutor(backend=backend, max_workers=WORKERS) as executor:
            service = TrainingService(config, executor=executor)
            start = time.perf_counter()
            service.train_all(topologies, dataset, sweep_name=f"bench-{backend}")
            elapsed = time.perf_counter() - start
            stats = executor.last_map_stats
            services[backend] = service
            rows.append(
                _phase_row(
                    backend, elapsed, stats,
                    {"workers": WORKERS if backend != "serial" else 1,
                     "best": service.select_best().topology_name},
                )
            )
    serial_s = rows[0]["seconds"]
    for row in rows:
        row["speedup_vs_serial"] = serial_s / row["seconds"]
    print_table(
        f"executor scaling ({CORES} cores, {WORKERS} workers)",
        rows,
        ["backend", "workers", "seconds", "speedup_vs_serial",
         "pool_startup_s", "dispatch_s", "task_compute_s", "result_wait_s",
         "best"],
    )
    return rows, services


@pytest.fixture(scope="module")
def pool_reuse_stats():
    """Run two waves on one executor; the second must skip pool startup."""
    with ParallelExecutor(
        backend="process", max_workers=WORKERS, seed=3
    ) as executor:
        payloads = [{"size": 256, "iterations": 4}] * max(WORKERS * 2, 2)
        executor.map_tasks(_cpu_task, payloads, label="first")
        first = dict(executor.last_map_stats)
        executor.map_tasks(_cpu_task, payloads, label="second")
        second = dict(executor.last_map_stats)
        stats = {
            "first_startup_s": float(first["pool_startup_s"]),
            "second_startup_s": float(second["pool_startup_s"]),
            "pool_starts": executor.pool_starts,
        }
    print_table(
        "warm pool reuse (process backend)",
        [
            {"call": "first", "pool_startup_s": stats["first_startup_s"]},
            {"call": "second", "pool_startup_s": stats["second_startup_s"]},
        ],
        ["call", "pool_startup_s"],
    )
    return stats


@pytest.fixture(scope="module")
def cache_rows():
    """Time one NMR generation cold (render) and warm (verified read)."""
    simulator = NMRSpectrumSimulator(mndpa_reaction_models(), NMR_RANGES)
    n = scale(400, 10_000)
    with tempfile.TemporaryDirectory() as root:
        cache = ArtifactCache(os.path.join(root, "cache"))
        start = time.perf_counter()
        x_cold, y_cold, info_cold = generate_nmr_dataset(
            simulator, n, seed=0, cache=cache
        )
        cold_s = time.perf_counter() - start
        start = time.perf_counter()
        x_warm, y_warm, info_warm = generate_nmr_dataset(
            simulator, n, seed=0, cache=cache
        )
        warm_s = time.perf_counter() - start
    assert (info_cold["hit"], info_warm["hit"]) == (False, True)
    np.testing.assert_array_equal(x_warm, x_cold)
    np.testing.assert_array_equal(y_warm, y_cold)
    rows = [
        {"path": "cold (render)", "seconds": cold_s, "speedup": 1.0},
        {"path": "warm (cache)", "seconds": warm_s, "speedup": cold_s / warm_s},
    ]
    print_table(
        f"cache amortization ({n} NMR spectra)",
        rows,
        ["path", "seconds", "speedup"],
    )
    return rows


def test_backends_byte_identical(executor_rows):
    rows, services = executor_rows
    reference = services["serial"]
    for backend in BACKENDS[1:]:
        service = services[backend]
        for run, ref in zip(service.runs, reference.runs):
            assert run.metrics == ref.metrics, backend
            for got, want in zip(
                run.model.get_weights(), ref.model.get_weights()
            ):
                np.testing.assert_array_equal(got, want)
        assert (
            service.select_best().topology_name
            == reference.select_best().topology_name
        ), backend


def test_process_backend_scales(balanced_rows):
    times = {row["backend"]: row["seconds"] for row in balanced_rows}
    speedup = times["serial"] / times["process"]
    if CORES >= 2 and WORKERS >= 2:
        assert speedup >= 1.8, (
            f"process backend only {speedup:.2f}x vs serial on {CORES} "
            f"cores with {WORKERS} workers"
        )
    else:
        pytest.skip(
            f"speedup assertion needs >= 2 cores and workers "
            f"(have {CORES} cores, {WORKERS} workers); "
            f"measured {speedup:.2f}x"
        )


def test_second_wave_pays_no_pool_startup(pool_reuse_stats):
    assert pool_reuse_stats["pool_starts"] == 1
    assert pool_reuse_stats["first_startup_s"] > 0.0
    assert pool_reuse_stats["second_startup_s"] == 0.0


def test_warm_cache_at_least_10x(cache_rows):
    speedup = cache_rows[1]["speedup"]
    assert speedup >= 10.0, (
        f"warm cache only {speedup:.1f}x faster than cold generation"
    )


def test_write_results(executor_rows, balanced_rows, pool_reuse_stats, cache_rows):
    sweep_rows, _ = executor_rows
    write_results(
        "compute_scaling",
        {
            "cores": CORES,
            "workers": WORKERS,
            "full_scale": bool(int(os.environ.get("REPRO_FULL", "0"))),
            "executor": sweep_rows,
            "balanced": balanced_rows,
            "pool_reuse": pool_reuse_stats,
            "cache": cache_rows,
        },
    )

"""ROBUSTNESS — conformal coverage, shift behaviour, and gate overhead.

The abstention gate is only trustworthy if the split-conformal interval
actually covers the truth at its nominal rate on exchangeable data.  This
bench trains a real (small) ensemble, calibrates at 90% nominal coverage,
and checks empirical coverage on a fresh held-out draw — the acceptance
bound is nominal minus five points.  It then sweeps the domain-shift
scenario ladder from the adaptation subsystem and reports how coverage,
interval width, and the abstention fraction respond as the instrument
drifts away from the calibration regime; only the identity column
carries a hard bound (coverage at the floor, abstention near zero), the
shifted columns are recorded as the trend surface.  Finally it measures
what the gate costs on top of a bare ensemble forward pass.
"""

import time

import numpy as np
import pytest

from repro.adaptation.scenarios import scenario_grid, shifted_ms_simulator
from repro.compute.cache import ArtifactCache
from repro.compute.executor import ParallelExecutor
from repro.uncertainty import (
    AbstentionPolicy,
    ConformalCalibrator,
    EnsembleSpec,
    UncertaintyGate,
    train_ensemble,
)
from repro.uncertainty.predictors import _build_simulator

from conftest import print_table, scale, write_results

NOMINAL_ALPHA = 0.1
COVERAGE_FLOOR = (1.0 - NOMINAL_ALPHA) - 0.05
LEVELS = (0.0, 0.5, 1.0)


def _spec() -> EnsembleSpec:
    return EnsembleSpec(
        compounds=("H2", "N2", "O2"),
        axis=(1.0, 50.0, 0.5),
        n_train=scale(384, 3000),
        epochs=scale(2, 8),
        hidden_units=(16,),
        n_members=scale(3, 5),
        batch_size=32,
        seed=11,
    )


@pytest.fixture(scope="module")
def rig(tmp_path_factory):
    spec = _spec()
    cache = ArtifactCache(tmp_path_factory.mktemp("uncertainty_cache"))
    predictor = train_ensemble(
        spec,
        executor=ParallelExecutor(backend="thread", max_workers=4),
        cache=cache,
    )
    simulator = _build_simulator(spec)
    n_calibration = scale(192, 1000)
    calibration_x, calibration_y = simulator.generate_dataset(
        spec.compounds, n_calibration, np.random.default_rng(101)
    )
    calibrator = ConformalCalibrator(alpha=NOMINAL_ALPHA)
    calibrator.calibrate(predictor.predict(calibration_x), calibration_y)
    widths = calibrator.width(predictor.predict(calibration_x))
    policy = AbstentionPolicy(max_width=4.0 * float(np.percentile(widths, 95)))
    return spec, predictor, simulator, calibrator, policy


def test_held_out_coverage_meets_the_floor(benchmark, rig):
    """Benchmarked op: one gated assessment of a held-out batch."""
    spec, predictor, simulator, calibrator, policy = rig
    n_test = scale(256, 2000)
    test_x, test_y = simulator.generate_dataset(
        spec.compounds, n_test, np.random.default_rng(202)
    )
    coverage = calibrator.coverage(predictor.predict(test_x), test_y)
    assert coverage >= COVERAGE_FLOOR

    gate = UncertaintyGate(predictor, calibrator, policy=policy)
    assessment = benchmark(lambda: gate.assess(test_x[:64]))
    assert assessment.mean.shape == (64, len(spec.compounds))

    scenario_rows = []
    for scenario in scenario_grid(levels=LEVELS):
        shifted = shifted_ms_simulator(simulator, scenario)
        shift_x, shift_y = shifted.generate_dataset(
            spec.compounds, n_test, np.random.default_rng(303)
        )
        prediction = predictor.predict(shift_x)
        shift_assessment = AbstentionPolicy(
            max_width=policy.max_width
        ).assess(prediction, calibrator)
        scenario_rows.append(
            {
                "scenario": scenario.name,
                "coverage": float(
                    calibrator.coverage(prediction, shift_y)
                ),
                "mean_width": float(
                    np.mean(
                        shift_assessment.width[
                            np.isfinite(shift_assessment.width)
                        ]
                    )
                ),
                "abstain_fraction": float(
                    np.mean(shift_assessment.abstain)
                ),
            }
        )
    print_table(
        "Conformal behaviour under domain shift",
        scenario_rows,
        ["scenario", "coverage", "mean_width", "abstain_fraction"],
    )
    # Level 0 is the identity scenario: the gate must keep serving there.
    assert scenario_rows[0]["coverage"] >= COVERAGE_FLOOR
    assert scenario_rows[0]["abstain_fraction"] <= 0.25

    write_results(
        "uncertainty_coverage",
        {
            "spec": spec.as_config(),
            "nominal_coverage": 1.0 - NOMINAL_ALPHA,
            "coverage_floor": COVERAGE_FLOOR,
            "held_out_coverage": float(coverage),
            "n_test": n_test,
            "q_hat": calibrator.q_hat,
            "n_calibration": calibrator.n_calibration,
            "max_width": policy.max_width,
            "scenarios": scenario_rows,
        },
    )


def test_gate_overhead_over_bare_prediction(rig):
    """The refusal machinery must not dominate the forward pass."""
    spec, predictor, simulator, calibrator, policy = rig
    batch_x, _ = simulator.generate_dataset(
        spec.compounds, 64, np.random.default_rng(404)
    )
    gate = UncertaintyGate(predictor, calibrator, policy=policy)
    rounds = scale(5, 20)

    def _time(fn):
        fn()  # warm
        start = time.perf_counter()
        for _ in range(rounds):
            fn()
        return (time.perf_counter() - start) / rounds

    bare_s = _time(lambda: predictor.predict_mean(batch_x))
    gated_s = _time(lambda: gate.assess(batch_x))
    overhead = gated_s / bare_s
    print_table(
        "Gate overhead vs bare ensemble forward pass",
        [
            {
                "bare_ms": bare_s * 1e3,
                "gated_ms": gated_s * 1e3,
                "overhead_x": overhead,
            }
        ],
        ["bare_ms", "gated_ms", "overhead_x"],
    )
    # Both paths run the same ensemble forward pass; the conformal
    # arithmetic on top is vectorized numpy and must stay cheap.
    assert overhead < 5.0

"""FIG7 — per-compound error on a simulated and a real sample.

Reproduces the paper's final MS evaluation: the Table-1 network, trained on
data from a simulator parameterized with 14 mixtures x ~200 samples,
identifies compound concentrations in simulated (gray) and measured (black)
samples.  Expected shape (paper): validation MAE ~0.27 %, measured MAE
~1.5 %, most compounds below 3 %, with O2/H2O degraded by the humidity
contamination that the reference measurements could not isolate.

The benchmark times batch inference (the deployed use case).
"""

import numpy as np
import pytest

from repro.core import table1_topology
from repro.core.evaluation import evaluate_per_compound, measurements_to_arrays
from repro.ms.characterization import characterize_instrument
from repro.ms.compounds import default_library
from repro.ms.simulator import MassSpectrometerSimulator

from conftest import print_table, scale, write_results
from ms_setup import (
    AXIS,
    TASK,
    calibration_measurements,
    evaluation_measurements,
    make_prototype,
    train_and_score,
)


@pytest.fixture(scope="module")
def experiment():
    instrument, rig = make_prototype(seed=7)
    reference = calibration_measurements(
        rig, samples_per_mixture=scale(25, 200)
    )
    characterization = characterize_instrument(reference, TASK, default_library())
    simulator = MassSpectrometerSimulator(
        characterization.characteristics, AXIS, default_library()
    )
    eval_meas = evaluation_measurements(instrument, rig, samples_per_mixture=6)
    network = train_and_score(
        simulator, table1_topology(len(TASK)), eval_meas,
        n_train=scale(6000, 100_000), epochs=scale(15, 40), seed=0,
    )
    # The gray bars: per-compound error on fresh *simulated* samples.
    rng = np.random.default_rng(123)
    x_sim, y_sim = simulator.generate_dataset(TASK, 500, rng)
    simulated_report = evaluate_per_compound(
        network.model.predict(x_sim), y_sim, TASK
    )
    return network, simulated_report, eval_meas


def test_fig7_compound_identification(benchmark, experiment):
    """Regenerate Fig. 7; the benchmarked op is batch inference."""
    network, simulated_report, eval_meas = experiment
    x_meas, _ = measurements_to_arrays(eval_meas, TASK, AXIS)
    benchmark(lambda: network.model.predict(x_meas))
    rows = [
        {
            "compound": name,
            "simulated_mae_pct": 100.0 * simulated_report[name],
            "measured_mae_pct": 100.0 * network.measured_report[name],
        }
        for name in TASK
    ]
    rows.append(
        {
            "compound": "MEAN",
            "simulated_mae_pct": 100.0 * simulated_report["mean"],
            "measured_mae_pct": 100.0 * network.measured_report["mean"],
        }
    )
    print_table(
        "Fig. 7: per-compound MAE, simulated (gray) vs measured (black)",
        rows,
        ["compound", "simulated_mae_pct", "measured_mae_pct"],
    )
    write_results("fig7_compound_identification", {"rows": rows})

    simulated_mean = simulated_report["mean"]
    measured_mean = network.measured_report["mean"]
    # Paper: 0.27 % simulated vs 1.5 % measured — a clear gap.
    assert simulated_mean < 0.02
    assert measured_mean > simulated_mean
    assert measured_mean < 0.06
    # Paper: most compounds below ~3 % measured error.
    below_3 = sum(
        1 for name in TASK if network.measured_report[name] < 0.03
    )
    assert below_3 >= len(TASK) - 2

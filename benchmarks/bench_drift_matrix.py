"""ROBUSTNESS — the domain-shift scenario matrix: drift × strategy → MAE.

The paper's lifecycle discussion asks how a deployed network behaves when
the instrument drifts away from the state it was trained for, and what
recalibration buys.  This bench runs the full scenario matrix — a grid of
compounded drift levels (sensitivity loss, noise growth, peak shift,
baseline wander) against every adaptation strategy — and reports the MAE
surface.

Expected shape: the unadapted network ("none") degrades steeply with
drift level while fine-tuning on a small drifted set largely recovers it;
the gap on the high-drift column is the value of adaptation.  The run is
also a working demonstration of the campaign mechanics: every cell is
content-addressed in an :class:`~repro.compute.cache.ArtifactCache`, so
an immediate re-run completes entirely from cache (the resume path an
interrupted campaign takes).
"""

import numpy as np
import pytest

from repro.adaptation.matrix import DriftMatrix, MatrixSpec, run_cell
from repro.adaptation.scenarios import scenario_grid
from repro.compute.cache import ArtifactCache
from repro.compute.executor import ParallelExecutor

from conftest import print_table, scale, write_results

STRATEGIES = ("none", "fine_tune", "scaler_recal", "ensemble")

LEVELS = (0.0, 0.25, 0.5, 0.75, 1.0)
GRID_KWARGS = dict(
    max_sensitivity_drift=0.45,
    max_noise_scale=3.0,
    max_peak_shift=0.08,
    max_baseline_wander=5.0,
)


def _spec() -> MatrixSpec:
    scenarios = scenario_grid(levels=LEVELS, **GRID_KWARGS)
    return MatrixSpec(
        compounds=("H2", "CH4", "N2", "O2"),
        n_train=scale(1500, 12_000),
        n_small=scale(256, 1024),
        n_eval=scale(256, 2048),
        epochs=scale(5, 12),
        fine_tune_epochs=scale(8, 12),
        hidden_units=(24,),
        # The ensemble hedges across drift levels it was told to expect.
        ensemble_member_scenarios=(
            scenarios[len(scenarios) // 2].as_config(),
            scenarios[-1].as_config(),
        ),
    )


@pytest.fixture(scope="module")
def campaign(tmp_path_factory):
    cache = ArtifactCache(tmp_path_factory.mktemp("drift_matrix_cache"))
    scenarios = scenario_grid(levels=LEVELS, **GRID_KWARGS)
    matrix = DriftMatrix(
        _spec(),
        scenarios,
        strategies=STRATEGIES,
        cache=cache,
        executor=ParallelExecutor(backend="thread", max_workers=4),
    )
    cold = matrix.run()
    resumed = matrix.run()  # must complete entirely from cache
    return matrix, cold, resumed


def test_drift_matrix_surface(benchmark, campaign):
    """Benchmarked op: one uncached matrix cell (train reused, adapt+eval)."""
    matrix, cold, resumed = campaign
    assert cold.failures == []

    surface = cold.surface()
    scenarios = cold.scenarios
    for maes in surface.values():
        assert all(m is not None and np.isfinite(m) for m in maes)

    rows = [
        {"scenario": name, **{s: surface[s][i] for s in STRATEGIES}}
        for i, name in enumerate(scenarios)
    ]
    print_table(
        "Drift matrix: MAE by scenario (rows) and strategy (columns)",
        rows,
        ["scenario", *STRATEGIES],
    )

    # Adaptation must pay for itself where it matters: the high-drift
    # column. (On the nominal column "none" is allowed to win.)
    high = scenarios[-1]
    best_name, best_mae = cold.best_strategy(high)
    unadapted = surface["none"][-1]
    assert best_name != "none"
    assert best_mae < unadapted

    benchmark.pedantic(
        lambda: run_cell(
            {**matrix.payloads()[0], "strategy": "scaler_recal",
             "cache_root": None}
        ),
        iterations=1,
        rounds=3,
    )

    write_results(
        "drift_matrix",
        {
            **cold.to_payload(),
            "high_drift": {
                "scenario": high,
                "best_strategy": best_name,
                "best_mae": best_mae,
                "unadapted_mae": unadapted,
                "recovered_fraction": 1.0 - best_mae / unadapted,
            },
        },
    )


def test_rerun_resumes_from_cache(campaign):
    """The resume path: a completed campaign re-run is pure cache reads."""
    _, cold, resumed = campaign
    assert all(row["cache_hit"] for row in resumed.rows)
    assert resumed.surface() == cold.surface()

"""FIG5 — MAE on measured data for the eight activation-function variants.

Trains the Table-1 network with every {relu,selu} x {softmax,linear}
(layer 6) x {softmax,linear} (layer 8) combination on the same simulated
dataset, then evaluates all eight on measured spectra from the drifted
prototype — the paper's Fig. 5 bar chart plus the simulated-data MAE
sweep of §III.A.2.

Expected shape (paper): softmax in the output layer is the dominant
effect — sftm-output variants land at 1.5-1.6 % measured MAE, all others
at 3-5 %; on simulated data every variant is below ~1 %.

The benchmark times single-spectrum inference of the best variant.
"""

import numpy as np
import pytest

from repro.core import activation_study_variants
from repro.core.evaluation import measurements_to_arrays
from repro.ms.characterization import characterize_instrument
from repro.ms.compounds import default_library
from repro.ms.simulator import MassSpectrometerSimulator

from conftest import print_table, scale, write_results
from ms_setup import (
    AXIS,
    TASK,
    calibration_measurements,
    evaluation_measurements,
    make_prototype,
    train_and_score,
)


@pytest.fixture(scope="module")
def study():
    instrument, rig = make_prototype(seed=5)
    reference = calibration_measurements(
        rig, samples_per_mixture=scale(20, 200)
    )
    characterization = characterize_instrument(reference, TASK, default_library())
    simulator = MassSpectrometerSimulator(
        characterization.characteristics, AXIS, default_library()
    )
    eval_meas = evaluation_measurements(instrument, rig)
    networks = [
        train_and_score(simulator, topology, eval_meas, seed=0)
        for topology in activation_study_variants(len(TASK))
    ]
    return networks, eval_meas


def test_fig5_activation_study(benchmark, study):
    """Regenerate Fig. 5; the benchmarked op is best-variant inference."""
    networks, eval_meas = study
    best = min(networks, key=lambda n: n.measured_report["mean"])
    x_one, _ = measurements_to_arrays(eval_meas[:1], TASK, AXIS)
    benchmark(lambda: best.model.predict(x_one))
    rows = []
    for network in networks:
        row = {
            "variant": network.name,
            "simulated_mae_pct": 100.0 * network.validation_mae,
            "measured_mae_pct": 100.0 * network.measured_report["mean"],
        }
        for compound in TASK:
            row[f"measured_{compound}_pct"] = (
                100.0 * network.measured_report[compound]
            )
        rows.append(row)

    print_table(
        "Fig. 5: MAE per activation variant",
        rows,
        ["variant", "simulated_mae_pct", "measured_mae_pct"],
    )
    write_results("fig5_activations", {"rows": rows})

    by_name = {row["variant"]: row for row in rows}
    softmax_out = [r for n, r in by_name.items() if n.endswith("_sftm")]
    other_out = [r for n, r in by_name.items() if not n.endswith("_sftm")]

    # Paper's headline effect: softmax output >> linear output on measured
    # data (concentrations sum to one).
    best_softmax = min(r["measured_mae_pct"] for r in softmax_out)
    best_other = min(r["measured_mae_pct"] for r in other_out)
    assert best_softmax < best_other, (
        f"softmax-output variants should win on measured data "
        f"({best_softmax:.2f} vs {best_other:.2f})"
    )
    # On simulated data all variants are usable (paper: 0.14-1.1 %).
    for row in rows:
        assert row["simulated_mae_pct"] < 4.0

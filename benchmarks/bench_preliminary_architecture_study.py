"""PRELIM — the preliminary architecture study (§III.A.2).

"We performed a preliminary investigation considering a broad set of ANN
topologies ... MLP networks, the ResNet and Highway network architectures,
and CNNs.  The preliminary investigations showed that CNNs represent a good
compromise between performance and effort in training and inference."

This bench trains one representative of each family on the same simulated
MS dataset and reports validation MAE, parameter count, training time and
inference FLOPs.  Expected shape: the CNN matches or beats the dense
families in accuracy at a fraction of their parameters and inference cost.
"""

import time

import numpy as np
import pytest

from repro import nn
from repro.core import (
    highway_topology,
    mlp_topology,
    resnet_topology,
    table1_topology,
)
from repro.nn.flops import count_model_flops
from repro.ms import InstrumentCharacteristics, MassSpectrometerSimulator, default_library

from conftest import print_table, scale, write_results
from ms_setup import AXIS, TASK


@pytest.fixture(scope="module")
def study():
    simulator = MassSpectrometerSimulator(
        InstrumentCharacteristics(), AXIS, default_library()
    )
    rng = np.random.default_rng(0)
    n = scale(5000, 80_000)
    x, y = simulator.generate_dataset(TASK, n, rng)
    x_val, y_val = simulator.generate_dataset(TASK, n // 5, rng)

    topologies = [
        mlp_topology(len(TASK), hidden_units=(256, 128)),
        resnet_topology(len(TASK), width=128, depth=3),
        highway_topology(len(TASK), width=128, depth=3),
        table1_topology(len(TASK), name="cnn_table1"),
    ]
    rows = []
    for topology in topologies:
        model = topology.build((AXIS.size,), seed=0)
        model.compile(nn.Adam(0.002), "mae")
        start = time.perf_counter()
        model.fit(
            x, y, epochs=scale(10, 30), batch_size=128,
            validation_data=(x_val, y_val),
            callbacks=[nn.EarlyStopping(patience=5, restore_best_weights=True)],
            seed=0,
        )
        train_seconds = time.perf_counter() - start
        rows.append(
            {
                "family": topology.name,
                "val_mae_pct": 100.0 * model.evaluate(x_val, y_val),
                "parameters": model.count_params(),
                "train_s": train_seconds,
                "mflops_per_sample": sum(
                    c.flops for c in count_model_flops(model)
                ) / 1e6,
            }
        )
    return rows


def test_preliminary_architecture_study(benchmark, study):
    """Regenerate the family study; benchmarked op: one CNN training epoch
    on a small batch."""
    simulator = MassSpectrometerSimulator(
        InstrumentCharacteristics(), AXIS, default_library()
    )
    rng = np.random.default_rng(1)
    x, y = simulator.generate_dataset(TASK, 512, rng)
    model = table1_topology(len(TASK), name="bench_epoch").build((AXIS.size,), seed=0)
    model.compile(nn.Adam(0.002), "mae")
    benchmark.pedantic(
        lambda: model.fit(x, y, epochs=1, batch_size=128, seed=0),
        iterations=1,
        rounds=3,
    )
    print_table(
        "Preliminary study: MLP vs ResNet vs Highway vs CNN "
        "(paper: CNN is the best compromise)",
        study,
        ["family", "val_mae_pct", "parameters", "train_s", "mflops_per_sample"],
    )
    write_results("preliminary_architecture_study", {"rows": study})

    by_family = {row["family"]: row for row in study}
    cnn = by_family["cnn_table1"]
    dense_families = [row for name, row in by_family.items() if name != "cnn_table1"]

    # Every family must learn the task at all.
    for row in study:
        assert row["val_mae_pct"] < 8.0
    # The "good compromise" claim: the CNN stays within a small factor of
    # the best dense family's accuracy (dense models converge faster at
    # the reduced training budget) ...
    best_dense_mae = min(row["val_mae_pct"] for row in dense_families)
    assert cnn["val_mae_pct"] < max(best_dense_mae * 3.0, 2.5)
    # ... while using fewer parameters than every dense family — the axis
    # that matters for embedded weight memory.  (The margin grows with the
    # spectrum length: dense first-layer weights scale linearly with it,
    # the CNN's do not.)
    assert all(
        cnn["parameters"] < row["parameters"] for row in dense_families
    )

"""FIG6 — MAE vs number of measurement series used to parameterize the simulator.

Characterizes the simulator from 10/25/50/75/100/150 measurement series per
mixture (14 mixtures each, as in the paper), trains one Table-1 network per
simulator and evaluates all on the same measured spectra.

Expected shape (paper): on simulated validation data all six networks are
equivalent (~0.2 %); on measured data the 10-series simulator is clearly
worst (2.18 %) while the others land in a 1.4-1.9 % band without a
monotonic trend — more characterization data does not automatically give a
better network.

The benchmark times Tool-2 characterization itself at the 25-series point.
"""

import numpy as np
import pytest

from repro.core import table1_topology
from repro.ms.characterization import characterize_instrument
from repro.ms.compounds import default_library
from repro.ms.simulator import MassSpectrometerSimulator

from conftest import FULL_SCALE, print_table, scale, write_results
from ms_setup import (
    AXIS,
    TASK,
    calibration_measurements,
    evaluation_measurements,
    make_prototype,
    train_and_score,
)

SAMPLE_SIZES = (10, 25, 50, 75, 100, 150) if FULL_SCALE else (10, 25, 50, 100)


@pytest.fixture(scope="module")
def sweep():
    instrument, rig = make_prototype(seed=6)
    # One big calibration campaign; each sweep point uses a prefix of the
    # per-mixture series (the paper randomly selected series; a prefix of a
    # randomized campaign is equivalent and reproducible).
    campaign = {
        n: calibration_measurements(rig, samples_per_mixture=n, seed=2021 + n)
        for n in SAMPLE_SIZES
    }
    eval_meas = evaluation_measurements(instrument, rig)
    library = default_library()
    results = []
    for n, measurements in campaign.items():
        characterization = characterize_instrument(measurements, TASK, library)
        simulator = MassSpectrometerSimulator(
            characterization.characteristics, AXIS, library
        )
        network = train_and_score(
            simulator,
            table1_topology(len(TASK), name=f"table1_n{n}"),
            eval_meas,
            seed=0,
        )
        results.append((n, characterization, network))
    return results, campaign


def test_fig6_sample_size_study(benchmark, sweep):
    """Regenerate Fig. 6; the benchmarked op is Tool-2 characterization."""
    results, campaign = sweep
    library = default_library()
    measurements = campaign[25]
    benchmark.pedantic(
        lambda: characterize_instrument(measurements, TASK, library),
        iterations=1,
        rounds=3,
    )
    rows = []
    for n, characterization, network in results:
        rows.append(
            {
                "series_per_mixture": n,
                "peaks_used": characterization.n_peaks_used,
                "simulated_mae_pct": 100.0 * network.validation_mae,
                "measured_mae_pct": 100.0 * network.measured_report["mean"],
            }
        )
    print_table(
        "Fig. 6: MAE vs simulator characterization sample count",
        rows,
        ["series_per_mixture", "peaks_used", "simulated_mae_pct", "measured_mae_pct"],
    )
    write_results("fig6_sample_sizes", {"rows": rows})

    simulated = [row["simulated_mae_pct"] for row in rows]
    measured = {row["series_per_mixture"]: row["measured_mae_pct"] for row in rows}

    # Paper: simulated performance is essentially flat across sample sizes.
    assert max(simulated) - min(simulated) < 1.5
    # Paper: the 10-series network is not the best one on measured data.
    assert measured[10] > min(measured.values())
    # And every network stays in a usable band (paper: 1.4-2.2 %).
    assert all(value < 6.0 for value in measured.values())

"""SERVING — throughput and shedding behaviour of the hardened frontend.

The paper's real-time claim ("analysis ... within milliseconds") is about
the bare network; this bench measures what the serving shell around it
adds and how it behaves past saturation:

(a) direct model inference vs the same inference through
    :class:`~repro.serving.AnalysisService` (queue + validation + breaker
    + deadline accounting) at matched load — the serving overhead;
(b) throughput scaling across worker counts;
(c) overload: offered load beyond queue capacity must be *shed* with
    explicit ``queue_full`` rejections while goodput stays near the
    saturated service rate (no collapse, no hang);
(e) micro-batching: the same load through a batched service
    (:class:`~repro.serving.BatchingPolicy` +
    ``batch_analyzer_from_model``) — coalescing must claw back most of
    the per-request serving overhead (target: within ~2x of the bare
    model) while keeping results byte-identical to the reference
    batched forward pass;
(f) offered-vs-achieved load sweep: paced offered load at 0.5x / 1x /
    2x of the measured batched capacity against a brownout-governed
    service.  Reported per level: goodput (completed/s), shed rate,
    p50/p95/p99, brownout transitions.  The shape that matters: at 2x
    overload goodput must *plateau*, not collapse — excess load is shed
    explicitly while the service keeps serving near capacity.
(g) frozen inference: the Table-1 CNN served batch-by-batch through the
    reference float64 ``batch_analyzer_from_model`` versus the same
    batches through the frozen engine (float32 and calibrated int8
    plans).  The compiled path must clear 2x the reference's p50
    batch throughput at float32 while staying inside the per-dtype
    accuracy contract (float32 MAE <= 1e-5, int8 MAE <= 2e-2); the
    speedup and accuracy-delta columns persist to
    ``inference_speedup.json``.
(d) telemetry cost: the same load against a fully *enabled* metrics
    registry + tracer and against *disabled* ones.  The comparison runs
    at the paper's real-time operating point (a network sized so one
    analysis takes ~0.5 ms): the design target is that default-on
    telemetry costs < 5% throughput there.  The absolute per-request
    telemetry cost in microseconds is derived and reported too, so the
    stress-case cost on a much faster analyzer can be projected.

Latency percentiles (p50/p95/p99) come straight from the service's own
``serving_request_latency_seconds`` histogram via ``stats()``, not from a
side measurement — the bench exercises the observability layer it reports.

Asserted shape: the service completes requests under modest load, sheds
explicitly at overload, every burst request resolves, and the histogram
percentiles are ordered and positive.
"""

import time

import numpy as np
import pytest

from repro import nn
from repro.core import table1_topology
from repro.observability import Histogram, MetricsRegistry, Tracer
from repro.serving import (
    AnalysisService,
    BatchingPolicy,
    BrownoutGovernor,
    batch_analyzer_from_model,
)

from conftest import print_table, scale, write_results

LENGTH = 200
OUTPUTS = 4

# Frozen-engine comparison: the Table-1 CNN at the MMS prototype's
# half-resolution axis, served in batches of 32 (the batched service's
# dispatch size).  The CNN is where freezing pays: the reference path
# allocates im2col buffers per layer per call in float64.
FROZEN_LENGTH = 500
FROZEN_BATCH = 32


def _network():
    model = nn.Sequential(
        [nn.Dense(32, activation="relu"), nn.Dense(OUTPUTS, activation="softmax")]
    )
    model.build((LENGTH,), seed=0)
    model.compile(nn.Adam(0.01), "mae")
    return model


@pytest.fixture(scope="module")
def throughput():
    model = _network()
    rng = np.random.default_rng(0)
    n_requests = scale(200, 2000)
    spectra = rng.random((n_requests, LENGTH))

    def analyzer(data):
        return model.predict(data[None, :], validate=False)[0]

    rows = []

    # (a) the bare analyzer, single-threaded — the baseline rate.  Each
    # call is timed into a standalone histogram so the direct row reports
    # the same percentile columns as the instrumented service rows.
    direct_hist = MetricsRegistry().histogram(
        "direct_latency_seconds", "bare analyzer call time"
    )
    start = time.perf_counter()
    for row in spectra:
        with direct_hist.time():
            analyzer(row)
    direct_s = time.perf_counter() - start
    direct_ps = direct_hist.percentiles()
    rows.append(
        {
            "mode": "direct",
            "workers": 1,
            "requests": n_requests,
            "completed": n_requests,
            "shed": 0,
            "throughput_rps": n_requests / direct_s,
            "p50_ms": 1000 * direct_ps["p50"],
            "p95_ms": 1000 * direct_ps["p95"],
            "p99_ms": 1000 * direct_ps["p99"],
        }
    )

    def run_service(workers, mode, name, registry=None, tracer=None,
                    backend=None):
        """Steady-load run; percentiles come from the service histogram."""
        service = AnalysisService(
            backend if backend is not None else analyzer,
            workers=workers,
            queue_size=64,
            default_deadline_s=30.0,
            expected_length=LENGTH,
            name=name,
            registry=registry,
            tracer=tracer,
        )
        with service:
            start = time.perf_counter()
            pending = []
            for row in spectra:
                request = service.submit(row)
                pending.append(request)
                # Steady offered load: give the queue room to drain.
                if len(pending) % 64 == 0:
                    pending[-64].result(timeout=30.0)
            results = [p.result(timeout=30.0) for p in pending]
            elapsed = time.perf_counter() - start
            stats = service.stats()
        completed = sum(1 for r in results if r.ok)
        latency = stats["latency_s"].get("completed", {})
        return {
            "mode": mode,
            "workers": workers,
            "requests": n_requests,
            "completed": completed,
            "shed": sum(1 for r in results if not r.ok),
            "throughput_rps": completed / elapsed,
            "p50_ms": 1000 * latency["p50"] if latency else None,
            "p95_ms": 1000 * latency["p95"] if latency else None,
            "p99_ms": 1000 * latency["p99"] if latency else None,
        }

    # (b) through the service at 1 and 2 workers, ample queue.
    for workers in (1, 2):
        rows.append(run_service(workers, "service", f"svc{workers}"))

    # (e) micro-batched service: queued requests coalesce into one
    # batched forward pass.  Results must be byte-identical to the
    # reference batched predict on the same rows.
    reference = batch_analyzer_from_model(model)(spectra)

    def run_batched(workers):
        service = AnalysisService(
            analyzer,
            workers=workers,
            queue_size=64,
            default_deadline_s=30.0,
            expected_length=LENGTH,
            name=f"batched{workers}",
            registry=MetricsRegistry(),
            batching=BatchingPolicy(max_batch=32, max_wait_s=0.0005),
            batch_analyzer=batch_analyzer_from_model(model),
        )
        with service:
            start = time.perf_counter()
            pending = []
            for row in spectra:
                request = service.submit(row)
                pending.append(request)
                if len(pending) % 64 == 0:
                    pending[-64].result(timeout=30.0)
            results = [p.result(timeout=30.0) for p in pending]
            elapsed = time.perf_counter() - start
            stats = service.stats()
        completed = sum(1 for r in results if r.ok)
        identical = all(
            r.value.tobytes() == reference[i].tobytes()
            for i, r in enumerate(results)
            if r.ok
        )
        latency = stats["latency_s"].get("completed", {})
        return {
            "mode": "batched",
            "workers": workers,
            "requests": n_requests,
            "completed": completed,
            "shed": sum(1 for r in results if not r.ok),
            "throughput_rps": completed / elapsed,
            "p50_ms": 1000 * latency["p50"] if latency else None,
            "p95_ms": 1000 * latency["p95"] if latency else None,
            "p99_ms": 1000 * latency["p99"] if latency else None,
        }, identical, stats["batching"]

    batched_row, batched_identical, batched_stats = run_batched(1)
    rows.append(batched_row)

    # (d) telemetry fully on vs fully off at the real-time operating
    # point (isolated registry/tracer instances, so neither run touches
    # the process-global ones).  The wide network stands in for a
    # production-scale analyzer: one analysis ~0.5 ms, per the paper's
    # "within milliseconds" claim.
    wide = nn.Sequential(
        [nn.Dense(1024, activation="relu"),
         nn.Dense(1024, activation="relu"),
         nn.Dense(OUTPUTS, activation="softmax")]
    )
    wide.build((LENGTH,), seed=0)
    wide.compile(nn.Adam(0.01), "mae")

    def realistic_analyzer(data):
        return wide.predict(data[None, :], validate=False)[0]

    for _ in range(10):  # warm the BLAS path before timing
        realistic_analyzer(spectra[0])

    def run_paced(mode, enabled):
        """Submit-and-wait load: every request admitted, none shed, so the
        on/off throughput delta is exactly the per-request telemetry cost."""
        service = AnalysisService(
            realistic_analyzer,
            workers=1,
            queue_size=8,
            default_deadline_s=30.0,
            expected_length=LENGTH,
            name=mode,
            registry=MetricsRegistry(enabled=enabled),
            tracer=Tracer(enabled=enabled),
        )
        with service:
            start = time.perf_counter()
            results = [service.analyze(row) for row in spectra]
            elapsed = time.perf_counter() - start
            stats = service.stats()
        completed = sum(1 for r in results if r.ok)
        latency = stats["latency_s"].get("completed", {})
        return {
            "mode": mode,
            "workers": 1,
            "requests": n_requests,
            "completed": completed,
            "shed": n_requests - completed,
            "throughput_rps": completed / elapsed,
            "p50_ms": 1000 * latency["p50"] if latency else None,
            "p95_ms": 1000 * latency["p95"] if latency else None,
            "p99_ms": 1000 * latency["p99"] if latency else None,
        }

    for mode, enabled in (("telem_on", True), ("telem_off", False)):
        rows.append(run_paced(mode, enabled))

    # (c) overload burst: everything at once into a tiny queue.
    burst_n = scale(100, 1000)
    service = AnalysisService(
        analyzer,
        workers=2,
        queue_size=8,
        default_deadline_s=30.0,
        expected_length=LENGTH,
    )
    with service:
        start = time.perf_counter()
        pending = [service.submit(spectra[i % n_requests]) for i in range(burst_n)]
        results = [p.result(timeout=30.0) for p in pending]
        elapsed = time.perf_counter() - start
    completed = sum(1 for r in results if r.ok)
    shed = sum(1 for r in results if not r.ok and r.reason == "queue_full")
    rows.append(
        {
            "mode": "burst",
            "workers": 2,
            "requests": burst_n,
            "completed": completed,
            "shed": shed,
            "throughput_rps": completed / elapsed,
        }
    )

    # (f) offered-vs-achieved sweep against a brownout-governed batched
    # service.  Offered load is paced open-loop in 2 ms ticks (sub-tick
    # inter-arrival times are below sleep granularity); submit() never
    # blocks, so the bounded queue — not the client — absorbs overload.
    capacity_rps = batched_row["throughput_rps"]
    sweep_n = scale(400, 4000)
    sweep_rows = []

    def run_sweep_level(offered_factor):
        offered_rps = offered_factor * capacity_rps
        governor = BrownoutGovernor(levels=BrownoutGovernor.default_levels())
        service = AnalysisService(
            analyzer,
            workers=2,
            queue_size=64,
            default_deadline_s=0.5,
            expected_length=LENGTH,
            name=f"sweep{offered_factor:g}x",
            registry=MetricsRegistry(),
            batching=BatchingPolicy(max_batch=32, max_wait_s=0.0005),
            batch_analyzer=batch_analyzer_from_model(model),
            governor=governor,
        )
        tick_s = 0.002
        per_tick = max(1, int(round(offered_rps * tick_s)))
        with service:
            start = time.perf_counter()
            pending = []
            submitted = 0
            tick = 0
            while submitted < sweep_n:
                tick += 1
                for _ in range(min(per_tick, sweep_n - submitted)):
                    pending.append(
                        service.submit(spectra[submitted % n_requests])
                    )
                    submitted += 1
                remaining = start + tick * tick_s - time.perf_counter()
                if remaining > 0:
                    time.sleep(remaining)
            results = [p.result(timeout=30.0) for p in pending]
            elapsed = time.perf_counter() - start
            stats = service.stats()
        completed = sum(1 for r in results if r.ok)
        latency = stats["latency_s"].get("completed", {})
        return {
            "offered_x": offered_factor,
            "offered_rps": offered_rps,
            "achieved_rps": submitted / elapsed,
            "goodput_rps": completed / elapsed,
            "requests": sweep_n,
            "completed": completed,
            "shed": sum(1 for r in results if not r.ok),
            "shed_rate": sum(1 for r in results if not r.ok) / sweep_n,
            "p50_ms": 1000 * latency["p50"] if latency else None,
            "p95_ms": 1000 * latency["p95"] if latency else None,
            "p99_ms": 1000 * latency["p99"] if latency else None,
            "brownout_transitions": stats["brownout"]["transitions"],
            "brownout_peak": max(
                (t.to_level for t in governor.transitions), default=0
            ),
        }

    for factor in (0.5, 1.0, 2.0):
        sweep_rows.append(run_sweep_level(factor))

    extras = {
        "batched_identical": batched_identical,
        "batched_stats": batched_stats,
        "direct_rps": rows[0]["throughput_rps"],
        "sweep_rows": sweep_rows,
    }
    return rows, results, extras


def test_serving_throughput(throughput):
    rows, burst_results, extras = throughput
    print_table(
        "serving throughput (requests/s)",
        rows,
        ["mode", "workers", "requests", "completed", "shed",
         "throughput_rps", "p50_ms", "p95_ms", "p99_ms"],
    )
    print_table(
        "offered-vs-achieved load sweep (batched + brownout governor)",
        extras["sweep_rows"],
        ["offered_x", "offered_rps", "achieved_rps", "goodput_rps",
         "shed_rate", "p50_ms", "p95_ms", "p99_ms",
         "brownout_transitions", "brownout_peak"],
    )

    by_mode = {}
    for row in rows:
        by_mode.setdefault(row["mode"], []).append(row)

    on = by_mode["telem_on"][0]
    off = by_mode["telem_off"][0]
    overhead = 1.0 - on["throughput_rps"] / off["throughput_rps"]
    per_request_us = 1e6 * (
        1.0 / on["throughput_rps"] - 1.0 / off["throughput_rps"]
    )
    print(f"telemetry-on throughput overhead vs disabled: {100 * overhead:+.2f}%"
          " (design target < 5% at the ~0.5 ms operating point)")
    print(f"per-request telemetry cost: {per_request_us:+.1f} us "
          "(4 spans + ~8 metric updates)")
    batched = by_mode["batched"][0]
    direct = by_mode["direct"][0]
    batched_ratio = batched["throughput_rps"] / direct["throughput_rps"]
    print(f"batched service vs bare model: {100 * batched_ratio:.1f}% of "
          "direct throughput (design target: within ~2x, i.e. > 50%)")
    print(f"batched outputs byte-identical to reference forward pass: "
          f"{extras['batched_identical']}")
    write_results(
        "serving_throughput",
        {
            "rows": rows,
            "telemetry_overhead_fraction": overhead,
            "telemetry_cost_us_per_request": per_request_us,
            "batched_vs_direct_throughput_ratio": batched_ratio,
            "batched_identical_to_reference": extras["batched_identical"],
            "batched_stats": extras["batched_stats"],
            "load_sweep": extras["sweep_rows"],
        },
    )

    # Modest load through the service completes everything, and the
    # histogram percentiles are positive and ordered.
    for row in by_mode["service"]:
        assert row["completed"] == row["requests"]
        assert row["throughput_rps"] > 0
        assert 0 < row["p50_ms"] <= row["p95_ms"] <= row["p99_ms"]

    # Telemetry on/off both complete everything; the enabled run must not
    # collapse (generous bound — the design target is < 5%, but short CI
    # runs are timing-noisy).
    for row in (on, off):
        assert row["completed"] == row["requests"]
    assert on["throughput_rps"] > 0.5 * off["throughput_rps"]

    # Overload is shed explicitly, and every request resolved.
    burst = by_mode["burst"][0]
    assert burst["completed"] + burst["shed"] == burst["requests"]
    assert burst["completed"] > 0
    for result in burst_results:
        assert result is not None
        if not result.ok:
            assert result.reason == "queue_full"

    # Micro-batching: everything completes, coalescing actually happened,
    # answers are byte-identical, and throughput is within ~2x of the
    # bare model (generous 3x guard for CI noise; the headline ratio is
    # reported above and persisted in the results file).
    assert batched["completed"] == batched["requests"]
    assert extras["batched_identical"], (
        "batched results are not byte-identical to the reference pass"
    )
    assert extras["batched_stats"]["batches"] < batched["requests"], (
        "no coalescing happened: one batch per request"
    )
    assert batched["throughput_rps"] > direct["throughput_rps"] / 3.0

    # Load sweep: goodput must plateau past saturation, not collapse.
    sweep = {row["offered_x"]: row for row in extras["sweep_rows"]}
    for row in extras["sweep_rows"]:
        assert row["completed"] + row["shed"] == row["requests"]
        assert row["goodput_rps"] > 0
    # At 2x overload the service sheds rather than queueing unboundedly,
    # and keeps serving at a healthy fraction of its 1x goodput.
    assert sweep[2.0]["goodput_rps"] > 0.25 * sweep[1.0]["goodput_rps"], (
        "goodput collapsed at 2x overload"
    )


# -- (g) frozen inference engine vs the reference serving path --------------

@pytest.fixture(scope="module")
def frozen_rows():
    model = table1_topology(OUTPUTS).build((FROZEN_LENGTH,), seed=0)
    rng = np.random.default_rng(1)
    n_batches = scale(12, 60)
    batches = rng.random((n_batches, FROZEN_BATCH, FROZEN_LENGTH))
    flat = batches.reshape(-1, FROZEN_LENGTH)
    reference_out = model.predict(flat, validate=False)

    analyzers = [
        ("frozen_ref", batch_analyzer_from_model(model)),
        ("frozen_f32", batch_analyzer_from_model(model, frozen="float32")),
        ("frozen_int8", batch_analyzer_from_model(model, frozen="int8")),
    ]
    assert analyzers[1][1].engine is not None  # the CNN must compile
    assert analyzers[2][1].engine is not None

    rows = []
    for mode, analyzer in analyzers:
        analyzer(batches[0])  # warm: BLAS path + workspace compilation
        hist = MetricsRegistry().histogram(
            f"{mode}_batch_seconds", "one batched forward pass"
        )
        outputs = []
        start = time.perf_counter()
        for batch in batches:
            with hist.time():
                outputs.append(analyzer(batch))
        elapsed = time.perf_counter() - start
        ps = hist.percentiles()
        served = np.concatenate(outputs)
        n_requests = n_batches * FROZEN_BATCH
        rows.append(
            {
                "mode": mode,
                "workers": 1,
                "requests": n_requests,
                "completed": n_requests,
                "shed": 0,
                "throughput_rps": n_requests / elapsed,
                "p50_ms": 1000 * ps["p50"],
                "p95_ms": 1000 * ps["p95"],
                "p99_ms": 1000 * ps["p99"],
                "mae_delta": float(np.mean(np.abs(served - reference_out))),
            }
        )

    reference_p50 = rows[0]["p50_ms"]
    for row in rows:
        row["speedup_p50"] = reference_p50 / row["p50_ms"]
    return rows


def test_frozen_inference_speedup(frozen_rows):
    print_table(
        "frozen engine vs reference serving path (Table-1 CNN, batch 32)",
        frozen_rows,
        ["mode", "requests", "throughput_rps", "p50_ms", "p95_ms",
         "p99_ms", "speedup_p50", "mae_delta"],
    )
    by_mode = {row["mode"]: row for row in frozen_rows}
    f32, int8 = by_mode["frozen_f32"], by_mode["frozen_int8"]
    write_results(
        "inference_speedup",
        {
            "rows": frozen_rows,
            "speedup_p50_float32": f32["speedup_p50"],
            "speedup_p50_int8": int8["speedup_p50"],
            "mae_float32": f32["mae_delta"],
            "mae_int8": int8["mae_delta"],
        },
    )

    # Byte-stable result schema: every row carries exactly the same
    # columns, so downstream consumers can diff runs field-for-field.
    schemas = {tuple(sorted(row)) for row in frozen_rows}
    assert len(schemas) == 1

    # The headline acceptance bar: frozen float32 clears 2x the
    # reference serving path's p50 batch throughput...
    assert f32["speedup_p50"] >= 2.0, (
        f"frozen float32 speedup {f32['speedup_p50']:.2f}x < 2x"
    )
    # ...while staying inside the pinned per-dtype accuracy contracts.
    assert by_mode["frozen_ref"]["mae_delta"] == 0.0
    assert f32["mae_delta"] <= 1e-5
    assert int8["mae_delta"] <= 2e-2

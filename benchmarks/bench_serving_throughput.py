"""SERVING — throughput and shedding behaviour of the hardened frontend.

The paper's real-time claim ("analysis ... within milliseconds") is about
the bare network; this bench measures what the serving shell around it
adds and how it behaves past saturation:

(a) direct model inference vs the same inference through
    :class:`~repro.serving.AnalysisService` (queue + validation + breaker
    + deadline accounting) at matched load — the serving overhead;
(b) throughput scaling across worker counts;
(c) overload: offered load beyond queue capacity must be *shed* with
    explicit ``queue_full`` rejections while goodput stays near the
    saturated service rate (no collapse, no hang).

Asserted shape: the service completes requests under modest load, sheds
explicitly at overload, and every burst request resolves.
"""

import time

import numpy as np
import pytest

from repro import nn
from repro.serving import AnalysisService

from conftest import print_table, scale, write_results

LENGTH = 200
OUTPUTS = 4


def _network():
    model = nn.Sequential(
        [nn.Dense(32, activation="relu"), nn.Dense(OUTPUTS, activation="softmax")]
    )
    model.build((LENGTH,), seed=0)
    model.compile(nn.Adam(0.01), "mae")
    return model


@pytest.fixture(scope="module")
def throughput():
    model = _network()
    rng = np.random.default_rng(0)
    n_requests = scale(200, 2000)
    spectra = rng.random((n_requests, LENGTH))

    def analyzer(data):
        return model.predict(data[None, :], validate=False)[0]

    rows = []

    # (a) the bare analyzer, single-threaded — the baseline rate.
    start = time.perf_counter()
    for row in spectra:
        analyzer(row)
    direct_s = time.perf_counter() - start
    rows.append(
        {
            "mode": "direct",
            "workers": 1,
            "requests": n_requests,
            "completed": n_requests,
            "shed": 0,
            "throughput_rps": n_requests / direct_s,
        }
    )

    # (b) through the service at 1 and 2 workers, ample queue.
    for workers in (1, 2):
        service = AnalysisService(
            analyzer,
            workers=workers,
            queue_size=64,
            default_deadline_s=30.0,
            expected_length=LENGTH,
        )
        with service:
            start = time.perf_counter()
            pending = []
            for row in spectra:
                request = service.submit(row)
                pending.append(request)
                # Steady offered load: give the queue room to drain.
                if len(pending) % 64 == 0:
                    pending[-64].result(timeout=30.0)
            results = [p.result(timeout=30.0) for p in pending]
            elapsed = time.perf_counter() - start
        completed = sum(1 for r in results if r.ok)
        rows.append(
            {
                "mode": "service",
                "workers": workers,
                "requests": n_requests,
                "completed": completed,
                "shed": sum(1 for r in results if not r.ok),
                "throughput_rps": completed / elapsed,
            }
        )

    # (c) overload burst: everything at once into a tiny queue.
    burst_n = scale(100, 1000)
    service = AnalysisService(
        analyzer,
        workers=2,
        queue_size=8,
        default_deadline_s=30.0,
        expected_length=LENGTH,
    )
    with service:
        start = time.perf_counter()
        pending = [service.submit(spectra[i % n_requests]) for i in range(burst_n)]
        results = [p.result(timeout=30.0) for p in pending]
        elapsed = time.perf_counter() - start
    completed = sum(1 for r in results if r.ok)
    shed = sum(1 for r in results if not r.ok and r.reason == "queue_full")
    rows.append(
        {
            "mode": "burst",
            "workers": 2,
            "requests": burst_n,
            "completed": completed,
            "shed": shed,
            "throughput_rps": completed / elapsed,
        }
    )
    return rows, results


def test_serving_throughput(throughput):
    rows, burst_results = throughput
    print_table(
        "serving throughput (requests/s)",
        rows,
        ["mode", "workers", "requests", "completed", "shed", "throughput_rps"],
    )
    write_results("serving_throughput", {"rows": rows})

    by_mode = {}
    for row in rows:
        by_mode.setdefault(row["mode"], []).append(row)

    # Modest load through the service completes everything.
    for row in by_mode["service"]:
        assert row["completed"] == row["requests"]
        assert row["throughput_rps"] > 0

    # Overload is shed explicitly, and every request resolved.
    burst = by_mode["burst"][0]
    assert burst["completed"] + burst["shed"] == burst["requests"]
    assert burst["completed"] > 0
    for result in burst_results:
        assert result is not None
        if not result.ok:
            assert result.reason == "queue_full"

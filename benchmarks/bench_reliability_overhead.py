"""RELIABILITY — steady-state overhead of the fault-tolerance wrappers.

The reliability subsystem only pays for itself if its cost in the healthy
path is negligible next to the work it protects: the paper's real-time
argument (millisecond ANN analysis) must survive the wrappers.  Measured
here, per healthy (fault-free) operation:

(a) acquisition through a :class:`FaultInjector` vs the raw spectrometer,
(b) analysis through a :class:`GuardedAnalyzer` vs the raw ANN analyzer,
(c) a training epoch with a per-epoch :class:`Checkpoint` callback vs
    without.

Asserted shape: each wrapper costs less than the wrapped operation itself
(overhead factor < 2-3x even on these deliberately tiny workloads; on
paper-scale models the relative overhead shrinks further).
"""

import tempfile
import time

import numpy as np
import pytest

from repro import nn
from repro.core.closed_loop import ann_analyzer
from repro.core.topologies import nmr_conv_topology
from repro.nmr import VirtualNMRSpectrometer, mndpa_reaction_models
from repro.reliability import (
    Checkpoint,
    CheckpointManager,
    FaultConfig,
    FaultInjector,
    GuardedAnalyzer,
)

from conftest import print_table, scale, write_results

OUTLET = {"Toluidine": 0.08, "LiHMDS": 0.05, "MNDPA": 0.15, "OFNB": 0.03}


def _time_callable(fn, repeats):
    fn()  # warm-up
    start = time.perf_counter()
    for _ in range(repeats):
        fn()
    return (time.perf_counter() - start) / repeats


@pytest.fixture(scope="module")
def overhead():
    models = mndpa_reaction_models()
    spectrometer = VirtualNMRSpectrometer.benchtop(models, seed=0)
    injector = FaultInjector(spectrometer, FaultConfig(), seed=0)  # no faults
    repeats = scale(30, 200)

    raw_acquire_s = _time_callable(lambda: spectrometer.acquire(OUTLET), repeats)
    injected_acquire_s = _time_callable(lambda: injector.acquire(OUTLET), repeats)

    network = nmr_conv_topology().build((1700,), seed=0)  # timing only
    analyzer = ann_analyzer(network)
    guard = GuardedAnalyzer(analyzer, np.zeros(4))
    spectrum = spectrometer.acquire(OUTLET).intensities

    raw_analyze_s = _time_callable(lambda: analyzer(spectrum), repeats)
    guarded_analyze_s = _time_callable(lambda: guard(spectrum), repeats)

    rng = np.random.default_rng(0)
    x, y = rng.random((1024, 128)), rng.random((1024, 4))

    def fit_once(callbacks):
        model = nn.Sequential([nn.Dense(64, activation="relu"), nn.Dense(4)])
        model.build((128,), seed=0)
        model.compile(nn.Adam(0.01), "mse")
        model.fit(x, y, epochs=scale(5, 20), batch_size=32, seed=0,
                  callbacks=callbacks)

    with tempfile.TemporaryDirectory() as directory:
        manager = CheckpointManager(directory)
        plain_fit_s = _time_callable(lambda: fit_once([]), repeats=3)
        checkpointed_fit_s = _time_callable(
            lambda: fit_once([Checkpoint(manager, "bench")]), repeats=3
        )

    return {
        "raw_acquire_s": raw_acquire_s,
        "injected_acquire_s": injected_acquire_s,
        "raw_analyze_s": raw_analyze_s,
        "guarded_analyze_s": guarded_analyze_s,
        "plain_fit_s": plain_fit_s,
        "checkpointed_fit_s": checkpointed_fit_s,
    }


def test_reliability_overhead(benchmark, overhead):
    """Benchmarked op: one guarded ANN analysis (the hot control-loop path)."""
    models = mndpa_reaction_models()
    spectrum = VirtualNMRSpectrometer.benchtop(models, seed=0).acquire(
        OUTLET
    ).intensities
    network = nmr_conv_topology().build((1700,), seed=0)
    guard = GuardedAnalyzer(ann_analyzer(network), np.zeros(4))
    benchmark(lambda: guard(spectrum))

    rows = [
        {"path": "acquire raw", "ms": 1000 * overhead["raw_acquire_s"],
         "overhead_x": 1.0},
        {"path": "acquire +injector",
         "ms": 1000 * overhead["injected_acquire_s"],
         "overhead_x": overhead["injected_acquire_s"]
         / overhead["raw_acquire_s"]},
        {"path": "analyze raw", "ms": 1000 * overhead["raw_analyze_s"],
         "overhead_x": 1.0},
        {"path": "analyze +guard", "ms": 1000 * overhead["guarded_analyze_s"],
         "overhead_x": overhead["guarded_analyze_s"]
         / overhead["raw_analyze_s"]},
        {"path": "fit plain", "ms": 1000 * overhead["plain_fit_s"],
         "overhead_x": 1.0},
        {"path": "fit +checkpoint", "ms": 1000 * overhead["checkpointed_fit_s"],
         "overhead_x": overhead["checkpointed_fit_s"]
         / overhead["plain_fit_s"]},
    ]
    print_table(
        "Reliability wrapper overhead in the healthy path",
        rows, ["path", "ms", "overhead_x"],
    )
    write_results("reliability_overhead", {"rows": rows})

    assert overhead["injected_acquire_s"] < 2.0 * overhead["raw_acquire_s"]
    assert overhead["guarded_analyze_s"] < 3.0 * overhead["raw_analyze_s"]
    assert overhead["checkpointed_fit_s"] < 3.0 * overhead["plain_fit_s"]

"""NMR-LSTM — the time-series model vs the single-spectrum conv model.

Regenerates §III.B.3's LSTM evaluation: the 221 956-parameter LSTM(32)
model, trained on plateau-augmented synthetic sequences (random spectra
repeated 1-20x), is evaluated on the experimental time series.

Expected shape (paper): the LSTM's MSE is worse than the conv model's
(~2x IHM), while time averaging smooths the steady-state predictions
(paper: 20 % lower plateau standard deviation).  Because our conv baseline
is stronger relative to IHM than the paper's, the smoothing claim is
asserted in normalized form — within-plateau scatter as a fraction of the
model's own RMSE — where window overlap (4 of 5 shared frames) produces
the averaging effect regardless of the absolute accuracy gap.

LSTM inputs are scaled by 0.1: the gates saturate on raw benchtop
intensities (see EXPERIMENTS.md).

The benchmark times one LSTM window prediction.
"""

import numpy as np
import pytest

from repro import nn
from repro.core import (
    nmr_lstm_topology,
    plateau_standard_deviation,
    plateau_time_series,
    sliding_windows,
)

from conftest import print_table, scale, write_results
from nmr_setup import campaign, synthetic_training_data, trained_conv

WINDOW = 5  # the paper's five-timesteps range
INPUT_SCALE = 0.1  # gate-friendly input scaling


@pytest.fixture(scope="module")
def lstm_experiment():
    models, dataset = campaign()
    x_train, y_train, _, _ = synthetic_training_data()
    rng = np.random.default_rng(1)
    x_seq, y_seq = plateau_time_series(
        x_train, y_train, scale(4000, 40_000), rng
    )
    x_windows, y_windows = sliding_windows(x_seq, y_seq, WINDOW)
    lstm = nmr_lstm_topology().build((WINDOW, 1700), seed=0)
    lstm.compile(nn.Adam(0.005, clipnorm=5.0), "mse")
    lstm.fit(
        x_windows * INPUT_SCALE, y_windows,
        epochs=scale(22, 100), batch_size=64, seed=0,
    )
    return dataset, lstm


def test_nmr_lstm_vs_conv(benchmark, lstm_experiment):
    """Regenerate the LSTM comparison; benchmarked op: window prediction."""
    dataset, lstm = lstm_experiment
    conv = trained_conv()
    assert lstm.count_params() == 221_956
    window = dataset.spectra[:WINDOW][None, :, :] * INPUT_SCALE
    benchmark(lambda: lstm.predict(window))

    exp_windows, exp_labels = sliding_windows(
        dataset.spectra, dataset.reference_labels, WINDOW
    )
    lstm_pred = lstm.predict(exp_windows * INPUT_SCALE)
    conv_pred = conv.predict(dataset.spectra)

    lstm_mse = nn.mean_squared_error(lstm_pred, exp_labels)
    conv_mse = nn.mean_squared_error(conv_pred, dataset.reference_labels)
    lstm_std = plateau_standard_deviation(lstm_pred, dataset.plateau_ids[WINDOW - 1:])
    conv_std = plateau_standard_deviation(conv_pred, dataset.plateau_ids)
    lstm_norm = lstm_std / np.sqrt(lstm_mse)
    conv_norm = conv_std / np.sqrt(conv_mse)

    rows = [
        {"model": "conv (10532 p)", "mse": conv_mse, "plateau_std": conv_std,
         "std_over_rmse": conv_norm},
        {"model": "LSTM32 (221956 p)", "mse": lstm_mse, "plateau_std": lstm_std,
         "std_over_rmse": lstm_norm},
        {"model": "LSTM/conv ratio", "mse": lstm_mse / conv_mse,
         "plateau_std": lstm_std / conv_std,
         "std_over_rmse": lstm_norm / conv_norm},
    ]
    print_table(
        "NMR: LSTM vs conv (paper: LSTM MSE ~2x IHM, plateau scatter "
        "reduced by time averaging)",
        rows,
        ["model", "mse", "plateau_std", "std_over_rmse"],
    )
    write_results(
        "nmr_lstm",
        {
            "conv_mse": conv_mse,
            "lstm_mse": lstm_mse,
            "conv_plateau_std": conv_std,
            "lstm_plateau_std": lstm_std,
            "mse_ratio": lstm_mse / conv_mse,
            "std_ratio": lstm_std / conv_std,
            "normalized_std_conv": conv_norm,
            "normalized_std_lstm": lstm_norm,
        },
    )

    # Shape: the LSTM is less accurate than the conv model ...
    assert lstm_mse > conv_mse
    # ... but within an order of magnitude (paper: ~2x IHM ~ 2x conv).
    assert lstm_mse < conv_mse * 20
    # Time averaging: plateau scatter is a smaller fraction of the model's
    # own error for the LSTM than for the single-spectrum conv model.
    assert lstm_norm < conv_norm

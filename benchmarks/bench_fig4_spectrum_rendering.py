"""FIG4 — ideal line spectrum (Tool 1) vs simulated continuous spectrum (Tool 3).

Regenerates the two series of the paper's Fig. 4 for one mixture: the stick
spectrum from the line-spectra simulator and the continuous, noisy spectrum
from the device simulator — including the ignition-gas peak that appears in
the continuous spectrum "which has no counterpart in the line spectrum".

The benchmark times the Tool-3 rendering step.
"""

import numpy as np
import pytest

from repro.ms import (
    InstrumentCharacteristics,
    MassSpectrometerSimulator,
    default_library,
    ideal_mixture_spectrum,
)

from conftest import print_table, write_results
from ms_setup import AXIS, TASK

MIXTURE = {"N2": 0.40, "O2": 0.15, "Ar": 0.10, "CO2": 0.20, "CH4": 0.10, "H2O": 0.05}


@pytest.fixture(scope="module")
def simulator():
    return MassSpectrometerSimulator(
        InstrumentCharacteristics(), AXIS, default_library()
    )


def test_fig4_series(benchmark, simulator):
    """Regenerate Fig. 4's two series and verify the ignition-gas artifact.

    The benchmarked operation is the Tool-3 rendering step (line spectrum
    -> continuous spectrum)."""
    library = default_library()
    lines = ideal_mixture_spectrum(MIXTURE, library)
    rng = np.random.default_rng(4)
    continuous = benchmark(lambda: simulator.render(lines, rng=rng))

    line_rows = [
        {"mz": float(mz), "intensity": float(i)}
        for mz, i in zip(lines.mz, lines.intensities)
    ]
    # Continuous-series summary: intensity at each line position plus the
    # ignition-gas position.
    positions = sorted(set(lines.mz.tolist()) | {4.0})
    continuous_rows = [
        {
            "mz": float(mz),
            "intensity": float(continuous.intensities[AXIS.index_of(mz)]),
        }
        for mz in positions
    ]
    ignition = continuous.intensities[AXIS.index_of(4.0)]
    ideal_at_4 = next((i for mz, i in zip(lines.mz, lines.intensities)
                       if abs(mz - 4.0) < 0.2), 0.0)
    assert ignition > 0.03, "ignition-gas peak missing from continuous spectrum"
    assert ideal_at_4 == 0.0, "ideal spectrum must have no line at m/z 4"

    print_table("Fig. 4 ideal line spectrum (blue)", line_rows, ["mz", "intensity"])
    print_table(
        "Fig. 4 simulated continuous spectrum (orange), at line positions",
        continuous_rows,
        ["mz", "intensity"],
    )
    write_results(
        "fig4_spectrum_rendering",
        {
            "mixture": MIXTURE,
            "ideal_lines": line_rows,
            "continuous_at_lines": continuous_rows,
            "ignition_gas_peak": {"mz": 4.0, "intensity": float(ignition)},
            "full_continuous_spectrum": continuous.intensities.tolist(),
        },
    )

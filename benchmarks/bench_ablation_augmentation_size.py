"""ABLATION — accuracy vs synthetic-training-set size.

The paper generates 300 000 synthetic NMR spectra from 300 experimental
ones but never reports how accuracy scales with the augmentation factor.
This ablation trains the conv network on growing synthetic datasets and
scores each on the experimental campaign.

Expected shape: accuracy improves steeply at first and saturates — the
augmentation is what makes a 300-spectrum campaign trainable at all.
"""

import numpy as np
import pytest

from repro import nn
from repro.core.topologies import nmr_conv_topology

from conftest import FULL_SCALE, print_table, write_results
from nmr_setup import augmentation_simulator, campaign

SIZES = (250, 1000, 4000, 16_000) if not FULL_SCALE else (
    1000, 10_000, 100_000, 300_000
)


@pytest.fixture(scope="module")
def sweep():
    _, dataset = campaign()
    simulator = augmentation_simulator()
    rng = np.random.default_rng(0)
    results = []
    for n in SIZES:
        x_train, y_train = simulator.generate_dataset(n, rng)
        model = nmr_conv_topology().build((1700,), seed=0)
        model.compile(nn.Adam(0.002), "mse")
        # Equal optimizer-step budget across sizes so the sweep isolates
        # dataset size rather than compute budget.
        epochs = max(2, int(round(120_000 / n)))
        model.fit(x_train, y_train, epochs=min(epochs, 60), batch_size=64, seed=0)
        mse = nn.mean_squared_error(
            model.predict(dataset.spectra), dataset.reference_labels
        )
        results.append({"n_synthetic": n, "experimental_mse": mse})
    return results


def test_augmentation_size_sweep(benchmark, sweep):
    """Benchmarked op: generating one 512-spectrum synthetic batch."""
    simulator = augmentation_simulator()
    rng = np.random.default_rng(0)
    benchmark.pedantic(
        lambda: simulator.generate_dataset(512, rng), iterations=1, rounds=3
    )
    print_table(
        "Ablation: experimental MSE vs synthetic training-set size",
        sweep,
        ["n_synthetic", "experimental_mse"],
    )
    write_results("ablation_augmentation_size", {"rows": sweep})
    smallest = sweep[0]["experimental_mse"]
    largest = sweep[-1]["experimental_mse"]
    # More augmentation helps substantially.
    assert largest < smallest
    # And the tail flattens: the last doubling buys less than the first.
    first_gain = sweep[0]["experimental_mse"] / sweep[1]["experimental_mse"]
    last_gain = sweep[-2]["experimental_mse"] / sweep[-1]["experimental_mse"]
    assert first_gain > last_gain * 0.5  # loose monotone-saturation check

"""SEC4 — FPGA overlay acceleration (discussion-section claims).

Regenerates the §IV numbers: the FGPU soft GPU accelerates ANN GEMM
kernels by ~4.2x over an embedded ARM core with NEON, and persistent-DL
specialization pushes this by ~100x; the VCGRA overlay sits in between.

The benchmark times the overlay cost-model evaluation.
"""

import pytest

from repro.core import nmr_lstm_topology, table1_topology
from repro.embedded.overlays import (
    FGPU_SOFT_GPU,
    FGPU_SPECIALIZED,
    VCGRA_OVERLAY,
    ZYNQ_ARM_A9,
    estimate_overlay_speedup,
)

from conftest import print_table, write_results


@pytest.fixture(scope="module")
def networks():
    return {
        "table1_cnn": table1_topology(14).build((1000,), seed=0),
        "nmr_lstm": nmr_lstm_topology().build((5, 1700), seed=0),
    }


def test_overlay_speedups(benchmark, networks):
    """Regenerate §IV speedups; benchmarked op: one overlay estimate."""
    benchmark(
        lambda: FGPU_SOFT_GPU.estimate_seconds(networks["table1_cnn"], 21_600)
    )
    rows = []
    for net_name, model in networks.items():
        for overlay_name, overlay in (
            ("FGPU soft GPU", FGPU_SOFT_GPU),
            ("VCGRA overlay", VCGRA_OVERLAY),
            ("FGPU specialized", FGPU_SPECIALIZED),
        ):
            rows.append(
                {
                    "network": net_name,
                    "overlay": overlay_name,
                    "speedup_vs_arm": estimate_overlay_speedup(model, overlay),
                }
            )
    print_table(
        "Sec. IV: overlay speedups over Zynq ARM "
        "(paper: FGPU ~4.2x, specialized ~100x)",
        rows,
        ["network", "overlay", "speedup_vs_arm"],
    )
    write_results("overlay_acceleration", {"rows": rows})

    cnn = {r["overlay"]: r["speedup_vs_arm"] for r in rows
           if r["network"] == "table1_cnn"}
    assert 3.4 < cnn["FGPU soft GPU"] < 5.0
    assert 60 < cnn["FGPU specialized"] < 140
    assert cnn["FGPU soft GPU"] < cnn["VCGRA overlay"] < cnn["FGPU specialized"]

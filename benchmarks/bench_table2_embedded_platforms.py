"""TAB2 — execution time, power and energy on Jetson Nano / TX2, CPU vs GPU.

Regenerates Table 2 through the analytical platform cost model driven by
the exact per-layer FLOP counts of the Table-1 network, for the paper's
21 600-sample dataset.  Also prints the derived ratios of §III.A.3: GPU
speedup 4.8-7.1x, energy improvement 5.0-6.3x, and the ~2.1x CUDA-core
scaling from Nano (128 cores) to TX2 (256 cores).

The benchmark times the cost-model evaluation itself.
"""

import pytest

from repro.core import table1_topology
from repro.embedded import TABLE2_PLATFORMS
from repro.embedded.cost_model import InferenceCostModel

from conftest import print_table, write_results

DATASET_SIZE = 21_600

# Paper Table 2: (execution time s, power W, energy J).
PAPER = {
    "nano_cpu": (30.19, 5.03, 151.86),
    "nano_gpu": (6.34, 4.77, 30.24),
    "tx2_cpu": (21.64, 5.92, 128.11),
    "tx2_gpu": (3.03, 6.68, 20.24),
}


@pytest.fixture(scope="module")
def network():
    # Built at the MMS prototype's native resolution (1000-point axis).
    return table1_topology(14).build((1000,), seed=0)


def test_table2_rows(benchmark, network):
    """Regenerate Table 2; the benchmarked op is one cost-model estimate."""
    benchmark(
        lambda: InferenceCostModel(TABLE2_PLATFORMS["tx2_gpu"]).estimate(
            network, DATASET_SIZE
        )
    )
    rows = []
    estimates = {}
    for key, spec in TABLE2_PLATFORMS.items():
        estimate = InferenceCostModel(spec).estimate(network, DATASET_SIZE)
        estimates[key] = estimate
        paper_time, paper_power, paper_energy = PAPER[key]
        rows.append(
            {
                "platform": spec.name,
                "time_s": estimate.execution_time_s,
                "power_w": estimate.power_w,
                "energy_j": estimate.energy_j,
                "paper_time_s": paper_time,
                "paper_energy_j": paper_energy,
            }
        )
    print_table(
        "Table 2: 21600-sample inference on embedded platforms",
        rows,
        ["platform", "time_s", "power_w", "energy_j", "paper_time_s", "paper_energy_j"],
    )

    ratio_rows = []
    for board in ("nano", "tx2"):
        gpu, cpu = estimates[f"{board}_gpu"], estimates[f"{board}_cpu"]
        ratio_rows.append(
            {
                "board": board,
                "gpu_speedup": cpu.execution_time_s / gpu.execution_time_s,
                "energy_ratio": cpu.energy_j / gpu.energy_j,
            }
        )
    scaling = (
        estimates["nano_gpu"].execution_time_s
        / estimates["tx2_gpu"].execution_time_s
    )
    ratio_rows.append({"board": "tx2_gpu/nano_gpu", "gpu_speedup": scaling})
    print_table(
        "Derived ratios (paper: speedup 4.8-7.1x, energy 5.0-6.3x, scaling 2.1x)",
        ratio_rows,
        ["board", "gpu_speedup", "energy_ratio"],
    )
    write_results(
        "table2_embedded_platforms",
        {
            "rows": rows,
            "ratios": ratio_rows,
            "dataset_size": DATASET_SIZE,
        },
    )

    # Shape assertions.
    for key, (paper_time, _, paper_energy) in PAPER.items():
        estimate = estimates[key]
        assert estimate.execution_time_s == pytest.approx(paper_time, rel=0.30)
        assert estimate.energy_j == pytest.approx(paper_energy, rel=0.30)
    for row in ratio_rows[:2]:
        assert 4.0 < row["gpu_speedup"] < 8.0
        assert 4.2 < row["energy_ratio"] < 7.0
    assert 1.5 < scaling < 2.6

"""TAB2 — execution time, power and energy on Jetson Nano / TX2, CPU vs GPU.

Regenerates Table 2 through the analytical platform cost model driven by
the exact per-layer FLOP counts of the Table-1 network, for the paper's
21 600-sample dataset.  Also prints the derived ratios of §III.A.3: GPU
speedup 4.8-7.1x, energy improvement 5.0-6.3x, and the ~2.1x CUDA-core
scaling from Nano (128 cores) to TX2 (256 cores).

A second table re-derives every platform's numbers from *frozen plans*
(``InferenceCostModel.estimate_plan``): the layerwise estimate versus
the fused float32 plan versus the calibrated int8 plan, at single-sample
latency (batch 1, the embedded operating point).  Fusing can only remove
kernel launches and int8 can only shrink weight traffic, so the
orderings ``fused <= layerwise`` and ``int8 <= float32`` are asserted
per platform, alongside the ~4x weight-byte cut the int8 artifact
carries.

The benchmark times the cost-model evaluation itself.
"""

import pytest

from repro.core import table1_topology
from repro.embedded import TABLE2_PLATFORMS
from repro.embedded.cost_model import InferenceCostModel
from repro.inference import freeze

from conftest import print_table, write_results

DATASET_SIZE = 21_600

# Paper Table 2: (execution time s, power W, energy J).
PAPER = {
    "nano_cpu": (30.19, 5.03, 151.86),
    "nano_gpu": (6.34, 4.77, 30.24),
    "tx2_cpu": (21.64, 5.92, 128.11),
    "tx2_gpu": (3.03, 6.68, 20.24),
}


@pytest.fixture(scope="module")
def network():
    # Built at the MMS prototype's native resolution (1000-point axis).
    return table1_topology(14).build((1000,), seed=0)


def test_table2_rows(benchmark, network):
    """Regenerate Table 2; the benchmarked op is one cost-model estimate."""
    benchmark(
        lambda: InferenceCostModel(TABLE2_PLATFORMS["tx2_gpu"]).estimate(
            network, DATASET_SIZE
        )
    )
    rows = []
    estimates = {}
    for key, spec in TABLE2_PLATFORMS.items():
        estimate = InferenceCostModel(spec).estimate(network, DATASET_SIZE)
        estimates[key] = estimate
        paper_time, paper_power, paper_energy = PAPER[key]
        rows.append(
            {
                "platform": spec.name,
                "time_s": estimate.execution_time_s,
                "power_w": estimate.power_w,
                "energy_j": estimate.energy_j,
                "paper_time_s": paper_time,
                "paper_energy_j": paper_energy,
            }
        )
    print_table(
        "Table 2: 21600-sample inference on embedded platforms",
        rows,
        ["platform", "time_s", "power_w", "energy_j", "paper_time_s", "paper_energy_j"],
    )

    ratio_rows = []
    for board in ("nano", "tx2"):
        gpu, cpu = estimates[f"{board}_gpu"], estimates[f"{board}_cpu"]
        ratio_rows.append(
            {
                "board": board,
                "gpu_speedup": cpu.execution_time_s / gpu.execution_time_s,
                "energy_ratio": cpu.energy_j / gpu.energy_j,
            }
        )
    scaling = (
        estimates["nano_gpu"].execution_time_s
        / estimates["tx2_gpu"].execution_time_s
    )
    ratio_rows.append({"board": "tx2_gpu/nano_gpu", "gpu_speedup": scaling})
    print_table(
        "Derived ratios (paper: speedup 4.8-7.1x, energy 5.0-6.3x, scaling 2.1x)",
        ratio_rows,
        ["board", "gpu_speedup", "energy_ratio"],
    )
    write_results(
        "table2_embedded_platforms",
        {
            "rows": rows,
            "ratios": ratio_rows,
            "dataset_size": DATASET_SIZE,
        },
    )

    # Shape assertions.
    for key, (paper_time, _, paper_energy) in PAPER.items():
        estimate = estimates[key]
        assert estimate.execution_time_s == pytest.approx(paper_time, rel=0.30)
        assert estimate.energy_j == pytest.approx(paper_energy, rel=0.30)
    for row in ratio_rows[:2]:
        assert 4.0 < row["gpu_speedup"] < 8.0
        assert 4.2 < row["energy_ratio"] < 7.0
    assert 1.5 < scaling < 2.6


def test_frozen_plan_costs(network):
    """Platform numbers re-derived from real fused-op counts and byte sizes."""
    f32_plan = freeze(network)
    int8_plan = freeze(network, dtype="int8")

    rows = []
    for key, spec in TABLE2_PLATFORMS.items():
        cost_model = InferenceCostModel(spec)
        # Batch 1: the embedded single-spectrum latency point, where
        # weight traffic is not amortized across a batch.
        layerwise = cost_model.estimate(network, DATASET_SIZE, batch_size=1)
        fused_f32 = cost_model.estimate_plan(
            f32_plan, DATASET_SIZE, batch_size=1
        )
        fused_int8 = cost_model.estimate_plan(
            int8_plan, DATASET_SIZE, batch_size=1
        )
        rows.append(
            {
                "platform": spec.name,
                "layerwise_s": layerwise.execution_time_s,
                "fused_f32_s": fused_f32.execution_time_s,
                "fused_int8_s": fused_int8.execution_time_s,
                "fused_f32_j": fused_f32.energy_j,
                "fused_int8_j": fused_int8.energy_j,
            }
        )
    print_table(
        "Frozen-plan cost model (batch 1: single-spectrum latency)",
        rows,
        ["platform", "layerwise_s", "fused_f32_s", "fused_int8_s",
         "fused_f32_j", "fused_int8_j"],
    )
    write_results(
        "table2_frozen_plans",
        {
            "rows": rows,
            "fused_ops": f32_plan.fused_op_count,
            "source_layers": len(f32_plan.source_layers),
            "weight_bytes_f32": f32_plan.weight_bytes,
            "weight_bytes_int8": int8_plan.weight_bytes,
            "dataset_size": DATASET_SIZE,
        },
    )

    # Fusing removes kernel launches; int8 shrinks weight traffic.
    # Neither can make any platform slower.
    for row in rows:
        assert row["fused_f32_s"] <= row["layerwise_s"] + 1e-9
        assert row["fused_int8_s"] <= row["fused_f32_s"] + 1e-9
    # The plan really is fused (fewer launched ops than model layers,
    # views free) and the int8 artifact carries the ~4x weight cut.
    assert f32_plan.fused_op_count < len(network.layers)
    assert f32_plan.weight_bytes > 3.5 * int8_plan.weight_bytes

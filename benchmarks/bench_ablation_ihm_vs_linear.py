"""ABLATION — IHM-based simulation vs naive linear combination of
experimental spectra.

The paper argues the IHM simulator beats a plain linear combination of
measured pure-component spectra because (a) experimental noise would be
"inaccurately scaled and added" in the combination and (b) concentration-
dependent peak shifts "would be neglected".  This ablation trains the same
conv network on both augmentation strategies and scores both on the
experimental campaign.

Expected shape: the IHM-trained network wins.
"""

import numpy as np
import pytest

from repro import nn
from repro.core.topologies import nmr_conv_topology
from repro.nmr import VirtualNMRSpectrometer

from conftest import print_table, scale, write_results
from nmr_setup import augmentation_simulator, campaign, synthetic_training_data


def _train(x_train, y_train, seed=0):
    model = nmr_conv_topology().build((1700,), seed=seed)
    model.compile(nn.Adam(0.002), "mse")
    model.fit(
        x_train, y_train, epochs=scale(20, 60), batch_size=64, seed=seed,
        callbacks=[nn.EarlyStopping(monitor="loss", patience=6,
                                    restore_best_weights=True)],
    )
    return model


@pytest.fixture(scope="module")
def ablation():
    models, dataset = campaign()
    simulator = augmentation_simulator()

    # Strategy A: IHM-based simulation (the paper's method).
    x_ihm, y_ihm, _, _ = synthetic_training_data()

    # Strategy B: linear combination of *measured* pure-component spectra.
    # Each pure compound is measured once on the benchtop instrument (with
    # its noise, shift and phase baked in), then mixtures are formed as
    # noisy-spectrum linear combinations with the same labels.
    spectrometer = VirtualNMRSpectrometer.benchtop(models, seed=42)
    pure = np.stack(
        [
            spectrometer.acquire({name: 1.0}).intensities
            for name in models.names
        ]
    )
    rng = np.random.default_rng(7)
    y_linear = simulator.sample_concentrations(x_ihm.shape[0], rng)
    x_linear = y_linear @ pure

    model_ihm = _train(x_ihm, y_ihm)
    model_linear = _train(x_linear, y_linear)

    reference = dataset.reference_labels
    mse_ihm = nn.mean_squared_error(model_ihm.predict(dataset.spectra), reference)
    mse_linear = nn.mean_squared_error(
        model_linear.predict(dataset.spectra), reference
    )
    return mse_ihm, mse_linear


def test_ihm_simulation_beats_linear_combination(benchmark, ablation):
    """Benchmarked op: generating one linear-combination batch."""
    mse_ihm, mse_linear = ablation
    models, _ = campaign()
    simulator = augmentation_simulator()
    spectrometer = VirtualNMRSpectrometer.benchtop(models, seed=1)
    pure = np.stack(
        [spectrometer.acquire({name: 1.0}).intensities for name in models.names]
    )
    rng = np.random.default_rng(0)
    benchmark(lambda: simulator.sample_concentrations(256, rng) @ pure)
    rows = [
        {"augmentation": "IHM simulation (paper)", "experimental_mse": mse_ihm},
        {"augmentation": "linear combination", "experimental_mse": mse_linear},
        {"augmentation": "ratio linear/IHM", "experimental_mse": mse_linear / mse_ihm},
    ]
    print_table(
        "Ablation: IHM simulation vs naive linear combination",
        rows,
        ["augmentation", "experimental_mse"],
    )
    write_results(
        "ablation_ihm_vs_linear",
        {"mse_ihm": mse_ihm, "mse_linear": mse_linear,
         "ratio": mse_linear / mse_ihm},
    )
    assert mse_ihm < mse_linear

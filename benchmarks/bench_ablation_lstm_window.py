"""ABLATION — LSTM window length.

The paper fixes the LSTM at five timesteps.  This ablation sweeps the
window length and reports experimental MSE and within-plateau standard
deviation for each, quantifying the accuracy-vs-smoothness trade the
time-series model makes.

Expected shape: at matched (reduced) training budget the window length is
not a decisive hyperparameter — all windows land within a small accuracy
factor of each other, consistent with the paper fixing five steps without
reporting a sweep.  The time-averaging benefit of windowed prediction is
asserted against the conv model in bench_nmr_lstm.py.
"""

import numpy as np
import pytest

from repro import nn
from repro.core import (
    nmr_lstm_topology,
    plateau_standard_deviation,
    plateau_time_series,
    sliding_windows,
)

from conftest import FULL_SCALE, print_table, scale, write_results
from nmr_setup import campaign, synthetic_training_data

WINDOWS = (1, 3, 5, 9)
INPUT_SCALE = 0.1  # see bench_nmr_lstm.py


@pytest.fixture(scope="module")
def sweep():
    _, dataset = campaign()
    x_train, y_train, _, _ = synthetic_training_data()
    rng = np.random.default_rng(2)
    x_seq, y_seq = plateau_time_series(
        x_train, y_train, scale(3000, 30_000), rng
    )
    results = []
    for window in WINDOWS:
        x_windows, y_windows = sliding_windows(x_seq, y_seq, window)
        model = nmr_lstm_topology().build((window, 1700), seed=0)
        model.compile(nn.Adam(0.005, clipnorm=5.0), "mse")
        model.fit(x_windows * INPUT_SCALE, y_windows,
                  epochs=scale(10, 30), batch_size=64, seed=0)
        exp_windows, exp_labels = sliding_windows(
            dataset.spectra, dataset.reference_labels, window
        )
        pred = model.predict(exp_windows * INPUT_SCALE)
        results.append(
            {
                "window": window,
                "experimental_mse": nn.mean_squared_error(pred, exp_labels),
                "plateau_std": plateau_standard_deviation(
                    pred, dataset.plateau_ids[window - 1:]
                ),
            }
        )
    return results


def test_lstm_window_sweep(benchmark, sweep):
    """Benchmarked op: slicing the campaign into LSTM windows."""
    _, dataset = campaign()
    benchmark(
        lambda: sliding_windows(dataset.spectra, dataset.reference_labels, 5)
    )
    print_table(
        "Ablation: LSTM window length (paper uses 5)",
        sweep,
        ["window", "experimental_mse", "plateau_std"],
    )
    write_results("ablation_lstm_window", {"rows": sweep})
    mses = [row["experimental_mse"] for row in sweep]
    # At the reduced training budget the window length is NOT a decisive
    # hyperparameter: every window reaches usable accuracy and the spread
    # across windows stays within a small factor — consistent with the
    # paper picking 5 without reporting a sweep.  (The time-averaging
    # benefit of windowing is asserted against the conv model in
    # bench_nmr_lstm.py, where the LSTM trains to convergence.)
    assert all(mse < 5e-4 for mse in mses)
    assert max(mses) / min(mses) < 3.0

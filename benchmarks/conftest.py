"""Shared infrastructure for the benchmark suite.

Every bench regenerates one table or figure of the paper (see DESIGN.md's
experiment index).  Default sizes are scaled down so the whole suite runs
on a laptop CPU in minutes; set ``REPRO_FULL=1`` to run at paper scale
(100k MS spectra, 300k NMR spectra, full epoch counts).

Each bench both *prints* its result rows (run with ``-s`` to see them
live) and writes them as JSON to ``benchmarks/results/`` so the numbers
are recorded regardless of output capture.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"

FULL_SCALE = bool(int(os.environ.get("REPRO_FULL", "0")))


def scale(small: int, full: int) -> int:
    """Pick the reduced or paper-scale size for a workload parameter."""
    return full if FULL_SCALE else small


def write_results(name: str, payload: dict) -> Path:
    """Persist one bench's result rows under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.json"
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, default=float)
    return path


def print_table(title: str, rows: list, columns: list) -> None:
    """Print an aligned result table (visible with pytest -s)."""
    print(f"\n=== {title} ===")
    header = "  ".join(f"{c:>14s}" for c in columns)
    print(header)
    for row in rows:
        cells = []
        for column in columns:
            value = row.get(column, "")
            if isinstance(value, float):
                cells.append(f"{value:>14.4f}")
            else:
                cells.append(f"{str(value):>14s}")
        print("  ".join(cells))


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR

"""Shared NMR experiment setup for the Part-B benchmarks.

One virtual campaign (27-point DoE x 11 spectra ~ the paper's 300 raw
spectra), one augmentation simulator and one trained conv network are built
once and shared across the NMR benches.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro import nn
from repro.core.topologies import nmr_conv_topology
from repro.nmr import (
    DoEPlan,
    FlowReactorExperiment,
    NMRSpectrumSimulator,
    ReactionKinetics,
    VirtualNMRSpectrometer,
    mndpa_reaction_models,
)

from conftest import scale

_CACHE = {}


def campaign():
    """(models, experimental ReactionDataset); built once per session."""
    if "campaign" not in _CACHE:
        models = mndpa_reaction_models()
        experiment = FlowReactorExperiment(
            ReactionKinetics(),
            VirtualNMRSpectrometer.benchtop(models, seed=0),
            seed=0,
        )
        _CACHE["campaign"] = (models, experiment.run(DoEPlan.full_factorial(), 11))
    return _CACHE["campaign"]


def augmentation_simulator() -> NMRSpectrumSimulator:
    if "simulator" not in _CACHE:
        models, dataset = campaign()
        _CACHE["simulator"] = NMRSpectrumSimulator.from_dataset(models, dataset)
    return _CACHE["simulator"]


def synthetic_training_data() -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """(x_train, y_train, x_val, y_val) synthetic spectra (paper: 300 000)."""
    if "training_data" not in _CACHE:
        simulator = augmentation_simulator()
        rng = np.random.default_rng(0)
        n_train = scale(6000, 300_000)
        x_train, y_train = simulator.generate_dataset(n_train, rng)
        x_val, y_val = simulator.generate_dataset(max(n_train // 8, 300), rng)
        _CACHE["training_data"] = (x_train, y_train, x_val, y_val)
    return _CACHE["training_data"]


def trained_conv() -> nn.Sequential:
    """The paper's 10 532-parameter conv net, trained on synthetic data."""
    if "conv" not in _CACHE:
        x_train, y_train, x_val, y_val = synthetic_training_data()
        model = nmr_conv_topology().build((1700,), seed=0)
        model.compile(nn.Adam(0.001), "mse")
        model.fit(
            x_train, y_train, epochs=scale(25, 60), batch_size=64,
            validation_data=(x_val, y_val),
            callbacks=[nn.EarlyStopping(patience=6, restore_best_weights=True)],
            seed=0,
        )
        _CACHE["conv"] = model
    return _CACHE["conv"]

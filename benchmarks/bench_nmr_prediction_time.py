"""NMR-TIME — prediction latency: conv ANN vs LSTM vs IHM.

Regenerates §III.B.3's timing claims: the conv ANN predicts a single
spectrum in ~0.9 ms and the LSTM in ~1.05 ms on a laptop CPU, while an IHM
fit takes long enough that the ANN is ">1000 times faster".

Absolute milliseconds depend on the machine; the asserted shape is
(a) both ANNs are in the low-millisecond range, (b) the LSTM is not
dramatically slower than the conv model, (c) IHM is at least two orders of
magnitude slower than the conv ANN.
"""

import time

import numpy as np
import pytest

from repro.core import nmr_lstm_topology
from repro.nmr import IHMAnalysis

from conftest import print_table, write_results
from nmr_setup import campaign, trained_conv


@pytest.fixture(scope="module")
def timing():
    models, dataset = campaign()
    conv = trained_conv()
    lstm = nmr_lstm_topology().build((5, 1700), seed=0)  # timing only
    ihm = IHMAnalysis(models)

    spectrum = dataset.spectra[:1]
    window = dataset.spectra[:5][None, :, :]

    def time_callable(fn, repeats=30):
        fn()  # warm-up
        start = time.perf_counter()
        for _ in range(repeats):
            fn()
        return (time.perf_counter() - start) / repeats

    conv_s = time_callable(lambda: conv.predict(spectrum))
    lstm_s = time_callable(lambda: lstm.predict(window))
    start = time.perf_counter()
    repeats = 3
    for i in range(repeats):
        ihm.analyze(dataset.spectra[i])
    ihm_s = (time.perf_counter() - start) / repeats
    return conv_s, lstm_s, ihm_s


def test_prediction_time_comparison(benchmark, timing):
    """Regenerate the latency comparison; benchmarked op: conv inference."""
    conv_s, lstm_s, ihm_s = timing
    _, dataset = campaign()
    conv = trained_conv()
    benchmark(lambda: conv.predict(dataset.spectra[:1]))
    rows = [
        {"method": "conv ANN", "ms_per_spectrum": 1000 * conv_s,
         "paper_ms": 0.9},
        {"method": "LSTM32", "ms_per_spectrum": 1000 * lstm_s,
         "paper_ms": 1.05},
        {"method": "IHM", "ms_per_spectrum": 1000 * ihm_s,
         "paper_ms": float("nan")},
        {"method": "IHM / conv ratio", "ms_per_spectrum": ihm_s / conv_s,
         "paper_ms": 1000.0},
    ]
    print_table(
        "NMR single-spectrum prediction time (paper: conv 0.9 ms, LSTM "
        "1.05 ms, IHM >1000x slower)",
        rows,
        ["method", "ms_per_spectrum", "paper_ms"],
    )
    write_results(
        "nmr_prediction_time",
        {
            "conv_ms": 1000 * conv_s,
            "lstm_ms": 1000 * lstm_s,
            "ihm_ms": 1000 * ihm_s,
            "ihm_over_conv": ihm_s / conv_s,
        },
    )

    assert conv_s < 0.05  # low-millisecond regime
    assert lstm_s < 0.1
    assert ihm_s > 100 * conv_s  # paper: >1000x; require >=100x on any host

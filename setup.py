"""Legacy setup shim.

The execution environment has no ``wheel`` package, so PEP 660 editable
installs fail; ``pip install -e . --no-use-pep517 --no-build-isolation``
uses this file instead.
"""

from setuptools import setup

setup()

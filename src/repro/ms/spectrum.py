"""Spectrum containers shared by the MS toolchain."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np

__all__ = ["MzAxis", "MassSpectrum"]


@dataclass(frozen=True)
class MzAxis:
    """A uniform mass-to-charge axis.

    The MMS prototype lets the operator choose both the m/z range and the
    stepsize (the paper interpolates when the resolution changes), so the
    axis is an explicit object rather than an implicit array convention.
    """

    start: float = 1.0
    stop: float = 50.0
    step: float = 0.1

    def __post_init__(self):
        if self.step <= 0:
            raise ValueError(f"step must be positive, got {self.step}")
        if self.stop <= self.start:
            raise ValueError(
                f"stop ({self.stop}) must exceed start ({self.start})"
            )

    @property
    def size(self) -> int:
        return int(np.floor((self.stop - self.start) / self.step + 0.5)) + 1

    def values(self) -> np.ndarray:
        return self.start + self.step * np.arange(self.size)

    def index_of(self, mz: float) -> int:
        """Nearest grid index for an m/z value (clipped to the axis)."""
        idx = int(np.round((mz - self.start) / self.step))
        return int(np.clip(idx, 0, self.size - 1))

    def contains(self, mz: float) -> bool:
        return self.start <= mz <= self.stop


@dataclass
class MassSpectrum:
    """A continuous (sampled) mass spectrum on a uniform m/z axis."""

    axis: MzAxis
    intensities: np.ndarray
    metadata: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self):
        self.intensities = np.asarray(self.intensities, dtype=np.float64)
        if self.intensities.ndim != 1:
            raise ValueError("intensities must be 1-D")
        if self.intensities.size != self.axis.size:
            raise ValueError(
                f"intensities length {self.intensities.size} does not match "
                f"axis size {self.axis.size}"
            )

    @property
    def mz(self) -> np.ndarray:
        return self.axis.values()

    def normalized(self, mode: str = "max") -> "MassSpectrum":
        """Return a copy scaled to unit maximum or unit area.

        Spectra are normalized before being fed to the ANN so the network
        sees shape, not absolute ion current.
        """
        if mode == "max":
            denom = float(np.max(np.abs(self.intensities)))
        elif mode == "area":
            denom = float(np.sum(np.abs(self.intensities)) * self.axis.step)
        else:
            raise ValueError(f"mode must be 'max' or 'area', got {mode!r}")
        if denom == 0.0:
            return MassSpectrum(self.axis, self.intensities.copy(), dict(self.metadata))
        return MassSpectrum(self.axis, self.intensities / denom, dict(self.metadata))

    def peak_intensity_at(self, mz: float, window: float = 0.5) -> float:
        """Maximum intensity within ±window of an m/z position."""
        values = self.mz
        mask = np.abs(values - mz) <= window
        if not np.any(mask):
            raise ValueError(f"m/z {mz} (±{window}) is outside the axis")
        return float(np.max(self.intensities[mask]))

    def __len__(self) -> int:
        return self.intensities.size

"""Mass-spectrometry substrate: Tools 1-3 of the paper's MS toolchain.

The paper's flow (its Figure 3):

* **Tool 1** (:mod:`repro.ms.line_spectra`) — ideal line spectra of mixtures
  by linear superposition of known per-compound fragmentation patterns
  (:mod:`repro.ms.compounds`).
* **Tool 2** (:mod:`repro.ms.characterization`) — automatic generation of an
  instrument simulator from labelled reference measurements: peak shape,
  m/z-dependent attenuation, baseline drift and noise model are estimated
  from data.
* **Tool 3** (:mod:`repro.ms.simulator`) — rendering of ideal line spectra
  into continuous, noisy spectra matching the real device, used to mass-
  produce labelled training data.

The real miniaturized mass spectrometer (MMS) prototype is replaced by
:class:`repro.ms.instrument.VirtualMassSpectrometer`, a ground-truth device
model with non-idealities the simulator does not know about (configuration
drift, air-humidity contamination, per-shot peak jitter), recreating the
paper's simulated-vs-measured accuracy gap.
"""

from repro.ms.compounds import Compound, CompoundLibrary, default_library
from repro.ms.spectrum import MassSpectrum, MzAxis
from repro.ms.line_spectra import LineSpectrum, ideal_mixture_spectrum
from repro.ms.instrument import (
    InstrumentCharacteristics,
    VirtualMassSpectrometer,
)
from repro.ms.characterization import (
    CharacterizationResult,
    characterize_instrument,
)
from repro.ms.simulator import MassSpectrometerSimulator
from repro.ms.mixtures import MassFlowControllerRig, MixturePlan, sample_concentrations
from repro.ms.plausibility import PlausibilityChecker, PlausibilityReport
from repro.ms.resolution import resample_spectrum

__all__ = [
    "CharacterizationResult",
    "Compound",
    "CompoundLibrary",
    "InstrumentCharacteristics",
    "LineSpectrum",
    "MassFlowControllerRig",
    "MassSpectrometerSimulator",
    "MassSpectrum",
    "MixturePlan",
    "MzAxis",
    "PlausibilityChecker",
    "PlausibilityReport",
    "VirtualMassSpectrometer",
    "characterize_instrument",
    "default_library",
    "ideal_mixture_spectrum",
    "resample_spectrum",
    "sample_concentrations",
]

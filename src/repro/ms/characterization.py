"""Tool 2 — automatic generation of the instrument simulator from data.

Given labelled reference measurements from the real device (spectra of
known mixtures), this module estimates every parameter the Tool-3 simulator
needs: peak shape, m/z-dependent attenuation, baseline level, noise model,
mass-axis offset and the ignition-gas artifact.

The estimates converge with the number of reference measurement series —
this is exactly the knob the paper's Fig. 6 sweeps (simulators
parameterized with 10/25/50/75/100/150 series per mixture).

Systematic effects the estimator *cannot* see — inlet contamination and
later configuration drift — stay uncorrected, which is what produces the
paper's simulated-vs-measured accuracy gap.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.ms.compounds import CompoundLibrary
from repro.ms.instrument import InstrumentCharacteristics
from repro.ms.spectrum import MassSpectrum

__all__ = [
    "CharacterizationResult",
    "characterize_instrument",
    "expected_task_lines",
]

# Lines need some clearance from every other expected line before their
# width/height can be measured in isolation.
_ISOLATION_MZ = 1.6
_WINDOW_MZ = 0.7
_MIN_RELATIVE_INTENSITY = 0.25
_MIN_CONCENTRATION = 0.03


@dataclass
class CharacterizationResult:
    """Fitted instrument model plus fit diagnostics."""

    characteristics: InstrumentCharacteristics
    n_measurements: int
    n_peaks_used: int
    sigma_fit_residual: float
    attenuation_fit_residual: float
    notes: List[str] = field(default_factory=list)


def expected_task_lines(
    task_compounds: Sequence[str], library: CompoundLibrary
) -> List[Tuple[str, float, float]]:
    """All (compound, m/z, relative intensity) lines of a measurement task."""
    lines = []
    for name in task_compounds:
        compound = library.get(name)
        for mz, intensity in compound.normalized_lines():
            lines.append((compound.name, float(mz), float(intensity)))
    return lines


def _isolated_strong_lines(
    task_compounds: Sequence[str], library: CompoundLibrary
) -> List[Tuple[str, float, float]]:
    """Strong lines with no *significant* other line within _ISOLATION_MZ.

    Only interferers above 5 % relative intensity count: a 1 % isotope
    satellite next to a base peak does not spoil a width or height
    measurement, and treating it as blocking would leave typical gas tasks
    with almost no usable lines.
    """
    all_lines = expected_task_lines(task_compounds, library)
    significant = np.array(
        [(mz, rel) for _, mz, rel in all_lines if rel >= 0.05]
    )
    isolated = []
    for name, mz, rel in all_lines:
        if rel < _MIN_RELATIVE_INTENSITY:
            continue
        distance = np.abs(significant[:, 0] - mz)
        # The line itself appears once in the significant set.
        neighbours = int(np.sum(distance < _ISOLATION_MZ)) - 1
        if neighbours == 0:
            isolated.append((name, mz, rel))
    return isolated


def _quiet_mask(spectrum: MassSpectrum, task_lines, margin: float = 1.2) -> np.ndarray:
    grid = spectrum.mz
    mask = np.ones(grid.size, dtype=bool)
    for _, mz, _ in task_lines:
        mask &= np.abs(grid - mz) > margin
    return mask


def _peak_statistics(
    spectrum: MassSpectrum, expected_mz: float
) -> Optional[Tuple[float, float, float]]:
    """(height, centroid, sigma) of the peak near ``expected_mz``.

    Returns ``None`` if the window falls off the axis or carries no signal.
    """
    grid = spectrum.mz
    mask = np.abs(grid - expected_mz) <= _WINDOW_MZ
    if np.sum(mask) < 5:
        return None
    window_mz = grid[mask]
    window = spectrum.intensities[mask].copy()
    # Local baseline: the mean of the window edges.
    edge = 0.5 * (window[:2].mean() + window[-2:].mean())
    window = np.clip(window - edge, 0.0, None)
    total = window.sum()
    if total <= 0:
        return None
    peak_idx = int(np.argmax(window))
    height = float(window[peak_idx])
    # Centroid over the peak core only (>= 20 % of max), which keeps
    # residual baseline out of the statistics.
    core = window >= 0.2 * height
    centroid = float(np.sum(window_mz[core] * window[core]) / window[core].sum())
    sigma = _log_parabola_sigma(window_mz, window, peak_idx)
    if sigma is None:
        sigma = _fwhm_sigma(window_mz, window, peak_idx, height)
    if sigma is None:
        return None
    return height, centroid, sigma


def _log_parabola_sigma(window_mz, window, peak_idx) -> Optional[float]:
    """Gaussian sigma from a log-parabola through the three top samples.

    Exact for a noise-free Gaussian and far more accurate than half-max
    interpolation when the peak spans only a few grid points (coarse m/z
    stepsizes undersample narrow peaks badly).
    """
    if peak_idx < 1 or peak_idx > window.size - 2:
        return None
    left, top, right = window[peak_idx - 1 : peak_idx + 2]
    if left <= 0 or top <= 0 or right <= 0:
        return None
    curvature = np.log(left) + np.log(right) - 2.0 * np.log(top)
    if curvature >= 0:
        return None  # flat or inverted: not a resolvable peak
    step = window_mz[1] - window_mz[0]
    return float(step / np.sqrt(-curvature))


def _fwhm_sigma(window_mz, window, peak_idx, height) -> Optional[float]:
    """Gaussian sigma from the full width at half maximum.

    FWHM is far less sensitive to baseline residue than second moments,
    which systematically overestimate the width.
    """
    half = 0.5 * height
    # Walk left from the peak to the half-max crossing.
    left = None
    for i in range(peak_idx, 0, -1):
        if window[i - 1] <= half <= window[i]:
            frac = (half - window[i - 1]) / max(window[i] - window[i - 1], 1e-15)
            left = window_mz[i - 1] + frac * (window_mz[i] - window_mz[i - 1])
            break
    right = None
    for i in range(peak_idx, window.size - 1):
        if window[i + 1] <= half <= window[i]:
            frac = (window[i] - half) / max(window[i] - window[i + 1], 1e-15)
            right = window_mz[i] + frac * (window_mz[i + 1] - window_mz[i])
            break
    if left is None or right is None or right <= left:
        return None
    return float((right - left) / 2.3548200450309493)


def characterize_instrument(
    measurements: Sequence[Tuple[MassSpectrum, Mapping[str, float]]],
    task_compounds: Sequence[str],
    library: CompoundLibrary,
) -> CharacterizationResult:
    """Estimate instrument characteristics from labelled measurements.

    Parameters
    ----------
    measurements:
        ``(spectrum, dosed_concentrations)`` pairs.  Concentrations are the
        *dosed* fractions (what the operator believes is in the sample);
        the estimator never sees the true chamber composition.
    task_compounds:
        The compounds of the measurement task.
    library:
        Line-spectra library.
    """
    if not measurements:
        raise ValueError("at least one reference measurement is required")
    notes: List[str] = []
    isolated = _isolated_strong_lines(task_compounds, library)
    if not isolated:
        raise ValueError(
            "no isolated strong lines in the task; cannot characterize"
        )
    task_lines = expected_task_lines(task_compounds, library)

    sigma_points: List[Tuple[float, float]] = []  # (mz, sigma)
    height_points: List[Tuple[float, float]] = []  # (mz, log-normalized height)
    offset_points: List[float] = []
    quiet_values: List[np.ndarray] = []
    peak_tops: Dict[Tuple[str, float], List[float]] = {}

    for spectrum, concentrations in measurements:
        conc = {k.lower(): float(v) for k, v in concentrations.items()}
        for name, mz, rel in isolated:
            c = conc.get(name.lower(), 0.0)
            if c < _MIN_CONCENTRATION:
                continue
            stats = _peak_statistics(spectrum, mz)
            if stats is None:
                continue
            height, centroid, sigma = stats
            sigma_points.append((centroid, sigma))
            height_points.append((centroid, np.log(max(height, 1e-12) / (c * rel))))
            offset_points.append(centroid - mz)
            # Group raw heights by (line, dosed concentration): repeats of
            # the same mixture share a group, so within-group variance is a
            # clean repeat-to-repeat statistic.
            peak_tops.setdefault((name, mz, round(c, 4)), []).append(height)
        quiet = spectrum.intensities[_quiet_mask(spectrum, task_lines)]
        if quiet.size:
            quiet_values.append(quiet)

    if len(sigma_points) < 3:
        raise ValueError(
            f"only {len(sigma_points)} usable peaks found; need more "
            "reference measurements or higher concentrations"
        )

    sigma_arr = np.array(sigma_points)
    sigma_slope, sigma_base, sigma_residual = _linear_fit(
        sigma_arr[:, 0], sigma_arr[:, 1]
    )
    if sigma_base <= 0:
        notes.append("fitted peak_sigma_base <= 0; clamped")
        sigma_base = max(sigma_base, 1e-3)
    if sigma_slope < 0:
        notes.append("fitted peak_sigma_slope < 0; clamped to 0")
        sigma_slope = 0.0

    height_arr = np.array(height_points)
    slope, intercept, attenuation_residual = _linear_fit(
        height_arr[:, 0], height_arr[:, 1]
    )
    gain = float(np.exp(intercept))
    tau = float(-1.0 / slope) if slope < 0 else 1e6
    if slope >= 0:
        notes.append("attenuation slope non-negative; tau set to ~infinite")

    mz_offset = float(np.median(offset_points)) if offset_points else 0.0

    quiet_all = np.concatenate(quiet_values) if quiet_values else np.zeros(1)
    baseline_amplitude = float(2.0 * np.mean(quiet_all))
    noise_sigma = _robust_noise_sigma(quiet_all)

    shot = _estimate_shot_noise(peak_tops, noise_sigma, gain, tau)
    ignition_mz, ignition_intensity = _estimate_ignition_gas(
        measurements, task_lines, gain, tau, noise_sigma
    )
    if ignition_mz is None:
        notes.append("no ignition-gas artifact detected")
        ignition_mz, ignition_intensity = 0.5, 0.0

    characteristics = InstrumentCharacteristics(
        peak_sigma_base=sigma_base,
        peak_sigma_slope=sigma_slope,
        gain=gain,
        attenuation_tau=tau,
        baseline_amplitude=max(baseline_amplitude, 0.0),
        noise_sigma=max(noise_sigma, 1e-6),
        shot_noise_factor=shot,
        mz_offset=mz_offset,
        ignition_gas_mz=ignition_mz,
        ignition_gas_intensity=ignition_intensity,
    )
    return CharacterizationResult(
        characteristics=characteristics,
        n_measurements=len(measurements),
        n_peaks_used=len(sigma_points),
        sigma_fit_residual=sigma_residual,
        attenuation_fit_residual=attenuation_residual,
        notes=notes,
    )


def _robust_noise_sigma(quiet: np.ndarray) -> float:
    """Point-to-point noise of the detector, separated from the baseline.

    A plain standard deviation of the quiet region lumps the slow baseline
    roll into the noise estimate (roughly doubling it), which would make
    Tool-3 training data noisier than the device.  First differences cancel
    the slowly varying baseline; the median absolute deviation makes the
    estimate robust to the few large jumps across quiet-segment boundaries.
    """
    if quiet.size < 3:
        return float(np.std(quiet))
    diffs = np.diff(quiet)
    mad = float(np.median(np.abs(diffs - np.median(diffs))))
    return 1.482602218505602 * mad / np.sqrt(2.0)


def _linear_fit(x: np.ndarray, y: np.ndarray) -> Tuple[float, float, float]:
    """Least-squares y = slope*x + intercept; returns (slope, intercept, rms)."""
    design = np.stack([x, np.ones_like(x)], axis=1)
    coeffs, *_ = np.linalg.lstsq(design, y, rcond=None)
    residual = float(np.sqrt(np.mean((design @ coeffs - y) ** 2)))
    return float(coeffs[0]), float(coeffs[1]), residual


def _estimate_shot_noise(
    peak_tops: Dict, noise_sigma: float, gain: float, tau: float
) -> float:
    """Shot factor from repeat-to-repeat height variance across lines.

    Repeats of the same mixture scatter for three reasons with different
    height dependence: additive detector noise (constant), shot noise
    (variance proportional to height) and proportional effects — dosing
    error, peak-position jitter, baseline phase (variance proportional to
    height squared).  Regressing variance against [1, H, H^2] over lines of
    different heights separates them; the shot factor is sqrt of the linear
    coefficient.  A single pooled ratio would lump the proportional terms
    into the shot factor and overestimate it severalfold.
    """
    heights = []
    variances = []
    for key, values in peak_tops.items():
        if len(values) < 5:
            continue
        physical = np.array(values)
        heights.append(float(np.mean(physical)))
        variances.append(float(np.var(physical, ddof=1)))
    if len(heights) < 3:
        return 0.005
    h = np.array(heights)
    v = np.array(variances)
    design = np.stack([np.ones_like(h), h, h * h], axis=1)
    from scipy.optimize import nnls as _nnls

    coefficients, _ = _nnls(design, v)
    return float(np.clip(np.sqrt(coefficients[1]), 0.0, 0.05))


def _estimate_ignition_gas(
    measurements, task_lines, gain: float, tau: float, noise_sigma: float
) -> Tuple[Optional[float], float]:
    """Find a consistent peak not explained by the sample's compounds."""
    positions: List[float] = []
    intensities: List[float] = []
    for spectrum, _ in measurements:
        grid = spectrum.mz
        mask = _quiet_mask(spectrum, task_lines, margin=1.0)
        if not np.any(mask):
            continue
        values = np.where(mask, spectrum.intensities, 0.0)
        idx = int(np.argmax(values))
        height = values[idx]
        if height < max(6.0 * noise_sigma, 1e-6):
            continue
        positions.append(float(grid[idx]))
        sensitivity = gain * np.exp(-grid[idx] / tau)
        intensities.append(float(height / max(sensitivity, 1e-12)))
    if len(positions) < max(2, len(measurements) // 4):
        return None, 0.0
    # The artifact must appear at a stable position to count.
    if np.std(positions) > 0.5:
        return None, 0.0
    return float(np.median(positions)), float(np.median(intensities))

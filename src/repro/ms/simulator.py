"""Tool 3 — simulator of the portable mass spectrometer.

Takes instrument characteristics (typically *fitted* ones from Tool 2) and
renders ideal line spectra into continuous, noisy spectra "matching the
characteristics of the real measuring device".  Its main job is the bulk
generation of labelled training data: with a precomputed per-compound
response matrix, a 100 000-spectrum dataset takes seconds.

As the paper notes, "the simulator only considers a static system state" —
no per-shot peak jitter, no contamination, no drift.  Those omissions are
deliberate: they are what separates simulated from measured accuracy.
"""

from __future__ import annotations

from typing import Callable, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.ms.compounds import CompoundLibrary, default_library
from repro.ms.instrument import InstrumentCharacteristics, render_line_spectrum
from repro.ms.line_spectra import LineSpectrum, ideal_mixture_spectrum
from repro.ms.mixtures import sample_concentrations
from repro.ms.spectrum import MassSpectrum, MzAxis

__all__ = ["MassSpectrometerSimulator"]


class MassSpectrometerSimulator:
    """Continuous-spectrum renderer + training-data generator."""

    def __init__(
        self,
        characteristics: InstrumentCharacteristics,
        axis: MzAxis = MzAxis(),
        library: Optional[CompoundLibrary] = None,
    ):
        self.characteristics = characteristics
        self.axis = axis
        self.library = library if library is not None else default_library()

    # -- single-spectrum API -------------------------------------------------

    def render(
        self,
        lines: LineSpectrum,
        rng: Optional[np.random.Generator] = None,
        with_noise: bool = True,
    ) -> MassSpectrum:
        """Render a stick spectrum into a continuous spectrum."""
        signal = render_line_spectrum(lines, self.axis, self.characteristics)
        signal = signal + self._ignition_gas_signal()
        if with_noise:
            if rng is None:
                raise ValueError("with_noise=True requires an rng")
            signal = signal + self._baseline(rng)
            signal = self._add_noise(signal, rng)
        return MassSpectrum(self.axis, signal, dict(lines.metadata))

    def simulate(
        self,
        concentrations: Mapping[str, float],
        rng: Optional[np.random.Generator] = None,
        with_noise: bool = True,
    ) -> MassSpectrum:
        """Simulate one measurement of a mixture (Tool 1 + Tool 3)."""
        lines = ideal_mixture_spectrum(concentrations, self.library)
        return self.render(lines, rng=rng, with_noise=with_noise)

    # -- bulk dataset generation ----------------------------------------------

    def response_matrix(self, compound_names: Sequence[str]) -> np.ndarray:
        """(n_compounds, axis.size) continuous unit-concentration responses."""
        rows = []
        for name in compound_names:
            lines = ideal_mixture_spectrum({name: 1.0}, self.library)
            rows.append(render_line_spectrum(lines, self.axis, self.characteristics))
        return np.stack(rows, axis=0)

    def generate_dataset(
        self,
        compound_names: Sequence[str],
        n: int,
        rng: np.random.Generator,
        concentration_sampler: Optional[Callable[[int, np.random.Generator], np.ndarray]] = None,
        normalize: str = "max",
        with_noise: bool = True,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Generate ``n`` labelled simulated spectra.

        Returns ``(X, Y)`` with ``X`` of shape ``(n, axis.size)`` (normalized
        spectra) and ``Y`` of shape ``(n, len(compound_names))`` (the
        concentration labels, summing to one per row).

        The whole pipeline is vectorized through the response matrix, so the
        cost is one ``(n, k) @ (k, grid)`` matmul plus noise generation —
        "a sufficient number of simulated and labelled measurement series
        can be generated in minutes".
        """
        if n <= 0:
            raise ValueError("n must be positive")
        if not compound_names:
            raise ValueError("compound_names must not be empty")
        sampler = concentration_sampler or (
            lambda count, generator: sample_concentrations(
                len(compound_names), count, generator
            )
        )
        labels = np.asarray(sampler(n, rng), dtype=np.float64)
        if labels.shape != (n, len(compound_names)):
            raise ValueError(
                f"concentration sampler returned shape {labels.shape}, "
                f"expected {(n, len(compound_names))}"
            )
        response = self.response_matrix(compound_names)
        spectra = labels @ response
        spectra += self._ignition_gas_signal()[None, :]
        if with_noise:
            spectra += self._batch_baselines(n, rng)
            spectra = self._add_noise(spectra, rng)
        if normalize == "max":
            peak = np.max(spectra, axis=1, keepdims=True)
            np.clip(peak, 1e-12, None, out=peak)
            spectra = spectra / peak
        elif normalize == "area":
            area = np.sum(spectra, axis=1, keepdims=True) * self.axis.step
            np.clip(area, 1e-12, None, out=area)
            spectra = spectra / area
        elif normalize != "none":
            raise ValueError(f"normalize must be max/area/none, got {normalize!r}")
        return spectra, labels

    def generate_dataset_cached(
        self,
        compound_names: Sequence[str],
        n: int,
        seed: int,
        cache,
        normalize: str = "max",
        with_noise: bool = True,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Seed-driven :meth:`generate_dataset` through an
        :class:`~repro.compute.cache.ArtifactCache`.

        The cache key is the canonical hash of (characteristics, axis,
        compounds, n, seed, normalize, with_noise), so a repeat call with
        an identical config is a checksummed read instead of a re-render.
        """
        from repro.compute.datasets import generate_ms_dataset

        x, y, _ = generate_ms_dataset(
            self, compound_names, n, seed, cache=cache,
            normalize=normalize, with_noise=with_noise,
        )
        return x, y

    # -- internals -------------------------------------------------------------

    def _ignition_gas_signal(self) -> np.ndarray:
        ch = self.characteristics
        if ch.ignition_gas_intensity <= 0:
            return np.zeros(self.axis.size)
        artifact = LineSpectrum(
            np.array([ch.ignition_gas_mz]), np.array([ch.ignition_gas_intensity])
        )
        return render_line_spectrum(artifact, self.axis, ch)

    def _baseline(self, rng: np.random.Generator) -> np.ndarray:
        return self._batch_baselines(1, rng)[0]

    def _batch_baselines(self, n: int, rng: np.random.Generator) -> np.ndarray:
        ch = self.characteristics
        if ch.baseline_amplitude == 0:
            return np.zeros((n, self.axis.size))
        grid = self.axis.values()
        phases = rng.uniform(0.0, 2.0 * np.pi, size=(n, 1))
        slopes = rng.uniform(0.3, 1.0, size=(n, 1))
        wave = np.sin(2.0 * np.pi * grid[None, :] / ch.baseline_period + phases)
        return ch.baseline_amplitude * 0.5 * (wave + 1.0) * slopes

    def _add_noise(self, signal: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        ch = self.characteristics
        noise = rng.normal(0.0, ch.noise_sigma, size=signal.shape)
        shot = rng.normal(0.0, 1.0, size=signal.shape) * (
            ch.shot_noise_factor * np.sqrt(np.abs(signal))
        )
        return np.clip(signal + noise + shot, 0.0, None)

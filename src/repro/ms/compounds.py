"""Compound library: electron-ionization fragmentation line spectra.

The paper's Tool 1 starts from "the known ideal line spectra of the
substances contained in the mixture".  This module provides a library of
textbook 70 eV EI fragmentation patterns for the small gases relevant to
the paper's gas-mixing evaluation (the MMS prototype analyzed gas mixtures
produced by mass flow controllers, with N2/O2/Ar/CO2/H2O/CH4/... type
compounds).  Intensities are relative to the base peak (100).

The exact values are approximate library patterns; for the reproduction
only the positions and rough relative intensities matter — the toolchain is
agnostic to the specific compounds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Sequence, Tuple

import numpy as np

__all__ = ["Compound", "CompoundLibrary", "default_library", "DEFAULT_TASK_COMPOUNDS"]


@dataclass(frozen=True)
class Compound:
    """A chemical compound with its EI-MS line spectrum.

    ``lines`` maps m/z -> relative intensity (base peak = 100).
    """

    name: str
    formula: str
    molecular_weight: float
    lines: Tuple[Tuple[float, float], ...]

    def __post_init__(self):
        if not self.lines:
            raise ValueError(f"{self.name}: a compound needs at least one line")
        for mz, intensity in self.lines:
            if mz <= 0:
                raise ValueError(f"{self.name}: non-positive m/z {mz}")
            if intensity <= 0:
                raise ValueError(f"{self.name}: non-positive intensity {intensity}")

    @property
    def base_peak_mz(self) -> float:
        return max(self.lines, key=lambda line: line[1])[0]

    def normalized_lines(self) -> Tuple[Tuple[float, float], ...]:
        """Lines rescaled so the base peak has intensity 1.0."""
        peak = max(intensity for _, intensity in self.lines)
        return tuple((mz, intensity / peak) for mz, intensity in self.lines)

    def line_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        mz = np.array([m for m, _ in self.lines], dtype=np.float64)
        intensity = np.array([i for _, i in self.lines], dtype=np.float64)
        return mz, intensity / intensity.max()


class CompoundLibrary:
    """A named collection of compounds, looked up case-insensitively."""

    def __init__(self, compounds: Sequence[Compound] = ()):
        self._compounds: Dict[str, Compound] = {}
        for compound in compounds:
            self.add(compound)

    def add(self, compound: Compound) -> None:
        key = compound.name.lower()
        if key in self._compounds:
            raise ValueError(f"compound {compound.name!r} already registered")
        self._compounds[key] = compound

    def get(self, name: str) -> Compound:
        try:
            return self._compounds[name.lower()]
        except KeyError:
            raise KeyError(
                f"unknown compound {name!r}; known: {sorted(self.names)}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._compounds

    def __iter__(self) -> Iterator[Compound]:
        return iter(self._compounds.values())

    def __len__(self) -> int:
        return len(self._compounds)

    @property
    def names(self) -> List[str]:
        return [c.name for c in self._compounds.values()]

    def subset(self, names: Sequence[str]) -> "CompoundLibrary":
        return CompoundLibrary([self.get(name) for name in names])


def _c(name, formula, mw, lines) -> Compound:
    return Compound(name, formula, mw, tuple(lines))


# Approximate 70 eV EI patterns (m/z, relative intensity, base peak = 100).
_DEFAULT_COMPOUNDS = [
    _c("H2", "H2", 2.016, [(2, 100.0), (1, 2.1)]),
    _c("He", "He", 4.003, [(4, 100.0)]),
    _c("CH4", "CH4", 16.043, [(16, 100.0), (15, 85.8), (14, 15.6), (13, 7.8), (12, 2.4), (1, 3.1)]),
    _c("NH3", "NH3", 17.031, [(17, 100.0), (16, 80.0), (15, 7.5), (14, 2.0)]),
    _c("H2O", "H2O", 18.015, [(18, 100.0), (17, 21.2), (16, 0.9), (1, 0.5)]),
    _c("Ne", "Ne", 20.180, [(20, 100.0), (22, 9.9), (21, 0.3)]),
    _c("C2H2", "C2H2", 26.038, [(26, 100.0), (25, 20.1), (24, 5.6), (13, 2.2)]),
    _c("N2", "N2", 28.014, [(28, 100.0), (14, 7.2), (29, 0.7)]),
    _c("CO", "CO", 28.010, [(28, 100.0), (12, 4.7), (16, 1.7), (29, 1.2)]),
    _c("C2H4", "C2H4", 28.054, [(28, 100.0), (27, 62.3), (26, 52.9), (25, 7.8), (14, 2.1)]),
    _c("NO", "NO", 30.006, [(30, 100.0), (14, 7.5), (15, 2.4), (16, 1.5)]),
    _c("O2", "O2", 31.998, [(32, 100.0), (16, 11.4), (34, 0.4)]),
    _c("H2S", "H2S", 34.081, [(34, 100.0), (33, 42.0), (32, 44.4), (35, 2.5), (36, 4.2)]),
    _c("Ar", "Ar", 39.948, [(40, 100.0), (20, 14.6), (36, 0.3)]),
    _c("CO2", "CO2", 44.009, [(44, 100.0), (28, 9.8), (16, 9.6), (12, 8.7), (45, 1.2), (22, 1.9)]),
    _c("N2O", "N2O", 44.013, [(44, 100.0), (30, 31.1), (28, 10.8), (14, 12.9), (16, 5.0)]),
    _c("C3H8", "C3H8", 44.097, [(29, 100.0), (28, 59.1), (27, 37.9), (44, 27.4), (43, 22.3), (39, 16.2), (41, 13.4), (26, 8.4)]),
    _c("EtOH", "C2H6O", 46.069, [(31, 100.0), (45, 51.5), (46, 21.7), (27, 22.4), (29, 29.8), (43, 11.8)]),
]


def default_library() -> CompoundLibrary:
    """The built-in gas library (18 compounds)."""
    return CompoundLibrary(_DEFAULT_COMPOUNDS)


# The paper's measurement task mixes a fixed, pre-defined set of substances
# ("a network can only be used for a measurement task defined in advance").
# This 7-gas task, including O2 and H2O so the paper's humidity-confusion
# effect (Fig. 7) can be reproduced, is the default throughout the repo.
DEFAULT_TASK_COMPOUNDS = ("H2", "CH4", "N2", "O2", "Ar", "CO2", "H2O")

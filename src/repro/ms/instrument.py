"""Ground-truth virtual MMS device (substitute for the hardware prototype).

The paper evaluates its networks against *measured* spectra from a
miniaturized mass-spectrometer prototype whose behaviour the training-data
simulator only approximates.  We reproduce that setting with an explicit
ground-truth device model that has every non-ideality the paper names:

* Gaussian peak broadening, wider at higher m/z ("deformation of the peaks
  to a curve");
* m/z-dependent ("frequency-dependent") attenuation of sensitivity;
* slowly varying baseline drift;
* additive Gaussian plus signal-proportional (shot) noise;
* an ignition-gas artifact peak with no counterpart in the sample's line
  spectrum (visible in the paper's Fig. 4);
* air-humidity contamination — H2O enters every real measurement even
  though it is not a dosed compound (the paper's explanation for the O2
  errors in Fig. 7);
* configuration drift over time — the device the network is evaluated on
  is never exactly the device the simulator was characterized on
  ("changes in the configuration of the prototype").

Tool 2 (:mod:`repro.ms.characterization`) sees only measurements produced
by this class; it never reads the true parameters.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Mapping, Optional

import numpy as np

from repro.ms.compounds import CompoundLibrary
from repro.ms.line_spectra import LineSpectrum, ideal_mixture_spectrum
from repro.ms.spectrum import MassSpectrum, MzAxis

__all__ = [
    "InstrumentCharacteristics",
    "VirtualMassSpectrometer",
    "render_line_spectrum",
]


@dataclass(frozen=True)
class InstrumentCharacteristics:
    """Physical parameters of a (real or simulated) mass spectrometer."""

    # Peak shape: Gaussian sigma(mz) = peak_sigma_base + peak_sigma_slope*mz.
    peak_sigma_base: float = 0.055
    peak_sigma_slope: float = 0.0016
    # Sensitivity: gain * exp(-mz / attenuation_tau).
    gain: float = 1.0
    attenuation_tau: float = 70.0
    # Baseline drift: slow sinusoid across the m/z axis.
    baseline_amplitude: float = 0.003
    baseline_period: float = 21.0
    # Noise model.
    noise_sigma: float = 0.0015
    shot_noise_factor: float = 0.005
    # Mass-axis calibration offset (m/z units).
    mz_offset: float = 0.0
    # Ignition-gas artifact (the unexplained peak in the paper's Fig. 4).
    ignition_gas_mz: float = 4.0
    ignition_gas_intensity: float = 0.07

    def __post_init__(self):
        if self.peak_sigma_base <= 0:
            raise ValueError("peak_sigma_base must be positive")
        if self.attenuation_tau <= 0:
            raise ValueError("attenuation_tau must be positive")
        if self.gain <= 0:
            raise ValueError("gain must be positive")
        for label in ("baseline_amplitude", "noise_sigma", "shot_noise_factor"):
            if getattr(self, label) < 0:
                raise ValueError(f"{label} must be non-negative")

    def sigma_at(self, mz: np.ndarray) -> np.ndarray:
        return self.peak_sigma_base + self.peak_sigma_slope * np.asarray(mz)

    def sensitivity_at(self, mz: np.ndarray) -> np.ndarray:
        return self.gain * np.exp(-np.asarray(mz) / self.attenuation_tau)


def render_line_spectrum(
    lines: LineSpectrum,
    axis: MzAxis,
    characteristics: InstrumentCharacteristics,
    mz_shift: float = 0.0,
) -> np.ndarray:
    """Render a stick spectrum to a continuous intensity array.

    Each line becomes a Gaussian of width sigma(mz), scaled by the
    m/z-dependent sensitivity.  Lines outside the axis (after shifting)
    simply contribute their tails.
    """
    grid = axis.values()
    if len(lines) == 0:
        return np.zeros(axis.size)
    positions = lines.mz + characteristics.mz_offset + mz_shift
    sigmas = characteristics.sigma_at(positions)
    amplitudes = lines.intensities * characteristics.sensitivity_at(positions)
    # (n_lines, grid) Gaussian table; vectorized outer subtraction.
    z = (grid[None, :] - positions[:, None]) / sigmas[:, None]
    return (amplitudes[:, None] * np.exp(-0.5 * z * z)).sum(axis=0)


class VirtualMassSpectrometer:
    """The ground-truth MMS prototype.

    Parameters
    ----------
    characteristics:
        True physical parameters (Tool 2 must *estimate* these).
    axis:
        The configured m/z range and stepsize.
    library:
        Compound line-spectra library used to synthesize samples.
    contamination:
        Compound -> partial concentration present in every measurement in
        addition to the dosed sample (e.g. ``{"H2O": 0.02}`` for air
        humidity in the inlet).  Not visible to the toolchain.
    drift_per_hour:
        Fractional change of gain (and a proportional change of the mass
        offset) per simulated hour of operation; ``advance_time`` applies it.
    """

    def __init__(
        self,
        characteristics: InstrumentCharacteristics = InstrumentCharacteristics(),
        axis: MzAxis = MzAxis(),
        library: Optional[CompoundLibrary] = None,
        contamination: Optional[Mapping[str, float]] = None,
        drift_per_hour: float = 0.002,
        peak_jitter_sigma: float = 0.004,
        seed: int = 0,
    ):
        from repro.ms.compounds import default_library

        self.characteristics = characteristics
        self.axis = axis
        self.library = library if library is not None else default_library()
        self.contamination: Dict[str, float] = dict(contamination or {})
        for name, level in self.contamination.items():
            if level < 0:
                raise ValueError(f"negative contamination for {name}")
            self.library.get(name)  # validate early
        if drift_per_hour < 0:
            raise ValueError("drift_per_hour must be non-negative")
        self.drift_per_hour = float(drift_per_hour)
        self.peak_jitter_sigma = float(peak_jitter_sigma)
        self.hours_operated = 0.0
        self._rng = np.random.default_rng(seed)

    # -- operational state ---------------------------------------------------

    def advance_time(self, hours: float) -> None:
        """Simulate configuration drift over ``hours`` of operation.

        Gain decays slightly (detector ageing) and the mass-axis calibration
        wanders; this is the gap between "the device Tool 2 characterized"
        and "the device the network is later evaluated on".
        """
        if hours < 0:
            raise ValueError("hours must be non-negative")
        factor = (1.0 - self.drift_per_hour) ** hours
        # Ageing has a systematic trend (deterministic, scaling with time
        # and the drift rate) plus a random walk on top; a drift-free
        # instrument stays exactly frozen.
        walk = self.drift_per_hour * np.sqrt(max(hours, 0.0))
        offset_walk = 2.0 * walk + self._rng.normal(0.0, 0.5 * walk)
        tau_factor = max(1.0 - 3.0 * walk + self._rng.normal(0.0, 0.5 * walk), 0.5)
        width_factor = max(1.0 + 2.0 * walk + self._rng.normal(0.0, 0.3 * walk), 0.5)
        self.characteristics = replace(
            self.characteristics,
            gain=self.characteristics.gain * factor,
            mz_offset=self.characteristics.mz_offset + offset_walk,
            attenuation_tau=self.characteristics.attenuation_tau * tau_factor,
            peak_sigma_base=self.characteristics.peak_sigma_base * width_factor,
        )
        self.hours_operated += hours

    # -- measurement -----------------------------------------------------------

    def effective_sample(self, concentrations: Mapping[str, float]) -> Dict[str, float]:
        """The composition actually present in the chamber (with contamination)."""
        sample = {name: float(v) for name, v in concentrations.items()}
        for name, level in self.contamination.items():
            sample[name] = sample.get(name, 0.0) + level
        total = sum(sample.values())
        if total <= 0:
            raise ValueError("sample is empty")
        return {name: v / total for name, v in sample.items()}

    def measure(
        self,
        concentrations: Mapping[str, float],
        rng: Optional[np.random.Generator] = None,
    ) -> MassSpectrum:
        """Acquire one noisy spectrum of a dosed mixture."""
        rng = rng if rng is not None else self._rng
        sample = self.effective_sample(concentrations)
        lines = ideal_mixture_spectrum(sample, self.library)
        jitter = rng.normal(0.0, self.peak_jitter_sigma)
        signal = render_line_spectrum(lines, self.axis, self.characteristics, jitter)
        signal = signal + self._ignition_gas_signal(jitter)
        signal = signal + self._baseline(rng)
        noisy = self._add_noise(signal, rng)
        return MassSpectrum(
            self.axis,
            noisy,
            metadata={
                "dosed_concentrations": dict(concentrations),
                "true_sample": sample,
                "hours_operated": self.hours_operated,
            },
        )

    def measure_series(
        self,
        concentrations: Mapping[str, float],
        n: int,
        rng: Optional[np.random.Generator] = None,
    ) -> list:
        """A measurement series: repeated acquisitions of the same mixture."""
        if n <= 0:
            raise ValueError("n must be positive")
        rng = rng if rng is not None else self._rng
        return [self.measure(concentrations, rng) for _ in range(n)]

    # -- internals -------------------------------------------------------------

    def _ignition_gas_signal(self, jitter: float) -> np.ndarray:
        ch = self.characteristics
        if ch.ignition_gas_intensity <= 0:
            return np.zeros(self.axis.size)
        artifact = LineSpectrum(
            np.array([ch.ignition_gas_mz]), np.array([ch.ignition_gas_intensity])
        )
        return render_line_spectrum(artifact, self.axis, ch, jitter)

    def _baseline(self, rng: np.random.Generator) -> np.ndarray:
        ch = self.characteristics
        if ch.baseline_amplitude == 0:
            return np.zeros(self.axis.size)
        grid = self.axis.values()
        phase = rng.uniform(0.0, 2.0 * np.pi)
        slope = rng.uniform(0.3, 1.0)
        wave = np.sin(2.0 * np.pi * grid / ch.baseline_period + phase)
        return ch.baseline_amplitude * (0.5 * (wave + 1.0)) * slope

    def _add_noise(self, signal: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        ch = self.characteristics
        noise = rng.normal(0.0, ch.noise_sigma, size=signal.shape)
        shot = rng.normal(0.0, 1.0, size=signal.shape) * (
            ch.shot_noise_factor * np.sqrt(np.abs(signal))
        )
        return np.clip(signal + noise + shot, 0.0, None)

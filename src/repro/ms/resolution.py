"""Resolution changes on the m/z axis.

The MMS prototype allows both the stepsize and the range of the m/z axis to
be reconfigured; "to increase flexibility and to keep the number of
required networks small, it was determined that missing values would be
interpolated when the resolution was changed".  This module performs that
interpolation so one trained network serves several instrument
configurations.
"""

from __future__ import annotations

import numpy as np

from repro.ms.spectrum import MassSpectrum, MzAxis

__all__ = ["resample_spectrum", "resample_batch"]


def resample_spectrum(
    spectrum: MassSpectrum,
    target_axis: MzAxis,
    fill_value: float = 0.0,
) -> MassSpectrum:
    """Linearly interpolate a spectrum onto a different m/z axis.

    Points of the target axis outside the source range get ``fill_value``
    (no extrapolation: the detector recorded nothing there).
    """
    source = spectrum.mz
    target = target_axis.values()
    values = np.interp(target, source, spectrum.intensities,
                       left=fill_value, right=fill_value)
    metadata = dict(spectrum.metadata)
    metadata["resampled_from"] = (spectrum.axis.start, spectrum.axis.stop,
                                  spectrum.axis.step)
    return MassSpectrum(target_axis, values, metadata)


def resample_batch(
    spectra: np.ndarray,
    source_axis: MzAxis,
    target_axis: MzAxis,
    fill_value: float = 0.0,
) -> np.ndarray:
    """Vectorized resampling of an ``(n, grid)`` spectra matrix."""
    spectra = np.asarray(spectra, dtype=np.float64)
    if spectra.ndim != 2 or spectra.shape[1] != source_axis.size:
        raise ValueError(
            f"expected shape (n, {source_axis.size}), got {spectra.shape}"
        )
    source = source_axis.values()
    target = target_axis.values()
    out = np.empty((spectra.shape[0], target_axis.size))
    for i in range(spectra.shape[0]):
        out[i] = np.interp(target, source, spectra[i],
                           left=fill_value, right=fill_value)
    return out

"""Input-plausibility checking for deployed networks.

The paper notes that a trained network "can only be used for a measurement
task defined in advance and that in practical application measures are
required to check the plausibility of the input data ... in the case of
inputs containing unknown compounds or completely different substances, no
meaningful output can be expected."

This module implements that guard: a spectrum is plausible for a task if it
is explained well by non-negative combinations of the task compounds'
simulated responses (plus the known instrument artifacts).  Spectra with
large unexplained residual — unknown compounds, gross drift, garbage input
— are flagged before the ANN output is trusted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Union

import numpy as np
from scipy.optimize import nnls

from repro.ms.simulator import MassSpectrometerSimulator
from repro.ms.spectrum import MassSpectrum

__all__ = ["PlausibilityReport", "PlausibilityChecker"]


@dataclass(frozen=True)
class PlausibilityReport:
    """Outcome of checking one spectrum."""

    plausible: bool
    residual_fraction: float  # unexplained signal / total signal
    largest_unexplained_mz: float
    largest_unexplained_intensity: float
    fitted_concentrations: np.ndarray

    def __bool__(self) -> bool:
        return self.plausible


class PlausibilityChecker:
    """Flags spectra that the measurement task cannot explain."""

    def __init__(
        self,
        simulator: MassSpectrometerSimulator,
        task_compounds: Sequence[str],
        residual_threshold: float = 0.22,
        peak_threshold: float = 0.12,
    ):
        """``residual_threshold`` bounds the tolerated unexplained fraction
        of total signal; ``peak_threshold`` bounds any single unexplained
        peak (relative to the spectrum maximum)."""
        if not task_compounds:
            raise ValueError("task_compounds must be non-empty")
        if residual_threshold <= 0 or peak_threshold <= 0:
            raise ValueError("thresholds must be positive")
        self.simulator = simulator
        self.task_compounds = tuple(task_compounds)
        self.residual_threshold = float(residual_threshold)
        self.peak_threshold = float(peak_threshold)
        # Design matrix: task responses + the ignition-gas artifact + a
        # constant column absorbing baseline offset.
        responses = simulator.response_matrix(self.task_compounds)
        artifact = simulator._ignition_gas_signal()
        constant = np.ones(simulator.axis.size)
        self._design = np.vstack([responses, artifact[None, :], constant[None, :]])

    def check(self, spectrum: Union[MassSpectrum, np.ndarray]) -> PlausibilityReport:
        """Check one spectrum (raw intensities or a MassSpectrum)."""
        data = (
            spectrum.intensities
            if isinstance(spectrum, MassSpectrum)
            else np.asarray(spectrum, dtype=np.float64)
        )
        if data.shape != (self.simulator.axis.size,):
            raise ValueError(
                f"spectrum has shape {data.shape}, expected "
                f"({self.simulator.axis.size},)"
            )
        total = float(np.abs(data).sum())
        if total <= 0:
            return PlausibilityReport(
                plausible=False,
                residual_fraction=1.0,
                largest_unexplained_mz=float(self.simulator.axis.start),
                largest_unexplained_intensity=0.0,
                fitted_concentrations=np.zeros(len(self.task_compounds)),
            )
        # Scale-free fit: normalize to unit maximum like the ANN inputs.
        peak = float(np.max(np.abs(data)))
        normalized = data / peak
        coefficients, _ = nnls(self._design.T, np.clip(normalized, 0.0, None))
        residual = normalized - coefficients @ self._design
        positive_residual = np.clip(residual, 0.0, None)
        residual_fraction = float(
            positive_residual.sum() / max(np.abs(normalized).sum(), 1e-12)
        )
        worst_idx = int(np.argmax(positive_residual))
        worst_intensity = float(positive_residual[worst_idx])
        plausible = (
            residual_fraction <= self.residual_threshold
            and worst_intensity <= self.peak_threshold
        )
        return PlausibilityReport(
            plausible=plausible,
            residual_fraction=residual_fraction,
            largest_unexplained_mz=float(
                self.simulator.axis.values()[worst_idx]
            ),
            largest_unexplained_intensity=worst_intensity,
            fitted_concentrations=coefficients[: len(self.task_compounds)],
        )

    def check_batch(self, spectra: np.ndarray) -> list:
        """Check an ``(n, grid)`` batch; returns one report per row."""
        spectra = np.asarray(spectra, dtype=np.float64)
        if spectra.ndim != 2:
            raise ValueError("expected a 2-D batch of spectra")
        return [self.check(row) for row in spectra]

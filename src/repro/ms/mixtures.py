"""Mixture plans and the virtual gas-mixing rig.

"To evaluate the networks with measured data, we mixed gases with known
spectra by using mass flow controllers, allowing us to create mixtures with
controlled concentrations of compounds."  The rig here doses a mixture plan
through a :class:`~repro.ms.instrument.VirtualMassSpectrometer`, with a
small dosing error modelling MFC accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence, Tuple

import numpy as np

from repro.ms.instrument import VirtualMassSpectrometer
from repro.ms.spectrum import MassSpectrum

__all__ = [
    "MixturePlan",
    "MassFlowControllerRig",
    "sample_concentrations",
    "default_mixture_plan",
]


def sample_concentrations(
    n_compounds: int,
    n_samples: int,
    rng: np.random.Generator,
    alpha: float = 1.0,
) -> np.ndarray:
    """Dirichlet-distributed concentration vectors (rows sum to one).

    ``alpha=1`` samples uniformly on the simplex, covering "arbitrary
    concentrations" as Tool 1 requires; smaller alpha concentrates mass on
    sparse mixtures, larger alpha on balanced ones.
    """
    if n_compounds <= 0 or n_samples <= 0:
        raise ValueError("n_compounds and n_samples must be positive")
    if alpha <= 0:
        raise ValueError("alpha must be positive")
    return rng.dirichlet(np.full(n_compounds, alpha), size=n_samples)


@dataclass
class MixturePlan:
    """A named list of target mixtures for calibration or evaluation."""

    compounds: Tuple[str, ...]
    mixtures: List[Dict[str, float]] = field(default_factory=list)

    def __post_init__(self):
        self.compounds = tuple(self.compounds)
        for mixture in self.mixtures:
            self._validate(mixture)

    def _validate(self, mixture: Mapping[str, float]) -> None:
        for name, fraction in mixture.items():
            if name not in self.compounds:
                raise ValueError(
                    f"mixture references {name!r} outside the task "
                    f"compounds {self.compounds}"
                )
            if fraction < 0:
                raise ValueError(f"negative fraction for {name}")
        total = sum(mixture.values())
        if not np.isclose(total, 1.0, atol=1e-6):
            raise ValueError(f"mixture fractions sum to {total}, expected 1")

    def add(self, mixture: Mapping[str, float]) -> None:
        mixture = dict(mixture)
        self._validate(mixture)
        self.mixtures.append(mixture)

    def as_matrix(self) -> np.ndarray:
        """(n_mixtures, n_compounds) fraction matrix in compound order."""
        matrix = np.zeros((len(self.mixtures), len(self.compounds)))
        for i, mixture in enumerate(self.mixtures):
            for j, name in enumerate(self.compounds):
                matrix[i, j] = mixture.get(name, 0.0)
        return matrix

    def __len__(self) -> int:
        return len(self.mixtures)


def default_mixture_plan(
    compounds: Sequence[str],
    n_mixtures: int = 14,
    seed: int = 2021,
) -> MixturePlan:
    """A calibration plan like the paper's: 14 different mixtures.

    The plan mixes structured points (dominant-compound mixtures, so every
    compound appears strongly somewhere — needed for characterization) with
    random simplex points for coverage.
    """
    if n_mixtures < len(compounds):
        raise ValueError(
            f"need at least one mixture per compound "
            f"({len(compounds)}), got {n_mixtures}"
        )
    rng = np.random.default_rng(seed)
    plan = MixturePlan(tuple(compounds))
    k = len(compounds)
    # One dominant mixture per compound: 70 % target, rest spread evenly.
    for i, name in enumerate(compounds):
        mixture = {c: 0.3 / (k - 1) for c in compounds if c != name}
        mixture[name] = 0.7
        plan.add(mixture)
    # Fill up with random simplex points.
    for _ in range(n_mixtures - k):
        fractions = rng.dirichlet(np.ones(k))
        plan.add({name: float(f) for name, f in zip(compounds, fractions)})
    return plan


class MassFlowControllerRig:
    """Doses mixtures through mass flow controllers into the instrument.

    ``dosing_error`` is the relative accuracy of each MFC channel; the
    *label* recorded for a measurement is the setpoint, while the chamber
    receives the (slightly different) actual flows — exactly the situation
    of a real calibration campaign.
    """

    def __init__(
        self,
        instrument: VirtualMassSpectrometer,
        dosing_error: float = 0.005,
        seed: int = 7,
    ):
        if dosing_error < 0:
            raise ValueError("dosing_error must be non-negative")
        self.instrument = instrument
        self.dosing_error = float(dosing_error)
        self._rng = np.random.default_rng(seed)

    def dose(self, setpoint: Mapping[str, float]) -> Dict[str, float]:
        """Actual (normalized) fractions delivered for a setpoint."""
        names = list(setpoint)
        target = np.array([setpoint[name] for name in names], dtype=np.float64)
        if np.any(target < 0):
            raise ValueError("setpoint fractions must be non-negative")
        errors = self._rng.normal(1.0, self.dosing_error, size=target.shape)
        actual = np.clip(target * errors, 0.0, None)
        total = actual.sum()
        if total <= 0:
            raise ValueError("setpoint is empty")
        actual /= total
        return {name: float(v) for name, v in zip(names, actual)}

    def measure_mixture(
        self, setpoint: Mapping[str, float]
    ) -> Tuple[MassSpectrum, Dict[str, float]]:
        """Measure one sample; returns (spectrum, setpoint-label)."""
        actual = self.dose(setpoint)
        spectrum = self.instrument.measure(actual)
        return spectrum, dict(setpoint)

    def measure_series(
        self, setpoint: Mapping[str, float], n: int
    ) -> List[Tuple[MassSpectrum, Dict[str, float]]]:
        """A measurement series of ``n`` repeats of one mixture."""
        if n <= 0:
            raise ValueError("n must be positive")
        return [self.measure_mixture(setpoint) for _ in range(n)]

    def measure_plan(
        self, plan: MixturePlan, samples_per_mixture: int
    ) -> List[Tuple[MassSpectrum, Dict[str, float]]]:
        """Measure every mixture of a plan ``samples_per_mixture`` times."""
        measurements = []
        for mixture in plan.mixtures:
            measurements.extend(self.measure_series(mixture, samples_per_mixture))
        return measurements

"""Provenance tracking over stored artifacts.

"In addition to the actual data, all objects stored in the database also
store metadata that make it possible to trace the basis on which the
respective data was generated."  Every artifact records its kind, a
metadata payload and the ids of its parent artifacts; lineage queries walk
the resulting DAG in either direction.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.db.document_store import DocumentStore

__all__ = ["ProvenanceTracker"]

_COLLECTION = "artifacts"


class ProvenanceTracker:
    """Records artifacts and their derivation graph in a DocumentStore."""

    def __init__(self, store: Optional[DocumentStore] = None):
        self.store = store if store is not None else DocumentStore()
        self._artifacts = self.store.collection(_COLLECTION)

    def record(
        self,
        kind: str,
        metadata: Optional[dict] = None,
        parents: Sequence[int] = (),
    ) -> int:
        """Store a new artifact; returns its id.

        ``kind`` is a free-form label ("measurement_series", "simulator",
        "dataset", "network", ...); ``parents`` are ids of the artifacts
        this one was derived from and must already exist.
        """
        if not kind:
            raise ValueError("kind must be non-empty")
        parent_ids = [int(p) for p in parents]
        for parent in parent_ids:
            if self._artifacts.get(parent) is None:
                raise KeyError(f"parent artifact {parent} does not exist")
        return self._artifacts.insert(
            {"kind": kind, "metadata": dict(metadata or {}), "parents": parent_ids}
        )

    def get(self, artifact_id: int) -> dict:
        doc = self._artifacts.get(artifact_id)
        if doc is None:
            raise KeyError(f"artifact {artifact_id} does not exist")
        return doc

    def find(self, kind: Optional[str] = None, **metadata_query) -> List[dict]:
        """Artifacts by kind and/or metadata equality filters."""
        query: Dict[str, object] = {}
        if kind is not None:
            query["kind"] = kind
        for key, value in metadata_query.items():
            query[f"metadata.{key}"] = value
        return self._artifacts.find(query)

    def counts_by_kind(self) -> Dict[str, int]:
        """How many artifacts of each kind are recorded.

        Useful for auditing reliability events ("checkpoint", "resume")
        alongside data artifacts after an unattended run.
        """
        counts: Dict[str, int] = {}
        for doc in self._artifacts.find():
            counts[doc["kind"]] = counts.get(doc["kind"], 0) + 1
        return counts

    # -- graph walks -------------------------------------------------------

    def ancestors(self, artifact_id: int) -> List[int]:
        """All transitive parents, deduplicated, nearest-first."""
        seen: List[int] = []
        frontier = list(self.get(artifact_id)["parents"])
        while frontier:
            current = frontier.pop(0)
            if current in seen:
                continue
            seen.append(current)
            frontier.extend(self.get(current)["parents"])
        return seen

    def descendants(self, artifact_id: int) -> List[int]:
        """All artifacts that transitively derive from this one."""
        self.get(artifact_id)  # existence check
        children: Dict[int, List[int]] = {}
        for doc in self._artifacts.find():
            for parent in doc["parents"]:
                children.setdefault(parent, []).append(doc["_id"])
        seen: List[int] = []
        frontier = list(children.get(artifact_id, []))
        while frontier:
            current = frontier.pop(0)
            if current in seen:
                continue
            seen.append(current)
            frontier.extend(children.get(current, []))
        return seen

    def lineage_report(self, artifact_id: int) -> str:
        """Human-readable ancestry, e.g. for audit of a trained network."""
        lines = [self._describe(artifact_id)]
        for ancestor in self.ancestors(artifact_id):
            lines.append("  <- " + self._describe(ancestor))
        return "\n".join(lines)

    def _describe(self, artifact_id: int) -> str:
        doc = self.get(artifact_id)
        return f"[{artifact_id}] {doc['kind']} {doc['metadata']}"

"""A small embedded document store with Mongo-style queries.

Documents are JSON-serializable dicts.  Each insert assigns a unique
``_id``.  Queries support dotted paths and the operators ``$eq``, ``$ne``,
``$gt``, ``$gte``, ``$lt``, ``$lte``, ``$in`` and ``$exists``; a bare value
means ``$eq``.

The store is in-memory with optional durable persistence.  A store opened
with a ``path`` is *journaled*: every mutation is appended to a
checksummed write-ahead journal (``<path>.journal``) before the call
returns, and :meth:`DocumentStore.save`/:meth:`DocumentStore.compact`
publish a checksummed snapshot atomically (fsync + rename) and reset the
journal.  Reopening after a crash replays every committed journal record
on top of the last snapshot and discards the torn tail of an interrupted
append — at most the one in-flight record is lost.  Legacy plain-JSON
snapshot files remain readable.
"""

from __future__ import annotations

import copy
import json
import os
from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional, Union

from repro.observability.runtime import counter as _counter
from repro.observability.runtime import histogram as _histogram
from repro.storage.integrity import atomic_write_bytes, is_envelope, unwrap, wrap
from repro.storage.journal import Journal

__all__ = ["Collection", "DocumentStore"]

_OPERATORS = {"$eq", "$ne", "$gt", "$gte", "$lt", "$lte", "$in", "$exists"}
_MISSING = object()


def _resolve_path(document: Mapping, path: str):
    """Follow a dotted path; returns _MISSING if any hop is absent."""
    value: Any = document
    for part in path.split("."):
        if isinstance(value, Mapping) and part in value:
            value = value[part]
        else:
            return _MISSING
    return value


def _match_condition(value, condition) -> bool:
    if isinstance(condition, Mapping) and any(k in _OPERATORS for k in condition):
        for op, operand in condition.items():
            if op == "$exists":
                if bool(operand) != (value is not _MISSING):
                    return False
                continue
            if value is _MISSING:
                return False
            if op == "$eq" and not value == operand:
                return False
            if op == "$ne" and not value != operand:
                return False
            if op == "$in" and value not in operand:
                return False
            try:
                if op == "$gt" and not value > operand:
                    return False
                if op == "$gte" and not value >= operand:
                    return False
                if op == "$lt" and not value < operand:
                    return False
                if op == "$lte" and not value <= operand:
                    return False
            except TypeError:
                return False
        return True
    return value is not _MISSING and value == condition


def _matches(document: Mapping, query: Mapping) -> bool:
    return all(
        _match_condition(_resolve_path(document, path), condition)
        for path, condition in query.items()
    )


class Collection:
    """A named set of documents."""

    def __init__(self, name: str):
        self.name = name
        self._documents: Dict[int, Dict] = {}
        self._next_id = 1
        # Set by a journaling DocumentStore; receives one WAL record per
        # mutation.  Standalone collections stay journal-free.
        self._recorder: Optional[Callable[[dict], None]] = None

    def _emit(self, record: dict) -> None:
        if self._recorder is not None:
            self._recorder(record)

    # -- writes ---------------------------------------------------------------

    def insert(self, document: Mapping) -> int:
        """Insert a deep copy of ``document``; returns the assigned ``_id``.

        Deep-copying isolates the store from later mutations of nested
        values in the caller's dict (and vice versa) — a shallow copy would
        let nested mutations silently corrupt stored provenance.
        """
        if not isinstance(document, Mapping):
            raise TypeError(f"documents must be mappings, got {type(document).__name__}")
        doc = copy.deepcopy(dict(document))
        if "_id" in doc:
            raise ValueError("documents must not carry a pre-set _id")
        doc_id = self._next_id
        self._next_id += 1
        doc["_id"] = doc_id
        self._documents[doc_id] = doc
        self._emit({"op": "insert", "doc": copy.deepcopy(doc)})
        return doc_id

    def insert_many(self, documents) -> List[int]:
        return [self.insert(doc) for doc in documents]

    def update_one(self, query: Mapping, changes: Mapping) -> bool:
        """Merge ``changes`` into the first matching document."""
        doc = self.find_one(query)
        if doc is None:
            return False
        stored = self._documents[doc["_id"]]
        for key, value in changes.items():
            if key == "_id":
                raise ValueError("_id cannot be updated")
            stored[key] = copy.deepcopy(value)
        # Journal the resolved id, not the query: replay must not depend
        # on match order against documents inserted after this call.
        self._emit(
            {"op": "update", "id": doc["_id"],
             "changes": copy.deepcopy(dict(changes))}
        )
        return True

    def delete(self, query: Mapping) -> int:
        """Delete all matching documents; returns the count removed."""
        ids = [doc["_id"] for doc in self.find(query)]
        for doc_id in ids:
            del self._documents[doc_id]
        if ids:
            self._emit({"op": "delete", "ids": list(ids)})
        return len(ids)

    # -- journal replay (bypasses journaling, applies committed records) ------

    def _apply_insert(self, doc: dict) -> None:
        doc = copy.deepcopy(dict(doc))
        doc_id = int(doc["_id"])
        self._documents[doc_id] = doc
        self._next_id = max(self._next_id, doc_id + 1)

    def _apply_update(self, doc_id: int, changes: Mapping) -> None:
        stored = self._documents.get(int(doc_id))
        if stored is None:
            return
        for key, value in changes.items():
            stored[key] = copy.deepcopy(value)

    def _apply_delete(self, ids) -> None:
        for doc_id in ids:
            self._documents.pop(int(doc_id), None)

    # -- reads -----------------------------------------------------------------

    def get(self, doc_id: int) -> Optional[Dict]:
        """A deep copy of the stored document (reads never alias the store)."""
        doc = self._documents.get(doc_id)
        return copy.deepcopy(doc) if doc is not None else None

    def find(self, query: Optional[Mapping] = None) -> List[Dict]:
        query = query or {}
        return [
            copy.deepcopy(d) for d in self._documents.values() if _matches(d, query)
        ]

    def find_one(self, query: Optional[Mapping] = None) -> Optional[Dict]:
        query = query or {}
        for doc in self._documents.values():
            if _matches(doc, query):
                return copy.deepcopy(doc)
        return None

    def count(self, query: Optional[Mapping] = None) -> int:
        if not query:
            return len(self._documents)
        return sum(1 for d in self._documents.values() if _matches(d, query))

    def distinct(self, path: str) -> List:
        seen = []
        for doc in self._documents.values():
            value = _resolve_path(doc, path)
            if value is not _MISSING and value not in seen:
                seen.append(value)
        return seen

    def __len__(self) -> int:
        return len(self._documents)

    def __iter__(self) -> Iterator[Dict]:
        return iter(self.find())

    # -- (de)serialization -------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "next_id": self._next_id,
            "documents": copy.deepcopy(list(self._documents.values())),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Collection":
        collection = cls(data["name"])
        collection._next_id = data["next_id"]
        for doc in data["documents"]:
            collection._documents[doc["_id"]] = copy.deepcopy(dict(doc))
        return collection


class DocumentStore:
    """A set of named collections, optionally persisted durably.

    With a ``path``, mutations are write-ahead journaled (see the module
    docstring) and the constructor recovers automatically: snapshot, then
    committed journal records, torn tail discarded.  ``fsync=False``
    keeps the journal and snapshots atomic but skips the durability
    barrier (useful for tests on slow filesystems).
    """

    def __init__(
        self,
        path: Optional[Union[str, os.PathLike]] = None,
        fsync: bool = True,
    ):
        self.path = os.fspath(path) if path is not None else None
        self.fsync = bool(fsync)
        self._collections: Dict[str, Collection] = {}
        self._journal: Optional[Journal] = None
        self._replaying = False
        self.last_recovery: Dict[str, int] = {
            "replayed": 0, "discarded_records": 0, "discarded_bytes": 0,
        }
        if self.path is not None:
            self._journal = Journal(self._journal_path(self.path), fsync=fsync)
            if os.path.exists(self.path) or self._journal.exists():
                self.load()

    @staticmethod
    def _journal_path(path: str) -> str:
        return path + ".journal"

    # -- journaling ----------------------------------------------------------

    def _record(self, collection_name: str, record: dict) -> None:
        if self._journal is None or self._replaying:
            return
        self._journal.append({"c": collection_name, **record})

    def _attach(self, collection: Collection) -> Collection:
        name = collection.name
        collection._recorder = lambda record: self._record(name, record)
        return collection

    def collection(self, name: str) -> Collection:
        """Get (or lazily create) a collection."""
        if not name:
            raise ValueError("collection name must be non-empty")
        if name not in self._collections:
            self._collections[name] = self._attach(Collection(name))
        return self._collections[name]

    def drop(self, name: str) -> None:
        if self._collections.pop(name, None) is not None:
            self._record(name, {"op": "drop"})

    @property
    def collection_names(self) -> List[str]:
        return sorted(self._collections)

    # -- durable persistence -------------------------------------------------

    def save(self, path: Optional[Union[str, os.PathLike]] = None) -> str:
        """Publish a checksummed snapshot atomically and reset the journal.

        Replaces the old truncate-in-place write: the snapshot is staged,
        fsynced and renamed into place, so a crash mid-save leaves the
        previous snapshot (plus the journal) fully intact.
        """
        target = os.fspath(path) if path is not None else self.path
        if target is None:
            raise ValueError("no path given and the store was created in-memory")
        payload = {
            name: collection.to_dict()
            for name, collection in self._collections.items()
        }
        data = json.dumps(payload, ensure_ascii=False, default=float).encode(
            "utf-8"
        )
        with _histogram(
            "store_snapshot_save_seconds",
            "document-store snapshot publish time (write + fsync + rename)",
        ).time():
            atomic_write_bytes(target, wrap(data), fsync=self.fsync)
        _counter(
            "store_snapshot_saves_total", "snapshots published atomically"
        ).inc()
        if self.path != target or self._journal is None:
            self.path = target
            self._journal = Journal(self._journal_path(target), fsync=self.fsync)
        # Every journaled mutation is now in the snapshot; an empty journal
        # must only be dropped *after* the snapshot is durably published.
        self._journal.reset()
        return target

    def compact(self) -> str:
        """Fold the journal into a fresh snapshot (alias of :meth:`save`)."""
        return self.save()

    def load(self, path: Optional[Union[str, os.PathLike]] = None) -> None:
        """Load the snapshot, then replay committed journal records."""
        source = os.fspath(path) if path is not None else self.path
        if source is None:
            raise ValueError("no path given and the store was created in-memory")
        self._collections = {}
        if os.path.exists(source):
            self._load_snapshot(source)
        stats = {"replayed": 0, "discarded_records": 0, "discarded_bytes": 0}
        journal = (
            self._journal
            if self._journal is not None and self.path == source
            else Journal(self._journal_path(source), fsync=self.fsync)
        )
        if journal.exists():
            records, stats = journal.replay()
            self._replaying = True
            try:
                for record in records:
                    self._apply(record)
            finally:
                self._replaying = False
        self.last_recovery = stats
        _counter(
            "store_replayed_records_total",
            "committed WAL records re-applied on load",
        ).inc(stats["replayed"])
        if stats["discarded_records"]:
            _counter(
                "store_discarded_records_total",
                "torn WAL tails discarded on load",
            ).inc(stats["discarded_records"])

    def recover(self) -> Dict[str, int]:
        """Reload from disk; returns replay stats.

        ``{"replayed": n, "discarded_records": k, "discarded_bytes": b}``
        — ``k`` is at most 1: only the record in flight when the process
        died can be torn.
        """
        self.load()
        return dict(self.last_recovery)

    def _load_snapshot(self, source: str) -> None:
        with open(source, "rb") as handle:
            blob = handle.read()
        if is_envelope(blob):
            text = unwrap(blob, source=source).decode("utf-8")
        else:  # legacy plain-JSON snapshot from before the envelope format
            text = blob.decode("utf-8")
        if not text.strip():
            # An empty file (e.g. a freshly created temp file) is a new store.
            return
        payload = json.loads(text)
        self._collections = {
            name: self._attach(Collection.from_dict(data))
            for name, data in payload.items()
        }

    def _apply(self, record: dict) -> None:
        op = record.get("op")
        name = record.get("c")
        if not name:
            return
        if op == "drop":
            self._collections.pop(name, None)
            return
        collection = self.collection(name)
        if op == "insert":
            collection._apply_insert(record["doc"])
        elif op == "update":
            collection._apply_update(record["id"], record["changes"])
        elif op == "delete":
            collection._apply_delete(record["ids"])
        # Unknown ops from a newer writer are skipped, not fatal.

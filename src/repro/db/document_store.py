"""A small embedded document store with Mongo-style queries.

Documents are JSON-serializable dicts.  Each insert assigns a unique
``_id``.  Queries support dotted paths and the operators ``$eq``, ``$ne``,
``$gt``, ``$gte``, ``$lt``, ``$lte``, ``$in`` and ``$exists``; a bare value
means ``$eq``.  The store is in-memory with optional JSON-file persistence.
"""

from __future__ import annotations

import copy
import json
import os
from typing import Any, Dict, Iterator, List, Mapping, Optional, Union

__all__ = ["Collection", "DocumentStore"]

_OPERATORS = {"$eq", "$ne", "$gt", "$gte", "$lt", "$lte", "$in", "$exists"}
_MISSING = object()


def _resolve_path(document: Mapping, path: str):
    """Follow a dotted path; returns _MISSING if any hop is absent."""
    value: Any = document
    for part in path.split("."):
        if isinstance(value, Mapping) and part in value:
            value = value[part]
        else:
            return _MISSING
    return value


def _match_condition(value, condition) -> bool:
    if isinstance(condition, Mapping) and any(k in _OPERATORS for k in condition):
        for op, operand in condition.items():
            if op == "$exists":
                if bool(operand) != (value is not _MISSING):
                    return False
                continue
            if value is _MISSING:
                return False
            if op == "$eq" and not value == operand:
                return False
            if op == "$ne" and not value != operand:
                return False
            if op == "$in" and value not in operand:
                return False
            try:
                if op == "$gt" and not value > operand:
                    return False
                if op == "$gte" and not value >= operand:
                    return False
                if op == "$lt" and not value < operand:
                    return False
                if op == "$lte" and not value <= operand:
                    return False
            except TypeError:
                return False
        return True
    return value is not _MISSING and value == condition


def _matches(document: Mapping, query: Mapping) -> bool:
    return all(
        _match_condition(_resolve_path(document, path), condition)
        for path, condition in query.items()
    )


class Collection:
    """A named set of documents."""

    def __init__(self, name: str):
        self.name = name
        self._documents: Dict[int, Dict] = {}
        self._next_id = 1

    # -- writes ---------------------------------------------------------------

    def insert(self, document: Mapping) -> int:
        """Insert a deep copy of ``document``; returns the assigned ``_id``.

        Deep-copying isolates the store from later mutations of nested
        values in the caller's dict (and vice versa) — a shallow copy would
        let nested mutations silently corrupt stored provenance.
        """
        if not isinstance(document, Mapping):
            raise TypeError(f"documents must be mappings, got {type(document).__name__}")
        doc = copy.deepcopy(dict(document))
        if "_id" in doc:
            raise ValueError("documents must not carry a pre-set _id")
        doc_id = self._next_id
        self._next_id += 1
        doc["_id"] = doc_id
        self._documents[doc_id] = doc
        return doc_id

    def insert_many(self, documents) -> List[int]:
        return [self.insert(doc) for doc in documents]

    def update_one(self, query: Mapping, changes: Mapping) -> bool:
        """Merge ``changes`` into the first matching document."""
        doc = self.find_one(query)
        if doc is None:
            return False
        stored = self._documents[doc["_id"]]
        for key, value in changes.items():
            if key == "_id":
                raise ValueError("_id cannot be updated")
            stored[key] = copy.deepcopy(value)
        return True

    def delete(self, query: Mapping) -> int:
        """Delete all matching documents; returns the count removed."""
        ids = [doc["_id"] for doc in self.find(query)]
        for doc_id in ids:
            del self._documents[doc_id]
        return len(ids)

    # -- reads -----------------------------------------------------------------

    def get(self, doc_id: int) -> Optional[Dict]:
        """A deep copy of the stored document (reads never alias the store)."""
        doc = self._documents.get(doc_id)
        return copy.deepcopy(doc) if doc is not None else None

    def find(self, query: Optional[Mapping] = None) -> List[Dict]:
        query = query or {}
        return [
            copy.deepcopy(d) for d in self._documents.values() if _matches(d, query)
        ]

    def find_one(self, query: Optional[Mapping] = None) -> Optional[Dict]:
        query = query or {}
        for doc in self._documents.values():
            if _matches(doc, query):
                return copy.deepcopy(doc)
        return None

    def count(self, query: Optional[Mapping] = None) -> int:
        if not query:
            return len(self._documents)
        return sum(1 for d in self._documents.values() if _matches(d, query))

    def distinct(self, path: str) -> List:
        seen = []
        for doc in self._documents.values():
            value = _resolve_path(doc, path)
            if value is not _MISSING and value not in seen:
                seen.append(value)
        return seen

    def __len__(self) -> int:
        return len(self._documents)

    def __iter__(self) -> Iterator[Dict]:
        return iter(self.find())

    # -- (de)serialization -------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "next_id": self._next_id,
            "documents": copy.deepcopy(list(self._documents.values())),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Collection":
        collection = cls(data["name"])
        collection._next_id = data["next_id"]
        for doc in data["documents"]:
            collection._documents[doc["_id"]] = copy.deepcopy(dict(doc))
        return collection


class DocumentStore:
    """A set of named collections, optionally persisted to one JSON file."""

    def __init__(self, path: Optional[Union[str, os.PathLike]] = None):
        self.path = os.fspath(path) if path is not None else None
        self._collections: Dict[str, Collection] = {}
        if self.path and os.path.exists(self.path):
            self.load()

    def collection(self, name: str) -> Collection:
        """Get (or lazily create) a collection."""
        if not name:
            raise ValueError("collection name must be non-empty")
        if name not in self._collections:
            self._collections[name] = Collection(name)
        return self._collections[name]

    def drop(self, name: str) -> None:
        self._collections.pop(name, None)

    @property
    def collection_names(self) -> List[str]:
        return sorted(self._collections)

    def save(self, path: Optional[Union[str, os.PathLike]] = None) -> str:
        target = os.fspath(path) if path is not None else self.path
        if target is None:
            raise ValueError("no path given and the store was created in-memory")
        payload = {
            name: collection.to_dict()
            for name, collection in self._collections.items()
        }
        with open(target, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        self.path = target
        return target

    def load(self, path: Optional[Union[str, os.PathLike]] = None) -> None:
        source = os.fspath(path) if path is not None else self.path
        if source is None:
            raise ValueError("no path given and the store was created in-memory")
        with open(source, "r", encoding="utf-8") as handle:
            text = handle.read()
        if not text.strip():
            # An empty file (e.g. a freshly created temp file) is a new store.
            self._collections = {}
            return
        payload = json.loads(text)
        self._collections = {
            name: Collection.from_dict(data) for name, data in payload.items()
        }

"""Embedded document store + provenance tracking (MongoDB substitute).

The paper stores every artifact of the toolchain — measured samples,
simulated samples, trained networks — in a MongoDB instance, "to
comprehend which measurements have been used to train the simulators and
which data has been used to train a specific network".  This package
provides a dependency-free equivalent: a JSON document store with
Mongo-style queries (:mod:`repro.db.document_store`) and a provenance graph
over stored artifacts (:mod:`repro.db.provenance`).
"""

from repro.db.document_store import Collection, DocumentStore
from repro.db.provenance import ProvenanceTracker

__all__ = ["Collection", "DocumentStore", "ProvenanceTracker"]

"""Closed-loop acquisition: pick the measurement that shrinks doubt most.

The adaptive-reaction-monitoring workload: given a pool of candidate
measurements (simulated spectra the instrument *could* take next), the
planner ranks them by posterior interval width, acquires labels for the
widest — the rows the ensemble understands least — fine-tunes every
member on everything acquired so far, and recalibrates the conformal
quantile so the coverage promise tracks the updated model.  Each round
therefore spends measurement budget exactly where the abstention gate is
currently refusing to answer.

The planner never mutates the models it is given: members are cloned at
construction (:func:`~repro.nn.serialization.clone_model`), so a serving
ensemble can seed a campaign while it keeps serving.  Everything is
deterministic for a fixed ``seed`` — ranking ties break by pool index,
fine-tune shuffles derive from the campaign seed and round number.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.uncertainty.conformal import ConformalCalibrator
from repro.uncertainty.predictors import EnsemblePredictor, MCDropoutPredictor

__all__ = ["AcquisitionPlanner", "CampaignRound", "CampaignReport"]


@dataclass(frozen=True)
class CampaignRound:
    """What one acquisition round bought."""

    round: int
    acquired: tuple  # pool indices labelled this round
    mean_width: float  # mean interval width over the pool after refit
    q_hat: float
    coverage: Optional[float] = None  # on the eval set, if one was given


@dataclass
class CampaignReport:
    """The width-shrinkage trajectory of a whole campaign."""

    initial_width: float
    rounds: List[CampaignRound] = field(default_factory=list)

    @property
    def final_width(self) -> float:
        return self.rounds[-1].mean_width if self.rounds else self.initial_width

    @property
    def shrinkage(self) -> float:
        """Fraction of initial pool width removed by the campaign."""
        if self.initial_width <= 0:
            return 0.0
        return 1.0 - self.final_width / self.initial_width

    def to_payload(self) -> dict:
        return {
            "initial_width": self.initial_width,
            "final_width": self.final_width,
            "shrinkage": self.shrinkage,
            "rounds": [
                {
                    "round": r.round,
                    "acquired": list(r.acquired),
                    "mean_width": r.mean_width,
                    "q_hat": r.q_hat,
                    "coverage": r.coverage,
                }
                for r in self.rounds
            ],
        }


class AcquisitionPlanner:
    """Width-greedy active acquisition over a candidate pool."""

    def __init__(
        self,
        predictor,
        calibrator: ConformalCalibrator,
        fine_tune_epochs: int = 4,
        fine_tune_lr: float = 0.002,
        batch_size: int = 32,
        seed: int = 0,
    ):
        if fine_tune_epochs < 1:
            raise ValueError("fine_tune_epochs must be >= 1")
        self.calibrator = calibrator
        self.fine_tune_epochs = int(fine_tune_epochs)
        self.fine_tune_lr = float(fine_tune_lr)
        self.batch_size = int(batch_size)
        self.seed = int(seed)
        self.predictor = self._clone_predictor(predictor)

    def _clone_predictor(self, predictor):
        from repro.nn.serialization import clone_model

        if isinstance(predictor, EnsemblePredictor):
            return EnsemblePredictor(
                [
                    clone_model(member, seed=self.seed + i)
                    for i, member in enumerate(predictor.members)
                ]
            )
        if isinstance(predictor, MCDropoutPredictor):
            return MCDropoutPredictor(
                clone_model(predictor.model, seed=self.seed),
                passes=predictor.passes,
                seed=predictor.seed,
            )
        raise TypeError(
            "predictor must be an EnsemblePredictor or MCDropoutPredictor, "
            f"got {type(predictor).__name__}"
        )

    def _models(self) -> List:
        if isinstance(self.predictor, EnsemblePredictor):
            return list(self.predictor.members)
        return [self.predictor.model]

    # -- ranking -------------------------------------------------------------

    def score(self, pool_x: np.ndarray) -> np.ndarray:
        """Per-row acquisition score: interval width (raw spread if
        the calibrator is not usable yet — the *ordering* survives)."""
        pool_x = np.asarray(pool_x, dtype=np.float64)
        prediction = self.predictor.predict(pool_x)
        if self.calibrator.is_calibrated and np.isfinite(self.calibrator.q_hat):
            return self.calibrator.width(prediction)
        return np.mean(prediction.std, axis=1)

    def select(
        self,
        pool_x: np.ndarray,
        k: int = 1,
        exclude: Sequence[int] = (),
    ) -> List[int]:
        """Indices of the ``k`` widest pool rows, widest first.

        Ties break by pool index so selection is deterministic; rows in
        ``exclude`` (already acquired) are never re-picked.
        """
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        scores = self.score(pool_x)
        excluded = set(int(i) for i in exclude)
        order = np.argsort(-scores, kind="stable")
        picked = [int(i) for i in order if int(i) not in excluded]
        return picked[:k]

    # -- the loop ------------------------------------------------------------

    def run_campaign(
        self,
        pool_x: np.ndarray,
        oracle: Callable[[np.ndarray], np.ndarray],
        calibration_x: np.ndarray,
        calibration_y: np.ndarray,
        rounds: int = 3,
        per_round: int = 8,
        eval_data=None,
    ) -> CampaignReport:
        """Acquire → fine-tune → recalibrate, ``rounds`` times.

        ``oracle(rows)`` returns the true labels for acquired pool rows
        (the simulator, or a real instrument).  The calibrator is refit
        on the held-out ``calibration_*`` split after every round — the
        conformal guarantee only holds for the model that was calibrated,
        so a fine-tuned model must never reuse a stale quantile.
        ``eval_data=(x, y)`` additionally tracks coverage per round.
        """
        if rounds < 1:
            raise ValueError(f"rounds must be >= 1, got {rounds}")
        pool_x = np.asarray(pool_x, dtype=np.float64)
        calibration_x = np.asarray(calibration_x, dtype=np.float64)
        calibration_y = np.asarray(calibration_y, dtype=np.float64)

        self._recalibrate(calibration_x, calibration_y)
        report = CampaignReport(
            initial_width=float(np.mean(self.score(pool_x)))
        )
        acquired: List[int] = []
        acquired_x: List[np.ndarray] = []
        acquired_y: List[np.ndarray] = []
        for round_index in range(rounds):
            picked = self.select(pool_x, k=per_round, exclude=acquired)
            if not picked:
                break
            rows = pool_x[picked]
            labels = np.asarray(oracle(rows), dtype=np.float64)
            if labels.shape[0] != rows.shape[0]:
                raise ValueError(
                    f"oracle returned {labels.shape[0]} labels for "
                    f"{rows.shape[0]} rows"
                )
            acquired.extend(picked)
            acquired_x.append(rows)
            acquired_y.append(labels)
            self._fine_tune(
                np.concatenate(acquired_x), np.concatenate(acquired_y),
                round_index,
            )
            self._recalibrate(calibration_x, calibration_y)
            coverage = None
            if eval_data is not None:
                eval_x, eval_y = eval_data
                coverage = self.calibrator.coverage(
                    self.predictor.predict(np.asarray(eval_x, np.float64)),
                    eval_y,
                )
            report.rounds.append(
                CampaignRound(
                    round=round_index,
                    acquired=tuple(picked),
                    mean_width=float(np.mean(self.score(pool_x))),
                    q_hat=float(self.calibrator.q_hat),
                    coverage=coverage,
                )
            )
        return report

    def _fine_tune(self, x: np.ndarray, y: np.ndarray, round_index: int) -> None:
        from repro.nn.optimizers import Adam

        for i, model in enumerate(self._models()):
            model.compile(Adam(self.fine_tune_lr), "mae")
            model.fit(
                x,
                y,
                epochs=self.fine_tune_epochs,
                batch_size=min(self.batch_size, len(x)),
                seed=self.seed + 1000 * round_index + i,
                verbose=False,
            )

    def _recalibrate(self, calibration_x: np.ndarray, calibration_y: np.ndarray):
        self.calibrator.calibrate(
            self.predictor.predict(calibration_x), calibration_y
        )

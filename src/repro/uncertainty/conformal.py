"""Split-conformal calibration: spread → finite-sample intervals.

Raw ensemble/MC-dropout spread is a useful *ordering* of difficulty but
carries no coverage promise.  Split conformal fixes that with one held
out calibration set and no distributional assumptions: compute each
calibration row's normalized nonconformity score

    s_i = max_j |y_ij - mean_ij| / (std_ij + gamma)

take ``q_hat`` as the ``ceil((n + 1) * (1 - alpha)) / n`` empirical
quantile of the scores, and predict the interval

    mean_j -/+ q_hat * (std_j + gamma)

For exchangeable data the interval covers the whole output row with
probability >= ``1 - alpha`` — a finite-sample guarantee, not an
asymptotic one.  ``gamma`` floors the spread so rows where members
happen to agree exactly still get a nonzero-width interval.

A fitted calibrator is an artifact like any other: :meth:`save` writes
the checksummed :mod:`repro.storage.integrity` envelope atomically and
optionally journals the event, :meth:`load` verifies on read and raises
:class:`~repro.storage.integrity.CorruptArtifactError` on tampering.
"""

from __future__ import annotations

import json
import math
from typing import Optional, Tuple

import numpy as np

from repro.storage.integrity import atomic_write_bytes, read_envelope, wrap
from repro.uncertainty.predictors import UncertainPrediction

__all__ = ["ConformalCalibrator"]

_PAYLOAD_KIND = "conformal_calibrator"
_PAYLOAD_VERSION = 1


class ConformalCalibrator:
    """Split-conformal interval calibration over mean + spread."""

    def __init__(self, alpha: float = 0.1, gamma: float = 1e-3):
        if not 0.0 < alpha < 1.0:
            raise ValueError(f"alpha must be in (0, 1), got {alpha}")
        if gamma <= 0.0:
            raise ValueError(f"gamma must be > 0, got {gamma}")
        self.alpha = float(alpha)
        self.gamma = float(gamma)
        self.q_hat: Optional[float] = None
        self.n_calibration = 0

    @property
    def is_calibrated(self) -> bool:
        return self.q_hat is not None

    # -- fitting -------------------------------------------------------------

    def calibrate(self, prediction: UncertainPrediction, y: np.ndarray) -> float:
        """Fit ``q_hat`` from calibration predictions and true labels.

        With fewer than ``ceil((n + 1) * (1 - alpha))`` rows the exact
        finite-sample quantile does not exist and ``q_hat`` is ``inf`` —
        honest refusal to promise coverage the sample cannot support
        (every downstream interval is infinite, so the abstention policy
        refuses everything until a real calibration lands).
        """
        y = np.asarray(y, dtype=np.float64)
        if y.shape != prediction.mean.shape:
            raise ValueError(
                f"labels shape {y.shape} does not match predictions "
                f"{prediction.mean.shape}"
            )
        if not np.all(np.isfinite(y)):
            raise ValueError("calibration labels must be finite")
        n = prediction.n_rows
        if n < 1:
            raise ValueError("calibration set must be non-empty")
        scores = self._scores(prediction, y)
        rank = math.ceil((n + 1) * (1.0 - self.alpha))
        if rank > n:
            self.q_hat = math.inf
        else:
            self.q_hat = float(np.sort(scores)[rank - 1])
        self.n_calibration = n
        return self.q_hat

    def _scores(self, prediction: UncertainPrediction, y: np.ndarray) -> np.ndarray:
        residual = np.abs(y - prediction.mean)
        return np.max(residual / (prediction.std + self.gamma), axis=1)

    # -- intervals -----------------------------------------------------------

    def interval(
        self, prediction: UncertainPrediction
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-row ``(lower, upper)`` prediction intervals."""
        if not self.is_calibrated:
            raise RuntimeError("calibrate() before requesting intervals")
        margin = self.q_hat * (prediction.std + self.gamma)
        return prediction.mean - margin, prediction.mean + margin

    def width(self, prediction: UncertainPrediction) -> np.ndarray:
        """Per-row mean interval width (averaged over outputs)."""
        lower, upper = self.interval(prediction)
        return np.mean(upper - lower, axis=1)

    def coverage(self, prediction: UncertainPrediction, y: np.ndarray) -> float:
        """Fraction of rows whose *entire* output vector is covered."""
        y = np.asarray(y, dtype=np.float64)
        lower, upper = self.interval(prediction)
        covered = np.all((y >= lower) & (y <= upper), axis=1)
        return float(np.mean(covered))

    # -- persistence ---------------------------------------------------------

    def to_payload(self) -> dict:
        return {
            "kind": _PAYLOAD_KIND,
            "version": _PAYLOAD_VERSION,
            "alpha": self.alpha,
            "gamma": self.gamma,
            "q_hat": self.q_hat,
            "n_calibration": self.n_calibration,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "ConformalCalibrator":
        if payload.get("kind") != _PAYLOAD_KIND:
            raise ValueError(
                f"not a conformal calibrator payload: {payload.get('kind')!r}"
            )
        calibrator = cls(alpha=payload["alpha"], gamma=payload["gamma"])
        q_hat = payload["q_hat"]
        if q_hat is not None:
            calibrator.q_hat = float(q_hat)
        calibrator.n_calibration = int(payload["n_calibration"])
        return calibrator

    def save(self, path, journal=None) -> None:
        """Atomically persist as a checksummed envelope; journal if asked.

        ``inf`` cannot ride through strict JSON, so an uncalibrated-by-
        sample-size ``q_hat`` round-trips as the string ``"inf"``.
        """
        payload = self.to_payload()
        if payload["q_hat"] == math.inf:
            payload["q_hat"] = "inf"
        blob = json.dumps(payload, sort_keys=True).encode("utf-8")
        atomic_write_bytes(path, wrap(blob))
        if journal is not None:
            journal.append(
                {
                    "event": "conformal_calibrator_saved",
                    "path": str(path),
                    "alpha": self.alpha,
                    "q_hat": self.q_hat,
                    "n_calibration": self.n_calibration,
                }
            )

    @classmethod
    def load(cls, path) -> "ConformalCalibrator":
        """Verified read; raises ``CorruptArtifactError`` on tampering."""
        payload = json.loads(read_envelope(path).decode("utf-8"))
        if payload.get("q_hat") == "inf":
            payload["q_hat"] = math.inf
        return cls.from_payload(payload)

    def report(self) -> dict:
        """Human-facing calibration summary (CLI table rows)."""
        return {
            "alpha": self.alpha,
            "nominal_coverage": 1.0 - self.alpha,
            "gamma": self.gamma,
            "q_hat": self.q_hat,
            "n_calibration": self.n_calibration,
            "calibrated": self.is_calibrated,
        }

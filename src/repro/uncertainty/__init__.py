"""Uncertainty quantification: spread, intervals, abstention, acquisition.

The subsystem that lets the stack say "I don't know": ensemble and
MC-dropout predictors produce mean + spread
(:mod:`~repro.uncertainty.predictors`), split-conformal calibration
turns spread into finite-sample prediction intervals
(:mod:`~repro.uncertainty.conformal`), an abstention policy + serving
gate turn intervals into per-row serve/abstain decisions
(:mod:`~repro.uncertainty.policy`), and an acquisition planner closes
the loop by spending measurement budget where the intervals are widest
(:mod:`~repro.uncertainty.planner`).
"""

from repro.uncertainty.conformal import ConformalCalibrator
from repro.uncertainty.planner import (
    AcquisitionPlanner,
    CampaignReport,
    CampaignRound,
)
from repro.uncertainty.policy import (
    REASON_INTERVAL_TOO_WIDE,
    REASON_NONFINITE_INTERVAL,
    REASON_UNCALIBRATED,
    AbstentionPolicy,
    Assessment,
    UncertaintyGate,
    WidthMonitor,
)
from repro.uncertainty.predictors import (
    EnsemblePredictor,
    EnsembleSpec,
    MCDropoutPredictor,
    UncertainPrediction,
    train_ensemble,
    train_member,
)

__all__ = [
    "UncertainPrediction",
    "EnsemblePredictor",
    "MCDropoutPredictor",
    "EnsembleSpec",
    "train_ensemble",
    "train_member",
    "ConformalCalibrator",
    "AbstentionPolicy",
    "Assessment",
    "UncertaintyGate",
    "WidthMonitor",
    "REASON_UNCALIBRATED",
    "REASON_NONFINITE_INTERVAL",
    "REASON_INTERVAL_TOO_WIDE",
    "AcquisitionPlanner",
    "CampaignReport",
    "CampaignRound",
]

"""Abstention policy, serving gate, and interval-width drift monitor.

This is the decision layer between a calibrated predictor and the
serving plane: :class:`AbstentionPolicy` turns per-row prediction
intervals into serve/abstain decisions with machine-readable reasons,
:class:`UncertaintyGate` packages predictor + calibrator + policy behind
the single ``assess(matrix)`` call :class:`~repro.serving.service.AnalysisService`
consumes, and :class:`WidthMonitor` tracks interval-width widening as an
*early* drift signal — ensemble disagreement rises off-distribution
before the residual EWMA of :class:`~repro.core.lifecycle.DriftMonitor`
catches up, because width needs no labels and no plausibility model.

The abstention contract: every row gets exactly one decision, a decision
never raises, and anything the gate cannot vouch for — uncalibrated
calibrator, non-finite interval, interval wider than the policy allows —
abstains rather than serving a confident guess.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.uncertainty.conformal import ConformalCalibrator
from repro.uncertainty.predictors import UncertainPrediction

__all__ = [
    "REASON_UNCALIBRATED",
    "REASON_NONFINITE_INTERVAL",
    "REASON_INTERVAL_TOO_WIDE",
    "AbstentionPolicy",
    "Assessment",
    "UncertaintyGate",
    "WidthMonitor",
]

REASON_UNCALIBRATED = "uncalibrated"
REASON_NONFINITE_INTERVAL = "nonfinite_interval"
REASON_INTERVAL_TOO_WIDE = "interval_too_wide"


@dataclass(frozen=True)
class Assessment:
    """Per-row verdicts for one batch: arrays aligned with input rows.

    ``reasons[i]`` is ``None`` for served rows and one of the module's
    ``REASON_*`` constants for abstained rows.
    """

    mean: np.ndarray  # (n, k) point predictions
    std: np.ndarray  # (n, k) raw spread
    lower: np.ndarray  # (n, k) interval lower bounds
    upper: np.ndarray  # (n, k) interval upper bounds
    width: np.ndarray  # (n,) mean interval width per row
    abstain: np.ndarray  # (n,) bool
    reasons: tuple  # (n,) Optional[str]

    @property
    def n_rows(self) -> int:
        return int(self.mean.shape[0])

    def row_interval(self, index: int):
        """``(lower, upper)`` vectors for one row (for Abstained results)."""
        return self.lower[index], self.upper[index]


class AbstentionPolicy:
    """Width thresholds that separate "serve" from "I don't know".

    ``max_width`` bounds the absolute mean interval width per row;
    ``max_relative_width`` bounds width relative to the magnitude of the
    prediction itself (``mean |interval| / max(mean |value|, floor)``),
    which adapts to tasks whose outputs live on different scales.
    Either bound may be ``None`` (disabled); with both disabled the
    policy still abstains on uncalibrated or non-finite intervals — the
    unconditional part of the contract.
    """

    def __init__(
        self,
        max_width: Optional[float] = None,
        max_relative_width: Optional[float] = None,
        relative_floor: float = 1e-6,
    ):
        if max_width is not None and max_width <= 0:
            raise ValueError(f"max_width must be > 0, got {max_width}")
        if max_relative_width is not None and max_relative_width <= 0:
            raise ValueError(
                f"max_relative_width must be > 0, got {max_relative_width}"
            )
        if relative_floor <= 0:
            raise ValueError(f"relative_floor must be > 0, got {relative_floor}")
        self.max_width = max_width
        self.max_relative_width = max_relative_width
        self.relative_floor = float(relative_floor)

    def assess(
        self,
        prediction: UncertainPrediction,
        calibrator: ConformalCalibrator,
    ) -> Assessment:
        """Decide every row of a batch; never raises per-row."""
        n = prediction.n_rows
        if not calibrator.is_calibrated or calibrator.q_hat == np.inf:
            nan = np.full_like(prediction.mean, np.nan)
            return Assessment(
                mean=prediction.mean,
                std=prediction.std,
                lower=nan,
                upper=nan,
                width=np.full(n, np.inf),
                abstain=np.ones(n, dtype=bool),
                reasons=tuple([REASON_UNCALIBRATED] * n),
            )
        lower, upper = calibrator.interval(prediction)
        width = np.mean(upper - lower, axis=1)
        abstain = np.zeros(n, dtype=bool)
        reasons: List[Optional[str]] = [None] * n
        finite = np.all(np.isfinite(lower), axis=1) & np.all(
            np.isfinite(upper), axis=1
        )
        for i in range(n):
            if not finite[i]:
                abstain[i] = True
                reasons[i] = REASON_NONFINITE_INTERVAL
                continue
            too_wide = (
                self.max_width is not None and width[i] > self.max_width
            )
            if not too_wide and self.max_relative_width is not None:
                scale = max(
                    float(np.mean(np.abs(prediction.mean[i]))),
                    self.relative_floor,
                )
                too_wide = width[i] / scale > self.max_relative_width
            if too_wide:
                abstain[i] = True
                reasons[i] = REASON_INTERVAL_TOO_WIDE
        return Assessment(
            mean=prediction.mean,
            std=prediction.std,
            lower=lower,
            upper=upper,
            width=width,
            abstain=abstain,
            reasons=tuple(reasons),
        )


class WidthMonitor:
    """EWMA over interval widths; widening is an early drift signal.

    The baseline is the typical width on in-distribution (calibration)
    data, set once via :meth:`set_baseline`.  :meth:`observe` smooths the
    live widths and emits a :class:`~repro.core.lifecycle.DriftStatus`,
    so the output plugs into everything that already consumes drift
    statuses — :class:`~repro.adaptation.controller.AdaptationController`
    included — with width in the residual slots instead of plausibility
    residual.
    """

    def __init__(
        self,
        alarm_factor: float = 2.0,
        smoothing: float = 0.2,
        warmup: int = 5,
    ):
        if alarm_factor <= 1.0:
            raise ValueError("alarm_factor must exceed 1.0")
        if not 0.0 < smoothing <= 1.0:
            raise ValueError("smoothing must be in (0, 1]")
        if warmup < 1:
            raise ValueError("warmup must be >= 1")
        self.alarm_factor = float(alarm_factor)
        self.smoothing = float(smoothing)
        self.warmup = int(warmup)
        self.baseline_width: Optional[float] = None
        self.skipped_nonfinite = 0
        self._ewma: Optional[float] = None
        self._count = 0
        self._lock = threading.Lock()

    def set_baseline(self, widths) -> float:
        """Pin the in-distribution width baseline (median of a sample)."""
        widths = np.asarray(widths, dtype=np.float64)
        widths = widths[np.isfinite(widths)]
        if widths.size == 0:
            raise ValueError("baseline widths must contain finite values")
        with self._lock:
            self.baseline_width = float(np.median(widths))
            self._ewma = None
            self._count = 0
        return self.baseline_width

    def observe(self, width: float):
        """Fold one row's interval width in; returns a ``DriftStatus``.

        Non-finite widths (uncalibrated / overflowed intervals) are
        counted and skipped rather than poisoning the EWMA — the
        abstention path already refuses those rows.
        """
        from repro.core.lifecycle import DriftStatus

        width = float(width)
        with self._lock:
            if not np.isfinite(width):
                self.skipped_nonfinite += 1
            else:
                if self._ewma is None:
                    self._ewma = width
                else:
                    self._ewma += self.smoothing * (width - self._ewma)
                self._count += 1
            baseline = self.baseline_width if self.baseline_width else 0.0
            ewma = self._ewma if self._ewma is not None else 0.0
            drifted = (
                self._count >= self.warmup
                and baseline > 0.0
                and ewma > self.alarm_factor * baseline
            )
            return DriftStatus(
                drifted=bool(drifted),
                ewma_residual=float(ewma),
                baseline_residual=float(baseline),
                observations=int(self._count),
            )


class UncertaintyGate:
    """Predictor + calibrator + policy behind one ``assess`` call.

    This is the object :class:`~repro.serving.service.AnalysisService`
    takes as its ``uncertainty=`` collaborator.  Besides assessing, it
    keeps a rolling abstention-rate window (for brownout and stats) and
    optionally feeds every row's width into a :class:`WidthMonitor`.
    """

    def __init__(
        self,
        predictor,
        calibrator: ConformalCalibrator,
        policy: Optional[AbstentionPolicy] = None,
        width_monitor: Optional[WidthMonitor] = None,
        window: int = 64,
    ):
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.predictor = predictor
        self.calibrator = calibrator
        self.policy = policy if policy is not None else AbstentionPolicy()
        self.width_monitor = width_monitor
        self.last_drift_status = None
        self._decisions = deque(maxlen=int(window))
        self._lock = threading.Lock()

    def assess(self, matrix: np.ndarray) -> Assessment:
        """Mean + interval + decision for every row of ``matrix``."""
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2:
            raise ValueError(f"expected a 2-D batch, got shape {matrix.shape}")
        prediction = self.predictor.predict(matrix)
        assessment = self.policy.assess(prediction, self.calibrator)
        if self.width_monitor is not None:
            for width in assessment.width:
                self.last_drift_status = self.width_monitor.observe(width)
        with self._lock:
            self._decisions.extend(
                bool(flag) for flag in assessment.abstain
            )
        return assessment

    def abstention_rate(self) -> Optional[float]:
        """Fraction of recently assessed rows that abstained (None = no data)."""
        with self._lock:
            if not self._decisions:
                return None
            return float(sum(self._decisions)) / len(self._decisions)

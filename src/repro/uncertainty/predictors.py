"""Mean + spread predictors: deep ensembles and MC-dropout.

The quantification networks in the paper emit point concentrations; this
module wraps :class:`~repro.nn.model.Sequential` so every prediction
carries a *spread* alongside its mean.  Spread is the raw material the
conformal calibrator (:mod:`repro.uncertainty.conformal`) turns into
finite-sample intervals and the abstention policy turns into refusals.

Two estimators, one contract (:class:`UncertainPrediction`):

* :class:`EnsemblePredictor` — N independently trained members
  (different derived seeds → different inits and dataset draws);
  disagreement across members is the spread.
* :class:`MCDropoutPredictor` — T stochastic forward passes through one
  model with dropout forced on; disagreement across passes is the
  spread.  Dropout layers are re-seeded per pass from a
  ``SeedSequence`` tree so repeated calls are byte-identical.

Ensemble training follows the :mod:`repro.adaptation.matrix` campaign
idiom: every random draw comes from seeds derived from the canonical
content of an :class:`EnsembleSpec`, the executor's per-task rng is
deliberately unused, and each member's weights are their own
:class:`~repro.compute.cache.ArtifactCache` entry — so campaigns are
byte-identical across ``serial``/``thread``/``process`` backends and
resume from cache after an interruption.
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.compute.cache import ArtifactCache, canonical_blob

__all__ = [
    "UncertainPrediction",
    "EnsemblePredictor",
    "MCDropoutPredictor",
    "EnsembleSpec",
    "train_ensemble",
    "train_member",
]


@dataclass(frozen=True)
class UncertainPrediction:
    """A batch of predictions with per-output spread.

    ``mean`` and ``std`` are both ``(n_rows, n_outputs)`` float64; ``std``
    is the population standard deviation across members/passes (zero for
    a single member — such a predictor can never express doubt, which is
    why :class:`EnsemblePredictor` requires at least two).
    """

    mean: np.ndarray
    std: np.ndarray

    def __post_init__(self):
        mean = np.asarray(self.mean, dtype=np.float64)
        std = np.asarray(self.std, dtype=np.float64)
        if mean.shape != std.shape or mean.ndim != 2:
            raise ValueError(
                f"mean/std must be matching 2-D arrays, got {mean.shape} "
                f"and {std.shape}"
            )
        object.__setattr__(self, "mean", mean)
        object.__setattr__(self, "std", std)

    @property
    def n_rows(self) -> int:
        return int(self.mean.shape[0])


def _stack_prediction(stack: np.ndarray) -> UncertainPrediction:
    """Collapse a ``(members, rows, outputs)`` stack to mean + spread."""
    mean = np.mean(stack, axis=0)
    std = np.std(stack, axis=0)
    return UncertainPrediction(mean=mean, std=std)


class EnsemblePredictor:
    """Mean + spread from N independently trained models."""

    def __init__(self, members: Sequence):
        members = list(members)
        if len(members) < 2:
            raise ValueError(
                "an ensemble needs >= 2 members to express spread, got "
                f"{len(members)}"
            )
        self.members = members

    @property
    def n_members(self) -> int:
        return len(self.members)

    def predict(self, x: np.ndarray) -> UncertainPrediction:
        x = np.asarray(x, dtype=np.float64)
        stack = np.stack(
            [member.predict(x, validate=False) for member in self.members]
        )
        return _stack_prediction(stack)

    def predict_mean(self, x: np.ndarray) -> np.ndarray:
        """Point prediction only (drop the spread)."""
        return self.predict(x).mean


class MCDropoutPredictor:
    """Mean + spread from T stochastic dropout passes through one model.

    Only :class:`~repro.nn.layers.core.Dropout` layers run in training
    mode during the passes — normalization layers stay in inference mode
    so their running statistics are never mutated by prediction.  Each
    ``predict`` re-seeds every dropout layer per pass from a
    ``SeedSequence`` tree rooted at ``seed``, then restores the layers'
    original generators, so calls are byte-repeatable and leave the
    model's training-time randomness untouched.
    """

    def __init__(self, model, passes: int = 20, seed: int = 0):
        from repro.nn.layers.core import Dropout

        if passes < 2:
            raise ValueError(f"passes must be >= 2, got {passes}")
        self.model = model
        self.passes = int(passes)
        self.seed = int(seed)
        self._dropout_layers = [
            layer
            for layer in model.layers
            if isinstance(layer, Dropout) and layer.rate > 0.0
        ]
        if not self._dropout_layers:
            raise ValueError(
                "MC-dropout needs at least one Dropout layer with rate > 0; "
                "this model has none, so its spread would always be zero"
            )

    def predict(self, x: np.ndarray) -> UncertainPrediction:
        from repro.nn.layers.core import Dropout

        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2:
            raise ValueError(f"expected a 2-D batch, got shape {x.shape}")
        saved = [(layer, layer._rng, layer._mask) for layer in self._dropout_layers]
        pass_seeds = np.random.SeedSequence(self.seed).spawn(self.passes)
        outputs = []
        try:
            for pass_seed in pass_seeds:
                layer_seeds = pass_seed.spawn(len(self._dropout_layers))
                for layer, layer_seed in zip(self._dropout_layers, layer_seeds):
                    layer._rng = np.random.default_rng(layer_seed)
                out = x
                for layer in self.model.layers:
                    out = layer.forward(
                        out, training=isinstance(layer, Dropout)
                    )
                outputs.append(np.asarray(out, dtype=np.float64))
        finally:
            for layer, rng, mask in saved:
                layer._rng = rng
                layer._mask = mask
        return _stack_prediction(np.stack(outputs))

    def predict_mean(self, x: np.ndarray) -> np.ndarray:
        return self.predict(x).mean


@dataclass(frozen=True)
class EnsembleSpec:
    """The full generating surface of one ensemble campaign.

    Pure data: every member's dataset draw, weight init and shuffle
    order derive from the canonical content of this spec, so a campaign
    is a pure function of it — that is what makes member weights
    byte-identical across executor backends and cache-resumable.
    """

    compounds: Tuple[str, ...]
    axis: Tuple[float, float, float] = (1.0, 50.0, 0.2)
    characteristics: Optional[dict] = None  # None = defaults
    n_train: int = 2000
    epochs: int = 6
    hidden_units: Tuple[int, ...] = (32,)
    n_members: int = 5
    learning_rate: float = 0.006
    batch_size: int = 64
    seed: int = 0

    def __post_init__(self):
        if not self.compounds:
            raise ValueError("compounds must be non-empty")
        if self.n_members < 2:
            raise ValueError(f"n_members must be >= 2, got {self.n_members}")
        for label in ("n_train", "epochs"):
            if getattr(self, label) < 1:
                raise ValueError(f"{label} must be >= 1")

    def as_config(self) -> dict:
        config = dataclasses.asdict(self)
        config["compounds"] = list(self.compounds)
        config["axis"] = list(self.axis)
        config["hidden_units"] = list(self.hidden_units)
        return config

    @classmethod
    def from_config(cls, config: dict) -> "EnsembleSpec":
        config = dict(config)
        config["compounds"] = tuple(config["compounds"])
        config["axis"] = tuple(config["axis"])
        config["hidden_units"] = tuple(config["hidden_units"])
        return cls(**config)

    def input_length(self) -> int:
        from repro.ms.spectrum import MzAxis

        start, stop, step = self.axis
        return MzAxis(start, stop, step).size


def _derived_seed(tag: str, *configs: dict) -> int:
    """A stable 31-bit seed from canonical config content.

    Seeds must depend only on *what* is being trained, never on task
    scheduling, so every backend and every resumed run draws the same
    streams (same rule as :mod:`repro.adaptation.matrix`).
    """
    blob = canonical_blob({"tag": tag, "configs": list(configs)})
    return int.from_bytes(hashlib.sha256(blob).digest()[:4], "big") % (2**31)


def _build_simulator(spec: EnsembleSpec):
    from repro.ms.compounds import default_library
    from repro.ms.instrument import InstrumentCharacteristics
    from repro.ms.simulator import MassSpectrometerSimulator
    from repro.ms.spectrum import MzAxis

    characteristics = InstrumentCharacteristics(**(spec.characteristics or {}))
    start, stop, step = spec.axis
    return MassSpectrometerSimulator(
        characteristics, MzAxis(start, stop, step), default_library()
    )


def _member_config(spec: EnsembleSpec, member: int) -> dict:
    return {
        "kind": "uncertainty_ensemble_member",
        "spec": spec.as_config(),
        "member": int(member),
    }


def _build_member(spec: EnsembleSpec, member_seed: int):
    from repro.core.topologies import mlp_topology

    topology = mlp_topology(
        len(spec.compounds), hidden_units=spec.hidden_units
    )
    return topology.build((spec.input_length(),), seed=member_seed)


def _train_member_weights(spec: EnsembleSpec, member: int) -> List[np.ndarray]:
    from repro.nn.optimizers import Adam

    config = _member_config(spec, member)
    member_seed = _derived_seed("member", config)
    simulator = _build_simulator(spec)
    rng = np.random.default_rng(_derived_seed("dataset", config))
    x, y = simulator.generate_dataset(spec.compounds, spec.n_train, rng)
    model = _build_member(spec, member_seed)
    model.compile(Adam(spec.learning_rate), "mae")
    model.fit(
        x, y, epochs=spec.epochs, batch_size=spec.batch_size,
        seed=member_seed, verbose=False,
    )
    return model.get_weights()


def train_member(payload: dict, rng=None) -> dict:
    """Train (or reload) one ensemble member; module-level for pickling.

    ``rng`` (the executor's per-task generator) is intentionally unused:
    every random draw comes from seeds derived from the member's
    canonical config, which is what makes members byte-identical across
    backends and across resumed runs.
    """
    spec = EnsembleSpec.from_config(payload["spec"])
    member = int(payload["member"])
    cache_root = payload.get("cache_root")
    config = _member_config(spec, member)
    if cache_root is None:
        weights = _train_member_weights(spec, member)
        hit = False
    else:
        cache = ArtifactCache(cache_root)
        arrays, _, hit = cache.get_or_create(
            config,
            lambda: {
                f"w{i:04d}": w
                for i, w in enumerate(_train_member_weights(spec, member))
            },
        )
        weights = [arrays[k] for k in sorted(arrays)]
    return {
        "member": member,
        "weights": [np.asarray(w, dtype=np.float64) for w in weights],
        "cache_hit": bool(hit),
    }


def train_ensemble(
    spec: EnsembleSpec,
    executor=None,
    cache: Optional[ArtifactCache] = None,
) -> EnsemblePredictor:
    """Train every member of ``spec`` and assemble the predictor.

    Members fan out through ``executor`` (serial if ``None``) and each
    caches its weights under its own content-addressed key, so an
    interrupted campaign resumes and a repeated one is all verified
    reads.  Any member that fails every permitted attempt aborts the
    campaign — a silently smaller ensemble would change the spread.
    """
    from repro.compute.executor import ParallelExecutor, TaskFailure

    executor = executor if executor is not None else ParallelExecutor()
    cache_root = str(cache.root) if cache is not None else None
    payloads = [
        {"spec": spec.as_config(), "member": i, "cache_root": cache_root}
        for i in range(spec.n_members)
    ]
    outcomes = executor.map_tasks(
        train_member, payloads, label="uncertainty_ensemble"
    )
    failures = [o for o in outcomes if isinstance(o, TaskFailure)]
    if failures:
        raise RuntimeError(
            f"{len(failures)}/{spec.n_members} ensemble members failed: "
            + "; ".join(f"{f.error_type}: {f.message}" for f in failures)
        )
    members = []
    for outcome in outcomes:
        config = _member_config(spec, outcome["member"])
        model = _build_member(spec, _derived_seed("member", config))
        model.set_weights(outcome["weights"])
        members.append(model)
    return EnsemblePredictor(members)

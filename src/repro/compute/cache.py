"""Content-addressed artifact cache for deterministically generated data.

Every sweep and bench in this repo regenerates its simulated datasets from
scratch, even though the generator is a pure function of (simulator
characteristics, compound set, n, seed, normalization).  This module keys
artifacts by a canonical SHA-256 over exactly that generating config and
stores them as :mod:`repro.storage.integrity` checksummed envelopes, so a
repeat generation is a verified read instead of a re-render.

Guarantees:

* **Content addressing** — :func:`canonical_key` serializes the config to
  canonical JSON (sorted keys, compact separators, tuples as lists, numpy
  scalars coerced) and hashes it; semantically equal configs collide on
  purpose, any parameter change misses.
* **Verify-on-read** — entries are envelope-wrapped
  (magic + version + length + SHA-256); a corrupt entry is *quarantined*
  (moved aside for post-mortem, never silently deleted), counted, and
  treated as a miss so the caller regenerates.
* **Bounded size** — ``max_bytes`` enforces an LRU evict (recency is the
  entry's mtime, bumped on every hit), oldest-first, never evicting the
  entry just written.
* **Observability** — hit/miss/eviction/corrupt counters and a byte-size
  gauge on the global registry, mirrored in per-instance :meth:`stats`.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
from pathlib import Path
from typing import Callable, Dict, List, Mapping, Optional, Tuple, Union

import numpy as np

from repro.observability.runtime import get_registry
from repro.storage.integrity import (
    CorruptArtifactError,
    StorageError,
    atomic_write_bytes,
    unwrap,
    wrap,
)

__all__ = ["CACHE_FORMAT_VERSION", "canonical_blob", "canonical_key", "ArtifactCache"]

# Bump when the on-disk entry layout (not the envelope) changes; part of
# the key, so old-format entries simply miss instead of misparsing.
CACHE_FORMAT_VERSION = 1

_ENTRY_SUFFIX = ".npz.env"
_META_KEY = "__meta__"


def _canonical_default(value):
    """Coerce non-JSON values deterministically (numpy scalars, arrays)."""
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (set, frozenset)):
        return sorted(value)
    raise TypeError(
        f"cache config value of type {type(value).__name__} is not canonicalizable"
    )


def canonical_blob(config: Mapping) -> bytes:
    """The canonical JSON bytes of a generating config.

    Key order, tuple-vs-list and numpy scalar types never change the
    bytes; any semantic difference does.
    """
    return json.dumps(
        {"cache_format": CACHE_FORMAT_VERSION, "config": config},
        sort_keys=True,
        separators=(",", ":"),
        default=_canonical_default,
    ).encode("utf-8")


def canonical_key(config: Mapping) -> str:
    """SHA-256 hex digest of the canonical config blob."""
    return hashlib.sha256(canonical_blob(config)).hexdigest()


class ArtifactCache:
    """Content-addressed, size-bounded, checksummed artifact store."""

    def __init__(
        self,
        root: Union[str, os.PathLike],
        max_bytes: Optional[int] = None,
        fsync: bool = True,
    ):
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError("max_bytes must be positive")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.max_bytes = max_bytes
        self.fsync = fsync
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.corrupt = 0
        registry = get_registry()
        self._m_requests = registry.counter(
            "compute_cache_requests_total", "cache lookups by outcome"
        )
        self._m_evictions = registry.counter(
            "compute_cache_evictions_total", "entries evicted by the LRU bound"
        )
        self._m_corrupt = registry.counter(
            "compute_cache_corrupt_total", "entries quarantined on failed verify"
        )
        self._m_bytes = registry.gauge(
            "compute_cache_bytes", "total bytes of live cache entries"
        )

    # -- paths ---------------------------------------------------------------

    @property
    def quarantine_dir(self) -> Path:
        return self.root / "quarantine"

    def path_for(self, key: str) -> Path:
        return self.root / f"{key}{_ENTRY_SUFFIX}"

    def _entries(self) -> List[Path]:
        return sorted(self.root.glob(f"*{_ENTRY_SUFFIX}"))

    # -- core get/put --------------------------------------------------------

    def get(self, key: str) -> Optional[Tuple[Dict[str, np.ndarray], dict]]:
        """Load and verify the entry for ``key``; None on miss.

        A corrupt entry is quarantined and reported as a miss, so the
        caller's regenerate-then-put path heals the cache in place.
        """
        path = self.path_for(key)
        try:
            with open(path, "rb") as handle:
                blob = handle.read()
        except FileNotFoundError:
            self.misses += 1
            self._m_requests.inc(outcome="miss")
            return None
        try:
            payload = unwrap(blob, source=str(path))
            arrays, meta = self._decode(payload)
        except (StorageError, ValueError, KeyError) as error:
            self._quarantine(path, error)
            self.misses += 1
            self._m_requests.inc(outcome="corrupt")
            return None
        os.utime(path)  # bump LRU recency
        self.hits += 1
        self._m_requests.inc(outcome="hit")
        return arrays, meta

    def put(
        self,
        key: str,
        arrays: Mapping[str, np.ndarray],
        meta: Optional[dict] = None,
    ) -> Path:
        """Atomically publish an enveloped entry for ``key``; then evict."""
        if not arrays:
            raise ValueError("arrays must be non-empty")
        if _META_KEY in arrays:
            raise ValueError(f"array name {_META_KEY!r} is reserved")
        path = self.path_for(key)
        payload = self._encode(arrays, meta or {})
        atomic_write_bytes(path, wrap(payload), fsync=self.fsync)
        self._evict(keep=path)
        self._m_bytes.set(self.total_bytes())
        return path

    def get_or_create(
        self,
        config: Mapping,
        producer: Callable[[], Mapping[str, np.ndarray]],
        meta: Optional[dict] = None,
    ) -> Tuple[Dict[str, np.ndarray], str, bool]:
        """The main API: ``(arrays, key, hit)`` for a generating config.

        On a miss (or a quarantined corrupt entry) ``producer()`` runs and
        its arrays are stored under the config's canonical key.
        """
        key = canonical_key(config)
        cached = self.get(key)
        if cached is not None:
            return cached[0], key, True
        arrays = {name: np.asarray(value) for name, value in producer().items()}
        entry_meta = {"config": _jsonable(config)}
        if meta:
            entry_meta.update(meta)
        self.put(key, arrays, entry_meta)
        return arrays, key, False

    def get_or_create_json(
        self,
        config: Mapping,
        producer: Callable[[], dict],
        meta: Optional[dict] = None,
    ) -> Tuple[dict, str, bool]:
        """:meth:`get_or_create` for small JSON payloads (scalar cells).

        Campaign cells (a drift-matrix MAE, a sweep score) are dicts, not
        arrays; they ride the same enveloped entry format as a uint8 JSON
        blob, so they get verify-on-read, quarantine-and-regenerate and
        LRU bounding for free.  Returns ``(payload, key, hit)``.
        """

        def produce_arrays() -> Dict[str, np.ndarray]:
            payload = producer()
            if not isinstance(payload, dict):
                raise TypeError(
                    f"JSON cell producer must return a dict, "
                    f"got {type(payload).__name__}"
                )
            blob = json.dumps(
                payload, sort_keys=True, default=_canonical_default
            ).encode("utf-8")
            return {"__json__": np.frombuffer(blob, dtype=np.uint8)}

        arrays, key, hit = self.get_or_create(
            config, produce_arrays, meta=meta
        )
        try:
            payload = json.loads(bytes(arrays["__json__"].tobytes()))
        except (KeyError, ValueError) as error:
            # A verified entry that is not a JSON cell (key collision with
            # an array entry): treat as corrupt, heal by regenerating.
            self._quarantine(self.path_for(key), error)
            arrays, key, hit = self.get_or_create(
                config, produce_arrays, meta=meta
            )
            payload = json.loads(bytes(arrays["__json__"].tobytes()))
        return payload, key, hit

    # -- maintenance ---------------------------------------------------------

    def verify(self) -> Dict[str, str]:
        """Check every entry's envelope; quarantine failures.

        Returns ``{key: "ok" | "corrupt: <reason>"}``.
        """
        report: Dict[str, str] = {}
        for path in self._entries():
            key = path.name[: -len(_ENTRY_SUFFIX)]
            try:
                with open(path, "rb") as handle:
                    payload = unwrap(handle.read(), source=str(path))
                self._decode(payload)
                report[key] = "ok"
            except (StorageError, ValueError, KeyError) as error:
                self._quarantine(path, error)
                report[key] = f"corrupt: {error}"
        self._m_bytes.set(self.total_bytes())
        return report

    def clear(self) -> int:
        """Remove every live entry (quarantine is kept); returns the count."""
        removed = 0
        for path in self._entries():
            path.unlink()
            removed += 1
        self._m_bytes.set(0)
        return removed

    def entries(self) -> List[Dict[str, object]]:
        """Live entries as ``{key, bytes, mtime}`` rows, oldest first."""
        rows = []
        for path in self._entries():
            stat = path.stat()
            rows.append(
                {
                    "key": path.name[: -len(_ENTRY_SUFFIX)],
                    "bytes": stat.st_size,
                    "mtime": stat.st_mtime,
                }
            )
        rows.sort(key=lambda row: row["mtime"])
        return rows

    def total_bytes(self) -> int:
        return sum(path.stat().st_size for path in self._entries())

    def stats(self) -> Dict[str, object]:
        return {
            "root": str(self.root),
            "entries": len(self._entries()),
            "total_bytes": self.total_bytes(),
            "max_bytes": self.max_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "corrupt": self.corrupt,
            "quarantined": (
                len(list(self.quarantine_dir.iterdir()))
                if self.quarantine_dir.is_dir()
                else 0
            ),
        }

    # -- internals -----------------------------------------------------------

    @staticmethod
    def _encode(arrays: Mapping[str, np.ndarray], meta: dict) -> bytes:
        buffer = io.BytesIO()
        meta_blob = np.frombuffer(
            json.dumps(meta, default=_canonical_default).encode("utf-8"),
            dtype=np.uint8,
        )
        np.savez(buffer, **{_META_KEY: meta_blob}, **dict(arrays))
        return buffer.getvalue()

    @staticmethod
    def _decode(payload: bytes) -> Tuple[Dict[str, np.ndarray], dict]:
        with np.load(io.BytesIO(payload)) as data:
            meta = json.loads(bytes(data[_META_KEY].tobytes()).decode("utf-8"))
            arrays = {
                name: data[name] for name in data.files if name != _META_KEY
            }
        return arrays, meta

    def _quarantine(self, path: Path, error: Exception) -> None:
        self.corrupt += 1
        self._m_corrupt.inc()
        self.quarantine_dir.mkdir(exist_ok=True)
        target = self.quarantine_dir / path.name
        try:
            os.replace(path, target)
        except FileNotFoundError:
            pass

    def _evict(self, keep: Path) -> None:
        if self.max_bytes is None:
            return
        rows = [(path, path.stat()) for path in self._entries()]
        total = sum(stat.st_size for _, stat in rows)
        rows.sort(key=lambda item: item[1].st_mtime)
        for path, stat in rows:
            if total <= self.max_bytes:
                break
            if path == keep:
                continue
            path.unlink()
            total -= stat.st_size
            self.evictions += 1
            self._m_evictions.inc()


def _jsonable(config: Mapping) -> dict:
    """A JSON-round-trippable copy of a config (for entry metadata)."""
    return json.loads(json.dumps(dict(config), default=_canonical_default))

"""Shared-memory dataset handoff for the process backend.

The profiled failure mode of the old executor was payload transfer: every
task of a sweep carried its own pickled copy of the training arrays
through the process pool's pipe, so a 4-topology sweep shipped the same
spectra four times and the workers spent their warm-up deserializing
instead of computing (``compute_scaling.json`` recorded a 0.63x
*slowdown*).  This module replaces the per-task copy with a
publish-once / map-many protocol:

* :func:`share_array` writes an array once, as a plain ``.npy`` file named
  by the SHA-256 of its bytes (publish is an atomic rename, concurrent
  publishers of the same content collide harmlessly on the same name);
* the returned :class:`SharedArrayRef` is a tiny picklable handle (path,
  dtype, shape) that rides the task payload instead of the array;
* :func:`resolve_refs` — called by the executor in the worker, right
  before the task function runs — swaps every handle for a *read-only
  memory map* of the published file, cached per process so N tasks on the
  same worker map the file exactly once.

``numpy.save``/``numpy.load`` round-trip bytes exactly, so a task fed a
resolved memory map computes the same floats as one fed the original
array — the executor's cross-backend byte-equality contract survives the
handoff.  The maps are deliberately read-only: a worker mutating shared
input would corrupt its siblings' view, so that mistake fails loudly.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Mapping, Tuple, Union

import numpy as np

__all__ = ["SharedArrayRef", "share_array", "share_arrays", "resolve_refs"]

# Per-process memo of resolved maps: entries are content-addressed and
# immutable, so a path can be mapped once and reused by every task the
# worker runs for the rest of its life.
_RESOLVED: Dict[str, np.ndarray] = {}


@dataclass(frozen=True)
class SharedArrayRef:
    """A picklable handle to one published array (path + expected layout)."""

    path: str
    dtype: str
    shape: Tuple[int, ...]

    @property
    def nbytes(self) -> int:
        count = 1
        for dim in self.shape:
            count *= int(dim)
        return count * np.dtype(self.dtype).itemsize


def share_array(
    array: np.ndarray, directory: Union[str, os.PathLike]
) -> SharedArrayRef:
    """Publish one array under ``directory``; returns its handle.

    The file name is the SHA-256 of (dtype, shape, bytes), so publishing
    the same content twice — from one process or several — is idempotent:
    the second publisher sees the file already present and skips the
    write.  Publication itself is write-to-temp + atomic rename, so a
    reader can never map a half-written file.
    """
    array = np.ascontiguousarray(array)
    digest = hashlib.sha256()
    digest.update(str(array.dtype).encode("ascii"))
    digest.update(str(array.shape).encode("ascii"))
    digest.update(array.tobytes())
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{digest.hexdigest()}.npy"
    if not path.exists():
        fd, tmp_name = tempfile.mkstemp(
            dir=str(directory), suffix=".npy.tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                np.save(handle, array)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except FileNotFoundError:
                pass
            raise
    return SharedArrayRef(
        path=str(path), dtype=str(array.dtype), shape=tuple(array.shape)
    )


def share_arrays(
    arrays: Mapping[str, np.ndarray], directory: Union[str, os.PathLike]
) -> Dict[str, SharedArrayRef]:
    """Publish a named set of arrays; ``{name: handle}``."""
    return {
        name: share_array(np.asarray(array), directory)
        for name, array in arrays.items()
    }


def _load(ref: SharedArrayRef) -> np.ndarray:
    cached = _RESOLVED.get(ref.path)
    if cached is None:
        cached = np.load(ref.path, mmap_mode="r")
        if str(cached.dtype) != ref.dtype or tuple(cached.shape) != ref.shape:
            raise ValueError(
                f"shared array at {ref.path} is "
                f"{cached.dtype}{tuple(cached.shape)}, handle expects "
                f"{ref.dtype}{ref.shape}"
            )
        _RESOLVED[ref.path] = cached
    return cached


def resolve_refs(obj):
    """Recursively swap every :class:`SharedArrayRef` for its memory map.

    Walks dicts, lists and tuples (payload containers); every other value
    passes through untouched.  A payload with no handles comes back
    unchanged, so the serial and thread backends pay only the walk.
    """
    if isinstance(obj, SharedArrayRef):
        return _load(obj)
    if isinstance(obj, dict):
        return {key: resolve_refs(value) for key, value in obj.items()}
    if isinstance(obj, (list, tuple)):
        return type(obj)(resolve_refs(value) for value in obj)
    return obj

"""Pluggable parallel execution engine for offline sweeps.

The paper's offline workloads — bulk dataset generation and multi-topology
training sweeps — are embarrassingly parallel, yet until now every candidate
ran strictly serially.  :class:`ParallelExecutor` puts one ``map_tasks()``
API in front of three interchangeable backends (``serial``, ``thread``,
``process``) with four guarantees the sweeps depend on:

* **Determinism** — every task receives its own
  :class:`numpy.random.Generator` spawned from one root
  :class:`numpy.random.SeedSequence` by task index, so all three backends
  produce byte-identical results for the same seed.  Scheduling order can
  never leak into the data.
* **Containment** — a task that raises is converted into a typed
  :class:`TaskFailure` in its result slot instead of killing the sweep;
  a hard worker death (e.g. a SIGKILL'd process breaking the pool) fails
  the affected tasks the same way and the broken pool is rebuilt on the
  next call.  With a :class:`~repro.reliability.retry.RetryPolicy`
  attached, failed tasks are re-attempted in the parent process under the
  policy's backoff budget before being declared dead.
* **Warm reuse** — the worker pool is built once per executor lifetime
  and reused across ``map_tasks`` calls, so a campaign of many waves pays
  process spawn-up exactly once (:attr:`pool_starts` counts rebuilds; the
  regression contract is that a second call on the same executor records
  zero pool-startup time).  ``close()`` — or the context-manager exit —
  releases the pool and any scattered arrays.  Tasks are dispatched in
  chunks (several tasks per pool submission) to amortize per-future
  overhead; chunking never changes per-task seeds, so it is invisible in
  the results.
* **Observability** — each ``map_tasks`` call opens a ``compute.map`` span,
  feeds per-task timing histograms and outcome counters, and records a
  per-phase breakdown (pool startup / dispatch / task compute / result
  wait) in :attr:`last_map_stats`, so a scaling regression is diagnosable
  instead of a single opaque ratio.

Large inputs shared by every task should be published once with
:meth:`ParallelExecutor.scatter` instead of being embedded per payload:
on the ``process`` backend the arrays are written to the executor's
scratch directory and replaced by tiny :class:`~repro.compute.sharing.SharedArrayRef`
handles that workers resolve into read-only memory maps (mapped once per
worker, not once per task); on ``serial``/``thread`` the same call is a
pass-through, so calling code stays backend-agnostic.

Worker functions must have the signature ``fn(payload, rng)`` and — for
the ``process`` backend — be importable module-level callables with
picklable payloads and results.  An optional ``chaos`` hook (typically a
:class:`~repro.reliability.faults.FaultInjector` wrapping a no-op source)
is invoked with the task index before each attempt, which is how the
chaos suite kills workers mid-sweep deterministically.
"""

from __future__ import annotations

import concurrent.futures
import os
import shutil
import tempfile
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.compute.sharing import resolve_refs, share_arrays
from repro.observability.runtime import get_registry, get_tracer
from repro.reliability.retry import RetryExhaustedError, RetryPolicy

__all__ = ["BACKENDS", "TaskError", "TaskFailure", "ParallelExecutor"]

BACKENDS = ("serial", "thread", "process")

# Phase keys reported in ParallelExecutor.last_map_stats.
_PHASES = ("pool_startup_s", "dispatch_s", "task_compute_s", "result_wait_s")


class TaskError(RuntimeError):
    """A task attempt failed inside a worker (original error re-packaged)."""

    def __init__(self, error_type: str, message: str):
        super().__init__(f"{error_type}: {message}")
        self.error_type = error_type
        self.error_message = message


@dataclass(frozen=True)
class TaskFailure:
    """A task that stayed dead after every permitted attempt.

    Occupies the task's slot in the ``map_tasks`` result list so callers
    keep positional alignment with their payloads; ``error_type`` names
    the original exception class raised in the worker.
    """

    index: int
    label: str
    error_type: str
    message: str
    attempts: int = 1
    detail: dict = field(default_factory=dict)


def _execute_task(fn, payload, seed_seq, index, chaos):
    """Run one task attempt; never raises (returns a tagged outcome).

    Module-level so the process backend can pickle it.  The per-task
    generator is rebuilt from the spawned ``SeedSequence`` child here, in
    the worker, so every backend (and every retry) sees the exact same
    stream.  Scattered array handles are resolved into memory maps here
    too, inside the containment boundary.  Exceptions are captured and
    re-packaged — a raising task must cost one result slot, never the
    pool.
    """
    start = time.perf_counter()
    try:
        if chaos is not None:
            chaos(index)
        payload = resolve_refs(payload)
        rng = np.random.default_rng(seed_seq)
        result = fn(payload, rng)
        return True, result, None, None, time.perf_counter() - start
    except Exception as error:  # noqa: BLE001 — containment is the contract
        return (
            False,
            None,
            type(error).__name__,
            str(error),
            time.perf_counter() - start,
        )


def _execute_chunk(fn, items, chaos):
    """Run one chunk of tasks back-to-back in a single worker dispatch.

    ``items`` is ``[(index, payload, seed_seq), ...]``; one outcome tuple
    comes back per item, index-tagged so the parent can reassemble the
    wave in payload order regardless of chunking.
    """
    return [
        (index, _execute_task(fn, payload, seed_seq, index, chaos))
        for index, payload, seed_seq in items
    ]


def _warm_worker(delay_s: float) -> int:
    """No-op task used to force worker spin-up at pool creation time.

    The tiny sleep keeps early workers busy long enough that the pool's
    on-demand spawning brings up the full complement, so spawn cost is
    paid (and measured) once, at startup, instead of leaking into the
    first wave's dispatch.
    """
    time.sleep(delay_s)
    return os.getpid()


class ParallelExecutor:
    """One ``map_tasks()`` API over serial / thread / process backends."""

    def __init__(
        self,
        backend: str = "serial",
        max_workers: Optional[int] = None,
        retry_policy: Optional[RetryPolicy] = None,
        retries: int = 0,
        chaos: Optional[Callable[[int], None]] = None,
        seed: int = 0,
        chunksize: Optional[int] = None,
    ):
        if backend not in BACKENDS:
            raise ValueError(f"backend must be one of {BACKENDS}, got {backend!r}")
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        if chunksize is not None and chunksize < 1:
            raise ValueError("chunksize must be >= 1")
        self.backend = backend
        self.max_workers = (
            int(max_workers) if max_workers is not None
            else max(os.cpu_count() or 1, 1)
        )
        if retry_policy is None and retries > 0:
            # The wave execution was attempt #1; the policy governs only
            # the in-parent re-attempts, so ``retries=2`` means three
            # attempts total.
            retry_policy = RetryPolicy(
                max_attempts=retries,
                base_delay=0.0,
                jitter=0.0,
                retry_on=(TaskError,),
            )
        self.retry_policy = retry_policy
        self.chaos = chaos
        self.seed = int(seed)
        self.chunksize = chunksize
        # Warm-pool state: one pool per executor lifetime, rebuilt only
        # after close() or a hard break.
        self._pool: Optional[concurrent.futures.Executor] = None
        self._scratch: Optional[str] = None
        self.pool_starts = 0
        self.last_map_stats: Dict[str, object] = {}
        registry = get_registry()
        self._m_tasks = registry.counter(
            "compute_tasks_total", "executor tasks by backend and outcome"
        )
        self._m_task_seconds = registry.histogram(
            "compute_task_seconds", "per-task execution time by backend"
        )
        self._m_pool_starts = registry.counter(
            "compute_pool_starts_total", "worker pools built by backend"
        )
        self._m_phase_seconds = registry.histogram(
            "compute_map_phase_seconds", "map_tasks time by phase"
        )

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Release the warm pool and any scattered arrays.

        Idempotent; the executor stays usable — the next ``map_tasks``
        simply pays pool startup again.
        """
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self._scratch is not None:
            shutil.rmtree(self._scratch, ignore_errors=True)
            self._scratch = None

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):
        # Best-effort cleanup for executors that were never close()d; the
        # warm pool must not outlive its owner.
        try:
            if self._pool is not None:
                self._pool.shutdown(wait=False)
            if self._scratch is not None:
                shutil.rmtree(self._scratch, ignore_errors=True)
        except Exception:  # noqa: BLE001 — interpreter may be tearing down
            pass

    def _ensure_pool(self):
        """Return ``(pool, startup_seconds)``; builds and warms on demand."""
        if self._pool is not None:
            return self._pool, 0.0
        start = time.perf_counter()
        if self.backend == "thread":
            pool = concurrent.futures.ThreadPoolExecutor(
                max_workers=self.max_workers
            )
        else:
            pool = concurrent.futures.ProcessPoolExecutor(
                max_workers=self.max_workers
            )
            # Force the full worker complement up-front: queued warm-up
            # tasks keep early workers busy so on-demand spawning starts
            # the rest, and spawn+import cost is attributed to startup.
            concurrent.futures.wait([
                pool.submit(_warm_worker, 0.02)
                for _ in range(self.max_workers)
            ])
        self._pool = pool
        self.pool_starts += 1
        self._m_pool_starts.inc(backend=self.backend)
        return pool, time.perf_counter() - start

    def _discard_pool(self) -> None:
        """Drop a broken pool so the next call rebuilds a fresh one."""
        if self._pool is not None:
            self._pool.shutdown(wait=False)
            self._pool = None

    # -- shared-memory handoff ----------------------------------------------

    def scatter(self, arrays: Mapping[str, np.ndarray]) -> Dict[str, object]:
        """Publish large arrays once for every task of a sweep.

        On the ``process`` backend each array is written to the
        executor's scratch directory and replaced by a picklable
        :class:`~repro.compute.sharing.SharedArrayRef`; task payloads
        carry the handle and workers resolve it into a read-only memory
        map (once per worker, cached).  On ``serial``/``thread`` the
        arrays are returned as-is — same calling code, no copies, no
        disk round-trip.  Scattered files live until :meth:`close`.
        """
        if self.backend != "process":
            return {name: np.asarray(value) for name, value in arrays.items()}
        if self._scratch is None:
            self._scratch = tempfile.mkdtemp(prefix="repro-scatter-")
        return share_arrays(arrays, self._scratch)

    # -- the one API ---------------------------------------------------------

    def map_tasks(
        self,
        fn: Callable,
        payloads: Sequence,
        label: str = "map",
        seed: Optional[int] = None,
    ) -> List:
        """Run ``fn(payload, rng)`` over every payload; order-preserving.

        Returns one entry per payload: the task's return value, or a
        :class:`TaskFailure` if it failed every permitted attempt.  The
        per-task ``rng`` is ``default_rng(SeedSequence(seed).spawn(n)[i])``
        regardless of backend or chunking, so results are byte-identical
        across ``serial``/``thread``/``process`` for a fixed seed.
        """
        payloads = list(payloads)
        n = len(payloads)
        root = np.random.SeedSequence(self.seed if seed is None else seed)
        children = root.spawn(n) if n else []
        failures = 0
        retried_ok = 0
        wall_start = time.perf_counter()
        with get_tracer().start_span(
            "compute.map",
            attributes={"backend": self.backend, "tasks": n, "label": label},
        ) as span:
            outcomes, phases = self._run_wave(fn, payloads, children)
            results: List = [None] * n
            for index, outcome in enumerate(outcomes):
                ok, value, error_type, message, duration = outcome
                self._m_task_seconds.observe(duration, backend=self.backend)
                phases["task_compute_s"] += duration
                if ok:
                    self._m_tasks.inc(backend=self.backend, outcome="ok")
                    results[index] = value
                    continue
                value, attempts, recovered = self._retry_in_parent(
                    fn, payloads[index], children[index], index,
                    error_type, message,
                )
                if recovered:
                    retried_ok += 1
                    self._m_tasks.inc(backend=self.backend, outcome="retried_ok")
                    results[index] = value
                else:
                    failures += 1
                    self._m_tasks.inc(backend=self.backend, outcome="failed")
                    error_type, message = value
                    results[index] = TaskFailure(
                        index=index,
                        label=label,
                        error_type=error_type,
                        message=message,
                        attempts=attempts,
                    )
            stats: Dict[str, object] = {
                "backend": self.backend,
                "label": label,
                "tasks": n,
                "wall_s": time.perf_counter() - wall_start,
                **phases,
            }
            self.last_map_stats = stats
            for phase in _PHASES:
                self._m_phase_seconds.observe(
                    float(stats[phase]), backend=self.backend, phase=phase
                )
                span.set_attribute(phase, float(stats[phase]))
            span.set_attribute("failures", failures)
            span.set_attribute("retried_ok", retried_ok)
        return results

    # -- backend waves -------------------------------------------------------

    def _chunks(self, payloads, children) -> List[List[tuple]]:
        """Index-tagged task chunks; size amortizes dispatch overhead."""
        items = [
            (index, payload, child)
            for index, (payload, child) in enumerate(zip(payloads, children))
        ]
        size = self.chunksize
        if size is None:
            # Aim for ~4 chunks per worker: coarse enough to amortize
            # dispatch, fine enough that one slow chunk cannot stall the
            # wave's tail.
            size = max(1, -(-len(items) // (self.max_workers * 4)))
        return [items[i:i + size] for i in range(0, len(items), size)]

    def _run_wave(self, fn, payloads, children):
        """One parallel pass over all payloads.

        Returns ``(outcomes, phases)`` where ``outcomes[i]`` is task
        ``i``'s outcome tuple and ``phases`` carries the per-phase wall
        times (``task_compute_s`` is accumulated by the caller from the
        per-task durations).
        """
        phases = {phase: 0.0 for phase in _PHASES}
        if self.backend == "serial" or len(payloads) <= 1:
            return [
                _execute_task(fn, payload, child, index, self.chaos)
                for index, (payload, child) in enumerate(zip(payloads, children))
            ], phases
        pool, phases["pool_startup_s"] = self._ensure_pool()
        chunks = self._chunks(payloads, children)
        dispatch_start = time.perf_counter()
        futures = [
            pool.submit(_execute_chunk, fn, chunk, self.chaos)
            for chunk in chunks
        ]
        phases["dispatch_s"] = time.perf_counter() - dispatch_start
        outcomes: List[Optional[tuple]] = [None] * len(payloads)
        pool_broken = False
        wait_start = time.perf_counter()
        for chunk, future in zip(chunks, futures):
            try:
                for index, outcome in future.result():
                    outcomes[index] = outcome
            except BaseException as error:  # noqa: BLE001
                # A hard worker death (broken pool, unpicklable result)
                # must cost its chunk's tasks, not the sweep: report each
                # like an in-task failure and let the retry path re-run
                # them in-parent.
                if isinstance(error, concurrent.futures.BrokenExecutor):
                    pool_broken = True
                for index, _payload, _child in chunk:
                    outcomes[index] = (
                        False, None, type(error).__name__, str(error), 0.0
                    )
        phases["result_wait_s"] = time.perf_counter() - wait_start
        if pool_broken:
            self._discard_pool()
        return outcomes, phases

    # -- retry path ----------------------------------------------------------

    def _retry_in_parent(self, fn, payload, child, index, error_type, message):
        """Re-attempt a failed task under the retry policy, in-process.

        Retries run in the parent so a repeatedly crashing worker cannot
        take the pool down again; determinism holds because the task rng
        is rebuilt from the same SeedSequence child on every attempt.
        Returns ``(value_or_error, attempts, recovered)``.
        """
        if self.retry_policy is None:
            return (error_type, message), 1, False
        attempts = [1]

        def attempt():
            attempts[0] += 1
            ok, value, retry_type, retry_message, duration = _execute_task(
                fn, payload, child, index, self.chaos
            )
            self._m_task_seconds.observe(duration, backend=self.backend)
            if not ok:
                raise TaskError(retry_type, retry_message)
            return value

        try:
            return self.retry_policy.call(attempt), attempts[0], True
        except RetryExhaustedError as error:
            cause = error.__cause__
            if isinstance(cause, TaskError):
                return (cause.error_type, cause.error_message), attempts[0], False
            return (error_type, message), attempts[0], False

    def __repr__(self) -> str:
        return (
            f"<ParallelExecutor backend={self.backend!r} "
            f"max_workers={self.max_workers} "
            f"pool={'warm' if self._pool is not None else 'cold'}>"
        )

"""Pluggable parallel execution engine for offline sweeps.

The paper's offline workloads — bulk dataset generation and multi-topology
training sweeps — are embarrassingly parallel, yet until now every candidate
ran strictly serially.  :class:`ParallelExecutor` puts one ``map_tasks()``
API in front of three interchangeable backends (``serial``, ``thread``,
``process``) with three guarantees the sweeps depend on:

* **Determinism** — every task receives its own
  :class:`numpy.random.Generator` spawned from one root
  :class:`numpy.random.SeedSequence` by task index, so all three backends
  produce byte-identical results for the same seed.  Scheduling order can
  never leak into the data.
* **Containment** — a task that raises is converted into a typed
  :class:`TaskFailure` in its result slot instead of killing the sweep;
  a hard worker death (e.g. a SIGKILL'd process breaking the pool) fails
  the affected tasks the same way.  With a
  :class:`~repro.reliability.retry.RetryPolicy` attached, failed tasks are
  re-attempted in the parent process under the policy's backoff budget
  before being declared dead.
* **Observability** — each ``map_tasks`` call opens a ``compute.map`` span
  and feeds per-task timing histograms and outcome counters, so a sweep's
  scaling behaviour is measurable, not guessed.

Worker functions must have the signature ``fn(payload, rng)`` and — for
the ``process`` backend — be importable module-level callables with
picklable payloads and results.  An optional ``chaos`` hook (typically a
:class:`~repro.reliability.faults.FaultInjector` wrapping a no-op source)
is invoked with the task index before each attempt, which is how the
chaos suite kills workers mid-sweep deterministically.
"""

from __future__ import annotations

import concurrent.futures
import os
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.observability.runtime import get_registry, get_tracer
from repro.reliability.retry import RetryExhaustedError, RetryPolicy

__all__ = ["BACKENDS", "TaskError", "TaskFailure", "ParallelExecutor"]

BACKENDS = ("serial", "thread", "process")


class TaskError(RuntimeError):
    """A task attempt failed inside a worker (original error re-packaged)."""

    def __init__(self, error_type: str, message: str):
        super().__init__(f"{error_type}: {message}")
        self.error_type = error_type
        self.error_message = message


@dataclass(frozen=True)
class TaskFailure:
    """A task that stayed dead after every permitted attempt.

    Occupies the task's slot in the ``map_tasks`` result list so callers
    keep positional alignment with their payloads; ``error_type`` names
    the original exception class raised in the worker.
    """

    index: int
    label: str
    error_type: str
    message: str
    attempts: int = 1
    detail: dict = field(default_factory=dict)


def _execute_task(fn, payload, seed_seq, index, chaos):
    """Run one task attempt; never raises (returns a tagged outcome).

    Module-level so the process backend can pickle it.  The per-task
    generator is rebuilt from the spawned ``SeedSequence`` child here, in
    the worker, so every backend (and every retry) sees the exact same
    stream.  Exceptions are captured and re-packaged — a raising task must
    cost one result slot, never the pool.
    """
    start = time.perf_counter()
    try:
        if chaos is not None:
            chaos(index)
        rng = np.random.default_rng(seed_seq)
        result = fn(payload, rng)
        return True, result, None, None, time.perf_counter() - start
    except Exception as error:  # noqa: BLE001 — containment is the contract
        return (
            False,
            None,
            type(error).__name__,
            str(error),
            time.perf_counter() - start,
        )


class ParallelExecutor:
    """One ``map_tasks()`` API over serial / thread / process backends."""

    def __init__(
        self,
        backend: str = "serial",
        max_workers: Optional[int] = None,
        retry_policy: Optional[RetryPolicy] = None,
        retries: int = 0,
        chaos: Optional[Callable[[int], None]] = None,
        seed: int = 0,
    ):
        if backend not in BACKENDS:
            raise ValueError(f"backend must be one of {BACKENDS}, got {backend!r}")
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        self.backend = backend
        self.max_workers = (
            int(max_workers) if max_workers is not None
            else max(os.cpu_count() or 1, 1)
        )
        if retry_policy is None and retries > 0:
            # The wave execution was attempt #1; the policy governs only
            # the in-parent re-attempts, so ``retries=2`` means three
            # attempts total.
            retry_policy = RetryPolicy(
                max_attempts=retries,
                base_delay=0.0,
                jitter=0.0,
                retry_on=(TaskError,),
            )
        self.retry_policy = retry_policy
        self.chaos = chaos
        self.seed = int(seed)
        registry = get_registry()
        self._m_tasks = registry.counter(
            "compute_tasks_total", "executor tasks by backend and outcome"
        )
        self._m_task_seconds = registry.histogram(
            "compute_task_seconds", "per-task execution time by backend"
        )

    # -- the one API ---------------------------------------------------------

    def map_tasks(
        self,
        fn: Callable,
        payloads: Sequence,
        label: str = "map",
        seed: Optional[int] = None,
    ) -> List:
        """Run ``fn(payload, rng)`` over every payload; order-preserving.

        Returns one entry per payload: the task's return value, or a
        :class:`TaskFailure` if it failed every permitted attempt.  The
        per-task ``rng`` is ``default_rng(SeedSequence(seed).spawn(n)[i])``
        regardless of backend, so results are byte-identical across
        ``serial``/``thread``/``process`` for a fixed seed.
        """
        payloads = list(payloads)
        n = len(payloads)
        root = np.random.SeedSequence(self.seed if seed is None else seed)
        children = root.spawn(n) if n else []
        failures = 0
        retried_ok = 0
        with get_tracer().start_span(
            "compute.map",
            attributes={"backend": self.backend, "tasks": n, "label": label},
        ) as span:
            outcomes = self._run_wave(fn, payloads, children)
            results: List = [None] * n
            for index, outcome in enumerate(outcomes):
                ok, value, error_type, message, duration = outcome
                self._m_task_seconds.observe(duration, backend=self.backend)
                if ok:
                    self._m_tasks.inc(backend=self.backend, outcome="ok")
                    results[index] = value
                    continue
                value, attempts, recovered = self._retry_in_parent(
                    fn, payloads[index], children[index], index,
                    error_type, message,
                )
                if recovered:
                    retried_ok += 1
                    self._m_tasks.inc(backend=self.backend, outcome="retried_ok")
                    results[index] = value
                else:
                    failures += 1
                    self._m_tasks.inc(backend=self.backend, outcome="failed")
                    error_type, message = value
                    results[index] = TaskFailure(
                        index=index,
                        label=label,
                        error_type=error_type,
                        message=message,
                        attempts=attempts,
                    )
            span.set_attribute("failures", failures)
            span.set_attribute("retried_ok", retried_ok)
        return results

    # -- backend waves -------------------------------------------------------

    def _run_wave(self, fn, payloads, children) -> List[tuple]:
        """One parallel pass over all payloads; one outcome tuple each."""
        if self.backend == "serial" or len(payloads) <= 1:
            return [
                _execute_task(fn, payload, child, index, self.chaos)
                for index, (payload, child) in enumerate(zip(payloads, children))
            ]
        if self.backend == "thread":
            pool_cls = concurrent.futures.ThreadPoolExecutor
        else:
            pool_cls = concurrent.futures.ProcessPoolExecutor
        workers = min(self.max_workers, len(payloads))
        outcomes: List[tuple] = []
        with pool_cls(max_workers=workers) as pool:
            futures = [
                pool.submit(_execute_task, fn, payload, child, index, self.chaos)
                for index, (payload, child) in enumerate(zip(payloads, children))
            ]
            for future in futures:
                try:
                    outcomes.append(future.result())
                except BaseException as error:  # noqa: BLE001
                    # A hard worker death (broken pool, unpicklable result)
                    # must cost its tasks, not the sweep: report it like an
                    # in-task failure and let the retry path re-run it
                    # in-parent.
                    outcomes.append(
                        (False, None, type(error).__name__, str(error), 0.0)
                    )
        return outcomes

    # -- retry path ----------------------------------------------------------

    def _retry_in_parent(self, fn, payload, child, index, error_type, message):
        """Re-attempt a failed task under the retry policy, in-process.

        Retries run in the parent so a repeatedly crashing worker cannot
        take the pool down again; determinism holds because the task rng
        is rebuilt from the same SeedSequence child on every attempt.
        Returns ``(value_or_error, attempts, recovered)``.
        """
        if self.retry_policy is None:
            return (error_type, message), 1, False
        attempts = [1]

        def attempt():
            attempts[0] += 1
            ok, value, retry_type, retry_message, duration = _execute_task(
                fn, payload, child, index, self.chaos
            )
            self._m_task_seconds.observe(duration, backend=self.backend)
            if not ok:
                raise TaskError(retry_type, retry_message)
            return value

        try:
            return self.retry_policy.call(attempt), attempts[0], True
        except RetryExhaustedError as error:
            cause = error.__cause__
            if isinstance(cause, TaskError):
                return (cause.error_type, cause.error_message), attempts[0], False
            return (error_type, message), attempts[0], False

    def __repr__(self) -> str:
        return (
            f"<ParallelExecutor backend={self.backend!r} "
            f"max_workers={self.max_workers}>"
        )

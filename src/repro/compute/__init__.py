"""Compute layer: parallel execution + content-addressed artifact cache.

The paper's scaling axis is offline throughput — "a sufficient number of
simulated and labelled measurement series can be generated in minutes" and
whole topology tables swept over them.  This package makes those two hot
paths scale with the hardware:

* :mod:`repro.compute.executor` — :class:`ParallelExecutor`, one
  ``map_tasks()`` API over ``serial``/``thread``/``process`` backends with
  per-task :class:`numpy.random.SeedSequence`-spawned generators
  (byte-identical results on every backend), typed :class:`TaskFailure`
  containment and :class:`~repro.reliability.retry.RetryPolicy`-driven
  re-attempts;
* :mod:`repro.compute.cache` — :class:`ArtifactCache`, artifacts keyed by
  a canonical SHA-256 of their generating config, stored as
  :mod:`repro.storage.integrity` envelopes with verify-on-read, corrupt
  entry quarantine and a size-bounded LRU evict;
* :mod:`repro.compute.datasets` — cache-aware wrappers deriving the
  canonical generating configs of the MS and NMR bulk dataset generators;
* :mod:`repro.compute.sharing` — publish-once / map-many dataset handoff
  for the process backend: arrays published as content-addressed ``.npy``
  files, carried through payloads as tiny :class:`SharedArrayRef` handles
  and resolved into per-worker read-only memory maps.

Layering: ``compute`` sits beside ``reliability``/``storage``/
``observability`` (it imports all three) and below ``core``, which fans
training sweeps out over the executor.
"""

from repro.compute.cache import (
    CACHE_FORMAT_VERSION,
    ArtifactCache,
    canonical_blob,
    canonical_key,
)
from repro.compute.datasets import (
    generate_ms_dataset,
    generate_nmr_dataset,
    ms_dataset_config,
    nmr_dataset_config,
)
from repro.compute.executor import (
    BACKENDS,
    ParallelExecutor,
    TaskError,
    TaskFailure,
)
from repro.compute.sharing import (
    SharedArrayRef,
    resolve_refs,
    share_array,
    share_arrays,
)

__all__ = [
    "ArtifactCache",
    "BACKENDS",
    "CACHE_FORMAT_VERSION",
    "ParallelExecutor",
    "SharedArrayRef",
    "TaskError",
    "TaskFailure",
    "canonical_blob",
    "canonical_key",
    "generate_ms_dataset",
    "generate_nmr_dataset",
    "ms_dataset_config",
    "nmr_dataset_config",
    "resolve_refs",
    "share_array",
    "share_arrays",
]

"""Cache-aware wrappers around the two bulk dataset generators.

The MS and NMR simulators are pure functions of their configuration and a
seed, which makes their output perfectly cacheable: these helpers derive
the canonical generating config for each simulator — every parameter that
can change a byte of the output — and route generation through an
:class:`~repro.compute.cache.ArtifactCache`.

The config builders are public on purpose: tests pin the key derivation,
and the CLI/bench layers use them to predict hits without generating.
"""

from __future__ import annotations

import dataclasses
from typing import Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.compute.cache import ArtifactCache, canonical_key

__all__ = [
    "ms_dataset_config",
    "nmr_dataset_config",
    "generate_ms_dataset",
    "generate_nmr_dataset",
]


def ms_dataset_config(
    simulator,
    compound_names: Sequence[str],
    n: int,
    seed: int,
    normalize: str = "max",
    with_noise: bool = True,
) -> dict:
    """The canonical generating config of one simulated MS dataset.

    Covers the full byte-determining surface: instrument characteristics,
    m/z axis, compound set (order matters — it is the label column order),
    sample count, seed, normalization and noise switch.
    """
    axis = simulator.axis
    return {
        "kind": "ms_dataset",
        "characteristics": dataclasses.asdict(simulator.characteristics),
        "axis": {"start": axis.start, "stop": axis.stop, "step": axis.step},
        "compounds": list(compound_names),
        "n": int(n),
        "seed": int(seed),
        "normalize": str(normalize),
        "with_noise": bool(with_noise),
    }


def nmr_dataset_config(
    simulator,
    n: int,
    seed: int,
    with_noise: bool = True,
    chunk_size: int = 2048,
) -> dict:
    """The canonical generating config of one synthetic NMR dataset.

    ``chunk_size`` is part of the key because chunking changes the RNG
    consumption order of the per-chunk noise draws.
    """
    axis = simulator.models.axis
    models = [
        {
            "name": model.name,
            "peaks": [dataclasses.asdict(peak) for peak in model.peaks],
        }
        for model in simulator.models.models
    ]
    return {
        "kind": "nmr_dataset",
        "axis": {"start": axis.start, "stop": axis.stop, "points": axis.points},
        "models": models,
        "ranges": {name: list(span) for name, span in simulator.ranges.items()},
        "shift_sigma": simulator.shift_sigma,
        "broadening_sigma": simulator.broadening_sigma,
        "noise_sigma": simulator.noise_sigma,
        "baseline_amplitude": simulator.baseline_amplitude,
        "phase_sigma": simulator.phase_sigma,
        "peak_jitter": simulator.peak_jitter,
        "n": int(n),
        "seed": int(seed),
        "with_noise": bool(with_noise),
        "chunk_size": int(chunk_size),
    }


def generate_ms_dataset(
    simulator,
    compound_names: Sequence[str],
    n: int,
    seed: int,
    cache: Optional[ArtifactCache] = None,
    normalize: str = "max",
    with_noise: bool = True,
) -> Tuple[np.ndarray, np.ndarray, Mapping]:
    """Generate (or reload) a labelled simulated MS dataset.

    Returns ``(x, y, info)`` where ``info`` records the cache ``key`` and
    whether this call was a ``hit``.  Without a cache the generator runs
    directly and ``info["hit"]`` is False.
    """
    config = ms_dataset_config(
        simulator, compound_names, n, seed, normalize=normalize,
        with_noise=with_noise,
    )

    def produce():
        x, y = simulator.generate_dataset(
            compound_names, n, np.random.default_rng(seed),
            normalize=normalize, with_noise=with_noise,
        )
        return {"x": x, "y": y}

    if cache is None:
        arrays = produce()
        return arrays["x"], arrays["y"], {"key": canonical_key(config), "hit": False}
    arrays, key, hit = cache.get_or_create(config, produce)
    return arrays["x"], arrays["y"], {"key": key, "hit": hit}


def generate_nmr_dataset(
    simulator,
    n: int,
    seed: int,
    cache: Optional[ArtifactCache] = None,
    with_noise: bool = True,
    chunk_size: int = 2048,
) -> Tuple[np.ndarray, np.ndarray, Mapping]:
    """Generate (or reload) a labelled synthetic NMR dataset.

    Same contract as :func:`generate_ms_dataset`.
    """
    config = nmr_dataset_config(
        simulator, n, seed, with_noise=with_noise, chunk_size=chunk_size
    )

    def produce():
        x, y = simulator.generate_dataset(
            n, np.random.default_rng(seed),
            with_noise=with_noise, chunk_size=chunk_size,
        )
        return {"x": x, "y": y}

    if cache is None:
        arrays = produce()
        return arrays["x"], arrays["y"], {"key": canonical_key(config), "hit": False}
    arrays, key, hit = cache.get_or_create(config, produce)
    return arrays["x"], arrays["y"], {"key": key, "hit": hit}

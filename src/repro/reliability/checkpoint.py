"""Checkpoint/resume for unattended training, on verified storage.

The paper's Tool 4 runs "without user interaction" — which means nobody is
watching when the process dies three topologies into a sweep, and nobody
notices when the disk quietly returns different bytes than were written.
A :class:`CheckpointManager` persists models (architecture + weights +
optimizer state + a JSON state payload) as checksummed
:mod:`repro.storage.integrity` envelopes, keeps the last N *generations*
per name, verifies every load, falls back to the newest generation that
still verifies, and quarantines unreadable files instead of crashing on —
or silently reusing — them.  The :class:`Checkpoint` callback snapshots a
model periodically during ``fit``;
:class:`~repro.core.training_service.TrainingService` builds on both so
``train_all(resume=True)`` restarts a killed sweep from the last verified
state.
"""

from __future__ import annotations

import io
import itertools
import json
import os
import re
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.nn.model import Sequential
from repro.nn.optimizers import Optimizer, get_optimizer
from repro.nn.serialization import model_from_dict, model_to_dict
from repro.nn.training import Callback
from repro.observability.metrics import MetricsRegistry
from repro.observability.runtime import get_registry
from repro.storage.integrity import (
    CorruptArtifactError,
    SchemaVersionError,
    atomic_write_bytes,
    read_envelope,
    write_envelope,
)

__all__ = ["CheckpointData", "CheckpointManager", "Checkpoint"]

_OPT_PREFIX = "opt:"
QUARANTINE_DIR = "quarantine"
_GENERATION_RE = re.compile(r"^(?P<name>.+)\.gen-(?P<generation>\d+)\.ckpt$")


@dataclass
class CheckpointData:
    """Everything :meth:`CheckpointManager.load` restores."""

    model: Sequential
    state: Dict[str, object]
    optimizer: Optional[Optimizer] = None
    generation: Optional[int] = None
    fell_back: bool = False


class CheckpointManager:
    """Named, verified, generational training checkpoints in one directory.

    Three kinds of entries live side by side: model checkpoint generations
    (``<name>.gen-<NNNNNN>.ckpt`` envelopes via :meth:`save`/:meth:`load`),
    small JSON state documents (``<name>.json`` via
    :meth:`save_state`/:meth:`load_state`, used e.g. for sweep progress)
    and a ``quarantine/`` subdirectory where files that fail verification
    are moved — never deleted — for post-mortem analysis.

    ``generations`` bounds how many verified snapshots survive per name
    (oldest pruned first); ``on_event`` receives ``(kind, detail)`` for
    every ``"quarantine"`` and ``"fallback"`` so callers can log them to
    provenance.  Legacy bare ``<name>.npz`` checkpoints written before the
    envelope format are still readable (tried last, after every
    generation).
    """

    def __init__(
        self,
        directory: Union[str, os.PathLike],
        generations: int = 3,
        fsync: bool = True,
        on_event: Optional[Callable[[str, dict], None]] = None,
        registry: Optional[MetricsRegistry] = None,
    ):
        if generations < 1:
            raise ValueError(f"generations must be >= 1, got {generations}")
        self.directory = os.fspath(directory)
        self.generations = int(generations)
        self.fsync = bool(fsync)
        self.on_event = on_event
        registry = registry if registry is not None else get_registry()
        self._m_saves = registry.counter(
            "checkpoint_saves_total", "checkpoint generations written"
        )
        self._m_loads = registry.counter(
            "checkpoint_loads_total", "checkpoint loads by result"
        )
        self._m_quarantines = registry.counter(
            "checkpoint_quarantines_total",
            "files moved to quarantine after failed verification",
        )
        self._m_fallbacks = registry.counter(
            "checkpoint_fallbacks_total",
            "loads served by an older generation",
        )
        self._m_save_seconds = registry.histogram(
            "checkpoint_save_seconds",
            "envelope write time (serialize + fsync) per save",
        )
        self._m_bytes = registry.counter(
            "checkpoint_bytes_written_total", "payload bytes persisted"
        )
        os.makedirs(self.directory, exist_ok=True)

    # -- events --------------------------------------------------------------

    def _emit(self, kind: str, detail: dict) -> None:
        if self.on_event is not None:
            self.on_event(kind, detail)

    # -- paths & generations -------------------------------------------------

    def _generation_path(self, name: str, generation: int) -> str:
        return os.path.join(self.directory, f"{name}.gen-{generation:06d}.ckpt")

    def _legacy_path(self, name: str) -> str:
        return os.path.join(self.directory, f"{name}.npz")

    def generations_of(self, name: str) -> List[int]:
        """Generation numbers on disk for ``name``, oldest first."""
        self._check_name(name)
        found = []
        for entry in os.listdir(self.directory):
            match = _GENERATION_RE.match(entry)
            if match and match.group("name") == name:
                found.append(int(match.group("generation")))
        return sorted(found)

    def path(self, name: str) -> str:
        """Path of the newest generation (or where the first would go)."""
        generations = self.generations_of(name)
        if generations:
            return self._generation_path(name, generations[-1])
        legacy = self._legacy_path(name)
        if os.path.exists(legacy):
            return legacy
        return self._generation_path(name, 1)

    def exists(self, name: str) -> bool:
        return bool(self.generations_of(name)) or os.path.exists(
            self._legacy_path(name)
        )

    def names(self) -> List[str]:
        found = set()
        for entry in os.listdir(self.directory):
            match = _GENERATION_RE.match(entry)
            if match:
                found.add(match.group("name"))
            elif entry.endswith(".npz") and not entry.startswith(".tmp-"):
                found.add(entry[:-4])
        return sorted(found)

    # -- quarantine ----------------------------------------------------------

    @property
    def quarantine_dir(self) -> str:
        return os.path.join(self.directory, QUARANTINE_DIR)

    def quarantined(self) -> List[str]:
        """Basenames currently held in quarantine."""
        if not os.path.isdir(self.quarantine_dir):
            return []
        return sorted(os.listdir(self.quarantine_dir))

    def _quarantine(self, path: str, reason: str) -> Optional[str]:
        """Move an unreadable file aside (never delete it)."""
        if not os.path.exists(path):
            return None
        os.makedirs(self.quarantine_dir, exist_ok=True)
        base = os.path.basename(path)
        for attempt in itertools.count():
            suffix = "" if attempt == 0 else f".{attempt}"
            destination = os.path.join(self.quarantine_dir, base + suffix)
            if not os.path.exists(destination):
                break
        os.replace(path, destination)
        self._m_quarantines.inc()
        self._emit(
            "quarantine",
            {"file": base, "quarantined_as": os.path.basename(destination),
             "reason": reason},
        )
        return destination

    # -- model checkpoints ---------------------------------------------------

    def save(
        self,
        name: str,
        model: Sequential,
        state: Optional[dict] = None,
        optimizer: Optional[Optimizer] = None,
        keep: Optional[int] = None,
    ) -> str:
        """Persist a new generation; prunes old ones past the retention cap.

        ``keep`` overrides the manager-wide ``generations`` retention for
        this save (e.g. the :class:`Checkpoint` callback's ``keep=``).
        """
        self._check_name(name)
        arrays = {
            "__config__": _json_array(model_to_dict(model)),
            "__state__": _json_array(dict(state or {})),
        }
        for i, weight in enumerate(model.get_weights()):
            arrays[f"w{i:04d}"] = weight
        if optimizer is not None:
            opt_state = optimizer.get_state()
            arrays["__optimizer__"] = _json_array(
                {
                    "config": optimizer.get_config(),
                    "iterations": opt_state["iterations"],
                }
            )
            for slot, entries in opt_state["slots"].items():
                for (layer, param), value in entries.items():
                    arrays[f"{_OPT_PREFIX}{slot}:{layer}:{param}"] = value
        generations = self.generations_of(name)
        generation = (generations[-1] + 1) if generations else 1
        target = self._generation_path(name, generation)
        buffer = io.BytesIO()
        np.savez(buffer, **arrays)
        payload = buffer.getvalue()
        with self._m_save_seconds.time():
            write_envelope(target, payload, fsync=self.fsync)
        self._m_saves.inc()
        self._m_bytes.inc(len(payload))
        self.prune(name, keep=keep)
        return target

    def prune(self, name: str, keep: Optional[int] = None) -> List[str]:
        """Delete the oldest generations beyond the retention cap."""
        limit = self.generations if keep is None else int(keep)
        if limit < 1:
            raise ValueError(f"keep must be >= 1, got {limit}")
        generations = self.generations_of(name)
        removed = []
        for generation in generations[: max(len(generations) - limit, 0)]:
            path = self._generation_path(name, generation)
            os.remove(path)
            removed.append(path)
        return removed

    def load(self, name: str, seed: int = 0) -> CheckpointData:
        """Rebuild model/optimizer from the newest generation that verifies.

        Generations are tried newest-first (then a legacy bare ``.npz`` if
        present); each candidate that fails checksum/format verification is
        moved to ``quarantine/`` and the next is tried.  Falling back past
        the newest generation emits a ``"fallback"`` event.  Raises
        :class:`~repro.storage.integrity.CorruptArtifactError` only when no
        candidate verifies.
        """
        candidates = self._candidates(name)
        if not candidates:
            raise FileNotFoundError(f"no checkpoint named {name!r}")
        failures = []
        for index, (generation, path) in enumerate(candidates):
            try:
                arrays = self._read_arrays(path)
            except (CorruptArtifactError, SchemaVersionError, OSError,
                    ValueError, KeyError) as error:
                reason = f"{type(error).__name__}: {error}"
                failures.append(reason)
                self._quarantine(path, reason)
                continue
            data = self._restore(arrays, seed=seed)
            data.generation = generation
            data.fell_back = index > 0
            if data.fell_back:
                self._m_fallbacks.inc()
                self._emit(
                    "fallback",
                    {"name": name, "generation": generation,
                     "skipped": index},
                )
            self._m_loads.inc(result="fallback" if data.fell_back else "ok")
            return data
        self._m_loads.inc(result="corrupt")
        raise CorruptArtifactError(
            f"no verifiable checkpoint generation for {name!r}: "
            + "; ".join(failures)
        )

    def _candidates(self, name: str) -> List[Tuple[Optional[int], str]]:
        """(generation, path) pairs to try, newest first; legacy last."""
        candidates: List[Tuple[Optional[int], str]] = [
            (generation, self._generation_path(name, generation))
            for generation in reversed(self.generations_of(name))
        ]
        legacy = self._legacy_path(name)
        if os.path.exists(legacy):
            candidates.append((None, legacy))
        return candidates

    @staticmethod
    def _read_arrays(path: str) -> Dict[str, np.ndarray]:
        if path.endswith(".ckpt"):
            payload = read_envelope(path)
            source: Union[str, io.BytesIO] = io.BytesIO(payload)
        else:  # legacy bare .npz — no checksum, parse errors become typed
            source = path
        try:
            with np.load(source, allow_pickle=False) as data:
                return {key: data[key] for key in data.files}
        except (CorruptArtifactError, SchemaVersionError):
            raise
        except Exception as error:
            raise CorruptArtifactError(
                f"unreadable checkpoint archive {path}: "
                f"{type(error).__name__}: {error}"
            ) from error

    def _restore(self, arrays: Dict[str, np.ndarray], seed: int) -> CheckpointData:
        config = _json_load(arrays["__config__"])
        # Legacy save_model archives carry no state payload.
        state = (
            _json_load(arrays["__state__"]) if "__state__" in arrays else {}
        )
        weight_keys = sorted(k for k in arrays if k.startswith("w"))
        weights = [arrays[k] for k in weight_keys]
        optimizer = None
        if "__optimizer__" in arrays:
            payload = _json_load(arrays["__optimizer__"])
            optimizer = get_optimizer(payload["config"])
            slots: Dict[str, Dict[tuple, np.ndarray]] = {}
            for key in arrays:
                if not key.startswith(_OPT_PREFIX):
                    continue
                slot, layer, param = key[len(_OPT_PREFIX):].split(":", 2)
                slots.setdefault(slot, {})[(int(layer), param)] = arrays[key]
            optimizer.set_state(
                {"iterations": payload["iterations"], "slots": slots}
            )
        model = model_from_dict(config, seed=seed)
        model.set_weights(weights)
        return CheckpointData(model=model, state=state, optimizer=optimizer)

    def delete(self, name: str) -> None:
        for generation in self.generations_of(name):
            os.remove(self._generation_path(name, generation))
        legacy = self._legacy_path(name)
        if os.path.exists(legacy):
            os.remove(legacy)

    # -- JSON state documents ------------------------------------------------

    def state_path(self, name: str) -> str:
        self._check_name(name)
        return os.path.join(self.directory, f"{name}.json")

    def save_state(self, name: str, payload: dict) -> str:
        """Atomically persist a small JSON document (sweep progress etc.)."""
        target = self.state_path(name)
        data = json.dumps(payload, default=float).encode("utf-8")
        return atomic_write_bytes(target, data, fsync=self.fsync)

    def load_state(self, name: str) -> Optional[dict]:
        """The stored document, or None if it was never saved.

        A sidecar that exists but does not parse (empty, truncated,
        garbage) is quarantined and reported as a typed
        :class:`~repro.storage.integrity.CorruptArtifactError` — callers
        decide whether to start fresh, never a raw ``JSONDecodeError``.
        """
        target = self.state_path(name)
        if not os.path.exists(target):
            return None
        try:
            with open(target, "rb") as handle:
                return json.loads(handle.read().decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as error:
            reason = f"{type(error).__name__}: {error}"
            self._quarantine(target, reason)
            raise CorruptArtifactError(
                f"corrupt state sidecar {target}: {reason}"
            ) from error

    def delete_state(self, name: str) -> None:
        target = self.state_path(name)
        if os.path.exists(target):
            os.remove(target)

    @staticmethod
    def _check_name(name: str) -> None:
        if not name or os.sep in name or (os.altsep and os.altsep in name):
            raise ValueError(f"invalid checkpoint name {name!r}")


class Checkpoint(Callback):
    """Training callback: snapshot the model every ``every`` epochs.

    The snapshot carries ``{"epoch": n, "metrics": {...}}`` plus the live
    optimizer state, so a killed ``fit`` can be resumed bit-exactly with
    ``fit(..., initial_epoch=n)`` after restoring weights and optimizer.

    ``keep`` bounds how many snapshot generations this callback retains
    for its name, delegating to the manager's generation GC; the default
    ``None`` adds no pruning of its own (the manager-wide retention still
    applies), preserving the old callback's behaviour.
    """

    def __init__(
        self,
        manager: CheckpointManager,
        name: str,
        every: int = 1,
        save_optimizer: bool = True,
        on_save=None,
        keep: Optional[int] = None,
    ):
        if every < 1:
            raise ValueError(f"every must be >= 1, got {every}")
        if keep is not None and keep < 1:
            raise ValueError(f"keep must be >= 1, got {keep}")
        self.manager = manager
        self.checkpoint_name = name
        self.every = int(every)
        self.save_optimizer = bool(save_optimizer)
        self.on_save = on_save  # called with (path, epoch) after each save
        self.keep = keep
        self.last_saved_epoch: Optional[int] = None

    def on_epoch_end(self, epoch, metrics):
        if epoch % self.every != 0:
            return
        path = self.manager.save(
            self.checkpoint_name,
            self.model,
            state={
                "epoch": int(epoch),
                "metrics": {k: float(v) for k, v in metrics.items()},
            },
            optimizer=self.model.optimizer if self.save_optimizer else None,
            keep=self.keep,
        )
        self.last_saved_epoch = int(epoch)
        if self.on_save is not None:
            self.on_save(path, int(epoch))


def _json_array(payload: dict) -> np.ndarray:
    return np.frombuffer(json.dumps(payload, default=float).encode("utf-8"),
                         dtype=np.uint8)


def _json_load(array: np.ndarray) -> dict:
    return json.loads(bytes(array.tobytes()).decode("utf-8"))

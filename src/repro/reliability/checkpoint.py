"""Checkpoint/resume for unattended training.

The paper's Tool 4 runs "without user interaction" — which means nobody is
watching when the process dies three topologies into a sweep.  A
:class:`CheckpointManager` persists models (architecture + weights +
optimizer state + a JSON state payload) in single crash-safe ``.npz``
archives, and the :class:`Checkpoint` callback snapshots a model
periodically during ``fit``.  :class:`~repro.core.training_service.
TrainingService` builds on both so ``train_all(resume=True)`` restarts a
killed sweep from the last completed topology/epoch instead of from
scratch.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass
from typing import Dict, List, Optional, Union

import numpy as np

from repro.nn.model import Sequential
from repro.nn.optimizers import Optimizer, get_optimizer
from repro.nn.serialization import (
    _apply_umask_mode,
    atomic_savez,
    model_from_dict,
    model_to_dict,
)
from repro.nn.training import Callback

__all__ = ["CheckpointData", "CheckpointManager", "Checkpoint"]

_OPT_PREFIX = "opt:"


@dataclass
class CheckpointData:
    """Everything :meth:`CheckpointManager.load` restores."""

    model: Sequential
    state: Dict[str, object]
    optimizer: Optional[Optimizer] = None


class CheckpointManager:
    """Named, crash-safe training checkpoints under one directory.

    Two kinds of entries live side by side: model checkpoints
    (``<name>.npz`` via :meth:`save`/:meth:`load`) and small JSON state
    documents (``<name>.json`` via :meth:`save_state`/:meth:`load_state`,
    used e.g. for sweep progress).  All writes are atomic.
    """

    def __init__(self, directory: Union[str, os.PathLike]):
        self.directory = os.fspath(directory)
        os.makedirs(self.directory, exist_ok=True)

    # -- model checkpoints -------------------------------------------------

    def path(self, name: str) -> str:
        self._check_name(name)
        return os.path.join(self.directory, f"{name}.npz")

    def exists(self, name: str) -> bool:
        return os.path.exists(self.path(name))

    def names(self) -> List[str]:
        return sorted(
            entry[:-4]
            for entry in os.listdir(self.directory)
            if entry.endswith(".npz") and not entry.startswith(".tmp-")
        )

    def save(
        self,
        name: str,
        model: Sequential,
        state: Optional[dict] = None,
        optimizer: Optional[Optimizer] = None,
    ) -> str:
        """Persist model + optional optimizer state + JSON-able ``state``."""
        arrays = {
            "__config__": _json_array(model_to_dict(model)),
            "__state__": _json_array(dict(state or {})),
        }
        for i, weight in enumerate(model.get_weights()):
            arrays[f"w{i:04d}"] = weight
        if optimizer is not None:
            opt_state = optimizer.get_state()
            arrays["__optimizer__"] = _json_array(
                {
                    "config": optimizer.get_config(),
                    "iterations": opt_state["iterations"],
                }
            )
            for slot, entries in opt_state["slots"].items():
                for (layer, param), value in entries.items():
                    arrays[f"{_OPT_PREFIX}{slot}:{layer}:{param}"] = value
        return atomic_savez(self.path(name), arrays)

    def load(self, name: str, seed: int = 0) -> CheckpointData:
        """Rebuild the model (and optimizer, if saved) from a checkpoint."""
        with np.load(self.path(name)) as data:
            config = _json_load(data["__config__"])
            state = _json_load(data["__state__"])
            weight_keys = sorted(k for k in data.files if k.startswith("w"))
            weights = [data[k] for k in weight_keys]
            optimizer = None
            if "__optimizer__" in data.files:
                payload = _json_load(data["__optimizer__"])
                optimizer = get_optimizer(payload["config"])
                slots: Dict[str, Dict[tuple, np.ndarray]] = {}
                for key in data.files:
                    if not key.startswith(_OPT_PREFIX):
                        continue
                    slot, layer, param = key[len(_OPT_PREFIX):].split(":", 2)
                    slots.setdefault(slot, {})[(int(layer), param)] = data[key]
                optimizer.set_state(
                    {"iterations": payload["iterations"], "slots": slots}
                )
        model = model_from_dict(config, seed=seed)
        model.set_weights(weights)
        return CheckpointData(model=model, state=state, optimizer=optimizer)

    def delete(self, name: str) -> None:
        if self.exists(name):
            os.remove(self.path(name))

    # -- JSON state documents ----------------------------------------------

    def state_path(self, name: str) -> str:
        self._check_name(name)
        return os.path.join(self.directory, f"{name}.json")

    def save_state(self, name: str, payload: dict) -> str:
        """Atomically persist a small JSON document (sweep progress etc.)."""
        target = self.state_path(name)
        fd, tmp = tempfile.mkstemp(dir=self.directory, prefix=".tmp-", suffix=".json")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, default=float)
            _apply_umask_mode(tmp)
            os.replace(tmp, target)
        except BaseException:
            if os.path.exists(tmp):
                os.remove(tmp)
            raise
        return target

    def load_state(self, name: str) -> Optional[dict]:
        """The stored document, or None if it was never saved."""
        target = self.state_path(name)
        if not os.path.exists(target):
            return None
        with open(target, "r", encoding="utf-8") as handle:
            return json.load(handle)

    def delete_state(self, name: str) -> None:
        target = self.state_path(name)
        if os.path.exists(target):
            os.remove(target)

    @staticmethod
    def _check_name(name: str) -> None:
        if not name or os.sep in name or (os.altsep and os.altsep in name):
            raise ValueError(f"invalid checkpoint name {name!r}")


class Checkpoint(Callback):
    """Training callback: snapshot the model every ``every`` epochs.

    The snapshot carries ``{"epoch": n, "metrics": {...}}`` plus the live
    optimizer state, so a killed ``fit`` can be resumed bit-exactly with
    ``fit(..., initial_epoch=n)`` after restoring weights and optimizer.
    """

    def __init__(
        self,
        manager: CheckpointManager,
        name: str,
        every: int = 1,
        save_optimizer: bool = True,
        on_save=None,
    ):
        if every < 1:
            raise ValueError(f"every must be >= 1, got {every}")
        self.manager = manager
        self.checkpoint_name = name
        self.every = int(every)
        self.save_optimizer = bool(save_optimizer)
        self.on_save = on_save  # called with (path, epoch) after each save
        self.last_saved_epoch: Optional[int] = None

    def on_epoch_end(self, epoch, metrics):
        if epoch % self.every != 0:
            return
        path = self.manager.save(
            self.checkpoint_name,
            self.model,
            state={
                "epoch": int(epoch),
                "metrics": {k: float(v) for k, v in metrics.items()},
            },
            optimizer=self.model.optimizer if self.save_optimizer else None,
        )
        self.last_saved_epoch = int(epoch)
        if self.on_save is not None:
            self.on_save(path, int(epoch))


def _json_array(payload: dict) -> np.ndarray:
    return np.frombuffer(json.dumps(payload, default=float).encode("utf-8"),
                         dtype=np.uint8)


def _json_load(array: np.ndarray) -> dict:
    return json.loads(bytes(array.tobytes()).decode("utf-8"))

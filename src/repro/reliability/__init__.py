"""Reliability layer: faults in, recovery out.

The paper's conclusion asks how these systems can run "automatically and
reliably ... within the life cycle of a production".  This package answers
with four cooperating pieces:

* :mod:`repro.reliability.faults` — a deterministic, seedable
  :class:`FaultInjector` that wraps any spectrum source and injects
  instrument fault models (dropped scans, detector saturation, dead
  channels, spikes, baseline jumps);
* :mod:`repro.reliability.retry` — :class:`RetryPolicy` (bounded attempts,
  exponential backoff, deterministic jitter, injectable sleep) and the
  :func:`acquire_with_retry` helper used by the MS toolchain and closed
  loop;
* :mod:`repro.reliability.checkpoint` — :class:`CheckpointManager` and the
  :class:`Checkpoint` training callback, enabling
  ``TrainingService.train_all(resume=True)``;
* :mod:`repro.reliability.degradation` — :class:`GuardedAnalyzer`, the
  closed-loop degradation ladder (primary → hold-last-good → fallback →
  safe estimate);
* :mod:`repro.reliability.validation` — input validation gates (shape,
  dtype, finiteness, axis monotonicity, value range) with the structured
  :class:`ValidationError` taxonomy, applied at the ``Sequential.predict``
  boundary, MS toolchain ingestion and the preprocessing scalers;
* :mod:`repro.reliability.storage_faults` — :class:`StorageFaultInjector`,
  the disk-side counterpart of :class:`FaultInjector`: torn writes and
  appends, bit flips, lost fsyncs/renames and vanishing files injected
  into the :mod:`repro.storage` write path for chaos tests.
"""

from repro.reliability.faults import (
    AcquisitionError,
    FaultConfig,
    FaultEvent,
    FaultInjector,
)
from repro.reliability.retry import (
    RetryExhaustedError,
    RetryPolicy,
    acquire_with_retry,
    finite_intensities,
)
from repro.reliability.checkpoint import Checkpoint, CheckpointData, CheckpointManager
from repro.reliability.degradation import DegradationEvent, GuardedAnalyzer
from repro.reliability.storage_faults import (
    StorageFaultEvent,
    StorageFaultInjector,
    bit_flip_file,
    truncate_file,
)
from repro.reliability.validation import (
    DtypeError,
    MonotonicityError,
    NonFiniteError,
    RangeError,
    ShapeError,
    ValidationError,
    ensure_array,
    ensure_finite,
    ensure_monotonic,
    ensure_range,
    ensure_shape,
    validate_batch,
    validate_spectrum,
)

__all__ = [
    "AcquisitionError",
    "Checkpoint",
    "CheckpointData",
    "CheckpointManager",
    "DegradationEvent",
    "DtypeError",
    "FaultConfig",
    "FaultEvent",
    "FaultInjector",
    "GuardedAnalyzer",
    "MonotonicityError",
    "NonFiniteError",
    "RangeError",
    "RetryExhaustedError",
    "RetryPolicy",
    "ShapeError",
    "StorageFaultEvent",
    "StorageFaultInjector",
    "ValidationError",
    "bit_flip_file",
    "truncate_file",
    "acquire_with_retry",
    "ensure_array",
    "ensure_finite",
    "ensure_monotonic",
    "ensure_range",
    "ensure_shape",
    "finite_intensities",
    "validate_batch",
    "validate_spectrum",
]

"""Input validation gates with a structured error taxonomy.

NaNs are contagious: one dead detector channel that slips past ingestion
shows up minutes later as a non-finite MAE, a runaway controller, or a
checkpoint full of NaN weights — far from where it entered.  The gates in
this module are applied at the three trust boundaries (``Sequential.
predict``, :class:`~repro.core.pipeline.MSToolchain` ingestion, the
:mod:`repro.nn.preprocessing` scalers) so garbage is rejected *at the
boundary* with a :class:`ValidationError` subclass that names exactly what
was wrong, instead of propagating silently into downstream numerics.

This module deliberately imports nothing but NumPy, so every layer of the
codebase (including :mod:`repro.nn`, which otherwise depends only on
NumPy/SciPy) may call into it without creating an import cycle.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "ValidationError",
    "ShapeError",
    "DtypeError",
    "NonFiniteError",
    "MonotonicityError",
    "RangeError",
    "ensure_array",
    "ensure_shape",
    "ensure_finite",
    "ensure_monotonic",
    "ensure_range",
    "validate_spectrum",
    "validate_batch",
    "validate_predictions",
]


class ValidationError(ValueError):
    """Base class: input rejected at a validation gate.

    ``field`` names the offending input; ``detail`` carries machine-readable
    diagnostics (offending indices, expected vs actual shapes, ...).
    """

    def __init__(self, message: str, *, field: str = "input",
                 detail: Optional[Dict[str, object]] = None):
        super().__init__(message)
        self.field = str(field)
        self.detail: Dict[str, object] = dict(detail or {})

    def __str__(self) -> str:
        return f"{self.field}: {super().__str__()}"


class ShapeError(ValidationError):
    """Wrong dimensionality or axis length."""


class DtypeError(ValidationError):
    """Data is not numeric / not castable to float64."""


class NonFiniteError(ValidationError):
    """NaN or infinity where finite values are required."""


class MonotonicityError(ValidationError):
    """An axis (m/z, chemical shift, time) is not strictly increasing."""


class RangeError(ValidationError):
    """Values outside the permitted closed interval."""


def ensure_array(data, *, field: str = "input") -> np.ndarray:
    """Coerce to a float64 array; :class:`DtypeError` if not numeric."""
    try:
        array = np.asarray(data, dtype=np.float64)
    except (TypeError, ValueError) as error:
        raise DtypeError(
            f"not castable to float64 ({error})",
            field=field,
            detail={"dtype": str(getattr(data, "dtype", type(data).__name__))},
        ) from None
    if array.dtype.kind not in "fiub":
        raise DtypeError(
            f"expected numeric data, got dtype {array.dtype}",
            field=field, detail={"dtype": str(array.dtype)},
        )
    return array


def ensure_shape(
    array: np.ndarray,
    *,
    ndim: Optional[int] = None,
    shape: Optional[Sequence[Optional[int]]] = None,
    field: str = "input",
) -> np.ndarray:
    """Check dimensionality and per-axis lengths (``None`` = any length)."""
    if ndim is not None and array.ndim != ndim:
        raise ShapeError(
            f"expected a {ndim}-D array, got shape {array.shape}",
            field=field, detail={"ndim": array.ndim, "shape": array.shape},
        )
    if shape is not None:
        expected = tuple(shape)
        if array.ndim != len(expected) or any(
            want is not None and have != want
            for have, want in zip(array.shape, expected)
        ):
            raise ShapeError(
                f"expected shape {tuple('*' if d is None else d for d in expected)}, "
                f"got {array.shape}",
                field=field,
                detail={"expected": expected, "shape": array.shape},
            )
    return array


def ensure_finite(array: np.ndarray, *, field: str = "input") -> np.ndarray:
    """Every element finite; :class:`NonFiniteError` names the bad channels."""
    finite = np.isfinite(array)
    if not finite.all():
        bad = np.argwhere(~finite)
        raise NonFiniteError(
            f"{bad.shape[0]} non-finite value(s), first at index "
            f"{tuple(int(i) for i in bad[0])}",
            field=field,
            detail={
                "count": int(bad.shape[0]),
                "first_index": tuple(int(i) for i in bad[0]),
            },
        )
    return array


def ensure_monotonic(axis: np.ndarray, *, field: str = "axis") -> np.ndarray:
    """Axis values strictly increasing (no duplicated or shuffled channels)."""
    axis = ensure_array(axis, field=field)
    if axis.ndim != 1:
        raise ShapeError(
            f"axis must be 1-D, got shape {axis.shape}", field=field,
            detail={"shape": axis.shape},
        )
    if axis.size >= 2:
        steps = np.diff(axis)
        if not (steps > 0).all():
            first = int(np.argmax(steps <= 0))
            raise MonotonicityError(
                f"axis not strictly increasing at index {first} "
                f"({axis[first]!r} -> {axis[first + 1]!r})",
                field=field, detail={"index": first},
            )
    return axis


def ensure_range(
    array: np.ndarray,
    *,
    min_value: Optional[float] = None,
    max_value: Optional[float] = None,
    field: str = "input",
) -> np.ndarray:
    """Values within the closed interval [min_value, max_value]."""
    if min_value is not None and bool(np.any(array < min_value)):
        worst = float(np.min(array))
        raise RangeError(
            f"value {worst} below minimum {min_value}",
            field=field, detail={"min": worst, "allowed_min": min_value},
        )
    if max_value is not None and bool(np.any(array > max_value)):
        worst = float(np.max(array))
        raise RangeError(
            f"value {worst} above maximum {max_value}",
            field=field, detail={"max": worst, "allowed_max": max_value},
        )
    return array


def validate_spectrum(
    data,
    *,
    length: Optional[int] = None,
    axis: Optional[np.ndarray] = None,
    min_value: Optional[float] = None,
    max_value: Optional[float] = None,
    field: str = "spectrum",
) -> np.ndarray:
    """Full gate for one spectrum: numeric, 1-D, finite, in range.

    ``data`` may be a raw array or any object with an ``intensities``
    attribute (:class:`~repro.ms.spectrum.MassSpectrum`, NMR spectra).
    ``axis``, if given, is additionally checked for strict monotonicity and
    for matching the spectrum length.  Returns the validated float64 array.
    """
    if hasattr(data, "intensities"):
        data = data.intensities
    array = ensure_array(data, field=field)
    ensure_shape(array, ndim=1, field=field)
    if length is not None and array.size != length:
        raise ShapeError(
            f"expected {length} channels, got {array.size}",
            field=field, detail={"expected": length, "size": array.size},
        )
    if axis is not None:
        axis = ensure_monotonic(axis, field=f"{field}.axis")
        if axis.size != array.size:
            raise ShapeError(
                f"axis has {axis.size} points but spectrum has {array.size}",
                field=field,
                detail={"axis_size": int(axis.size), "size": array.size},
            )
    ensure_finite(array, field=field)
    ensure_range(array, min_value=min_value, max_value=max_value, field=field)
    return array


def validate_batch(
    data,
    *,
    feature_shape: Optional[Tuple[int, ...]] = None,
    field: str = "x",
) -> np.ndarray:
    """Gate for a batch of inputs: numeric, finite, trailing dims match.

    ``feature_shape`` is the per-sample shape (``model.input_shape``);
    the batch axis may have any length, including zero.
    """
    array = ensure_array(data, field=field)
    if feature_shape is not None:
        expected = (None,) + tuple(int(d) for d in feature_shape)
        ensure_shape(array, shape=expected, field=field)
    ensure_finite(array, field=field)
    return array


def validate_predictions(
    values,
    *,
    n_outputs: Optional[int] = None,
    min_value: Optional[float] = 0.0,
    max_value: Optional[float] = None,
    tolerance: float = 1e-9,
    field: str = "prediction",
) -> np.ndarray:
    """Gate for model *outputs*: numeric, 2-D (batch, outputs), finite,
    physically plausible.

    The output-side twin of :func:`validate_batch`, applied to candidate
    models before they are trusted with traffic — a recalibrated network
    whose predictions contain NaN (poisoned fine-tune data, diverged
    optimizer) is rejected here with the same typed taxonomy the input
    gates use.

    Predictions are concentrations, and a negative concentration is
    physically impossible — yet it is perfectly finite, so it used to
    sail through this gate.  ``min_value`` (default ``0.0``) now raises
    :class:`RangeError` for it; ``tolerance`` absorbs the last-ulp
    negative dust a linear output head can emit for a true zero without
    letting a genuinely negative prediction through.  Pass
    ``min_value=None`` to disable the bound for signed outputs.
    """
    array = ensure_array(values, field=field)
    ensure_shape(array, ndim=2, field=field)
    if n_outputs is not None and array.shape[1] != n_outputs:
        raise ShapeError(
            f"expected {n_outputs} outputs per row, got {array.shape[1]}",
            field=field,
            detail={"expected": n_outputs, "outputs": int(array.shape[1])},
        )
    ensure_finite(array, field=field)
    if tolerance < 0:
        raise ValueError(f"tolerance must be >= 0, got {tolerance}")
    ensure_range(
        array,
        min_value=None if min_value is None else min_value - tolerance,
        max_value=None if max_value is None else max_value + tolerance,
        field=field,
    )
    return array

"""Deterministic instrument-fault injection.

The paper's conclusion leaves open "how these systems can be automatically
and reliably adapted to perturbations or changes in parameters within the
life cycle of a production".  The simulators deliberately model a *static*
instrument; real spectrometers drop scans, saturate their detectors, grow
dead channels and jump their baselines.  :class:`FaultInjector` wraps any
spectrum source and injects exactly those fault classes, seeded and fully
logged, so recovery machinery (retry policies, degradation ladders,
checkpointing) can be exercised in tests and benchmarks instead of waiting
for hardware to misbehave.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List

import numpy as np

__all__ = ["AcquisitionError", "FaultEvent", "FaultConfig", "FaultInjector"]

# Methods a spectrum source may expose, in resolution order.
_SOURCE_METHODS = ("acquire", "simulate", "measure")


class AcquisitionError(RuntimeError):
    """A scan was lost at the instrument (comms timeout, vacuum glitch, ...)."""


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault, for post-mortem analysis of a run."""

    scan: int
    kind: str
    detail: Dict[str, float] = field(default_factory=dict)


@dataclass(frozen=True)
class FaultConfig:
    """Per-scan fault probabilities plus severity knobs.

    Probabilities are independent per scan and per fault class; several
    faults can hit the same scan.  ``dropped_scan`` aborts the acquisition
    with :class:`AcquisitionError` before any data is produced.
    """

    dropped_scan: float = 0.0
    saturation: float = 0.0
    dead_channels: float = 0.0
    spike: float = 0.0
    baseline_jump: float = 0.0
    # Severity knobs (all relative to the scan's own max intensity).
    saturation_level: float = 0.6
    dead_channel_count: int = 8
    dead_channel_value: float = float("nan")
    spike_count: int = 3
    spike_scale: float = 5.0
    baseline_jump_scale: float = 0.4

    def __post_init__(self):
        for label in ("dropped_scan", "saturation", "dead_channels",
                      "spike", "baseline_jump"):
            value = getattr(self, label)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{label} must be a probability, got {value}")
        if not 0.0 < self.saturation_level <= 1.0:
            raise ValueError("saturation_level must be in (0, 1]")
        if self.dead_channel_count < 1:
            raise ValueError("dead_channel_count must be >= 1")
        if self.spike_count < 1:
            raise ValueError("spike_count must be >= 1")
        if self.spike_scale <= 0 or self.baseline_jump_scale <= 0:
            raise ValueError("spike_scale and baseline_jump_scale must be positive")

    @classmethod
    def all_faults(cls, probability: float, **overrides) -> "FaultConfig":
        """Every fault class active at the same per-scan probability."""
        return cls(
            dropped_scan=probability,
            saturation=probability,
            dead_channels=probability,
            spike=probability,
            baseline_jump=probability,
            **overrides,
        )


class FaultInjector:
    """Wraps a spectrum source and corrupts its output deterministically.

    ``source`` may be a :class:`~repro.ms.simulator.MassSpectrometerSimulator`
    (``simulate``), a :class:`~repro.nmr.acquisition.VirtualNMRSpectrometer`
    (``acquire``), a :class:`~repro.ms.instrument.VirtualMassSpectrometer`
    (``measure``), or any callable returning a spectrum object (anything
    with an ``intensities`` array) or a raw array.  The injector exposes
    :meth:`acquire` plus an alias named after the wrapped method, so it is
    a drop-in replacement for the source in every acquisition path.
    """

    def __init__(self, source, config: FaultConfig, seed: int = 0):
        self.source = source
        self.config = config
        self._rng = np.random.default_rng(seed)
        self.events: List[FaultEvent] = []
        self._scan = 0
        self._acquire_fn, wrapped_name = self._resolve(source)
        # Alias the wrapped method name (e.g. injector.measure for a rig's
        # instrument) so existing call sites need no changes.
        if wrapped_name is not None and wrapped_name != "acquire":
            setattr(self, wrapped_name, self.acquire)

    @staticmethod
    def _resolve(source) -> tuple:
        for name in _SOURCE_METHODS:
            method = getattr(source, name, None)
            if callable(method):
                return method, name
        if callable(source):
            return source, None
        raise TypeError(
            f"source must expose one of {_SOURCE_METHODS} or be callable, "
            f"got {type(source).__name__}"
        )

    # -- bookkeeping ---------------------------------------------------------

    @property
    def scans(self) -> int:
        """Scans attempted so far (including dropped ones)."""
        return self._scan

    @property
    def fault_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts

    def _record(self, kind: str, **detail) -> None:
        self.events.append(FaultEvent(self._scan, kind, dict(detail)))

    # -- acquisition ---------------------------------------------------------

    def acquire(self, *args, **kwargs):
        """Acquire one scan through the wrapped source, possibly faulty.

        Raises :class:`AcquisitionError` on a dropped scan; other faults
        corrupt the returned spectrum in place.
        """
        self._scan += 1
        config, rng = self.config, self._rng
        if rng.random() < config.dropped_scan:
            self._record("dropped_scan")
            raise AcquisitionError(f"scan {self._scan} dropped by instrument")
        result = self._acquire_fn(*args, **kwargs)
        data = self._corrupt(self._intensities_of(result))
        return self._with_intensities(result, data)

    __call__ = acquire

    @staticmethod
    def _intensities_of(result) -> np.ndarray:
        if hasattr(result, "intensities"):
            return np.asarray(result.intensities, dtype=np.float64)
        if isinstance(result, tuple):
            # e.g. a rig-style (spectrum, label) pair: corrupt the spectrum.
            return np.asarray(result[0].intensities, dtype=np.float64)
        return np.asarray(result, dtype=np.float64)

    @staticmethod
    def _with_intensities(result, data: np.ndarray):
        if hasattr(result, "intensities"):
            result.intensities = data
            return result
        if isinstance(result, tuple):
            result[0].intensities = data
            return result
        return data

    def _corrupt(self, data: np.ndarray) -> np.ndarray:
        config, rng = self.config, self._rng
        data = np.array(data, dtype=np.float64, copy=True)
        scale = float(np.max(np.abs(data))) if data.size else 0.0
        scale = scale if scale > 0 else 1.0
        if rng.random() < config.saturation:
            level = config.saturation_level * scale
            clipped = int(np.sum(data > level))
            data = np.minimum(data, level)
            self._record("saturation", level=level, clipped_channels=clipped)
        if rng.random() < config.dead_channels:
            count = min(config.dead_channel_count, data.size)
            channels = rng.choice(data.size, size=count, replace=False)
            data[channels] = config.dead_channel_value
            self._record("dead_channels", channels=count)
        if rng.random() < config.spike:
            count = min(config.spike_count, data.size)
            positions = rng.choice(data.size, size=count, replace=False)
            heights = config.spike_scale * scale * rng.uniform(0.5, 1.5, size=count)
            data[positions] += heights
            self._record("spike", spikes=count, max_height=float(heights.max()))
        if rng.random() < config.baseline_jump:
            start = int(rng.integers(0, max(data.size - 1, 1)))
            jump = config.baseline_jump_scale * scale * rng.uniform(0.5, 1.5)
            data[start:] += jump
            self._record("baseline_jump", start=start, jump=float(jump))
        return data

"""Storage-fault chaos: tear, flip, lose and vanish durable writes.

:mod:`repro.reliability.faults` corrupts what the *instrument* produces;
this module corrupts what the *disk* keeps.  A
:class:`StorageFaultInjector` installs itself into
:mod:`repro.storage.integrity` as a context manager, and every durable
write in the repo (checkpoint envelopes, state sidecars, document-store
snapshots, journal appends) consults it at each step of the
write-flush-fsync-rename protocol.  Fault classes:

* ``torn_write_at`` — only the first N bytes of an atomic write reach the
  temp file before a :class:`~repro.storage.integrity.SimulatedCrash`
  (kill -9 mid-write; temp debris is left behind, the target is not);
* ``torn_append_at`` — a journal append commits only its first N bytes
  before the crash (the classic torn tail);
* ``bit_flip`` — one bit of the published file flips after the rename
  (media corruption that only a checksum can catch);
* ``skip_fsync`` — the durability barrier silently does nothing;
* ``stale_rename`` — the temp file is written but the rename is lost, so
  readers keep seeing the previous version;
* ``vanish`` — the published file disappears right after the write.

Each armed fault fires at most ``times`` times, only on paths containing
``match``, and every firing is recorded in :attr:`events`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.storage.integrity import (
    SimulatedCrash,
    clear_injector,
    install_injector,
)

__all__ = ["StorageFaultEvent", "StorageFaultInjector", "bit_flip_file",
           "truncate_file"]


@dataclass(frozen=True)
class StorageFaultEvent:
    """One injected storage fault, for post-mortem analysis."""

    kind: str
    path: str
    detail: Dict[str, float] = field(default_factory=dict)


def bit_flip_file(path: str, seed: int = 0) -> int:
    """Flip one pseudo-random bit of ``path`` in place; returns the offset."""
    rng = np.random.default_rng(seed)
    with open(path, "rb") as handle:
        data = bytearray(handle.read())
    if not data:
        raise ValueError(f"cannot bit-flip empty file {path}")
    offset = int(rng.integers(0, len(data)))
    data[offset] ^= 1 << int(rng.integers(0, 8))
    with open(path, "wb") as handle:
        handle.write(data)
    return offset


def truncate_file(path: str, keep_bytes: int) -> None:
    """Cut ``path`` down to its first ``keep_bytes`` bytes in place."""
    with open(path, "rb+") as handle:
        handle.truncate(max(int(keep_bytes), 0))


class StorageFaultInjector:
    """Context manager that corrupts durable writes deterministically.

    Example — tear the next checkpoint save 100 bytes in::

        with StorageFaultInjector(torn_write_at=100, match=".ckpt"):
            manager.save("run", model)   # "process" dies mid-write here
        data = manager.load("run")       # recovery: previous generation

    A :class:`~repro.storage.integrity.SimulatedCrash` that propagates to
    the ``with`` boundary is absorbed there — the simulated process died,
    the test process carries on to exercise recovery.
    """

    def __init__(
        self,
        torn_write_at: Optional[int] = None,
        torn_append_at: Optional[int] = None,
        bit_flip: bool = False,
        skip_fsync: bool = False,
        stale_rename: bool = False,
        vanish: bool = False,
        match: str = "",
        times: int = 1,
        seed: int = 0,
    ):
        if times < 1:
            raise ValueError(f"times must be >= 1, got {times}")
        self.torn_write_at = torn_write_at
        self.torn_append_at = torn_append_at
        self.bit_flip = bool(bit_flip)
        self.skip_fsync_fault = bool(skip_fsync)
        self.stale_rename = bool(stale_rename)
        self.vanish = bool(vanish)
        self.match = match
        self.seed = int(seed)
        self.events: List[StorageFaultEvent] = []
        self._remaining: Dict[str, int] = {
            kind: int(times)
            for kind in (
                "torn_write", "torn_append", "bit_flip", "skip_fsync",
                "stale_rename", "vanish",
            )
        }
        self._crash_after_append = False

    # -- arming --------------------------------------------------------------

    def _fire(self, kind: str, path: str) -> bool:
        if self.match and self.match not in path:
            return False
        if self._remaining[kind] < 1:
            return False
        self._remaining[kind] -= 1
        return True

    def _record(self, kind: str, path: str, **detail) -> None:
        self.events.append(StorageFaultEvent(kind, path, dict(detail)))

    @property
    def fault_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts

    # -- integrity-module hook protocol --------------------------------------

    def filter_write(self, path: str, data: bytes) -> bytes:
        if self.torn_write_at is not None and self._fire("torn_write", path):
            cut = min(int(self.torn_write_at), len(data))
            self._record("torn_write", path, offset=cut, dropped=len(data) - cut)
            self._crash_path = path
            return data[:cut]
        return data

    def after_write(self, path: str) -> None:
        if getattr(self, "_crash_path", None) == path:
            self._crash_path = None
            raise SimulatedCrash(f"torn write: process killed mid-save of {path}")

    def filter_append(self, path: str, data: bytes) -> bytes:
        if self.torn_append_at is not None and self._fire("torn_append", path):
            cut = min(int(self.torn_append_at), len(data))
            self._record("torn_append", path, offset=cut, dropped=len(data) - cut)
            self._crash_after_append = True
            return data[:cut]
        return data

    def after_append(self, path: str) -> None:
        if self._crash_after_append:
            self._crash_after_append = False
            raise SimulatedCrash(f"torn append: process killed mid-append to {path}")

    def skip_fsync(self, path: str) -> bool:
        if self.skip_fsync_fault and self._fire("skip_fsync", path):
            self._record("skip_fsync", path)
            return True
        return False

    def skip_rename(self, tmp: str, target: str) -> bool:
        if self.stale_rename and self._fire("stale_rename", target):
            self._record("stale_rename", target)
            return True
        return False

    def after_publish(self, path: str) -> None:
        if self.bit_flip and self._fire("bit_flip", path):
            offset = bit_flip_file(path, seed=self.seed)
            self._record("bit_flip", path, offset=offset)
        if self.vanish and self._fire("vanish", path):
            os.remove(path)
            self._record("vanish", path)

    # -- context manager ------------------------------------------------------

    def __enter__(self) -> "StorageFaultInjector":
        install_injector(self)
        return self

    def __exit__(self, *exc_info) -> bool:
        clear_injector()
        # A SimulatedCrash that reached the context boundary played its
        # role (the "process" died inside the block); don't re-raise it.
        return exc_info[0] is not None and issubclass(exc_info[0], SimulatedCrash)

"""Graceful degradation for closed-loop analyzers.

The paper warns that a deployed network "can only be used for a measurement
task defined in advance" and needs plausibility guarding in production.
:class:`GuardedAnalyzer` wraps a primary analyzer (typically the ANN) with
that guard and a degradation ladder, so one bad scan never crashes the
control loop and persistent trouble is served by progressively safer
estimates:

1. **primary** — the ANN, when the input passes the gate and the output is
   finite;
2. **hold** — repeat the last good primary estimate for up to
   ``hold_limit`` consecutive failures (transient faults);
3. **fallback** — a secondary analyzer (e.g. IHM) once trouble persists;
4. **safe** — a configured safe estimate when everything else fails.

Degraded steps are counted per tier so supervisory logic (a
:class:`~repro.core.lifecycle.DriftMonitor`, a recalibration trigger) can
decide when degradation has gone on long enough to retrain.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

__all__ = ["DegradationEvent", "GuardedAnalyzer"]

TIERS = ("primary", "hold", "fallback", "safe")


@dataclass(frozen=True)
class DegradationEvent:
    """One degraded analyzer call and why it degraded."""

    call: int
    tier: str
    reason: str
    detail: Dict[str, float] = field(default_factory=dict)


class GuardedAnalyzer:
    """Analyzer wrapper implementing the degradation ladder.

    ``primary`` and ``fallback`` follow the closed-loop analyzer protocol:
    ``analyzer(intensities) -> (estimate_vector, seconds)``.  ``checker``
    is an optional input gate — either an object with a ``check(data)``
    method returning a truthy report (e.g. a
    :class:`~repro.ms.plausibility.PlausibilityChecker`) or a plain
    predicate ``data -> bool``.  ``safe_estimate`` is the last-resort
    output (e.g. zeros, or the setpoint composition).
    """

    def __init__(
        self,
        primary: Callable[[np.ndarray], tuple],
        safe_estimate,
        fallback: Optional[Callable[[np.ndarray], tuple]] = None,
        checker=None,
        hold_limit: int = 3,
    ):
        if hold_limit < 0:
            raise ValueError("hold_limit must be >= 0")
        self.primary = primary
        self.fallback = fallback
        self.checker = checker
        self.safe_estimate = np.asarray(safe_estimate, dtype=np.float64)
        self.hold_limit = int(hold_limit)
        self.calls = 0
        self.degraded_steps = 0
        self.tier_counts: Dict[str, int] = {tier: 0 for tier in TIERS}
        self.events: List[DegradationEvent] = []
        self.last_tier: Optional[str] = None
        self._last_good: Optional[np.ndarray] = None
        self._consecutive_failures = 0

    @property
    def degraded_fraction(self) -> float:
        return self.degraded_steps / self.calls if self.calls else 0.0

    def reset_counters(self) -> None:
        """Clear statistics (not the last-good estimate)."""
        self.calls = 0
        self.degraded_steps = 0
        self.tier_counts = {tier: 0 for tier in TIERS}
        self.events = []
        self.last_tier = None

    # -- the analyzer protocol ------------------------------------------------

    def __call__(self, intensities: np.ndarray) -> Tuple[np.ndarray, float]:
        start = time.perf_counter()
        self.calls += 1
        data = np.asarray(intensities, dtype=np.float64)
        input_ok, reason = self._gate(data)
        estimate = None
        if input_ok:
            estimate, reason = self._try(self.primary, data, "primary")
        if estimate is not None:
            tier = "primary"
            self._last_good = estimate
            self._consecutive_failures = 0
        else:
            tier, estimate = self._degrade(data, input_ok, reason)
        self.tier_counts[tier] += 1
        self.last_tier = tier
        return estimate.copy(), time.perf_counter() - start

    analyze = __call__

    # -- internals ------------------------------------------------------------

    def _gate(self, data: np.ndarray) -> Tuple[bool, str]:
        if not np.isfinite(data).all():
            return False, "non-finite input"
        if self.checker is None:
            return True, ""
        try:
            check = getattr(self.checker, "check", self.checker)
            if not bool(check(data)):
                return False, "input failed plausibility gate"
        except Exception as error:
            return False, f"plausibility checker raised {type(error).__name__}"
        return True, ""

    @staticmethod
    def _try(analyzer, data: np.ndarray, label: str):
        """Run an analyzer; (estimate, "") on success, (None, why) on failure."""
        try:
            estimate, _ = analyzer(data)
        except Exception as error:
            return None, f"{label} raised {type(error).__name__}: {error}"
        estimate = np.asarray(estimate, dtype=np.float64)
        if not np.isfinite(estimate).all():
            return None, f"{label} produced non-finite output"
        return estimate, ""

    def _degrade(self, data, input_ok: bool, reason: str):
        self.degraded_steps += 1
        self._consecutive_failures += 1
        tier, estimate = None, None
        if (
            self._last_good is not None
            and self._consecutive_failures <= self.hold_limit
        ):
            tier, estimate = "hold", self._last_good
        elif self.fallback is not None and input_ok:
            estimate, fallback_reason = self._try(self.fallback, data, "fallback")
            if estimate is not None:
                tier = "fallback"
            else:
                reason = f"{reason}; {fallback_reason}" if reason else fallback_reason
        if tier is None:
            tier, estimate = "safe", self.safe_estimate
        self.events.append(
            DegradationEvent(
                call=self.calls,
                tier=tier,
                reason=reason,
                detail={"consecutive_failures": self._consecutive_failures},
            )
        )
        return tier, estimate

"""Retrying acquisition with exponential backoff and deterministic jitter.

A dropped scan should cost one re-acquisition, not the run.  The MS
toolchain and the NMR closed loop both acquire through
:func:`acquire_with_retry` / :meth:`RetryPolicy.call` so a transient
:class:`~repro.reliability.faults.AcquisitionError` is absorbed on the
spot.  The jitter is drawn from a seeded generator and the sleep function
is injectable, so retry behaviour is exactly reproducible in tests.
"""

from __future__ import annotations

import time
from typing import Callable, List, Optional, Tuple, Type

import numpy as np

from repro.observability.metrics import MetricsRegistry
from repro.observability.runtime import get_registry
from repro.reliability.faults import AcquisitionError

__all__ = [
    "RetryExhaustedError",
    "RetryPolicy",
    "acquire_with_retry",
    "finite_intensities",
]


class RetryExhaustedError(AcquisitionError):
    """All attempts failed; carries the last underlying error as __cause__."""


class RetryPolicy:
    """Bounded retries with exponential backoff and seeded jitter.

    ``jitter_mode`` picks how the seeded jitter perturbs the backoff:

    * ``"scaled"`` (the default) multiplies the raw exponential delay by
      ``1 ± jitter`` — small symmetric noise around the schedule;
    * ``"full"`` draws the delay uniformly from ``[0, raw]`` (AWS-style
      full jitter).  Scaled jitter keeps concurrent workers that failed
      together *clustered*: they all retry near the same instant and hit
      the backend as a synchronized retry storm, wave after wave.  Full
      jitter spreads the same workers across the whole backoff window,
      so the recovering backend sees a trickle instead of spikes.

    ``deadline_s`` is an optional total time budget per :meth:`call`,
    measured by the injectable ``clock`` from the first attempt: once the
    budget would be exhausted by the elapsed time plus the next backoff
    delay, the policy stops retrying immediately instead of retrying past
    the deadline (a retry whose result nobody will consume is pure load).
    """

    def __init__(
        self,
        max_attempts: int = 3,
        base_delay: float = 0.1,
        backoff: float = 2.0,
        max_delay: float = 30.0,
        jitter: float = 0.1,
        jitter_mode: str = "scaled",
        retry_on: Tuple[Type[BaseException], ...] = (AcquisitionError,),
        sleep: Callable[[float], None] = time.sleep,
        seed: int = 0,
        deadline_s: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
        registry: Optional[MetricsRegistry] = None,
    ):
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if base_delay < 0 or max_delay < 0:
            raise ValueError("delays must be non-negative")
        if backoff < 1.0:
            raise ValueError("backoff must be >= 1.0")
        if not 0.0 <= jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        if jitter_mode not in ("scaled", "full"):
            raise ValueError(
                f"jitter_mode must be 'scaled' or 'full', got {jitter_mode!r}"
            )
        if deadline_s is not None and deadline_s <= 0:
            raise ValueError("deadline_s must be positive")
        self.max_attempts = int(max_attempts)
        self.base_delay = float(base_delay)
        self.backoff = float(backoff)
        self.max_delay = float(max_delay)
        self.jitter = float(jitter)
        self.jitter_mode = str(jitter_mode)
        self.retry_on = tuple(retry_on)
        self.sleep = sleep
        self.deadline_s = float(deadline_s) if deadline_s is not None else None
        self.clock = clock
        self._rng = np.random.default_rng(seed)
        registry = registry if registry is not None else get_registry()
        self._m_attempts = registry.counter(
            "retry_attempts_total", "acquisition attempts made"
        )
        self._m_retries = registry.counter(
            "retry_retries_total", "attempts that were retries"
        )
        self._m_exhausted = registry.counter(
            "retry_exhausted_total", "calls abandoned, by cause"
        )
        self.total_attempts = 0
        self.total_retries = 0
        self.deadline_stops = 0

    def delay(self, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (1-based), with jitter."""
        if attempt < 1:
            raise ValueError("attempt must be >= 1")
        raw = min(self.base_delay * self.backoff ** (attempt - 1), self.max_delay)
        if self.jitter_mode == "full":
            return float(self._rng.uniform(0.0, raw))
        if self.jitter == 0.0:
            return raw
        return raw * (1.0 + self.jitter * float(self._rng.uniform(-1.0, 1.0)))

    def call(self, fn: Callable, *args, **kwargs):
        """Call ``fn`` under this policy; re-raise after the last attempt.

        Raises :class:`RetryExhaustedError` when the attempts are used up
        *or* when ``deadline_s`` would be exceeded before the next retry
        could even start.
        """
        start = self.clock()
        last_error: Optional[BaseException] = None
        for attempt in range(1, self.max_attempts + 1):
            self.total_attempts += 1
            self._m_attempts.inc()
            try:
                return fn(*args, **kwargs)
            except self.retry_on as error:
                last_error = error
                if attempt == self.max_attempts:
                    break
                delay = self.delay(attempt)
                if (
                    self.deadline_s is not None
                    and self.clock() - start + delay >= self.deadline_s
                ):
                    self.deadline_stops += 1
                    self._m_exhausted.inc(cause="deadline")
                    raise RetryExhaustedError(
                        f"deadline budget of {self.deadline_s}s exhausted "
                        f"after {attempt} attempt(s); last: {last_error}"
                    ) from last_error
                self.total_retries += 1
                self._m_retries.inc()
                self.sleep(delay)
        self._m_exhausted.inc(cause="attempts")
        raise RetryExhaustedError(
            f"{self.max_attempts} attempts failed; last: {last_error}"
        ) from last_error


def acquire_with_retry(
    source,
    *args,
    policy: Optional[RetryPolicy] = None,
    validate: Optional[Callable] = None,
    **kwargs,
):
    """Acquire one scan from ``source`` under a retry policy.

    ``source`` is resolved like :class:`~repro.reliability.faults.FaultInjector`
    sources (``acquire``/``simulate``/``measure`` method or a callable).
    ``validate``, if given, receives the acquisition result and must return
    truthy; an invalid scan (e.g. non-finite intensities) is treated as an
    :class:`AcquisitionError` and re-acquired.
    """
    from repro.reliability.faults import FaultInjector

    fn, _ = FaultInjector._resolve(source)
    policy = policy if policy is not None else RetryPolicy()

    def attempt():
        result = fn(*args, **kwargs)
        if validate is not None and not validate(result):
            raise AcquisitionError("scan failed validation")
        return result

    return policy.call(attempt)


def finite_intensities(result) -> bool:
    """Validator: every intensity in the scan is finite."""
    from repro.reliability.faults import FaultInjector

    data = FaultInjector._intensities_of(result)
    return bool(np.isfinite(data).all())

"""Activation functions with analytic derivatives.

The paper's activation-function study (Fig. 5) sweeps ReLU/SELU hidden
activations against softmax/linear output activations, so each activation
here is an object exposing both ``forward`` and ``backward``.

``softmax`` is treated specially: its Jacobian is dense, so its ``backward``
implements the full Jacobian-vector product per sample rather than an
elementwise derivative.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "Activation",
    "linear",
    "relu",
    "selu",
    "sigmoid",
    "tanh",
    "softmax",
    "get_activation",
]

# Constants from Klambauer et al., "Self-Normalizing Neural Networks".
_SELU_ALPHA = 1.6732632423543772848170429916717
_SELU_SCALE = 1.0507009873554804934193349852946


class Activation:
    """An activation function with its derivative.

    ``forward(x)`` returns the activated values.  ``backward(grad, x, y)``
    returns dL/dx given dL/dy, the pre-activation ``x`` and the activation
    output ``y`` (passing both lets each activation use whichever is
    cheaper).
    """

    name = "activation"

    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad: np.ndarray, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)

    def __repr__(self) -> str:
        return f"<activation {self.name}>"


class Linear(Activation):
    """Identity activation: y = x."""

    name = "linear"

    def forward(self, x):
        return x

    def backward(self, grad, x, y):
        return grad


class ReLU(Activation):
    """Rectified linear unit: max(x, 0)."""

    name = "relu"

    def forward(self, x):
        return np.maximum(x, 0.0)

    def backward(self, grad, x, y):
        return grad * (x > 0.0)


class SELU(Activation):
    """Scaled exponential linear unit (self-normalizing networks)."""

    name = "selu"

    def forward(self, x):
        return _SELU_SCALE * np.where(
            x > 0.0, x, _SELU_ALPHA * np.expm1(np.minimum(x, 0.0))
        )

    def backward(self, grad, x, y):
        # For x <= 0, y = scale*alpha*(exp(x)-1) so dy/dx = y + scale*alpha.
        deriv = np.where(x > 0.0, _SELU_SCALE, y + _SELU_SCALE * _SELU_ALPHA)
        return grad * deriv


class Sigmoid(Activation):
    """Logistic sigmoid, numerically stable for large |x|."""

    name = "sigmoid"

    def forward(self, x):
        out = np.empty_like(x)
        pos = x >= 0
        out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
        ex = np.exp(x[~pos])
        out[~pos] = ex / (1.0 + ex)
        return out

    def backward(self, grad, x, y):
        return grad * y * (1.0 - y)


class Tanh(Activation):
    """Hyperbolic tangent."""

    name = "tanh"

    def forward(self, x):
        return np.tanh(x)

    def backward(self, grad, x, y):
        return grad * (1.0 - y * y)


class Softmax(Activation):
    """Softmax over the last axis.

    The paper uses softmax both on the final Dense layer (concentration
    vectors summing to one) and, unusually, on an intermediate Conv1D layer
    (Table 1, layer 6) — there it normalizes across the filter axis, which
    is the last axis in our channels-last layout, so a single "last axis"
    implementation serves both placements.
    """

    name = "softmax"

    def forward(self, x):
        shifted = x - np.max(x, axis=-1, keepdims=True)
        e = np.exp(shifted)
        return e / np.sum(e, axis=-1, keepdims=True)

    def backward(self, grad, x, y):
        # dL/dx_i = y_i * (dL/dy_i - sum_j dL/dy_j y_j)
        dot = np.sum(grad * y, axis=-1, keepdims=True)
        return y * (grad - dot)


linear = Linear()
relu = ReLU()
selu = SELU()
sigmoid = Sigmoid()
tanh = Tanh()
softmax = Softmax()

_REGISTRY = {
    a.name: a for a in (linear, relu, selu, sigmoid, tanh, softmax)
}
# The paper's Fig. 5 axis labels abbreviate softmax as "sftm" and linear as
# "lin"; accept those spellings so experiment configs can quote the paper.
_ALIASES = {"sftm": "softmax", "lin": "linear"}


def get_activation(spec) -> Activation:
    """Resolve an activation from a name (or alias), ``None``, or instance."""
    if spec is None:
        return linear
    if isinstance(spec, Activation):
        return spec
    if isinstance(spec, str):
        name = _ALIASES.get(spec.lower(), spec.lower())
        try:
            return _REGISTRY[name]
        except KeyError:
            raise ValueError(
                f"unknown activation {spec!r}; known: {sorted(_REGISTRY)}"
            ) from None
    raise TypeError(f"cannot resolve activation from {type(spec).__name__}")

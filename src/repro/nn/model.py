"""The :class:`Sequential` model container.

A deliberately Keras-flavoured API (``compile``/``fit``/``predict``/
``evaluate``/``summary``) so the paper's workflow descriptions map onto this
code one-to-one.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.nn.layers.base import Layer
from repro.nn.losses import Loss, get_loss
from repro.nn.optimizers import Optimizer, get_optimizer
from repro.nn.training import Callback, History, run_training_loop

__all__ = ["Sequential"]


class Sequential:
    """A linear stack of layers."""

    def __init__(self, layers: Optional[Sequence[Layer]] = None, name: str = "model"):
        self.layers: List[Layer] = []
        self.name = str(name)
        self.built = False
        self.input_shape: Optional[Tuple[int, ...]] = None
        self.loss: Optional[Loss] = None
        self.optimizer: Optional[Optimizer] = None
        self._rng = np.random.default_rng(0)
        for layer in layers or []:
            self.add(layer)

    # -- construction ------------------------------------------------------

    def add(self, layer: Layer) -> "Sequential":
        if not isinstance(layer, Layer):
            raise TypeError(f"expected a Layer, got {type(layer).__name__}")
        if self.built:
            raise RuntimeError("cannot add layers after the model is built")
        self.layers.append(layer)
        return self

    def build(self, input_shape: Tuple[int, ...], seed: Optional[int] = None) -> "Sequential":
        """Allocate all layer weights for inputs of ``input_shape``.

        ``input_shape`` excludes the batch axis, e.g. ``(1000,)`` for a raw
        spectrum or ``(5, 1700)`` for an LSTM window.
        """
        if not self.layers:
            raise RuntimeError("cannot build an empty model")
        if seed is not None:
            self._rng = np.random.default_rng(seed)
        shape = tuple(int(d) for d in input_shape)
        self.input_shape = shape
        for layer in self.layers:
            layer.build(shape, self._rng)
            shape = layer.output_shape
        self.built = True
        return self

    def compile(self, optimizer="adam", loss="mae") -> "Sequential":
        self.optimizer = get_optimizer(optimizer)
        self.loss = get_loss(loss)
        return self

    # -- execution ---------------------------------------------------------

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._require_built()
        out = np.asarray(x, dtype=np.float64)
        for layer in self.layers:
            out = layer.forward(out, training=training)
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def predict(
        self, x: np.ndarray, batch_size: int = 256, validate: bool = True
    ) -> np.ndarray:
        """Inference in mini-batches (keeps im2col memory bounded).

        With ``validate=True`` (the default) the input is gated at this
        boundary: it must be numeric, finite, and match the model's
        ``input_shape`` on the trailing axes — otherwise a
        :class:`~repro.reliability.validation.ValidationError` subclass is
        raised instead of silently propagating NaNs into the prediction.
        """
        self._require_built()
        if validate:
            from repro.reliability.validation import validate_batch

            x = validate_batch(x, feature_shape=self.input_shape, field="x")
        else:
            x = np.asarray(x, dtype=np.float64)
        if x.shape[0] <= batch_size:
            return self.forward(x, training=False)
        chunks = [
            self.forward(x[i : i + batch_size], training=False)
            for i in range(0, x.shape[0], batch_size)
        ]
        return np.concatenate(chunks, axis=0)

    def freeze(
        self,
        dtype: str = "float32",
        per_channel: bool = False,
        calibration: Optional[np.ndarray] = None,
        contract: Optional[float] = None,
    ):
        """Compile this built model into an immutable inference plan.

        Returns an :class:`~repro.inference.plan.InferencePlan` — fused
        conv/dense + bias + activation ops with precomputed im2col index
        plans, float32 weights by default or calibrated symmetric int8
        (``dtype="int8"``, optionally ``per_channel=True``).  Execute it
        with :class:`~repro.inference.engine.InferenceEngine`; raises
        :class:`~repro.inference.plan.UnsupportedLayerError` if a layer
        has no fused kernel (LSTM, BatchNorm, composite blocks).
        """
        from repro.inference import freeze as freeze_plan

        return freeze_plan(
            self,
            dtype=dtype,
            per_channel=per_channel,
            calibration=calibration,
            contract=contract,
        )

    def train_on_batch(self, x: np.ndarray, y: np.ndarray) -> float:
        """One optimizer step on a single batch; returns the batch loss."""
        self._require_compiled()
        pred = self.forward(x, training=True)
        loss_value = self.loss.value(pred, y)
        self.backward(self.loss.gradient(pred, y))
        params, grads = self._collect_params_and_grads()
        self.optimizer.apply(params, grads)
        return loss_value

    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        epochs: int = 1,
        batch_size: int = 32,
        validation_data: Optional[Tuple[np.ndarray, np.ndarray]] = None,
        shuffle: bool = True,
        callbacks: Optional[Sequence[Callback]] = None,
        seed: Optional[int] = None,
        verbose: bool = False,
        initial_epoch: int = 0,
        clip_norm: Optional[float] = None,
    ) -> History:
        """Standard epoch/mini-batch training loop; returns a History.

        ``initial_epoch`` (with restored weights and optimizer state)
        resumes a checkpointed run at epoch ``initial_epoch + 1``.

        ``clip_norm`` enables global gradient-norm clipping for this run:
        it sets the compiled optimizer's ``clipnorm`` so every batch's
        gradients are rescaled when their global L2 norm exceeds it — the
        first line of defence against training divergence.
        """
        self._require_compiled()
        if clip_norm is not None:
            if clip_norm <= 0:
                raise ValueError(f"clip_norm must be positive, got {clip_norm}")
            self.optimizer.clipnorm = float(clip_norm)
        return run_training_loop(
            self,
            np.asarray(x, dtype=np.float64),
            np.asarray(y, dtype=np.float64),
            epochs=epochs,
            batch_size=batch_size,
            validation_data=validation_data,
            shuffle=shuffle,
            callbacks=list(callbacks or []),
            seed=seed,
            verbose=verbose,
            initial_epoch=initial_epoch,
        )

    def evaluate(self, x: np.ndarray, y: np.ndarray, batch_size: int = 256) -> float:
        """Mean loss over a dataset."""
        self._require_compiled()
        pred = self.predict(x, batch_size=batch_size)
        return self.loss.value(pred, np.asarray(y, dtype=np.float64))

    # -- weights -----------------------------------------------------------

    def get_weights(self) -> List[np.ndarray]:
        self._require_built()
        weights = []
        for layer in self.layers:
            for key in sorted(layer.params):
                weights.append(layer.params[key].copy())
        return weights

    def set_weights(self, weights: Sequence[np.ndarray]) -> None:
        self._require_built()
        expected = sum(len(layer.params) for layer in self.layers)
        if len(weights) != expected:
            raise ValueError(f"expected {expected} weight arrays, got {len(weights)}")
        idx = 0
        for layer in self.layers:
            for key in sorted(layer.params):
                value = np.asarray(weights[idx], dtype=np.float64)
                if value.shape != layer.params[key].shape:
                    raise ValueError(
                        f"{layer.name}.{key}: shape {value.shape} != "
                        f"{layer.params[key].shape}"
                    )
                layer.params[key] = value.copy()
                idx += 1

    def _collect_params_and_grads(self) -> Tuple[Dict, Dict]:
        params, grads = {}, {}
        for i, layer in enumerate(self.layers):
            if not layer.trainable:
                continue
            for key, value in layer.params.items():
                params[(i, key)] = value
                if key in layer.grads:
                    grads[(i, key)] = layer.grads[key]
        return params, grads

    # -- introspection -----------------------------------------------------

    def count_params(self) -> int:
        self._require_built()
        return sum(layer.count_params() for layer in self.layers)

    def summary(self) -> str:
        """Return a printable per-layer summary table."""
        self._require_built()
        lines = [f"Model: {self.name}", "-" * 58]
        lines.append(f"{'Layer':<24}{'Output shape':<20}{'Params':>12}")
        lines.append("-" * 58)
        for layer in self.layers:
            shape = str(tuple(layer.output_shape))
            lines.append(f"{layer.name:<24}{shape:<20}{layer.count_params():>12,}")
        lines.append("-" * 58)
        lines.append(f"Total params: {self.count_params():,}")
        return "\n".join(lines)

    def get_config(self) -> dict:
        return {
            "name": self.name,
            "input_shape": list(self.input_shape) if self.input_shape else None,
            "layers": [
                {"class": layer.name, "config": layer.get_config()}
                for layer in self.layers
            ],
        }

    def _require_built(self):
        if not self.built:
            raise RuntimeError("model is not built; call build(input_shape) first")

    def _require_compiled(self):
        self._require_built()
        if self.loss is None or self.optimizer is None:
            raise RuntimeError("model is not compiled; call compile() first")

    def __repr__(self):
        status = "built" if self.built else "unbuilt"
        return f"<Sequential {self.name!r} layers={len(self.layers)} {status}>"

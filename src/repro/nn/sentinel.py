"""Training divergence sentinel: detect, roll back, dampen, resume.

The paper's Tool 4 trains whole topology sweeps "without user interaction"
— so nobody is watching when a too-hot learning rate or a poisoned batch
sends the loss to NaN three topologies in.  Left alone, the NaN propagates
into every weight within one optimizer step and the remaining epochs train
garbage to completion.

:class:`DivergenceSentinel` is a :class:`~repro.nn.training.Callback` that
watches every batch for the three signatures of divergence — non-finite
loss, non-finite gradients, runaway loss growth against a smoothed
baseline — and on trigger:

1. rolls the model back to the last-good state (the most recent
   :class:`~repro.reliability.checkpoint.CheckpointManager` checkpoint if
   one is wired in, else an in-memory snapshot refreshed every healthy
   epoch),
2. halves the learning rate (down to ``min_lr``),
3. asks the training loop to discard and re-run the epoch.

After ``max_rollbacks`` consecutive triggers it gives up with a
:class:`DivergenceError` — the run is genuinely broken, not transient.
Every trigger is recorded as a :class:`SentinelEvent` for post-mortems.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.nn.training import Callback
from repro.observability.runtime import counter as _global_counter

__all__ = ["DivergenceError", "SentinelEvent", "DivergenceSentinel"]


class DivergenceError(RuntimeError):
    """Training kept diverging after every permitted rollback."""

    def __init__(self, message: str, events: Optional[List["SentinelEvent"]] = None):
        super().__init__(message)
        self.events = list(events or [])


@dataclass(frozen=True)
class SentinelEvent:
    """One divergence trigger and the recovery action taken."""

    epoch: int
    batch: int
    reason: str
    loss: float
    grad_norm: float
    new_learning_rate: float
    detail: Dict[str, float] = field(default_factory=dict)


class DivergenceSentinel(Callback):
    """Per-batch divergence watchdog with rollback and LR damping.

    Parameters
    ----------
    loss_growth_factor:
        Trigger when a batch loss exceeds this multiple of the smoothed
        (EWMA) batch loss.  ``None`` disables the growth check; non-finite
        loss/gradients always trigger.
    grad_norm_limit:
        Optional absolute trigger on the global gradient norm.
    ewma_smoothing:
        Smoothing constant of the batch-loss EWMA in (0, 1].
    warmup_batches:
        Healthy batches required (after start or after a rollback) before
        the growth/limit checks arm; non-finite checks are always armed.
    lr_factor / min_lr:
        Each rollback multiplies the learning rate by ``lr_factor``
        (default: halving), floored at ``min_lr``.
    max_rollbacks:
        Consecutive-trigger budget; exceeded → :class:`DivergenceError`.
        A healthy completed epoch resets the budget.
    manager / checkpoint_name:
        Optional :class:`~repro.reliability.checkpoint.CheckpointManager`
        and entry name; when the named checkpoint exists, rollback restores
        it (weights + optimizer state) instead of the in-memory snapshot.
    """

    def __init__(
        self,
        loss_growth_factor: Optional[float] = 1e3,
        grad_norm_limit: Optional[float] = None,
        ewma_smoothing: float = 0.3,
        warmup_batches: int = 5,
        lr_factor: float = 0.5,
        min_lr: float = 1e-6,
        max_rollbacks: int = 5,
        manager=None,
        checkpoint_name: Optional[str] = None,
    ):
        if loss_growth_factor is not None and loss_growth_factor <= 1.0:
            raise ValueError("loss_growth_factor must exceed 1.0")
        if grad_norm_limit is not None and grad_norm_limit <= 0:
            raise ValueError("grad_norm_limit must be positive")
        if not 0.0 < ewma_smoothing <= 1.0:
            raise ValueError("ewma_smoothing must be in (0, 1]")
        if warmup_batches < 1:
            raise ValueError("warmup_batches must be >= 1")
        if not 0.0 < lr_factor < 1.0:
            raise ValueError("lr_factor must be in (0, 1)")
        if min_lr <= 0:
            raise ValueError("min_lr must be positive")
        if max_rollbacks < 1:
            raise ValueError("max_rollbacks must be >= 1")
        if (manager is None) != (checkpoint_name is None):
            raise ValueError("manager and checkpoint_name go together")
        self.loss_growth_factor = (
            float(loss_growth_factor) if loss_growth_factor is not None else None
        )
        self.grad_norm_limit = (
            float(grad_norm_limit) if grad_norm_limit is not None else None
        )
        self.ewma_smoothing = float(ewma_smoothing)
        self.warmup_batches = int(warmup_batches)
        self.lr_factor = float(lr_factor)
        self.min_lr = float(min_lr)
        self.max_rollbacks = int(max_rollbacks)
        self.manager = manager
        self.checkpoint_name = checkpoint_name
        self.events: List[SentinelEvent] = []
        self.rollbacks = 0
        self._consecutive_rollbacks = 0
        self._ewma: Optional[float] = None
        self._healthy_batches = 0
        self._epochs_completed = 0
        self._snapshot = None
        self._abort_epoch = False

    @property
    def triggered(self) -> bool:
        return bool(self.events)

    # -- callback hooks ----------------------------------------------------

    def on_train_begin(self):
        self.events = []
        self.rollbacks = 0
        self._consecutive_rollbacks = 0
        self._ewma = None
        self._healthy_batches = 0
        self._abort_epoch = False
        self._epochs_completed = 0
        self._take_snapshot()

    def on_batch_end(self, epoch, batch, loss):
        loss = float(loss)
        grad_norm = self._grad_norm()
        reason = self._diagnose(loss, grad_norm)
        if reason is None:
            self._healthy_batches += 1
            if self._ewma is None:
                self._ewma = loss
            else:
                self._ewma = (
                    self.ewma_smoothing * loss
                    + (1.0 - self.ewma_smoothing) * self._ewma
                )
            return
        self._roll_back(epoch, batch, reason, loss, grad_norm)

    def on_epoch_end(self, epoch, metrics):
        if all(np.isfinite(v) for v in metrics.values()):
            self._take_snapshot()
            self._consecutive_rollbacks = 0
            self._epochs_completed += 1

    # -- detection ---------------------------------------------------------

    def _diagnose(self, loss: float, grad_norm: float) -> Optional[str]:
        if not np.isfinite(loss):
            return f"non-finite batch loss ({loss})"
        if not np.isfinite(grad_norm):
            return "non-finite gradient norm"
        if self._healthy_batches < self.warmup_batches:
            return None
        if self.grad_norm_limit is not None and grad_norm > self.grad_norm_limit:
            return (
                f"gradient norm {grad_norm:.3g} exceeds limit "
                f"{self.grad_norm_limit:.3g}"
            )
        if (
            self.loss_growth_factor is not None
            and self._ewma is not None
            and self._ewma > 0
            and loss > self.loss_growth_factor * self._ewma
        ):
            return (
                f"batch loss {loss:.3g} is {loss / self._ewma:.3g}x the "
                f"smoothed loss {self._ewma:.3g}"
            )
        return None

    def _grad_norm(self) -> float:
        collect = getattr(self.model, "_collect_params_and_grads", None)
        if collect is None:
            return 0.0
        _, grads = collect()
        total = 0.0
        for grad in grads.values():
            total += float(np.sum(grad * grad))
        return float(np.sqrt(total))

    # -- recovery ----------------------------------------------------------

    def _take_snapshot(self):
        optimizer = getattr(self.model, "optimizer", None)
        self._snapshot = (
            self.model.get_weights(),
            optimizer.get_state() if optimizer is not None else None,
        )

    def _roll_back(self, epoch, batch, reason, loss, grad_norm):
        if self._consecutive_rollbacks >= self.max_rollbacks:
            raise DivergenceError(
                f"training diverged again after {self._consecutive_rollbacks} "
                f"consecutive rollbacks (last: {reason}); giving up",
                events=self.events,
            )
        self.rollbacks += 1
        self._consecutive_rollbacks += 1
        _global_counter(
            "training_rollbacks_total", "divergence-sentinel rollbacks"
        ).inc()
        self._restore_last_good()
        new_lr = self._dampen_learning_rate()
        self.events.append(
            SentinelEvent(
                epoch=int(epoch),
                batch=int(batch),
                reason=reason,
                loss=float(loss),
                grad_norm=float(grad_norm),
                new_learning_rate=new_lr,
                detail={"consecutive_rollbacks": self._consecutive_rollbacks},
            )
        )
        # Growth checks re-arm from scratch at the restored state.
        self._ewma = None
        self._healthy_batches = 0
        self._abort_epoch = True

    def _restore_last_good(self):
        # The on-disk checkpoint is only trusted once an epoch completed in
        # *this* run (so the entry was written by this run's Checkpoint
        # callback, not left over from an older sweep under the same name).
        if (
            self.manager is not None
            and self.checkpoint_name is not None
            and self._epochs_completed > 0
            and self.manager.exists(self.checkpoint_name)
        ):
            data = self.manager.load(self.checkpoint_name)
            self.model.set_weights(data.model.get_weights())
            optimizer = getattr(self.model, "optimizer", None)
            if optimizer is not None and data.optimizer is not None:
                optimizer.set_state(data.optimizer.get_state())
            return
        weights, opt_state = self._snapshot
        self.model.set_weights(weights)
        optimizer = getattr(self.model, "optimizer", None)
        if optimizer is not None and opt_state is not None:
            optimizer.set_state(opt_state)

    def _dampen_learning_rate(self) -> float:
        optimizer = getattr(self.model, "optimizer", None)
        if optimizer is None:
            return float("nan")
        new_lr = max(optimizer.learning_rate * self.lr_factor, self.min_lr)
        optimizer.learning_rate = new_lr
        return new_lr

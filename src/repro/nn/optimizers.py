"""Gradient-descent optimizers (SGD+momentum, Adam, RMSprop).

Optimizers hold per-parameter state keyed by ``(layer_index, param_name)``
so a single optimizer instance can drive a whole :class:`Sequential` model.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

__all__ = ["Optimizer", "SGD", "Adam", "RMSprop", "get_optimizer"]

ParamKey = Tuple[int, str]


class Optimizer:
    """Base class: per-parameter state keyed by ``(layer_index, name)``."""

    name = "optimizer"

    def __init__(self, learning_rate: float = 0.001, clipnorm: float = None):
        if learning_rate <= 0:
            raise ValueError(f"learning_rate must be positive, got {learning_rate}")
        self.learning_rate = float(learning_rate)
        self.clipnorm = float(clipnorm) if clipnorm is not None else None
        self.iterations = 0

    def apply(self, params: Dict[ParamKey, np.ndarray], grads: Dict[ParamKey, np.ndarray]) -> None:
        """Update ``params`` in place from ``grads``."""
        self.iterations += 1
        grads = self._maybe_clip(grads)
        for key, g in grads.items():
            self._update(key, params[key], g)

    def _maybe_clip(self, grads):
        if self.clipnorm is None:
            return grads
        total = np.sqrt(sum(float(np.sum(g * g)) for g in grads.values()))
        if total > self.clipnorm and total > 0:
            scale = self.clipnorm / total
            return {k: g * scale for k, g in grads.items()}
        return grads

    def _update(self, key: ParamKey, param: np.ndarray, grad: np.ndarray) -> None:
        raise NotImplementedError

    def reset(self) -> None:
        """Discard accumulated state (momentum, moments, step count)."""
        self.iterations = 0

    def _slots(self) -> Dict[str, Dict[ParamKey, np.ndarray]]:
        """Per-parameter state dicts by slot name (subclasses override)."""
        return {}

    def get_state(self) -> dict:
        """Snapshot of step count + per-parameter slots, for checkpointing."""
        return {
            "iterations": self.iterations,
            "slots": {
                name: {key: value.copy() for key, value in slot.items()}
                for name, slot in self._slots().items()
            },
        }

    def set_state(self, state: dict) -> None:
        """Restore a :meth:`get_state` snapshot (exact resume of training)."""
        slots = self._slots()
        given = dict(state.get("slots", {}))
        unknown = set(given) - set(slots)
        if unknown:
            raise ValueError(f"unknown optimizer state slots: {sorted(unknown)}")
        self.iterations = int(state["iterations"])
        for name, slot in slots.items():
            slot.clear()
            for key, value in given.get(name, {}).items():
                slot[key] = np.array(value, dtype=np.float64, copy=True)

    def get_config(self) -> dict:
        return {
            "name": self.name,
            "learning_rate": self.learning_rate,
            "clipnorm": self.clipnorm,
        }


class SGD(Optimizer):
    """Stochastic gradient descent with optional (Nesterov) momentum."""

    name = "sgd"

    def __init__(self, learning_rate=0.01, momentum=0.0, nesterov=False, clipnorm=None):
        super().__init__(learning_rate, clipnorm)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = float(momentum)
        self.nesterov = bool(nesterov)
        self._velocity: Dict[ParamKey, np.ndarray] = {}

    def _slots(self):
        return {"velocity": self._velocity}

    def _update(self, key, param, grad):
        if self.momentum == 0.0:
            param -= self.learning_rate * grad
            return
        v = self._velocity.get(key)
        if v is None:
            v = np.zeros_like(param)
        v = self.momentum * v - self.learning_rate * grad
        self._velocity[key] = v
        if self.nesterov:
            param += self.momentum * v - self.learning_rate * grad
        else:
            param += v

    def reset(self):
        super().reset()
        self._velocity.clear()

    def get_config(self):
        config = super().get_config()
        config.update(momentum=self.momentum, nesterov=self.nesterov)
        return config


class Adam(Optimizer):
    """Adam (Kingma & Ba): bias-corrected first/second moment estimates."""

    name = "adam"

    def __init__(
        self,
        learning_rate=0.001,
        beta_1=0.9,
        beta_2=0.999,
        epsilon=1e-8,
        clipnorm=None,
    ):
        super().__init__(learning_rate, clipnorm)
        for label, value in (("beta_1", beta_1), ("beta_2", beta_2)):
            if not 0.0 <= value < 1.0:
                raise ValueError(f"{label} must be in [0, 1), got {value}")
        self.beta_1 = float(beta_1)
        self.beta_2 = float(beta_2)
        self.epsilon = float(epsilon)
        self._m: Dict[ParamKey, np.ndarray] = {}
        self._v: Dict[ParamKey, np.ndarray] = {}

    def _slots(self):
        return {"m": self._m, "v": self._v}

    def _update(self, key, param, grad):
        m = self._m.get(key)
        if m is None:
            m = np.zeros_like(param)
            self._v[key] = np.zeros_like(param)
        v = self._v[key]
        m = self.beta_1 * m + (1.0 - self.beta_1) * grad
        v = self.beta_2 * v + (1.0 - self.beta_2) * grad * grad
        self._m[key] = m
        self._v[key] = v
        t = self.iterations
        m_hat = m / (1.0 - self.beta_1**t)
        v_hat = v / (1.0 - self.beta_2**t)
        param -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)

    def reset(self):
        super().reset()
        self._m.clear()
        self._v.clear()

    def get_config(self):
        config = super().get_config()
        config.update(beta_1=self.beta_1, beta_2=self.beta_2, epsilon=self.epsilon)
        return config


class RMSprop(Optimizer):
    """RMSprop: gradient scaling by a running mean of squared gradients."""

    name = "rmsprop"

    def __init__(self, learning_rate=0.001, rho=0.9, epsilon=1e-8, clipnorm=None):
        super().__init__(learning_rate, clipnorm)
        if not 0.0 <= rho < 1.0:
            raise ValueError(f"rho must be in [0, 1), got {rho}")
        self.rho = float(rho)
        self.epsilon = float(epsilon)
        self._sq: Dict[ParamKey, np.ndarray] = {}

    def _slots(self):
        return {"sq": self._sq}

    def _update(self, key, param, grad):
        sq = self._sq.get(key)
        if sq is None:
            sq = np.zeros_like(param)
        sq = self.rho * sq + (1.0 - self.rho) * grad * grad
        self._sq[key] = sq
        param -= self.learning_rate * grad / (np.sqrt(sq) + self.epsilon)

    def reset(self):
        super().reset()
        self._sq.clear()

    def get_config(self):
        config = super().get_config()
        config.update(rho=self.rho, epsilon=self.epsilon)
        return config


_REGISTRY = {"sgd": SGD, "adam": Adam, "rmsprop": RMSprop}


def get_optimizer(spec) -> Optimizer:
    """Resolve an optimizer from a name, config dict, or instance."""
    if isinstance(spec, Optimizer):
        return spec
    if isinstance(spec, str):
        try:
            return _REGISTRY[spec.lower()]()
        except KeyError:
            raise ValueError(
                f"unknown optimizer {spec!r}; known: {sorted(_REGISTRY)}"
            ) from None
    if isinstance(spec, dict):
        config = dict(spec)
        name = config.pop("name")
        return _REGISTRY[name](**config)
    raise TypeError(f"cannot resolve optimizer from {type(spec).__name__}")

"""Core layers: Dense, Flatten, Reshape, Dropout, ActivationLayer."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.activations import get_activation
from repro.nn.initializers import get_initializer
from repro.nn.layers.base import Layer

__all__ = ["Dense", "Flatten", "Reshape", "Dropout", "ActivationLayer"]


class Dense(Layer):
    """Fully connected layer ``y = activation(x @ W + b)``.

    Operates on the last axis; leading axes (batch, time) are preserved, so
    the same layer serves as the LSTM read-out head on either 2-D or 3-D
    inputs.
    """

    def __init__(
        self,
        units: int,
        activation=None,
        kernel_initializer="glorot_uniform",
        bias_initializer="zeros",
        use_bias: bool = True,
    ):
        super().__init__()
        if units <= 0:
            raise ValueError(f"units must be positive, got {units}")
        self.units = int(units)
        self.activation = get_activation(activation)
        self.kernel_initializer = get_initializer(kernel_initializer)
        self.bias_initializer = get_initializer(bias_initializer)
        self.use_bias = bool(use_bias)
        self._cache = None

    def compute_output_shape(self, input_shape):
        return tuple(input_shape[:-1]) + (self.units,)

    def build(self, input_shape, rng):
        in_features = input_shape[-1]
        self.params["W"] = self.kernel_initializer((in_features, self.units), rng)
        if self.use_bias:
            self.params["b"] = self.bias_initializer((self.units,), rng)
        super().build(input_shape, rng)

    def forward(self, x, training=False):
        self._check_built()
        z = x @ self.params["W"]
        if self.use_bias:
            z = z + self.params["b"]
        y = self.activation.forward(z)
        self._cache = (x, z, y)
        return y

    def backward(self, grad):
        x, z, y = self._cache
        dz = self.activation.backward(grad, z, y)
        # Collapse any leading axes into one batch axis for the weight grads.
        x2 = x.reshape(-1, x.shape[-1])
        dz2 = dz.reshape(-1, dz.shape[-1])
        self.grads["W"] = x2.T @ dz2
        if self.use_bias:
            self.grads["b"] = dz2.sum(axis=0)
        return dz @ self.params["W"].T

    def get_config(self):
        return {
            "units": self.units,
            "activation": self.activation.name,
            "kernel_initializer": self.kernel_initializer.get_config(),
            "bias_initializer": self.bias_initializer.get_config(),
            "use_bias": self.use_bias,
        }


class Flatten(Layer):
    """Flatten all non-batch axes into one."""

    def __init__(self):
        super().__init__()
        self._in_shape = None

    def compute_output_shape(self, input_shape):
        return (int(np.prod(input_shape)),)

    def forward(self, x, training=False):
        self._check_built()
        self._in_shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad):
        return grad.reshape(self._in_shape)


class Reshape(Layer):
    """Reshape non-batch axes to ``target_shape``; one axis may be -1.

    Table 1 of the paper uses a Reshape as layer 2 to lift the raw spectrum
    vector ``(length,)`` to the conv input ``(length, 1)``.
    """

    def __init__(self, target_shape):
        super().__init__()
        self.target_shape = tuple(int(d) for d in target_shape)
        if list(self.target_shape).count(-1) > 1:
            raise ValueError("at most one axis of target_shape may be -1")
        self._in_shape = None

    def compute_output_shape(self, input_shape):
        total = int(np.prod(input_shape))
        shape = list(self.target_shape)
        if -1 in shape:
            known = int(np.prod([d for d in shape if d != -1]))
            if known == 0 or total % known:
                raise ValueError(
                    f"cannot reshape {input_shape} to {self.target_shape}"
                )
            shape[shape.index(-1)] = total // known
        if int(np.prod(shape)) != total:
            raise ValueError(f"cannot reshape {input_shape} to {self.target_shape}")
        return tuple(shape)

    def forward(self, x, training=False):
        self._check_built()
        self._in_shape = x.shape
        return x.reshape((x.shape[0],) + self.output_shape)

    def backward(self, grad):
        return grad.reshape(self._in_shape)

    def get_config(self):
        return {"target_shape": list(self.target_shape)}


class Dropout(Layer):
    """Inverted dropout; identity at inference time."""

    def __init__(self, rate: float, seed: Optional[int] = None):
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"rate must be in [0, 1), got {rate}")
        self.rate = float(rate)
        self._rng = np.random.default_rng(seed)
        self._mask = None

    def forward(self, x, training=False):
        self._check_built()
        if not training or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        self._mask = (self._rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad):
        if self._mask is None:
            return grad
        return grad * self._mask

    def get_config(self):
        return {"rate": self.rate}


class ActivationLayer(Layer):
    """A standalone activation, for separating linearity from nonlinearity."""

    def __init__(self, activation):
        super().__init__()
        self.activation = get_activation(activation)
        self._cache = None

    def forward(self, x, training=False):
        self._check_built()
        y = self.activation.forward(x)
        self._cache = (x, y)
        return y

    def backward(self, grad):
        x, y = self._cache
        return self.activation.backward(grad, x, y)

    def get_config(self):
        return {"activation": self.activation.name}

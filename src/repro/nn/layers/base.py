"""Layer base class.

Layers follow a two-phase lifecycle: they are constructed with
hyperparameters only, then ``build(input_shape, rng)`` allocates weights
once the input shape is known (shapes exclude the batch axis).  ``forward``
caches whatever ``backward`` needs; ``backward`` fills ``self.grads`` and
returns the gradient with respect to the layer input.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

__all__ = ["Layer"]


class Layer:
    """Base class for all layers."""

    def __init__(self):
        self.built = False
        self.input_shape: Optional[Tuple[int, ...]] = None
        self.output_shape: Optional[Tuple[int, ...]] = None
        # name -> parameter array; populated by build() for trainable layers.
        self.params: Dict[str, np.ndarray] = {}
        # name -> gradient array; populated by backward().
        self.grads: Dict[str, np.ndarray] = {}
        self.trainable = True

    # -- lifecycle ---------------------------------------------------------

    def build(self, input_shape: Tuple[int, ...], rng: np.random.Generator) -> None:
        """Allocate parameters and set ``output_shape``.

        Subclasses must call this (or replicate it) to record shapes and
        flip ``built``.
        """
        self.input_shape = tuple(input_shape)
        self.output_shape = self.compute_output_shape(self.input_shape)
        self.built = True

    def compute_output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        return tuple(input_shape)

    # -- computation -------------------------------------------------------

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    # -- bookkeeping -------------------------------------------------------

    def count_params(self) -> int:
        return int(sum(p.size for p in self.params.values()))

    def get_config(self) -> dict:
        """Hyperparameter config sufficient to re-instantiate the layer."""
        return {}

    @property
    def name(self) -> str:
        return type(self).__name__

    def __repr__(self) -> str:
        shape = self.output_shape if self.built else "unbuilt"
        return f"<{self.name} output_shape={shape} params={self.count_params()}>"

    def _check_built(self) -> None:
        if not self.built:
            raise RuntimeError(
                f"{self.name} used before build(); add it to a Sequential "
                "model and call build() or fit() first"
            )

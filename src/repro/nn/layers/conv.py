"""1-D convolutional layers.

``Conv1D`` is the workhorse of the paper's MS network (Table 1).
``LocallyConnected1D`` — a convolution whose weights are *not* shared across
positions — is the first layer of the paper's NMR network; unshared weights
make sense for spectra because each position on the m/z or chemical-shift
axis has a fixed physical meaning.

Both layers are implemented via an im2col transform so the inner loop is a
single matmul/einsum.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.nn.activations import get_activation
from repro.nn.initializers import get_initializer
from repro.nn.layers.base import Layer

__all__ = ["Conv1D", "LocallyConnected1D"]


def _conv_output_length(length: int, kernel: int, stride: int, padding: str) -> int:
    if padding == "same":
        return -(-length // stride)  # ceil division
    out = (length - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"kernel {kernel} with stride {stride} does not fit input "
            f"length {length} (padding={padding!r})"
        )
    return out


def _same_padding(length: int, kernel: int, stride: int) -> Tuple[int, int]:
    out = -(-length // stride)
    total = max(0, (out - 1) * stride + kernel - length)
    return total // 2, total - total // 2


class _WindowedLayer(Layer):
    """Shared im2col machinery for Conv1D and LocallyConnected1D."""

    def __init__(self, kernel_size: int, strides: int, padding: str):
        super().__init__()
        if kernel_size <= 0:
            raise ValueError(f"kernel_size must be positive, got {kernel_size}")
        if strides <= 0:
            raise ValueError(f"strides must be positive, got {strides}")
        if padding not in ("valid", "same"):
            raise ValueError(f"padding must be 'valid' or 'same', got {padding!r}")
        self.kernel_size = int(kernel_size)
        self.strides = int(strides)
        self.padding = padding
        self._pad = (0, 0)
        self._windows = None  # (out_length, kernel) gather indices
        self._cache = None

    def _prepare_indices(self, length: int) -> None:
        if self.padding == "same":
            self._pad = _same_padding(length, self.kernel_size, self.strides)
        out_length = _conv_output_length(
            length, self.kernel_size, self.strides, self.padding
        )
        starts = np.arange(out_length) * self.strides
        self._windows = starts[:, None] + np.arange(self.kernel_size)[None, :]

    def _im2col(self, x: np.ndarray) -> np.ndarray:
        """(N, L, C) -> (N, out_L, kernel, C)."""
        if self._pad != (0, 0):
            x = np.pad(x, ((0, 0), self._pad, (0, 0)))
        return x[:, self._windows, :]

    def _col2im(self, dcols: np.ndarray, length: int) -> np.ndarray:
        """Scatter-add (N, out_L, kernel, C) back to (N, L, C).

        Instead of one unbuffered ``np.add.at`` (which degenerates to a
        per-element loop), accumulate one vectorized add per kernel offset:
        for a fixed offset the window start positions are strictly
        increasing, so fancy-index ``+=`` has no collisions.
        """
        padded_length = length + self._pad[0] + self._pad[1]
        dx = np.zeros(
            (dcols.shape[0], padded_length, dcols.shape[-1]), dtype=dcols.dtype
        )
        starts = self._windows[:, 0]
        for offset in range(self.kernel_size):
            dx[:, starts + offset, :] += dcols[:, :, offset, :]
        if self._pad != (0, 0):
            dx = dx[:, self._pad[0] : padded_length - self._pad[1], :]
        return dx


class Conv1D(_WindowedLayer):
    """1-D convolution with shared weights.

    Input ``(batch, length, channels)``; kernel ``(kernel, channels,
    filters)``.
    """

    def __init__(
        self,
        filters: int,
        kernel_size: int,
        strides: int = 1,
        padding: str = "valid",
        activation=None,
        kernel_initializer="glorot_uniform",
        bias_initializer="zeros",
        use_bias: bool = True,
    ):
        super().__init__(kernel_size, strides, padding)
        if filters <= 0:
            raise ValueError(f"filters must be positive, got {filters}")
        self.filters = int(filters)
        self.activation = get_activation(activation)
        self.kernel_initializer = get_initializer(kernel_initializer)
        self.bias_initializer = get_initializer(bias_initializer)
        self.use_bias = bool(use_bias)

    def compute_output_shape(self, input_shape):
        if len(input_shape) != 2:
            raise ValueError(
                f"Conv1D expects input shape (length, channels), got {input_shape}"
            )
        length, _ = input_shape
        out = _conv_output_length(length, self.kernel_size, self.strides, self.padding)
        return (out, self.filters)

    def build(self, input_shape, rng):
        length, channels = input_shape
        self._prepare_indices(length)
        self.params["W"] = self.kernel_initializer(
            (self.kernel_size, channels, self.filters), rng
        )
        if self.use_bias:
            self.params["b"] = self.bias_initializer((self.filters,), rng)
        super().build(input_shape, rng)

    def forward(self, x, training=False):
        self._check_built()
        cols = self._im2col(x)  # (N, out_L, K, C), C-contiguous
        n, out_length = cols.shape[0], cols.shape[1]
        # Flatten to one big GEMM: (N*out_L, K*C) @ (K*C, F).  All reshapes
        # below are views, so the matmul runs without extra copies.
        cols2 = cols.reshape(n * out_length, -1)
        w2 = self.params["W"].reshape(-1, self.filters)
        z = (cols2 @ w2).reshape(n, out_length, self.filters)
        if self.use_bias:
            z = z + self.params["b"]
        y = self.activation.forward(z)
        self._cache = (x.shape[1], cols.shape, cols2, z, y)
        return y

    def backward(self, grad):
        length, cols_shape, cols2, z, y = self._cache
        dz = self.activation.backward(grad, z, y)  # (N, out_L, F)
        dz2 = dz.reshape(-1, self.filters)
        self.grads["W"] = (cols2.T @ dz2).reshape(self.params["W"].shape)
        if self.use_bias:
            self.grads["b"] = dz2.sum(axis=0)
        w2 = self.params["W"].reshape(-1, self.filters)
        dcols = (dz2 @ w2.T).reshape(cols_shape)  # (N, out_L, K, C)
        return self._col2im(dcols, length)

    def get_config(self):
        return {
            "filters": self.filters,
            "kernel_size": self.kernel_size,
            "strides": self.strides,
            "padding": self.padding,
            "activation": self.activation.name,
            "kernel_initializer": self.kernel_initializer.get_config(),
            "bias_initializer": self.bias_initializer.get_config(),
            "use_bias": self.use_bias,
        }


class LocallyConnected1D(_WindowedLayer):
    """1-D locally connected layer (unshared convolution weights).

    Kernel shape ``(out_length, kernel * channels, filters)``; biases are
    per-position ``(out_length, filters)``, matching Keras — this is what
    makes the paper's 10 532-parameter NMR model count work out exactly.
    """

    def __init__(
        self,
        filters: int,
        kernel_size: int,
        strides: int = 1,
        activation=None,
        kernel_initializer="glorot_uniform",
        bias_initializer="zeros",
        use_bias: bool = True,
    ):
        # Keras only supports 'valid' padding for locally connected layers.
        super().__init__(kernel_size, strides, padding="valid")
        if filters <= 0:
            raise ValueError(f"filters must be positive, got {filters}")
        self.filters = int(filters)
        self.activation = get_activation(activation)
        self.kernel_initializer = get_initializer(kernel_initializer)
        self.bias_initializer = get_initializer(bias_initializer)
        self.use_bias = bool(use_bias)

    def compute_output_shape(self, input_shape):
        if len(input_shape) != 2:
            raise ValueError(
                f"LocallyConnected1D expects (length, channels), got {input_shape}"
            )
        length, _ = input_shape
        out = _conv_output_length(length, self.kernel_size, self.strides, "valid")
        return (out, self.filters)

    def build(self, input_shape, rng):
        length, channels = input_shape
        self._prepare_indices(length)
        out_length = self._windows.shape[0]
        self.params["W"] = self.kernel_initializer(
            (out_length, self.kernel_size * channels, self.filters), rng
        )
        if self.use_bias:
            self.params["b"] = self.bias_initializer((out_length, self.filters), rng)
        super().build(input_shape, rng)

    def forward(self, x, training=False):
        self._check_built()
        cols = self._im2col(x)  # (N, out_L, K, C)
        flat = cols.reshape(cols.shape[0], cols.shape[1], -1)  # (N, out_L, K*C)
        z = np.einsum("nlk,lkf->nlf", flat, self.params["W"])
        if self.use_bias:
            z = z + self.params["b"]
        y = self.activation.forward(z)
        self._cache = (x.shape[1], cols.shape, flat, z, y)
        return y

    def backward(self, grad):
        length, cols_shape, flat, z, y = self._cache
        dz = self.activation.backward(grad, z, y)  # (N, out_L, F)
        self.grads["W"] = np.einsum("nlk,nlf->lkf", flat, dz)
        if self.use_bias:
            self.grads["b"] = dz.sum(axis=0)
        dflat = np.einsum("nlf,lkf->nlk", dz, self.params["W"])
        return self._col2im(dflat.reshape(cols_shape), length)

    def get_config(self):
        return {
            "filters": self.filters,
            "kernel_size": self.kernel_size,
            "strides": self.strides,
            "activation": self.activation.name,
            "kernel_initializer": self.kernel_initializer.get_config(),
            "bias_initializer": self.bias_initializer.get_config(),
            "use_bias": self.use_bias,
        }

"""1-D pooling layers (used in the paper's NMR architecture search)."""

from __future__ import annotations

import numpy as np

from repro.nn.layers.base import Layer

__all__ = ["MaxPool1D", "AvgPool1D", "GlobalAvgPool1D"]


class _Pool1D(Layer):
    def __init__(self, pool_size: int = 2, strides: int = None):
        super().__init__()
        if pool_size <= 0:
            raise ValueError(f"pool_size must be positive, got {pool_size}")
        self.pool_size = int(pool_size)
        self.strides = int(strides) if strides is not None else self.pool_size
        if self.strides <= 0:
            raise ValueError(f"strides must be positive, got {self.strides}")
        self._windows = None
        self._cache = None

    def compute_output_shape(self, input_shape):
        if len(input_shape) != 2:
            raise ValueError(f"pooling expects (length, channels), got {input_shape}")
        length, channels = input_shape
        out = (length - self.pool_size) // self.strides + 1
        if out <= 0:
            raise ValueError(
                f"pool_size {self.pool_size} does not fit length {length}"
            )
        return (out, channels)

    def build(self, input_shape, rng):
        length = input_shape[0]
        out = (length - self.pool_size) // self.strides + 1
        starts = np.arange(out) * self.strides
        self._windows = starts[:, None] + np.arange(self.pool_size)[None, :]
        super().build(input_shape, rng)

    def _gather(self, x):
        """(N, L, C) -> (N, out_L, pool, C)."""
        return x[:, self._windows, :]

    def _scatter(self, dwin, length, n, channels):
        # One vectorized add per pool offset (collision-free for fixed
        # offset) instead of a slow unbuffered np.add.at.
        dx = np.zeros((n, length, channels), dtype=dwin.dtype)
        starts = self._windows[:, 0]
        for offset in range(self.pool_size):
            dx[:, starts + offset, :] += dwin[:, :, offset, :]
        return dx

    def get_config(self):
        return {"pool_size": self.pool_size, "strides": self.strides}


class MaxPool1D(_Pool1D):
    def forward(self, x, training=False):
        self._check_built()
        win = self._gather(x)
        y = win.max(axis=2)
        # One-hot argmax mask; ties broadcast the gradient to the first max.
        mask = win == y[:, :, None, :]
        first = np.cumsum(mask, axis=2) == 1
        self._cache = (x.shape, mask & first)
        return y

    def backward(self, grad):
        x_shape, mask = self._cache
        dwin = mask * grad[:, :, None, :]
        return self._scatter(dwin, x_shape[1], x_shape[0], x_shape[2])


class AvgPool1D(_Pool1D):
    def forward(self, x, training=False):
        self._check_built()
        win = self._gather(x)
        self._cache = x.shape
        return win.mean(axis=2)

    def backward(self, grad):
        x_shape = self._cache
        dwin = np.broadcast_to(
            grad[:, :, None, :] / self.pool_size,
            (grad.shape[0], grad.shape[1], self.pool_size, grad.shape[2]),
        )
        return self._scatter(np.ascontiguousarray(dwin), x_shape[1], x_shape[0], x_shape[2])


class GlobalAvgPool1D(Layer):
    """Average over the length axis: (N, L, C) -> (N, C)."""

    def __init__(self):
        super().__init__()
        self._in_shape = None

    def compute_output_shape(self, input_shape):
        if len(input_shape) != 2:
            raise ValueError(f"expected (length, channels), got {input_shape}")
        return (input_shape[1],)

    def forward(self, x, training=False):
        self._check_built()
        self._in_shape = x.shape
        return x.mean(axis=1)

    def backward(self, grad):
        n, length, channels = self._in_shape
        return np.broadcast_to(
            grad[:, None, :] / length, (n, length, channels)
        ).copy()

"""Composite layers for the paper's preliminary architecture study.

Before settling on the Table-1 CNN, the paper "performed a preliminary
investigation considering a broad set of ANN topologies ... Multi-Layer
Perceptron (MLP) networks, the ResNet and Highway network architectures,
and Convolutional Neural Networks".  These two layers make the ResNet- and
Highway-style variants expressible in a plain Sequential stack.
"""

from __future__ import annotations

import numpy as np

from repro.nn.activations import get_activation, sigmoid
from repro.nn.initializers import Constant, get_initializer
from repro.nn.layers.base import Layer

__all__ = ["ResidualDense", "HighwayDense"]


class ResidualDense(Layer):
    """A dense layer with an identity skip: ``y = act(x @ W + b) + x``.

    Input and output dimensionality are equal by construction (ResNet's
    identity-shortcut case).
    """

    def __init__(self, activation="relu", kernel_initializer="he_normal"):
        super().__init__()
        self.activation = get_activation(activation)
        self.kernel_initializer = get_initializer(kernel_initializer)
        self._cache = None

    def build(self, input_shape, rng):
        if len(input_shape) != 1:
            raise ValueError(f"ResidualDense expects a flat input, got {input_shape}")
        features = input_shape[0]
        self.params["W"] = self.kernel_initializer((features, features), rng)
        self.params["b"] = np.zeros(features)
        super().build(input_shape, rng)

    def forward(self, x, training=False):
        self._check_built()
        z = x @ self.params["W"] + self.params["b"]
        h = self.activation.forward(z)
        self._cache = (x, z, h)
        return h + x

    def backward(self, grad):
        x, z, h = self._cache
        dh = self.activation.backward(grad, z, h)
        self.grads["W"] = x.T @ dh
        self.grads["b"] = dh.sum(axis=0)
        return dh @ self.params["W"].T + grad

    def get_config(self):
        return {
            "activation": self.activation.name,
            "kernel_initializer": self.kernel_initializer.get_config(),
        }


class HighwayDense(Layer):
    """A Highway layer: ``y = T(x) * H(x) + (1 - T(x)) * x``.

    ``H`` is a dense transform with the given activation, ``T`` a sigmoid
    gate whose bias starts negative so the layer initially passes its input
    through (Srivastava et al., "Highway Networks", the paper's ref [13]).
    """

    def __init__(
        self,
        activation="relu",
        kernel_initializer="glorot_uniform",
        transform_bias: float = -2.0,
    ):
        super().__init__()
        self.activation = get_activation(activation)
        self.kernel_initializer = get_initializer(kernel_initializer)
        self.transform_bias = float(transform_bias)
        self._cache = None

    def build(self, input_shape, rng):
        if len(input_shape) != 1:
            raise ValueError(f"HighwayDense expects a flat input, got {input_shape}")
        features = input_shape[0]
        self.params["W_h"] = self.kernel_initializer((features, features), rng)
        self.params["b_h"] = np.zeros(features)
        self.params["W_t"] = self.kernel_initializer((features, features), rng)
        self.params["b_t"] = Constant(self.transform_bias)((features,), rng)
        super().build(input_shape, rng)

    def forward(self, x, training=False):
        self._check_built()
        z_h = x @ self.params["W_h"] + self.params["b_h"]
        h = self.activation.forward(z_h)
        z_t = x @ self.params["W_t"] + self.params["b_t"]
        t = sigmoid.forward(z_t)
        self._cache = (x, z_h, h, t)
        return t * h + (1.0 - t) * x

    def backward(self, grad):
        x, z_h, h, t = self._cache
        dh = grad * t
        dt = grad * (h - x)
        dz_h = self.activation.backward(dh, z_h, h)
        dz_t = dt * t * (1.0 - t)
        self.grads["W_h"] = x.T @ dz_h
        self.grads["b_h"] = dz_h.sum(axis=0)
        self.grads["W_t"] = x.T @ dz_t
        self.grads["b_t"] = dz_t.sum(axis=0)
        return (
            dz_h @ self.params["W_h"].T
            + dz_t @ self.params["W_t"].T
            + grad * (1.0 - t)
        )

    def get_config(self):
        return {
            "activation": self.activation.name,
            "kernel_initializer": self.kernel_initializer.get_config(),
            "transform_bias": self.transform_bias,
        }

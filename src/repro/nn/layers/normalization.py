"""Batch normalization.

Used by the explorative architecture search as one of the degrees of
freedom when deeper variants of the Table-1 CNN are tried.  Normalizes
over all axes except the last (features/channels), so the same layer works
after Dense (batch,) and Conv1D (batch, length) feature maps.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers.base import Layer

__all__ = ["BatchNorm"]


class BatchNorm(Layer):
    """Batch normalization over the feature (last) axis."""

    def __init__(self, momentum: float = 0.9, epsilon: float = 1e-5):
        super().__init__()
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        if epsilon <= 0:
            raise ValueError(f"epsilon must be positive, got {epsilon}")
        self.momentum = float(momentum)
        self.epsilon = float(epsilon)
        self.running_mean: np.ndarray = None
        self.running_var: np.ndarray = None
        self._cache = None

    def build(self, input_shape, rng):
        features = input_shape[-1]
        self.params["gamma"] = np.ones(features)
        self.params["beta"] = np.zeros(features)
        self.running_mean = np.zeros(features)
        self.running_var = np.ones(features)
        super().build(input_shape, rng)

    def forward(self, x, training=False):
        self._check_built()
        axes = tuple(range(x.ndim - 1))
        if training:
            mean = x.mean(axis=axes)
            var = x.var(axis=axes)
            m = self.momentum
            self.running_mean = m * self.running_mean + (1.0 - m) * mean
            self.running_var = m * self.running_var + (1.0 - m) * var
        else:
            mean, var = self.running_mean, self.running_var
        inv_std = 1.0 / np.sqrt(var + self.epsilon)
        x_hat = (x - mean) * inv_std
        y = self.params["gamma"] * x_hat + self.params["beta"]
        if training:
            n = int(np.prod([x.shape[a] for a in axes]))
            self._cache = (x_hat, inv_std, n, axes)
        else:
            self._cache = None
        return y

    def backward(self, grad):
        if self._cache is None:
            # Inference-mode backward: running statistics are constants.
            return grad * self.params["gamma"] / np.sqrt(
                self.running_var + self.epsilon
            )
        x_hat, inv_std, n, axes = self._cache
        gamma = self.params["gamma"]
        self.grads["gamma"] = np.sum(grad * x_hat, axis=axes)
        self.grads["beta"] = np.sum(grad, axis=axes)
        # Standard batch-norm gradient through the batch statistics.
        dxhat = grad * gamma
        term1 = dxhat
        term2 = np.mean(dxhat, axis=axes)
        term3 = x_hat * np.mean(dxhat * x_hat, axis=axes)
        return inv_std * (term1 - term2 - term3)

    def get_config(self):
        return {"momentum": self.momentum, "epsilon": self.epsilon}

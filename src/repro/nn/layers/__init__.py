"""Neural-network layers (channels-last, batch-first)."""

from repro.nn.layers.base import Layer
from repro.nn.layers.core import ActivationLayer, Dense, Dropout, Flatten, Reshape
from repro.nn.layers.conv import Conv1D, LocallyConnected1D
from repro.nn.layers.pool import AvgPool1D, GlobalAvgPool1D, MaxPool1D
from repro.nn.layers.recurrent import LSTM
from repro.nn.layers.composite import HighwayDense, ResidualDense
from repro.nn.layers.normalization import BatchNorm

__all__ = [
    "ActivationLayer",
    "AvgPool1D",
    "BatchNorm",
    "Conv1D",
    "Dense",
    "Dropout",
    "Flatten",
    "GlobalAvgPool1D",
    "HighwayDense",
    "LSTM",
    "Layer",
    "LocallyConnected1D",
    "MaxPool1D",
    "Reshape",
    "ResidualDense",
]

LAYER_REGISTRY = {
    cls.__name__: cls
    for cls in (
        ActivationLayer,
        AvgPool1D,
        BatchNorm,
        Conv1D,
        Dense,
        Dropout,
        Flatten,
        GlobalAvgPool1D,
        HighwayDense,
        LSTM,
        LocallyConnected1D,
        MaxPool1D,
        Reshape,
        ResidualDense,
    )
}

"""LSTM layer with full backpropagation through time.

The paper's time-series NMR model is a single LSTM layer with 32 units over
5 timesteps of raw spectra, followed by a Dense(4) head.  Parameter layout
follows Keras (gate order i, f, g, o; kernel ``(input_dim, 4*units)``,
recurrent kernel ``(units, 4*units)``, bias ``(4*units,)``) so the paper's
221 956-parameter count is reproduced exactly.
"""

from __future__ import annotations

import numpy as np

from repro.nn.activations import sigmoid, tanh
from repro.nn.initializers import get_initializer
from repro.nn.layers.base import Layer

__all__ = ["LSTM"]


class LSTM(Layer):
    """Long short-term memory layer.

    Input ``(batch, timesteps, features)``.  With ``return_sequences=False``
    (the default, and what the paper uses) the output is the last hidden
    state ``(batch, units)``; otherwise the full sequence
    ``(batch, timesteps, units)``.
    """

    def __init__(
        self,
        units: int,
        return_sequences: bool = False,
        kernel_initializer="glorot_uniform",
        recurrent_initializer="orthogonal",
        bias_initializer="zeros",
        unit_forget_bias: bool = True,
    ):
        super().__init__()
        if units <= 0:
            raise ValueError(f"units must be positive, got {units}")
        self.units = int(units)
        self.return_sequences = bool(return_sequences)
        self.kernel_initializer = get_initializer(kernel_initializer)
        self.recurrent_initializer = get_initializer(recurrent_initializer)
        self.bias_initializer = get_initializer(bias_initializer)
        self.unit_forget_bias = bool(unit_forget_bias)
        self._cache = None

    def compute_output_shape(self, input_shape):
        if len(input_shape) != 2:
            raise ValueError(
                f"LSTM expects input shape (timesteps, features), got {input_shape}"
            )
        timesteps, _ = input_shape
        if self.return_sequences:
            return (timesteps, self.units)
        return (self.units,)

    def build(self, input_shape, rng):
        if len(input_shape) != 2:
            raise ValueError(
                f"LSTM expects input shape (timesteps, features), got {input_shape}"
            )
        _, features = input_shape
        u = self.units
        self.params["W"] = self.kernel_initializer((features, 4 * u), rng)
        self.params["U"] = self.recurrent_initializer((u, 4 * u), rng)
        bias = self.bias_initializer((4 * u,), rng)
        if self.unit_forget_bias:
            # Standard trick: start with the forget gate open so gradients
            # flow through time early in training.
            bias[u : 2 * u] = 1.0
        self.params["b"] = bias
        super().build(input_shape, rng)

    def _split(self, z):
        u = self.units
        return z[..., :u], z[..., u : 2 * u], z[..., 2 * u : 3 * u], z[..., 3 * u :]

    def forward(self, x, training=False):
        self._check_built()
        n, timesteps, _ = x.shape
        u = self.units
        h = np.zeros((n, u))
        c = np.zeros((n, u))
        steps = []
        outputs = np.empty((n, timesteps, u))
        # Hoist the input projection out of the time loop: x @ W for all
        # timesteps at once is one large matmul instead of T small ones.
        xw = x @ self.params["W"] + self.params["b"]
        for t in range(timesteps):
            z = xw[:, t, :] + h @ self.params["U"]
            zi, zf, zg, zo = self._split(z)
            i = sigmoid.forward(zi)
            f = sigmoid.forward(zf)
            g = tanh.forward(zg)
            o = sigmoid.forward(zo)
            c_prev = c
            c = f * c_prev + i * g
            tc = tanh.forward(c)
            h = o * tc
            outputs[:, t, :] = h
            steps.append((i, f, g, o, c_prev, c, tc))
        self._cache = (x, steps, outputs)
        if self.return_sequences:
            return outputs
        return outputs[:, -1, :]

    def backward(self, grad):
        x, steps, outputs = self._cache
        n, timesteps, features = x.shape
        u = self.units
        w, u_mat = self.params["W"], self.params["U"]

        if self.return_sequences:
            dout = grad
        else:
            dout = np.zeros((n, timesteps, u))
            dout[:, -1, :] = grad

        dw = np.zeros_like(w)
        du = np.zeros_like(u_mat)
        db = np.zeros_like(self.params["b"])
        dx = np.zeros_like(x)
        dh_next = np.zeros((n, u))
        dc_next = np.zeros((n, u))

        for t in range(timesteps - 1, -1, -1):
            i, f, g, o, c_prev, c, tc = steps[t]
            dh = dout[:, t, :] + dh_next
            do = dh * tc
            dc = dh * o * (1.0 - tc * tc) + dc_next
            di = dc * g
            df = dc * c_prev
            dg = dc * i
            dc_next = dc * f
            dz = np.concatenate(
                (
                    di * i * (1.0 - i),
                    df * f * (1.0 - f),
                    dg * (1.0 - g * g),
                    do * o * (1.0 - o),
                ),
                axis=1,
            )
            xt = x[:, t, :]
            h_prev = outputs[:, t - 1, :] if t > 0 else np.zeros((n, u))
            dw += xt.T @ dz
            du += h_prev.T @ dz
            db += dz.sum(axis=0)
            dx[:, t, :] = dz @ w.T
            dh_next = dz @ u_mat.T

        self.grads["W"] = dw
        self.grads["U"] = du
        self.grads["b"] = db
        return dx

    def get_config(self):
        return {
            "units": self.units,
            "return_sequences": self.return_sequences,
            "kernel_initializer": self.kernel_initializer.get_config(),
            "recurrent_initializer": self.recurrent_initializer.get_config(),
            "bias_initializer": self.bias_initializer.get_config(),
            "unit_forget_bias": self.unit_forget_bias,
        }

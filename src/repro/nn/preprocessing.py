"""Input/label preprocessing utilities.

Small fit/transform scalers in the scikit-learn idiom, used to condition
spectra (which arrive max-normalized but not centered) and concentration
labels before training.  All scalers are serializable via ``get_config`` /
``from_config`` so a deployment package can ship its preprocessing with
the weights.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["StandardScaler", "MinMaxScaler", "scaler_from_config"]


class _Scaler:
    name = "scaler"

    def __init__(self):
        self.fitted = False

    def fit(self, x: np.ndarray) -> "_Scaler":
        raise NotImplementedError

    def transform(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def inverse_transform(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def fit_transform(self, x: np.ndarray) -> np.ndarray:
        return self.fit(x).transform(x)

    def _require_fitted(self):
        if not self.fitted:
            raise RuntimeError(f"{type(self).__name__} used before fit()")

    @staticmethod
    def _as_2d(x) -> np.ndarray:
        """Validation gate: numeric, 2-D, finite.

        Scalers sit at the head of every training/inference pipeline, so a
        NaN caught here (:class:`~repro.reliability.validation.
        NonFiniteError`) is a NaN that never reaches fitted statistics or
        the network.
        """
        from repro.reliability.validation import (
            ensure_array,
            ensure_finite,
            ensure_shape,
        )

        x = ensure_array(x, field="x")
        ensure_shape(x, ndim=2, field="x")
        return ensure_finite(x, field="x")


class StandardScaler(_Scaler):
    """Per-feature zero-mean / unit-variance scaling."""

    name = "standard"

    def __init__(self):
        super().__init__()
        self.mean_: Optional[np.ndarray] = None
        self.scale_: Optional[np.ndarray] = None

    def fit(self, x):
        x = self._as_2d(x)
        if x.shape[0] < 2:
            raise ValueError("need at least 2 samples to fit a StandardScaler")
        self.mean_ = x.mean(axis=0)
        std = x.std(axis=0)
        # Constant features pass through unscaled rather than dividing by 0.
        self.scale_ = np.where(std > 0, std, 1.0)
        self.fitted = True
        return self

    def transform(self, x):
        self._require_fitted()
        x = self._as_2d(x)
        return (x - self.mean_) / self.scale_

    def inverse_transform(self, x):
        self._require_fitted()
        x = self._as_2d(x)
        return x * self.scale_ + self.mean_

    def get_config(self) -> dict:
        self._require_fitted()
        return {
            "name": self.name,
            "mean": self.mean_.tolist(),
            "scale": self.scale_.tolist(),
        }

    @classmethod
    def from_config(cls, config: dict) -> "StandardScaler":
        scaler = cls()
        scaler.mean_ = np.asarray(config["mean"], dtype=np.float64)
        scaler.scale_ = np.asarray(config["scale"], dtype=np.float64)
        scaler.fitted = True
        return scaler


class MinMaxScaler(_Scaler):
    """Per-feature scaling to a target range (default [0, 1])."""

    name = "minmax"

    def __init__(self, feature_range=(0.0, 1.0)):
        super().__init__()
        low, high = feature_range
        if high <= low:
            raise ValueError(f"invalid feature_range {feature_range}")
        self.feature_range = (float(low), float(high))
        self.min_: Optional[np.ndarray] = None
        self.span_: Optional[np.ndarray] = None

    def fit(self, x):
        x = self._as_2d(x)
        self.min_ = x.min(axis=0)
        span = x.max(axis=0) - self.min_
        self.span_ = np.where(span > 0, span, 1.0)
        self.fitted = True
        return self

    def transform(self, x):
        self._require_fitted()
        x = self._as_2d(x)
        low, high = self.feature_range
        return low + (x - self.min_) / self.span_ * (high - low)

    def inverse_transform(self, x):
        self._require_fitted()
        x = self._as_2d(x)
        low, high = self.feature_range
        return (x - low) / (high - low) * self.span_ + self.min_

    def get_config(self) -> dict:
        self._require_fitted()
        return {
            "name": self.name,
            "feature_range": list(self.feature_range),
            "min": self.min_.tolist(),
            "span": self.span_.tolist(),
        }

    @classmethod
    def from_config(cls, config: dict) -> "MinMaxScaler":
        scaler = cls(tuple(config["feature_range"]))
        scaler.min_ = np.asarray(config["min"], dtype=np.float64)
        scaler.span_ = np.asarray(config["span"], dtype=np.float64)
        scaler.fitted = True
        return scaler


def scaler_from_config(config: dict):
    """Rebuild a scaler from :meth:`get_config` output."""
    registry = {cls.name: cls for cls in (StandardScaler, MinMaxScaler)}
    try:
        cls = registry[config["name"]]
    except KeyError:
        raise ValueError(f"unknown scaler {config.get('name')!r}") from None
    return cls.from_config(config)

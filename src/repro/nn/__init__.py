"""A compact, from-scratch NumPy deep-learning framework.

This subpackage replaces the TensorFlow/Keras dependency of the paper with a
self-contained implementation that covers every architectural element the
paper uses:

* layers: ``Dense``, ``Conv1D``, ``LocallyConnected1D``, ``LSTM``,
  ``MaxPool1D``, ``AvgPool1D``, ``Flatten``, ``Reshape``, ``Dropout`` and
  standalone ``Activation`` layers;
* activations: ReLU, SELU, softmax, linear, sigmoid, tanh;
* losses: mean absolute error (the paper's training loss) and mean squared
  error (the paper's NMR comparison metric);
* optimizers: SGD (with momentum), Adam and RMSprop;
* a Keras-like :class:`Sequential` container with ``fit``/``predict``,
  callbacks, serialization and per-layer FLOP counting (used by the
  embedded-platform cost model of Table 2).

All arrays are ``float64`` NumPy arrays; batch axis first.  Conv/pool layers
use channels-last layout ``(batch, length, channels)``.
"""

from repro.nn.activations import (
    Activation,
    get_activation,
    linear,
    relu,
    selu,
    sigmoid,
    softmax,
    tanh,
)
from repro.nn.initializers import (
    Constant,
    GlorotUniform,
    HeNormal,
    Initializer,
    LeCunNormal,
    Orthogonal,
    RandomUniform,
    Zeros,
    get_initializer,
)
from repro.nn.layers import (
    ActivationLayer,
    AvgPool1D,
    BatchNorm,
    Conv1D,
    Dense,
    Dropout,
    Flatten,
    GlobalAvgPool1D,
    HighwayDense,
    Layer,
    LocallyConnected1D,
    LSTM,
    MaxPool1D,
    Reshape,
    ResidualDense,
)
from repro.nn.losses import Loss, MeanAbsoluteError, MeanSquaredError, get_loss
from repro.nn.metrics import (
    mean_absolute_error,
    mean_squared_error,
    per_output_mae,
    r2_score,
    root_mean_squared_error,
)
from repro.nn.model import Sequential
from repro.nn.preprocessing import MinMaxScaler, StandardScaler, scaler_from_config
from repro.nn.optimizers import SGD, Adam, Optimizer, RMSprop, get_optimizer
from repro.nn.serialization import load_model, save_model
from repro.nn.sentinel import DivergenceError, DivergenceSentinel, SentinelEvent
from repro.nn.training import Callback, EarlyStopping, History, TrainingLogger
from repro.nn.flops import count_model_flops, count_model_params, layer_flops

__all__ = [
    "Activation",
    "ActivationLayer",
    "Adam",
    "AvgPool1D",
    "BatchNorm",
    "Callback",
    "Constant",
    "Conv1D",
    "Dense",
    "DivergenceError",
    "DivergenceSentinel",
    "Dropout",
    "EarlyStopping",
    "Flatten",
    "GlobalAvgPool1D",
    "GlorotUniform",
    "HeNormal",
    "HighwayDense",
    "History",
    "Initializer",
    "LSTM",
    "Layer",
    "LeCunNormal",
    "LocallyConnected1D",
    "Loss",
    "MaxPool1D",
    "MeanAbsoluteError",
    "MeanSquaredError",
    "MinMaxScaler",
    "Optimizer",
    "Orthogonal",
    "RMSprop",
    "RandomUniform",
    "Reshape",
    "ResidualDense",
    "SGD",
    "SentinelEvent",
    "Sequential",
    "StandardScaler",
    "TrainingLogger",
    "Zeros",
    "count_model_flops",
    "count_model_params",
    "get_activation",
    "get_initializer",
    "get_loss",
    "get_optimizer",
    "layer_flops",
    "linear",
    "load_model",
    "mean_absolute_error",
    "mean_squared_error",
    "per_output_mae",
    "r2_score",
    "relu",
    "root_mean_squared_error",
    "save_model",
    "scaler_from_config",
    "selu",
    "sigmoid",
    "softmax",
    "tanh",
]

"""Training loop, history and callbacks.

The paper's Tool 4 runs unattended multi-topology training jobs; the
callback hooks here (epoch begin/end, early stopping, best-weights
restoration) are what the automated training service in
:mod:`repro.core.training_service` builds on.

Progress reporting goes through the stdlib ``repro.training`` logger
(pluggable: swap its handlers to redirect or silence it; a default
stdout handler keeps the historical ``epoch N: ...`` format), and the
loop emits telemetry through the process-global
:mod:`repro.observability` runtime — a ``train.epoch`` span per epoch
with per-batch child spans, train/val loss gauges, and epoch/batch
counters.
"""

from __future__ import annotations

import logging
import sys
import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.observability.runtime import get_registry, get_tracer

__all__ = [
    "History",
    "Callback",
    "EarlyStopping",
    "TrainingLogger",
    "logger",
    "run_training_loop",
]


class _StdoutHandler(logging.Handler):
    """Writes to whatever ``sys.stdout`` is *at emit time*.

    A plain ``StreamHandler(sys.stdout)`` captures the stream object once,
    which breaks under test harnesses that swap ``sys.stdout``; resolving
    it per record keeps ``epoch N: ...`` lines visible wherever ``print``
    would have put them.
    """

    def emit(self, record: logging.LogRecord) -> None:
        try:
            sys.stdout.write(self.format(record) + "\n")
        except Exception:
            self.handleError(record)


logger = logging.getLogger("repro.training")
if not logger.handlers:  # default handler: plain message, print-compatible
    _handler = _StdoutHandler()
    _handler.setFormatter(logging.Formatter("%(message)s"))
    logger.addHandler(_handler)
    logger.setLevel(logging.INFO)
    logger.propagate = False


class History:
    """Per-epoch metric record returned by ``Sequential.fit``."""

    def __init__(self):
        self.epochs: List[int] = []
        self.history: Dict[str, List[float]] = {}

    def record(self, epoch: int, metrics: Dict[str, float]) -> None:
        self.epochs.append(epoch)
        for key, value in metrics.items():
            self.history.setdefault(key, []).append(float(value))

    def best(self, metric: str = "val_loss", mode: str = "min") -> Tuple[int, float]:
        """Return (epoch, value) of the best recorded value of ``metric``."""
        values = self.history.get(metric)
        if not values:
            raise KeyError(f"metric {metric!r} was never recorded")
        arr = np.asarray(values)
        idx = int(np.argmin(arr) if mode == "min" else np.argmax(arr))
        return self.epochs[idx], float(arr[idx])

    def __getitem__(self, key: str) -> List[float]:
        return self.history[key]

    def __contains__(self, key: str) -> bool:
        return key in self.history


class Callback:
    """Base callback; all hooks are optional."""

    def set_model(self, model) -> None:
        self.model = model

    def on_train_begin(self) -> None: ...

    def on_epoch_begin(self, epoch: int) -> None: ...

    def on_batch_end(self, epoch: int, batch: int, loss: float) -> None:
        """After every optimizer step; ``loss`` is the raw batch loss."""

    def on_epoch_end(self, epoch: int, metrics: Dict[str, float]) -> None: ...

    def on_train_end(self) -> None: ...

    @property
    def stop_training(self) -> bool:
        return getattr(self, "_stop", False)

    @property
    def abort_epoch(self) -> bool:
        """Set from ``on_batch_end`` to discard and re-run the current epoch.

        The training loop clears the flag after honouring it.  Used by
        :class:`~repro.nn.sentinel.DivergenceSentinel` to re-run an epoch
        from restored last-good weights after a divergence rollback.
        """
        return getattr(self, "_abort_epoch", False)


class EarlyStopping(Callback):
    """Stop when ``monitor`` has not improved for ``patience`` epochs.

    With ``restore_best_weights=True`` the model is rolled back to its best
    epoch — this mirrors the paper's NMR procedure of selecting "the network
    with the best performance on the experimental validation dataset".
    """

    def __init__(
        self,
        monitor: str = "val_loss",
        patience: int = 10,
        min_delta: float = 0.0,
        restore_best_weights: bool = False,
    ):
        if patience < 0:
            raise ValueError(f"patience must be >= 0, got {patience}")
        self.monitor = monitor
        self.patience = int(patience)
        self.min_delta = float(min_delta)
        self.restore_best_weights = bool(restore_best_weights)
        self.best_value = np.inf
        self.best_epoch = -1
        self._best_weights = None
        self._wait = 0
        self._stop = False

    def on_train_begin(self):
        self.best_value = np.inf
        self.best_epoch = -1
        self._best_weights = None
        self._wait = 0
        self._stop = False

    def on_epoch_end(self, epoch, metrics):
        value = metrics.get(self.monitor)
        if value is None:
            return
        if value < self.best_value - self.min_delta:
            self.best_value = value
            self.best_epoch = epoch
            self._wait = 0
            if self.restore_best_weights:
                self._best_weights = self.model.get_weights()
        else:
            self._wait += 1
            if self._wait > self.patience:
                self._stop = True

    def on_train_end(self):
        if self.restore_best_weights and self._best_weights is not None:
            self.model.set_weights(self._best_weights)


class TrainingLogger(Callback):
    """Log one line per epoch (opt-in; fit(verbose=True) adds one too).

    Lines go through the ``repro.training`` logger at INFO — the default
    handler prints exactly the historical format to stdout; reconfigure
    the logger's handlers to redirect or silence them.
    """

    def __init__(self, every: int = 1):
        if every < 1:
            raise ValueError(f"every must be >= 1, got {every}")
        self.every = int(every)

    def on_epoch_end(self, epoch, metrics):
        if epoch % self.every == 0:
            parts = ", ".join(f"{k}={v:.6f}" for k, v in metrics.items())
            logger.info("epoch %4d: %s", epoch, parts)


def run_training_loop(
    model,
    x: np.ndarray,
    y: np.ndarray,
    epochs: int,
    batch_size: int,
    validation_data: Optional[Tuple[np.ndarray, np.ndarray]],
    shuffle: bool,
    callbacks: List[Callback],
    seed: Optional[int],
    verbose: bool,
    initial_epoch: int = 0,
) -> History:
    """Drive epochs/batches for ``Sequential.fit``.

    ``initial_epoch`` resumes a checkpointed run: epochs 1..initial_epoch
    are skipped, but their shuffle permutations are still drawn so the
    remaining epochs see exactly the batches an uninterrupted run would
    have seen (bit-exact resume given restored weights + optimizer state).
    """
    if epochs < 1:
        raise ValueError(f"epochs must be >= 1, got {epochs}")
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    if not 0 <= initial_epoch <= epochs:
        raise ValueError(
            f"initial_epoch must be in [0, {epochs}], got {initial_epoch}"
        )
    if x.shape[0] != y.shape[0]:
        raise ValueError(
            f"x has {x.shape[0]} samples but y has {y.shape[0]}"
        )
    if x.shape[0] == 0:
        raise ValueError("cannot fit on an empty dataset")

    rng = np.random.default_rng(seed)
    history = History()
    for callback in callbacks:
        callback.set_model(model)
        callback.on_train_begin()

    registry = get_registry()
    tracer = get_tracer()
    epochs_counter = registry.counter(
        "training_epochs_total", "completed training epochs"
    )
    batches_counter = registry.counter(
        "training_batches_total", "optimizer steps taken"
    )
    aborts_counter = registry.counter(
        "training_epoch_aborts_total",
        "epochs discarded and re-run after a callback rollback",
    )
    loss_gauge = registry.gauge(
        "training_loss", "most recent epoch loss by split"
    )
    epoch_seconds = registry.histogram(
        "training_epoch_seconds", "wall-clock seconds per epoch"
    )

    n = x.shape[0]
    if shuffle:
        for _ in range(initial_epoch):
            rng.permutation(n)
    epoch = initial_epoch
    while epoch < epochs:
        epoch += 1
        for callback in callbacks:
            callback.on_epoch_begin(epoch)
        start = time.perf_counter()
        epoch_span = tracer.start_span(
            "train.epoch", attributes={"epoch": epoch}
        )
        order = rng.permutation(n) if shuffle else np.arange(n)
        epoch_loss = 0.0
        aborted = False
        for batch_index, i in enumerate(range(0, n, batch_size)):
            batch = order[i : i + batch_size]
            with tracer.start_span(
                "train.batch", parent=epoch_span,
                attributes={"batch": batch_index},
            ) as batch_span:
                batch_loss = model.train_on_batch(x[batch], y[batch])
                batch_span.set_attribute("loss", float(batch_loss))
            epoch_loss += batch_loss * len(batch)
            batches_counter.inc()
            for callback in callbacks:
                callback.on_batch_end(epoch, batch_index, batch_loss)
            if any(callback.abort_epoch for callback in callbacks):
                aborted = True
                break
        if aborted:
            # A callback (the divergence sentinel) rolled the model back:
            # discard this epoch's partial metrics and re-run the epoch.
            # The re-run draws a fresh shuffle permutation.
            for callback in callbacks:
                callback._abort_epoch = False
            aborts_counter.inc()
            epoch_span.set_attribute("aborted", True)
            epoch_span.end(status="error: rollback")
            epoch -= 1
            continue
        metrics = {"loss": epoch_loss / n}
        loss_gauge.set(metrics["loss"], split="train")
        if validation_data is not None:
            vx, vy = validation_data
            metrics["val_loss"] = model.evaluate(vx, vy)
            loss_gauge.set(metrics["val_loss"], split="val")
        metrics["epoch_seconds"] = time.perf_counter() - start
        epoch_seconds.observe(metrics["epoch_seconds"])
        epochs_counter.inc()
        epoch_span.set_attribute("loss", metrics["loss"])
        epoch_span.end()
        history.record(epoch, metrics)
        if verbose:
            parts = ", ".join(f"{k}={v:.6f}" for k, v in metrics.items())
            logger.info("epoch %4d/%d: %s", epoch, epochs, parts)
        stop = False
        for callback in callbacks:
            callback.on_epoch_end(epoch, metrics)
            stop = stop or callback.stop_training
        if stop:
            break

    for callback in callbacks:
        callback.on_train_end()
    return history

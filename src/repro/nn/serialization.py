"""Model save/load.

A model is stored as a single ``.npz`` archive containing a JSON
architecture spec plus every weight array.  This plays the role of the
paper's "tool to export the desired ANN for use on embedded platforms" and
feeds the database-backed provenance tracking (models are artifacts like
any other).
"""

from __future__ import annotations

import io
import json
import os
from typing import Dict, Union

import numpy as np

from repro.nn.layers import LAYER_REGISTRY
from repro.nn.model import Sequential
from repro.storage.integrity import atomic_write_bytes

__all__ = [
    "atomic_savez",
    "clone_model",
    "save_model",
    "load_model",
    "model_to_dict",
    "model_from_dict",
]


def model_to_dict(model: Sequential) -> dict:
    """Architecture (not weights) as a JSON-serializable dict."""
    if not model.built:
        raise ValueError("only built models can be serialized")
    return model.get_config()


def model_from_dict(config: dict, seed: int = 0) -> Sequential:
    """Rebuild an (unweighted) model from :func:`model_to_dict` output."""
    model = Sequential(name=config.get("name", "model"))
    for entry in config["layers"]:
        cls = LAYER_REGISTRY.get(entry["class"])
        if cls is None:
            raise ValueError(f"unknown layer class {entry['class']!r}")
        model.add(cls(**entry["config"]))
    input_shape = config.get("input_shape")
    if input_shape is None:
        raise ValueError("config is missing input_shape")
    model.build(tuple(input_shape), seed=seed)
    return model


def clone_model(model: Sequential, seed: int = 0) -> Sequential:
    """An independent copy: same architecture, copied weights, no optimizer.

    Fine-tuning and shadow candidates must never mutate the serving
    model's arrays in place, so the clone deep-copies every weight.
    """
    clone = model_from_dict(model_to_dict(model), seed=seed)
    clone.set_weights([np.array(w, copy=True) for w in model.get_weights()])
    return clone


def atomic_savez(
    path: Union[str, os.PathLike],
    arrays: Dict[str, np.ndarray],
    fsync: bool = True,
) -> str:
    """Write an ``.npz`` archive crash-safely (and, by default, durably).

    The archive bytes are staged in memory and published through
    :func:`repro.storage.integrity.atomic_write_bytes` — temp file, flush,
    fsync, rename, directory fsync — so a crash mid-save never leaves a
    truncated or corrupt file at ``path`` and an acknowledged save
    survives power loss.  Readers observe either the previous complete
    archive or the new one.
    """
    buffer = io.BytesIO()
    np.savez(buffer, **arrays)
    return atomic_write_bytes(path, buffer.getvalue(), fsync=fsync)


def save_model(model: Sequential, path: Union[str, os.PathLike]) -> str:
    """Save architecture + weights to ``path`` (a ``.npz`` file).

    The write is atomic (see :func:`atomic_savez`): an interrupted save
    cannot corrupt an existing checkpoint at the same path.
    """
    path = os.fspath(path)
    if not path.endswith(".npz"):
        path += ".npz"
    arrays = {"__config__": np.frombuffer(
        json.dumps(model_to_dict(model)).encode("utf-8"), dtype=np.uint8
    )}
    for i, weight in enumerate(model.get_weights()):
        arrays[f"w{i:04d}"] = weight
    return atomic_savez(path, arrays)


def load_model(path: Union[str, os.PathLike]) -> Sequential:
    """Load a model saved by :func:`save_model`."""
    with np.load(os.fspath(path)) as data:
        config = json.loads(bytes(data["__config__"].tobytes()).decode("utf-8"))
        keys = sorted(k for k in data.files if k.startswith("w"))
        weights = [data[k] for k in keys]
    model = model_from_dict(config)
    model.set_weights(weights)
    return model

"""Per-layer operation counting.

The embedded-platform cost model (Table 2 reproduction) needs, for every
layer of a built model, the number of multiply-accumulate-equivalent FLOPs,
the parameter bytes, and the activation bytes moved.  Counts follow the
usual convention: one multiply-add = 2 FLOPs; activations cost one FLOP per
element (a few more for SELU/softmax, which are transcendental).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.nn.layers import (
    ActivationLayer,
    AvgPool1D,
    Conv1D,
    Dense,
    Dropout,
    Flatten,
    GlobalAvgPool1D,
    LocallyConnected1D,
    LSTM,
    MaxPool1D,
    Reshape,
)
from repro.nn.model import Sequential

__all__ = ["LayerCost", "layer_flops", "count_model_flops", "count_model_params"]

# Cost in FLOPs per element for each activation, approximating the mix of
# exp/div instructions they lower to.
_ACTIVATION_FLOPS = {
    "linear": 0,
    "relu": 1,
    "selu": 4,
    "sigmoid": 4,
    "tanh": 4,
    "softmax": 5,
}

_BYTES_PER_VALUE = 4  # deployment assumes float32 weights/activations


@dataclass(frozen=True)
class LayerCost:
    """Inference cost of one layer for a single input sample."""

    layer_name: str
    flops: int
    param_bytes: int
    activation_bytes: int

    def __add__(self, other: "LayerCost") -> "LayerCost":
        return LayerCost(
            layer_name=f"{self.layer_name}+{other.layer_name}",
            flops=self.flops + other.flops,
            param_bytes=self.param_bytes + other.param_bytes,
            activation_bytes=self.activation_bytes + other.activation_bytes,
        )


def _out_elems(layer) -> int:
    return int(np.prod(layer.output_shape))


def _activation_cost(layer, elems: int) -> int:
    activation = getattr(layer, "activation", None)
    if activation is None:
        return 0
    return _ACTIVATION_FLOPS.get(activation.name, 4) * elems


def layer_flops(layer) -> LayerCost:
    """Inference cost of a single built layer (per sample)."""
    if not layer.built:
        raise ValueError(f"{layer.name} must be built before counting FLOPs")
    out = _out_elems(layer)
    param_bytes = layer.count_params() * _BYTES_PER_VALUE
    act_bytes = out * _BYTES_PER_VALUE

    if isinstance(layer, Dense):
        in_features = layer.input_shape[-1]
        leading = int(np.prod(layer.input_shape[:-1])) if len(layer.input_shape) > 1 else 1
        flops = 2 * in_features * layer.units * leading
        if layer.use_bias:
            flops += layer.units * leading
        flops += _activation_cost(layer, out)
    elif isinstance(layer, (Conv1D, LocallyConnected1D)):
        out_length, filters = layer.output_shape
        channels = layer.input_shape[1]
        flops = 2 * layer.kernel_size * channels * filters * out_length
        if layer.use_bias:
            flops += filters * out_length
        flops += _activation_cost(layer, out)
    elif isinstance(layer, LSTM):
        timesteps, features = layer.input_shape
        u = layer.units
        per_step = 2 * (features * 4 * u + u * 4 * u) + 4 * u  # matmuls + bias
        per_step += 4 * u * _ACTIVATION_FLOPS["sigmoid"]  # 3 sigmoids + tanh(g)
        per_step += u * (_ACTIVATION_FLOPS["tanh"] + 3)  # tanh(c) + gate products
        flops = per_step * timesteps
    elif isinstance(layer, (MaxPool1D, AvgPool1D)):
        flops = layer.pool_size * out
    elif isinstance(layer, GlobalAvgPool1D):
        flops = int(np.prod(layer.input_shape))
    elif isinstance(layer, ActivationLayer):
        flops = _ACTIVATION_FLOPS.get(layer.activation.name, 4) * out
    elif isinstance(layer, (Flatten, Reshape, Dropout)):
        flops = 0
        act_bytes = 0  # pure views at inference time
    else:
        # Conservative default for layers added later: one FLOP per output.
        flops = out
    return LayerCost(layer.name, int(flops), int(param_bytes), int(act_bytes))


def count_model_flops(model: Sequential) -> List[LayerCost]:
    """Per-layer inference cost for one sample through a built model."""
    if not model.built:
        raise ValueError("model must be built before counting FLOPs")
    return [layer_flops(layer) for layer in model.layers]


def count_model_params(model: Sequential) -> int:
    """Total trainable parameters of a built model."""
    return model.count_params()

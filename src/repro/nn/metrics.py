"""Evaluation metrics used in the paper's result tables and figures."""

from __future__ import annotations

import numpy as np

__all__ = [
    "mean_absolute_error",
    "mean_squared_error",
    "root_mean_squared_error",
    "r2_score",
    "per_output_mae",
]


def _validate(pred: np.ndarray, target: np.ndarray) -> tuple:
    pred = np.asarray(pred, dtype=np.float64)
    target = np.asarray(target, dtype=np.float64)
    if pred.shape != target.shape:
        raise ValueError(f"shape mismatch: {pred.shape} vs {target.shape}")
    return pred, target


def mean_absolute_error(pred, target) -> float:
    """MAE over all outputs — the paper's headline metric for the MS nets."""
    pred, target = _validate(pred, target)
    return float(np.mean(np.abs(pred - target)))


def mean_squared_error(pred, target) -> float:
    """MSE — the paper's comparison metric for the NMR models vs IHM."""
    pred, target = _validate(pred, target)
    diff = pred - target
    return float(np.mean(diff * diff))


def root_mean_squared_error(pred, target) -> float:
    """RMSE — the square root of :func:`mean_squared_error`."""
    return float(np.sqrt(mean_squared_error(pred, target)))


def r2_score(pred, target) -> float:
    """Coefficient of determination, averaged over outputs."""
    pred, target = _validate(pred, target)
    pred = pred.reshape(pred.shape[0], -1)
    target = target.reshape(target.shape[0], -1)
    ss_res = np.sum((target - pred) ** 2, axis=0)
    ss_tot = np.sum((target - target.mean(axis=0)) ** 2, axis=0)
    with np.errstate(divide="ignore", invalid="ignore"):
        r2 = np.where(ss_tot > 0, 1.0 - ss_res / np.where(ss_tot > 0, ss_tot, 1.0), 0.0)
    # A constant target that is predicted exactly counts as explained.
    r2 = np.where((ss_tot == 0) & (ss_res == 0), 1.0, r2)
    return float(np.mean(r2))


def per_output_mae(pred, target) -> np.ndarray:
    """MAE per output dimension — the blue per-substance bars of Figs. 5-7."""
    pred, target = _validate(pred, target)
    pred = pred.reshape(pred.shape[0], -1)
    target = target.reshape(target.shape[0], -1)
    return np.mean(np.abs(pred - target), axis=0)

"""Weight initializers.

The paper's networks use SELU activations in the hidden layers; SELU only
keeps its self-normalizing property when the weights are drawn from a LeCun
normal distribution, so that initializer is included alongside the usual
Glorot/He schemes.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "Initializer",
    "Zeros",
    "Constant",
    "RandomUniform",
    "GlorotUniform",
    "HeNormal",
    "LeCunNormal",
    "Orthogonal",
    "get_initializer",
]


def _fans(shape: tuple) -> tuple:
    """Compute (fan_in, fan_out) for a weight tensor shape.

    For 2-D shapes ``(in, out)`` this is straightforward; for conv kernels
    ``(kernel, in_channels, filters)`` the receptive-field size multiplies
    the channel counts, matching the Keras convention.
    """
    if len(shape) == 1:
        return shape[0], shape[0]
    if len(shape) == 2:
        return shape[0], shape[1]
    receptive = int(np.prod(shape[:-2]))
    return shape[-2] * receptive, shape[-1] * receptive


class Initializer:
    """Base class: initializers are callables ``(shape, rng) -> ndarray``."""

    name = "initializer"

    def __call__(self, shape: tuple, rng: np.random.Generator) -> np.ndarray:
        raise NotImplementedError

    def get_config(self) -> dict:
        return {"name": self.name}


class Zeros(Initializer):
    name = "zeros"

    def __call__(self, shape, rng):
        return np.zeros(shape, dtype=np.float64)


class Constant(Initializer):
    name = "constant"

    def __init__(self, value: float = 0.0):
        self.value = float(value)

    def __call__(self, shape, rng):
        return np.full(shape, self.value, dtype=np.float64)

    def get_config(self):
        return {"name": self.name, "value": self.value}


class RandomUniform(Initializer):
    name = "random_uniform"

    def __init__(self, low: float = -0.05, high: float = 0.05):
        if high <= low:
            raise ValueError(f"high ({high}) must exceed low ({low})")
        self.low = float(low)
        self.high = float(high)

    def __call__(self, shape, rng):
        return rng.uniform(self.low, self.high, size=shape)

    def get_config(self):
        return {"name": self.name, "low": self.low, "high": self.high}


class GlorotUniform(Initializer):
    """Uniform(-l, l) with l = sqrt(6 / (fan_in + fan_out))."""

    name = "glorot_uniform"

    def __call__(self, shape, rng):
        fan_in, fan_out = _fans(shape)
        limit = np.sqrt(6.0 / (fan_in + fan_out))
        return rng.uniform(-limit, limit, size=shape)


class HeNormal(Initializer):
    """Normal(0, sqrt(2 / fan_in)); appropriate for ReLU hidden layers."""

    name = "he_normal"

    def __call__(self, shape, rng):
        fan_in, _ = _fans(shape)
        return rng.normal(0.0, np.sqrt(2.0 / fan_in), size=shape)


class LeCunNormal(Initializer):
    """Normal(0, sqrt(1 / fan_in)); required for SELU self-normalization."""

    name = "lecun_normal"

    def __call__(self, shape, rng):
        fan_in, _ = _fans(shape)
        return rng.normal(0.0, np.sqrt(1.0 / fan_in), size=shape)


class Orthogonal(Initializer):
    """Orthogonal initializer, used for LSTM recurrent kernels."""

    name = "orthogonal"

    def __init__(self, gain: float = 1.0):
        self.gain = float(gain)

    def __call__(self, shape, rng):
        if len(shape) < 2:
            raise ValueError("Orthogonal initializer needs a >=2-D shape")
        rows = shape[0]
        cols = int(np.prod(shape[1:]))
        flat = rng.normal(0.0, 1.0, size=(max(rows, cols), min(rows, cols)))
        q, r = np.linalg.qr(flat)
        # Sign correction makes the distribution uniform over orthogonal
        # matrices instead of biased by QR's sign convention.
        q *= np.sign(np.diag(r))
        if rows < cols:
            q = q.T
        return np.ascontiguousarray((self.gain * q[:rows, :cols]).reshape(shape))

    def get_config(self):
        return {"name": self.name, "gain": self.gain}


_REGISTRY = {
    cls.name: cls
    for cls in (
        Zeros,
        Constant,
        RandomUniform,
        GlorotUniform,
        HeNormal,
        LeCunNormal,
        Orthogonal,
    )
}


def get_initializer(spec) -> Initializer:
    """Resolve an initializer from a name, config dict, or instance."""
    if isinstance(spec, Initializer):
        return spec
    if isinstance(spec, str):
        try:
            return _REGISTRY[spec]()
        except KeyError:
            raise ValueError(
                f"unknown initializer {spec!r}; known: {sorted(_REGISTRY)}"
            ) from None
    if isinstance(spec, dict):
        config = dict(spec)
        name = config.pop("name")
        return _REGISTRY[name](**config)
    raise TypeError(f"cannot resolve initializer from {type(spec).__name__}")

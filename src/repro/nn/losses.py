"""Loss functions.

The paper trains its MS networks with mean absolute error (so the quoted
"mean error of 0.005" is 0.5 % absolute concentration deviation) and scores
the NMR models by mean squared error; both are provided.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Loss", "MeanAbsoluteError", "MeanSquaredError", "get_loss"]


class Loss:
    """A loss is a scalar ``value(pred, target)`` plus its gradient."""

    name = "loss"

    def value(self, pred: np.ndarray, target: np.ndarray) -> float:
        raise NotImplementedError

    def gradient(self, pred: np.ndarray, target: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __call__(self, pred, target):
        return self.value(pred, target)

    @staticmethod
    def _check(pred, target):
        if pred.shape != target.shape:
            raise ValueError(
                f"prediction shape {pred.shape} != target shape {target.shape}"
            )


class MeanAbsoluteError(Loss):
    name = "mae"

    def value(self, pred, target):
        self._check(pred, target)
        return float(np.mean(np.abs(pred - target)))

    def gradient(self, pred, target):
        self._check(pred, target)
        return np.sign(pred - target) / pred.size


class MeanSquaredError(Loss):
    name = "mse"

    def value(self, pred, target):
        self._check(pred, target)
        diff = pred - target
        return float(np.mean(diff * diff))

    def gradient(self, pred, target):
        self._check(pred, target)
        return 2.0 * (pred - target) / pred.size


_REGISTRY = {
    "mae": MeanAbsoluteError,
    "mean_absolute_error": MeanAbsoluteError,
    "mse": MeanSquaredError,
    "mean_squared_error": MeanSquaredError,
}


def get_loss(spec) -> Loss:
    """Resolve a loss from a name or instance."""
    if isinstance(spec, Loss):
        return spec
    if isinstance(spec, str):
        try:
            return _REGISTRY[spec.lower()]()
        except KeyError:
            raise ValueError(
                f"unknown loss {spec!r}; known: {sorted(set(_REGISTRY))}"
            ) from None
    raise TypeError(f"cannot resolve loss from {type(spec).__name__}")

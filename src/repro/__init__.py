"""Reproduction of "AI for Mass Spectrometry and NMR Spectroscopy Using a
Novel Data Augmentation Method" (Fricke et al., DATE/TETC 2021).

Subpackages:

* :mod:`repro.nn` — NumPy deep-learning framework (TensorFlow substitute);
* :mod:`repro.ms` — mass-spectrometry toolchain substrate (Tools 1-3 +
  virtual MMS prototype);
* :mod:`repro.nmr` — NMR substrate (IHM hard models, virtual reactor and
  spectrometers, IHM fitting baseline);
* :mod:`repro.core` — the paper's flow: toolchain orchestration,
  topologies, training service, augmentation, evaluation;
* :mod:`repro.db` — embedded document store + provenance (MongoDB
  substitute);
* :mod:`repro.embedded` — Jetson platform cost model (Table 2);
* :mod:`repro.reliability` — fault injection, retrying acquisition,
  checkpoint/resume training and graceful closed-loop degradation;
* :mod:`repro.storage` — checksummed envelopes, atomic writes and the
  append-only journal behind every durable artifact;
* :mod:`repro.serving` — hardened concurrent analysis service with
  circuit breaker, admission gates and deadlines;
* :mod:`repro.observability` — default-on metrics registry, tracing
  spans and telemetry export wired through training, serving and
  storage;
* :mod:`repro.compute` — parallel execution engine (serial/thread/process
  backends behind one deterministic ``map_tasks`` API) and the
  content-addressed, checksummed dataset/artifact cache;
* :mod:`repro.adaptation` — drift resilience: the domain-shift scenario
  matrix (shift axes x adaptation strategies, cache-resumable) and the
  guarded online recalibration controller (shadow evaluation, promotion
  gate, journaled rollback);
* :mod:`repro.uncertainty` — ensemble/MC-dropout mean + spread,
  split-conformal prediction intervals, the serving abstention gate
  ("I don't know" as a first-class outcome) and the width-greedy
  acquisition planner closing the measurement loop;
* :mod:`repro.orchestration` — the Fig-5/Fig-6 reproduction grid as one
  resumable campaign: canonical-config cells cached per-row, journaled
  progress with kill/resume to byte-identical reports, fan-out over the
  warm-pooled executor;
* :mod:`repro.inference` — frozen inference engine: models compiled
  into immutable plans of fused, optionally int8-quantized kernels
  with pinned accuracy contracts, shared by serving (``frozen=``) and
  the embedded cost model.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]

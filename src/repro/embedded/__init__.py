"""Embedded-platform performance/energy model (Table 2 substitute).

The paper measures inference of the trained MS network on NVIDIA Jetson
Nano and Jetson TX2 boards, on both their CPUs and GPUs (Table 2).  Without
the hardware, we substitute an analytical roofline-style cost model driven
by the *actual* per-layer FLOP/byte counts of the built network
(:mod:`repro.nn.flops`) and platform parameter sets calibrated from the
boards' public specifications.  The model reproduces the shape of Table 2:
GPUs ~5-7x faster and ~5-6x more energy-efficient than the CPUs at similar
~5 W power, and performance scaling with CUDA-core count.
"""

from repro.embedded.platforms import (
    JETSON_NANO_CPU,
    JETSON_NANO_GPU,
    JETSON_TX2_CPU,
    JETSON_TX2_GPU,
    PlatformSpec,
    TABLE2_PLATFORMS,
)
from repro.embedded.cost_model import CostEstimate, InferenceCostModel
from repro.embedded.deployment import DeployedModel, export_for_embedded
from repro.embedded.quantization import (
    QuantizationReport,
    QuantizedModel,
    quantize_weights,
)
from repro.embedded.overlays import (
    FGPU_SOFT_GPU,
    FGPU_SPECIALIZED,
    OverlaySpec,
    VCGRA_OVERLAY,
    ZYNQ_ARM_A9,
    estimate_overlay_speedup,
)

__all__ = [
    "CostEstimate",
    "DeployedModel",
    "FGPU_SOFT_GPU",
    "FGPU_SPECIALIZED",
    "InferenceCostModel",
    "OverlaySpec",
    "QuantizationReport",
    "QuantizedModel",
    "VCGRA_OVERLAY",
    "ZYNQ_ARM_A9",
    "estimate_overlay_speedup",
    "JETSON_NANO_CPU",
    "JETSON_NANO_GPU",
    "JETSON_TX2_CPU",
    "JETSON_TX2_GPU",
    "PlatformSpec",
    "TABLE2_PLATFORMS",
    "export_for_embedded",
    "quantize_weights",
]

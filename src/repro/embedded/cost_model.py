"""Roofline-style inference cost model.

For each layer of a built network the model takes the exact FLOP and byte
counts from :mod:`repro.nn.flops` and charges, per batch,

    time_layer = max(compute_time, memory_time) + kernel_overhead

where compute time uses the platform's achieved GFLOPS and memory time the
achieved bandwidth (weights are fetched once per batch; activations move
once per sample).  Energy is active power times busy time plus idle power
for any remaining wall-clock time (none here, since the workload is a
closed loop over the dataset).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.nn.flops import count_model_flops
from repro.nn.model import Sequential
from repro.embedded.platforms import PlatformSpec

__all__ = ["CostEstimate", "InferenceCostModel"]


@dataclass(frozen=True)
class CostEstimate:
    """Predicted cost of running a dataset through a network."""

    platform: str
    n_samples: int
    batch_size: int
    execution_time_s: float
    power_w: float
    energy_j: float
    per_layer_seconds: Dict[str, float]

    @property
    def latency_per_sample_ms(self) -> float:
        return 1000.0 * self.execution_time_s / self.n_samples

    @property
    def throughput_samples_per_s(self) -> float:
        return self.n_samples / self.execution_time_s

    def row(self) -> Dict[str, float]:
        """A Table-2-style result row."""
        return {
            "execution_time_s": round(self.execution_time_s, 2),
            "power_w": round(self.power_w, 2),
            "energy_j": round(self.energy_j, 2),
        }


class InferenceCostModel:
    """Estimates execution time / power / energy on one platform."""

    def __init__(self, platform: PlatformSpec):
        self.platform = platform

    def estimate(
        self,
        model: Sequential,
        n_samples: int,
        batch_size: int = 128,
    ) -> CostEstimate:
        """Cost of pushing ``n_samples`` spectra through ``model``."""
        if n_samples <= 0:
            raise ValueError("n_samples must be positive")
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        costs = count_model_flops(model)
        platform = self.platform
        n_batches = -(-n_samples // batch_size)  # ceil

        compute_per_flop = 1.0 / (platform.effective_gflops * 1e9)
        bytes_per_second = platform.effective_bandwidth_gbs * 1e9
        overhead_s = platform.kernel_overhead_us * 1e-6

        per_layer: Dict[str, float] = {}
        total = 0.0
        for i, cost in enumerate(costs):
            if cost.flops == 0 and cost.activation_bytes == 0:
                continue  # reshape/flatten are free views
            compute_time = cost.flops * batch_size * compute_per_flop
            # Weights stream once per batch; activations per sample.
            traffic = cost.param_bytes + cost.activation_bytes * batch_size
            memory_time = traffic / bytes_per_second
            layer_time = (max(compute_time, memory_time) + overhead_s) * n_batches
            per_layer[f"{i}:{cost.layer_name}"] = layer_time
            total += layer_time

        energy = platform.active_power_w * total
        return CostEstimate(
            platform=platform.name,
            n_samples=n_samples,
            batch_size=batch_size,
            execution_time_s=total,
            power_w=platform.active_power_w,
            energy_j=energy,
            per_layer_seconds=per_layer,
        )

    def estimate_plan(
        self,
        plan,
        n_samples: int,
        batch_size: int = 128,
    ) -> CostEstimate:
        """Cost of a *frozen* plan: real fused-op counts, real byte sizes.

        Same roofline as :meth:`estimate`, but charged per
        :class:`~repro.inference.plan.FusedOp` instead of per layer —
        which is where freezing pays on the cost side:

        * a folded standalone activation launches no kernel of its own,
          so the plan pays one ``kernel_overhead`` where the layerwise
          model paid two;
        * ``param_bytes`` comes from the plan's number format — an int8
          plan streams one byte per weight plus its scales, which is the
          4x traffic cut the paper's bandwidth-starved platforms feel.

        ``plan`` is duck-typed (anything with ``ops`` carrying ``kind``,
        ``name``, ``flops``, ``param_bytes``, ``activation_bytes``), so
        this module keeps importing nothing above :mod:`repro.nn`.
        """
        if n_samples <= 0:
            raise ValueError("n_samples must be positive")
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        platform = self.platform
        n_batches = -(-n_samples // batch_size)  # ceil

        compute_per_flop = 1.0 / (platform.effective_gflops * 1e9)
        bytes_per_second = platform.effective_bandwidth_gbs * 1e9
        overhead_s = platform.kernel_overhead_us * 1e-6

        per_op: Dict[str, float] = {}
        total = 0.0
        for i, op in enumerate(plan.ops):
            if op.kind == "view":
                continue  # reshape/flatten are free views
            compute_time = op.flops * batch_size * compute_per_flop
            traffic = op.param_bytes + op.activation_bytes * batch_size
            memory_time = traffic / bytes_per_second
            op_time = (max(compute_time, memory_time) + overhead_s) * n_batches
            per_op[f"{i}:{op.name}"] = op_time
            total += op_time

        energy = platform.active_power_w * total
        return CostEstimate(
            platform=platform.name,
            n_samples=n_samples,
            batch_size=batch_size,
            execution_time_s=total,
            power_w=platform.active_power_w,
            energy_j=energy,
            per_layer_seconds=per_op,
        )

    def compare_to(
        self, other: "InferenceCostModel", model: Sequential, n_samples: int,
        batch_size: int = 128,
    ) -> Dict[str, float]:
        """Speedup / energy-ratio of ``self`` relative to ``other``
        (e.g. GPU vs CPU, the paper's 4.8-7.1x / 5.0-6.3x figures)."""
        mine = self.estimate(model, n_samples, batch_size)
        theirs = other.estimate(model, n_samples, batch_size)
        return {
            "speedup": theirs.execution_time_s / mine.execution_time_s,
            "energy_ratio": theirs.energy_j / mine.energy_j,
            "power_ratio": mine.power_w / theirs.power_w,
        }

"""Model export for embedded targets.

The paper's backend tooling includes "a tool to export the desired ANN for
use on embedded platforms".  Export here means: weights cast to float32
(the deployment precision of the Jetson TensorFlow runtime), an
architecture manifest, the exact FLOP budget, and predicted Table-2-style
costs for each registered platform.  :class:`DeployedModel` also *runs*
inference in float32 so the numerical effect of the precision drop can be
validated against the float64 development model.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Dict, Optional, Union

import numpy as np

from repro.nn.flops import count_model_flops
from repro.nn.model import Sequential
from repro.nn.serialization import model_to_dict, save_model
from repro.embedded.cost_model import CostEstimate, InferenceCostModel
from repro.embedded.platforms import TABLE2_PLATFORMS, PlatformSpec

__all__ = ["DeployedModel", "export_for_embedded"]


class DeployedModel:
    """A model running at deployment (float32) precision."""

    def __init__(self, model: Sequential):
        if not model.built:
            raise ValueError("only built models can be deployed")
        self.model = model
        self._float32_weights = [
            w.astype(np.float32) for w in model.get_weights()
        ]

    def predict(self, x: np.ndarray, batch_size: int = 256) -> np.ndarray:
        """Inference with float32 weights and inputs.

        The computation itself runs through the float64 kernels after a
        float32 round-trip of weights and inputs — this bounds the
        quantization effect without a second kernel implementation.
        """
        original = self.model.get_weights()
        try:
            self.model.set_weights([w.astype(np.float64) for w in self._float32_weights])
            x32 = np.asarray(x, dtype=np.float32).astype(np.float64)
            return self.model.predict(x32, batch_size=batch_size)
        finally:
            self.model.set_weights(original)

    def precision_loss(self, x: np.ndarray) -> float:
        """Max |float64 prediction - float32 prediction| over a batch."""
        full = self.model.predict(x)
        deployed = self.predict(x)
        return float(np.max(np.abs(full - deployed)))

    def estimate_costs(
        self,
        n_samples: int,
        batch_size: int = 128,
        platforms: Optional[Dict[str, PlatformSpec]] = None,
    ) -> Dict[str, CostEstimate]:
        """Predicted execution cost on each platform (Table 2 rows)."""
        platforms = platforms if platforms is not None else TABLE2_PLATFORMS
        return {
            key: InferenceCostModel(spec).estimate(self.model, n_samples, batch_size)
            for key, spec in platforms.items()
        }


def export_for_embedded(
    model: Sequential,
    directory: Union[str, os.PathLike],
    dataset_size: int = 21_600,
    batch_size: int = 128,
) -> Dict[str, str]:
    """Write a deployment package: weights, manifest, predicted costs.

    Returns the paths written.  ``dataset_size`` defaults to the paper's
    21 600-sample evaluation set.
    """
    directory = os.fspath(directory)
    os.makedirs(directory, exist_ok=True)
    weights_path = save_model(model, os.path.join(directory, "model.npz"))

    deployed = DeployedModel(model)
    costs = deployed.estimate_costs(dataset_size, batch_size)
    flops = count_model_flops(model)
    from repro.embedded.quantization import quantize_weights

    int8_tensors, scales = quantize_weights(model)
    manifest = {
        "architecture": model_to_dict(model),
        "parameters": model.count_params(),
        "flops_per_sample": int(sum(c.flops for c in flops)),
        "weight_bytes_float32": int(sum(c.param_bytes for c in flops)),
        "weight_bytes_int8": int(
            sum(t.size for t in int8_tensors) + 4 * len(scales)
        ),
        "evaluation": {
            "dataset_size": dataset_size,
            "batch_size": batch_size,
            "platforms": {key: est.row() for key, est in costs.items()},
        },
    }
    manifest_path = os.path.join(directory, "manifest.json")
    with open(manifest_path, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2)
    return {"weights": weights_path, "manifest": manifest_path}

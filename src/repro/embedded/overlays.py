"""FPGA overlay architectures for ANN inference (the paper's §IV).

The discussion section positions FPGA overlays as the deployment target
beyond Jetson boards: the VCGRA overlay and the FGPU soft GPU, which
"has ... shown promising results in the acceleration of fundamental kernels
in ANN processing, like Matrix Multiplication, achieving an average 4.2x
speedup for different workloads over an embedded ARM core with NEON
support.  Further specializing increases the speedup numbers by 100x."

This module extends the platform cost model with those targets.  Overlay
platforms are ordinary :class:`~repro.embedded.platforms.PlatformSpec`
instances plus a kernel-affinity table: an overlay only accelerates the
kernel classes its processing elements implement (dense/conv GEMMs for the
FGPU; element-wise chains map poorly), so per-layer estimates route through
the affinity factor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.nn.flops import count_model_flops
from repro.nn.layers import (
    Conv1D,
    Dense,
    LocallyConnected1D,
    LSTM,
)
from repro.nn.model import Sequential
from repro.embedded.platforms import PlatformSpec

__all__ = [
    "OverlaySpec",
    "ZYNQ_ARM_A9",
    "FGPU_SOFT_GPU",
    "FGPU_SPECIALIZED",
    "VCGRA_OVERLAY",
    "estimate_overlay_speedup",
]

# Kernel classes the affinity table is keyed by.
_GEMM = "gemm"
_RECURRENT = "recurrent"
_ELEMENTWISE = "elementwise"


def _kernel_class(layer) -> str:
    if isinstance(layer, (Dense, Conv1D, LocallyConnected1D)):
        return _GEMM
    if isinstance(layer, LSTM):
        return _RECURRENT
    return _ELEMENTWISE


@dataclass(frozen=True)
class OverlaySpec:
    """An FPGA overlay target: base platform + kernel affinities.

    ``affinity`` maps kernel class -> fraction of the platform's effective
    throughput achieved on that class (1.0 = full).
    """

    platform: PlatformSpec
    affinity: Dict[str, float] = field(
        default_factory=lambda: {_GEMM: 1.0, _RECURRENT: 0.7, _ELEMENTWISE: 0.3}
    )

    def __post_init__(self):
        for kernel, value in self.affinity.items():
            if not 0.0 < value <= 1.0:
                raise ValueError(
                    f"affinity for {kernel!r} must be in (0, 1], got {value}"
                )

    def effective_gflops_for(self, kernel: str) -> float:
        return self.platform.effective_gflops * self.affinity.get(kernel, 0.3)

    def estimate_seconds(self, model: Sequential, n_samples: int) -> float:
        """Compute-bound inference time of ``n_samples`` through ``model``."""
        if n_samples <= 0:
            raise ValueError("n_samples must be positive")
        total = 0.0
        for layer, cost in zip(model.layers, count_model_flops(model)):
            if cost.flops == 0:
                continue
            gflops = self.effective_gflops_for(_kernel_class(layer))
            total += cost.flops * n_samples / (gflops * 1e9)
        return total


# Baseline: Zynq-class embedded ARM Cortex-A9 with NEON (the comparison
# point of the paper's refs [18]-[20]).  ~2 FP32 FLOP/cycle/core x 2 cores
# x 667 MHz ~= 5.3 GFLOPS peak; NN kernels achieve a large fraction with
# NEON-tuned code.
ZYNQ_ARM_A9 = OverlaySpec(
    PlatformSpec(
        name="Zynq ARM Cortex-A9 (NEON)",
        kind="cpu",
        peak_gflops=5.3,
        memory_bandwidth_gbs=4.2,
        nn_efficiency=0.35,
        bandwidth_efficiency=0.6,
        active_power_w=2.5,
        idle_power_w=0.5,
        kernel_overhead_us=2.0,
    ),
    affinity={_GEMM: 1.0, _RECURRENT: 0.9, _ELEMENTWISE: 0.9},
)

# FGPU soft GPU on the same fabric: ~4.2x the ARM on GEMM-like kernels.
FGPU_SOFT_GPU = OverlaySpec(
    PlatformSpec(
        name="FGPU soft GPU",
        kind="gpu",
        peak_gflops=5.3 * 4.2,  # same NN efficiency as the ARM -> 4.2x GEMM speedup
        memory_bandwidth_gbs=6.4,
        nn_efficiency=0.35,
        bandwidth_efficiency=0.7,
        active_power_w=4.0,
        idle_power_w=1.0,
        kernel_overhead_us=8.0,
    ),
    affinity={_GEMM: 1.0, _RECURRENT: 0.6, _ELEMENTWISE: 0.4},
)

# Persistent-deep-learning specialization of the FGPU (ref [19]): two
# orders of magnitude over the ARM baseline on its specialized kernels.
FGPU_SPECIALIZED = OverlaySpec(
    PlatformSpec(
        name="FGPU specialized (persistent DL)",
        kind="gpu",
        peak_gflops=5.3 * 100.0,
        memory_bandwidth_gbs=12.8,
        nn_efficiency=0.35,
        bandwidth_efficiency=0.7,
        active_power_w=6.0,
        idle_power_w=1.2,
        kernel_overhead_us=5.0,
    ),
    affinity={_GEMM: 1.0, _RECURRENT: 0.5, _ELEMENTWISE: 0.3},
)

# VCGRA overlay: parameterizable processing elements tailored per
# application; modelled between the generic and specialized soft GPUs.
VCGRA_OVERLAY = OverlaySpec(
    PlatformSpec(
        name="VCGRA overlay",
        kind="gpu",
        peak_gflops=5.3 * 15.0,
        memory_bandwidth_gbs=9.6,
        nn_efficiency=0.35,
        bandwidth_efficiency=0.7,
        active_power_w=4.5,
        idle_power_w=1.0,
        kernel_overhead_us=6.0,
    ),
    affinity={_GEMM: 1.0, _RECURRENT: 0.8, _ELEMENTWISE: 0.8},
)


def estimate_overlay_speedup(
    model: Sequential, overlay: OverlaySpec, baseline: OverlaySpec = ZYNQ_ARM_A9,
    n_samples: int = 1000,
) -> float:
    """Wall-clock speedup of ``overlay`` over ``baseline`` for a model."""
    base_time = baseline.estimate_seconds(model, n_samples)
    overlay_time = overlay.estimate_seconds(model, n_samples)
    return base_time / overlay_time

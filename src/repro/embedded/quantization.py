"""Post-training int8 weight quantization.

The paper's §IV argues that overlay architectures win by "tailor[ing] the
processing elements to specific operations and number formats".  The
natural first number-format step below float32 is symmetric per-tensor
int8: this module quantizes a trained model's weights to int8 (with one
float scale per weight tensor), measures the induced accuracy loss, and
reports the 4x weight-memory saving that matters on bandwidth-starved
embedded fabrics.

Quantized inference here is *simulated*: weights are rounded to the int8
grid and dequantized back to float for execution, which reproduces the
rounding error exactly while reusing the float kernels (the standard
"fake quantization" evaluation approach).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.nn.metrics import mean_absolute_error
from repro.nn.model import Sequential

__all__ = ["QuantizationReport", "quantize_weights", "QuantizedModel"]

_INT8_MAX = 127


def _quantize_tensor(weight: np.ndarray) -> Tuple[np.ndarray, float]:
    """Symmetric per-tensor int8 quantization; returns (int8 array, scale)."""
    peak = float(np.max(np.abs(weight)))
    if peak == 0.0:
        return np.zeros(weight.shape, dtype=np.int8), 1.0
    scale = peak / _INT8_MAX
    quantized = np.clip(np.round(weight / scale), -_INT8_MAX, _INT8_MAX)
    return quantized.astype(np.int8), scale


def quantize_weights(model: Sequential) -> Tuple[List[np.ndarray], List[float]]:
    """Quantize every weight tensor of a built model.

    Returns the int8 tensors and their per-tensor scales, in
    ``get_weights`` order.
    """
    if not model.built:
        raise ValueError("model must be built before quantization")
    tensors: List[np.ndarray] = []
    scales: List[float] = []
    for weight in model.get_weights():
        quantized, scale = _quantize_tensor(weight)
        tensors.append(quantized)
        scales.append(scale)
    return tensors, scales


@dataclass(frozen=True)
class QuantizationReport:
    """Accuracy/size effect of int8 quantization on one model."""

    float32_bytes: int
    int8_bytes: int
    prediction_mae: float  # |float model output - int8 model output|
    worst_tensor_error: float  # max relative weight error over tensors

    @property
    def compression_ratio(self) -> float:
        return self.float32_bytes / max(self.int8_bytes, 1)


class QuantizedModel:
    """A model executing with int8-rounded (dequantized) weights."""

    def __init__(self, model: Sequential):
        self.model = model
        self._int8, self._scales = quantize_weights(model)
        self._original = model.get_weights()

    def dequantized_weights(self) -> List[np.ndarray]:
        return [
            tensor.astype(np.float64) * scale
            for tensor, scale in zip(self._int8, self._scales)
        ]

    def predict(self, x: np.ndarray, batch_size: int = 256) -> np.ndarray:
        """Inference with int8-rounded weights (fake quantization)."""
        try:
            self.model.set_weights(self.dequantized_weights())
            return self.model.predict(x, batch_size=batch_size)
        finally:
            self.model.set_weights(self._original)

    def report(self, x: np.ndarray) -> QuantizationReport:
        """Quantify size savings and output perturbation on a batch."""
        float_pred = self.model.predict(x)
        int8_pred = self.predict(x)
        worst = 0.0
        for original, dequantized in zip(self._original, self.dequantized_weights()):
            scale = float(np.max(np.abs(original)))
            if scale == 0.0:
                continue
            worst = max(worst, float(np.max(np.abs(original - dequantized))) / scale)
        n_params = sum(w.size for w in self._original)
        return QuantizationReport(
            float32_bytes=4 * n_params,
            int8_bytes=1 * n_params + 4 * len(self._scales),
            prediction_mae=mean_absolute_error(int8_pred, float_pred),
            worst_tensor_error=worst,
        )

"""Post-training int8 weight quantization.

The paper's §IV argues that overlay architectures win by "tailor[ing] the
processing elements to specific operations and number formats".  The
natural first number-format step below float32 is symmetric per-tensor
int8: this module quantizes a trained model's weights to int8 (with one
float scale per weight tensor), measures the induced accuracy loss, and
reports the 4x weight-memory saving that matters on bandwidth-starved
embedded fabrics.

Quantized inference here is *simulated*: weights are rounded to the int8
grid and dequantized back to float for execution, which reproduces the
rounding error exactly while reusing the float kernels (the standard
"fake quantization" evaluation approach).  The *compiled* consumer of
this module is :mod:`repro.inference`, which freezes the quantized
payload into an :class:`~repro.inference.plan.InferencePlan` and ships
the int8 tensors + scales to disk.

Scale semantics: ``scale == 0.0`` marks a tensor (or, per-channel, a
channel) that was identically zero — dequantization multiplies by 0.0
and reproduces it exactly.  Earlier versions silently recorded ``1.0``
for this case, which round-tripped correctly only because the quantized
values were also zero; a consumer that inspected scales (e.g. to rank
tensors by dynamic range) would have seen a fictitious range.

``per_channel=True`` keys scales to the *last* axis of each tensor with
``ndim >= 2`` — the output-channel axis for conv ``(K, C, F)`` and dense
``(in, units)`` weights — so one saturated filter no longer inflates the
rounding step of every other filter in the tensor.  1-D tensors
(biases) always use a per-tensor scale: per-element scales would make
quantization a no-op.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple, Union

import numpy as np

from repro.nn.metrics import mean_absolute_error
from repro.nn.model import Sequential

__all__ = [
    "QuantizationReport",
    "quantize_tensor",
    "quantize_weights",
    "QuantizedModel",
]

_INT8_MAX = 127

#: A per-tensor scale is a plain float; per-channel scales are a 1-D
#: array over the tensor's last axis.
Scale = Union[float, np.ndarray]


def quantize_tensor(
    weight: np.ndarray, per_channel: bool = False
) -> Tuple[np.ndarray, Scale]:
    """Symmetric int8 quantization of one tensor; returns (int8, scale).

    Per-tensor by default; with ``per_channel=True`` and ``ndim >= 2``,
    one scale per last-axis channel.  All-zero tensors/channels record
    ``scale = 0.0`` explicitly (see module docstring).
    """
    weight = np.asarray(weight, dtype=np.float64)
    if per_channel and weight.ndim >= 2:
        peak = np.max(np.abs(weight), axis=tuple(range(weight.ndim - 1)))
        scale = peak / _INT8_MAX
        # Dead channels: divide by 1.0 (yielding zeros) but keep scale 0.0.
        safe = np.where(scale == 0.0, 1.0, scale)
        quantized = np.clip(np.round(weight / safe), -_INT8_MAX, _INT8_MAX)
        return quantized.astype(np.int8), scale
    peak = float(np.max(np.abs(weight)))
    if peak == 0.0:
        return np.zeros(weight.shape, dtype=np.int8), 0.0
    scale = peak / _INT8_MAX
    quantized = np.clip(np.round(weight / scale), -_INT8_MAX, _INT8_MAX)
    return quantized.astype(np.int8), scale


# Backwards-compatible per-tensor alias (pre-per-channel callers).
def _quantize_tensor(weight: np.ndarray) -> Tuple[np.ndarray, float]:
    return quantize_tensor(weight, per_channel=False)


def quantize_weights(
    model: Sequential, per_channel: bool = False
) -> Tuple[List[np.ndarray], List[Scale]]:
    """Quantize every weight tensor of a built model.

    Returns the int8 tensors and their scales (floats, or 1-D arrays for
    per-channel ``ndim >= 2`` tensors), in ``get_weights`` order.
    """
    if not model.built:
        raise ValueError("model must be built before quantization")
    tensors: List[np.ndarray] = []
    scales: List[Scale] = []
    for weight in model.get_weights():
        quantized, scale = quantize_tensor(weight, per_channel=per_channel)
        tensors.append(quantized)
        scales.append(scale)
    return tensors, scales


@dataclass(frozen=True)
class QuantizationReport:
    """Accuracy/size effect of int8 quantization on one model."""

    float32_bytes: int
    int8_bytes: int
    prediction_mae: float  # |float model output - int8 model output|
    worst_tensor_error: float  # max relative weight error over tensors

    @property
    def compression_ratio(self) -> float:
        return self.float32_bytes / max(self.int8_bytes, 1)


class QuantizedModel:
    """A model executing with int8-rounded (dequantized) weights."""

    def __init__(self, model: Sequential, per_channel: bool = False):
        self.model = model
        self.per_channel = bool(per_channel)
        self._int8, self._scales = quantize_weights(model, per_channel=per_channel)
        self._original = model.get_weights()

    def dequantized_weights(self) -> List[np.ndarray]:
        return [
            tensor.astype(np.float64) * scale
            for tensor, scale in zip(self._int8, self._scales)
        ]

    def predict(self, x: np.ndarray, batch_size: int = 256) -> np.ndarray:
        """Inference with int8-rounded weights (fake quantization)."""
        try:
            self.model.set_weights(self.dequantized_weights())
            return self.model.predict(x, batch_size=batch_size)
        finally:
            self.model.set_weights(self._original)

    def report(self, x: np.ndarray) -> QuantizationReport:
        """Quantify size savings and output perturbation on a batch."""
        float_pred = self.model.predict(x)
        int8_pred = self.predict(x)
        worst = 0.0
        for original, dequantized in zip(self._original, self.dequantized_weights()):
            scale = float(np.max(np.abs(original)))
            if scale == 0.0:
                continue
            worst = max(worst, float(np.max(np.abs(original - dequantized))) / scale)
        n_params = sum(w.size for w in self._original)
        n_scales = sum(int(np.size(scale)) for scale in self._scales)
        return QuantizationReport(
            float32_bytes=4 * n_params,
            int8_bytes=1 * n_params + 4 * n_scales,
            prediction_mae=mean_absolute_error(int8_pred, float_pred),
            worst_tensor_error=worst,
        )

"""Platform parameter sets for the embedded cost model.

Peak numbers come from the public board specifications:

* **Jetson Nano** — quad Cortex-A57 @ 1.43 GHz (NEON, ~8 FP32 FLOP/cycle/
  core -> ~46 GFLOPS peak) + 128-core Maxwell GPU @ 921 MHz (~236 GFLOPS
  FP32); LPDDR4 25.6 GB/s shared.
* **Jetson TX2** — quad A57 @ 2.0 GHz + dual Denver2 (~77 GFLOPS combined
  CPU peak) + 256-core Pascal GPU @ 1.3 GHz (~665 GFLOPS FP32); LPDDR4
  59.7 GB/s shared.

``nn_efficiency`` is the achieved fraction of peak for small conv workloads
(TensorFlow on these boards reaches 10-20 %); it is the one calibrated
parameter per platform.  ``active_power_w`` values are the load powers the
paper reports in Table 2 (4.8-6.7 W, similar between CPU and GPU because
the SoC is shared).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = [
    "PlatformSpec",
    "JETSON_NANO_CPU",
    "JETSON_NANO_GPU",
    "JETSON_TX2_CPU",
    "JETSON_TX2_GPU",
    "TABLE2_PLATFORMS",
]


@dataclass(frozen=True)
class PlatformSpec:
    """One execution target (a CPU or GPU of an embedded board)."""

    name: str
    kind: str  # "cpu" | "gpu"
    peak_gflops: float
    memory_bandwidth_gbs: float
    nn_efficiency: float  # achieved fraction of peak on small conv nets
    bandwidth_efficiency: float
    active_power_w: float  # package power under this workload
    idle_power_w: float
    kernel_overhead_us: float  # per layer-invocation launch/dispatch cost
    cuda_cores: int = 0

    def __post_init__(self):
        if self.kind not in ("cpu", "gpu"):
            raise ValueError(f"kind must be 'cpu' or 'gpu', got {self.kind!r}")
        for label in ("peak_gflops", "memory_bandwidth_gbs", "active_power_w"):
            if getattr(self, label) <= 0:
                raise ValueError(f"{label} must be positive")
        if not 0 < self.nn_efficiency <= 1:
            raise ValueError("nn_efficiency must be in (0, 1]")
        if not 0 < self.bandwidth_efficiency <= 1:
            raise ValueError("bandwidth_efficiency must be in (0, 1]")

    @property
    def effective_gflops(self) -> float:
        return self.peak_gflops * self.nn_efficiency

    @property
    def effective_bandwidth_gbs(self) -> float:
        return self.memory_bandwidth_gbs * self.bandwidth_efficiency


JETSON_NANO_CPU = PlatformSpec(
    name="Jetson Nano (CPU)",
    kind="cpu",
    peak_gflops=45.8,
    memory_bandwidth_gbs=25.6,
    nn_efficiency=0.19,
    bandwidth_efficiency=0.60,
    active_power_w=5.03,
    idle_power_w=1.25,
    kernel_overhead_us=4.0,
)

JETSON_NANO_GPU = PlatformSpec(
    name="Jetson Nano (GPU)",
    kind="gpu",
    peak_gflops=235.8,
    memory_bandwidth_gbs=25.6,
    nn_efficiency=0.175,
    bandwidth_efficiency=0.70,
    active_power_w=4.77,
    idle_power_w=1.25,
    kernel_overhead_us=45.0,
    cuda_cores=128,
)

JETSON_TX2_CPU = PlatformSpec(
    name="Jetson TX2 (CPU)",
    kind="cpu",
    peak_gflops=76.8,
    memory_bandwidth_gbs=59.7,
    nn_efficiency=0.16,
    bandwidth_efficiency=0.60,
    active_power_w=5.92,
    idle_power_w=1.90,
    kernel_overhead_us=3.0,
)

JETSON_TX2_GPU = PlatformSpec(
    name="Jetson TX2 (GPU)",
    kind="gpu",
    peak_gflops=665.6,
    memory_bandwidth_gbs=59.7,
    nn_efficiency=0.13,
    bandwidth_efficiency=0.70,
    active_power_w=6.68,
    idle_power_w=1.90,
    kernel_overhead_us=40.0,
    cuda_cores=256,
)

TABLE2_PLATFORMS: Dict[str, PlatformSpec] = {
    "nano_cpu": JETSON_NANO_CPU,
    "nano_gpu": JETSON_NANO_GPU,
    "tx2_cpu": JETSON_TX2_CPU,
    "tx2_gpu": JETSON_TX2_GPU,
}

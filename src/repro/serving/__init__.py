"""Hardened concurrent serving of spectrum analysis.

The paper argues that millisecond ANN evaluation enables real-time and
production use; this package is the serving shell that makes the claim
hold under load and failure:

* :mod:`repro.serving.circuit` — a thread-safe
  :class:`CircuitBreaker` (closed → open after consecutive failures →
  half-open probes → closed) isolating a broken analyzer backend;
* :mod:`repro.serving.service` — :class:`AnalysisService`, a thread-pool
  frontend with a bounded request queue, per-request deadlines, admission
  validation (via :mod:`repro.reliability.validation`), an output
  finiteness gate, explicit :class:`Rejected` results for every shed
  or failed request, and — with an
  :class:`~repro.uncertainty.policy.UncertaintyGate` installed —
  explicit :class:`Abstained` results when the calibrated prediction
  interval is too wide to vouch for an answer;
* :mod:`repro.serving.batching` — the batched fast path's control
  plane: :class:`BatchingPolicy` (adaptive coalescing: dispatch when the
  batch fills or a load-shrinking max-wait expires) and
  :class:`BrownoutGovernor` (declared degradation levels — grow batches,
  tighten deadlines, shed low-priority work — walked with hysteresis).

Layering: ``serving`` sits above ``reliability`` and below nothing — it
may be driven by any analyzer callable (ANN, IHM, or a
:class:`~repro.reliability.degradation.GuardedAnalyzer` ladder).  The
opt-in frozen path (``AnalysisService(frozen=...)`` /
``batch_analyzer_from_model(..., frozen=...)``) reaches *down* into the
:mod:`repro.inference` leaf to compile the model once and serve batches
from preallocated scratch; the reverse import never happens.
"""

from repro.serving.batching import (
    BatchingPolicy,
    BrownoutGovernor,
    BrownoutLevel,
    BrownoutTransition,
    batch_analyzer_from_model,
)
from repro.serving.circuit import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    CircuitBreaker,
    CircuitTransition,
)
from repro.serving.loading import analyzer_from_checkpoint, load_verified_model
from repro.serving.service import (
    Abstained,
    AnalysisService,
    Completed,
    PendingRequest,
    Rejected,
)

__all__ = [
    "Abstained",
    "AnalysisService",
    "analyzer_from_checkpoint",
    "batch_analyzer_from_model",
    "load_verified_model",
    "BatchingPolicy",
    "BrownoutGovernor",
    "BrownoutLevel",
    "BrownoutTransition",
    "CLOSED",
    "CircuitBreaker",
    "CircuitTransition",
    "Completed",
    "HALF_OPEN",
    "OPEN",
    "PendingRequest",
    "Rejected",
]

"""A thread-safe circuit breaker for analyzer backends.

When the analyzer behind the serving layer starts failing — NaN weights
after a bad deployment, a hung solver, an instrument feeding garbage —
retrying every request into it just burns worker time and holds the
request queue hostage.  The breaker implements the classic three-state
machine:

* **closed** — normal operation; consecutive failures are counted and
  ``failure_threshold`` of them in a row open the circuit;
* **open** — every call is refused outright for ``recovery_time_s``;
* **half-open** — after the cooldown, probe calls are let through *one
  at a time* (a probe must report back before the next is admitted, so a
  burst of waiting workers cannot stampede a barely-recovered backend);
  ``half_open_probes`` of them succeeding closes the circuit, any one
  failing reopens it (and restarts the cooldown).

Time comes from an injectable monotonic ``clock`` so tests drive the
state machine deterministically.  All methods are safe to call from
multiple worker threads.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.observability.metrics import MetricsRegistry
from repro.observability.runtime import get_registry

__all__ = ["CLOSED", "OPEN", "HALF_OPEN", "CircuitTransition", "CircuitBreaker"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


@dataclass(frozen=True)
class CircuitTransition:
    """One state change, for post-mortem analysis."""

    at: float
    from_state: str
    to_state: str
    reason: str


class CircuitBreaker:
    """Consecutive-failure circuit breaker with half-open probing."""

    def __init__(
        self,
        failure_threshold: int = 5,
        recovery_time_s: float = 5.0,
        half_open_probes: int = 1,
        clock: Callable[[], float] = time.monotonic,
        on_transition: Optional[Callable[[CircuitTransition], None]] = None,
        registry: Optional[MetricsRegistry] = None,
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if recovery_time_s <= 0:
            raise ValueError("recovery_time_s must be positive")
        if half_open_probes < 1:
            raise ValueError("half_open_probes must be >= 1")
        self.failure_threshold = int(failure_threshold)
        self.recovery_time_s = float(recovery_time_s)
        self.half_open_probes = int(half_open_probes)
        self.clock = clock
        self.on_transition = on_transition
        registry = registry if registry is not None else get_registry()
        self._m_transitions = registry.counter(
            "circuit_transitions_total",
            "circuit-breaker state changes by edge",
        )
        self._lock = threading.RLock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probes_issued = 0
        self._probe_successes = 0
        self._probe_inflight = False
        self.transitions: List[CircuitTransition] = []

    # -- state -------------------------------------------------------------

    @property
    def state(self) -> str:
        """Current state (transitions open → half-open on its own clock)."""
        with self._lock:
            self._maybe_enter_half_open()
            return self._state

    def _transition(self, to_state: str, reason: str) -> None:
        transition = CircuitTransition(
            at=float(self.clock()),
            from_state=self._state,
            to_state=to_state,
            reason=reason,
        )
        self.transitions.append(transition)
        self._state = to_state
        self._m_transitions.inc(
            from_state=transition.from_state, to_state=to_state
        )
        if self.on_transition is not None:
            self.on_transition(transition)

    def _maybe_enter_half_open(self) -> None:
        if (
            self._state == OPEN
            and self.clock() - self._opened_at >= self.recovery_time_s
        ):
            self._transition(HALF_OPEN, "cooldown elapsed")
            self._probes_issued = 0
            self._probe_successes = 0
            self._probe_inflight = False

    # -- the protocol ------------------------------------------------------

    def allow(self) -> bool:
        """May a call proceed right now?  Half-open consumes a probe slot.

        In half-open at most *one* probe is in flight at a time: the
        slot frees only when :meth:`record_success` or
        :meth:`record_failure` reports the probe's outcome.  Without
        this, every worker blocked on a cooling-down backend is released
        at once when the cooldown lapses — a probe stampede into a
        backend that has barely recovered.
        """
        with self._lock:
            self._maybe_enter_half_open()
            if self._state == OPEN:
                return False
            if self._state == HALF_OPEN:
                if self._probe_inflight:
                    return False
                if self._probes_issued >= self.half_open_probes:
                    return False
                self._probes_issued += 1
                self._probe_inflight = True
            return True

    def record_success(self) -> None:
        with self._lock:
            if self._state == HALF_OPEN:
                self._probe_inflight = False
                self._probe_successes += 1
                if self._probe_successes >= self.half_open_probes:
                    self._transition(CLOSED, "probe(s) succeeded")
                    self._consecutive_failures = 0
            else:
                self._consecutive_failures = 0

    def record_failure(self) -> None:
        with self._lock:
            if self._state == HALF_OPEN:
                self._probe_inflight = False
                self._open("probe failed")
                return
            self._consecutive_failures += 1
            if self._state == CLOSED and (
                self._consecutive_failures >= self.failure_threshold
            ):
                self._open(
                    f"{self._consecutive_failures} consecutive failures"
                )

    def _open(self, reason: str) -> None:
        self._transition(OPEN, reason)
        self._opened_at = float(self.clock())
        self._consecutive_failures = 0

    def reset(self) -> None:
        """Force-close the circuit (manual operator action)."""
        with self._lock:
            if self._state != CLOSED:
                self._transition(CLOSED, "manual reset")
            self._consecutive_failures = 0
            self._probe_inflight = False

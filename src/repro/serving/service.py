"""A hardened concurrent analysis service over any spectrum analyzer.

The paper's case for ANN analysis is that it runs "in milliseconds" and
therefore supports real-time use.  This module supplies the serving shell
that claim needs in production: a fixed pool of worker threads pulling
from a *bounded* queue (back-pressure instead of unbounded memory growth),
per-request deadlines enforced both in the queue and after the analyzer
runs, a :class:`~repro.serving.circuit.CircuitBreaker` over the backend so
a persistently failing analyzer is isolated instead of hammered, input
validation gates at admission, and an output gate that guarantees a
non-finite concentration is never handed to a caller.

Every request terminates in exactly one explicit result:

* :class:`Completed` — validated input, finite output, within deadline;
* :class:`Rejected` — with a machine-readable ``reason`` naming which
  defence fired (``queue_full``, ``deadline_*``, ``circuit_open``,
  ``invalid_input``, ``analyzer_error``, ``nonfinite_output``,
  ``brownout_shed``, ``shutdown``);
* :class:`Abstained` — only when an uncertainty gate is installed (pass
  ``uncertainty=UncertaintyGate(...)``): the input was valid and the
  backend healthy, but the calibrated prediction interval was too wide
  to vouch for the answer, so the service refuses with the interval
  attached instead of serving a confident guess.

There is no other outcome and no hang: the chaos tests drive the service
with malformed spectra, slow analyzers, OOD floods and burst load
concurrently and assert exactly this.

Two opt-in control layers ride on the same contract:

* **Micro-batching** (pass ``batching=BatchingPolicy(...)``): workers
  coalesce queued requests into one batched analyzer call — dispatching
  when the batch fills *or* an adaptive max-wait expires — with every
  defence re-applied per row: deadlines are re-checked at batch drain
  (an expired request gets ``deadline_exceeded``, never a stale answer),
  validation failures reject only their own row, and a failed batch call
  falls back to single-row retries so one poisoned request cannot take
  down its batchmates.  Coalescing never changes answers: the batch
  analyzer contract (see
  :func:`~repro.serving.batching.batch_analyzer_from_model`) keeps a
  row's output byte-identical however it was batched.
* **Brownout degradation** (pass ``governor=BrownoutGovernor(...)``):
  queue depth and completed-request p95 walk the service through
  declared degradation levels — grow batches, tighten admission
  deadlines, shed low-priority work — with hysteresis, surfaced in
  :meth:`AnalysisService.stats` and traced as ``serving.brownout`` span
  events.
* **Frozen inference** (pass ``frozen="float32"`` or ``"int8"`` with a
  built ``Sequential`` as the analyzer): the model is compiled once into
  an :class:`~repro.inference.plan.InferencePlan` and batches execute in
  the :class:`~repro.inference.engine.InferenceEngine`'s preallocated
  scratch instead of the float64 layer-by-layer reference.  The contract
  weakens from byte-identity to accuracy within the plan's pinned MAE
  budget; models with plan-unsupported layers fall back to the reference
  path automatically (``stats()["frozen"]`` reports the effective
  dtype, ``None`` after fallback).  ``validate_at_admission=True``
  additionally moves the per-row validation gate to ``submit()`` so the
  batched drain skips the redundant re-validation (invalid rows are
  still refused exactly once, just earlier).
"""

from __future__ import annotations

import itertools
import queue
import threading
import time
import weakref
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.observability.metrics import MetricsRegistry
from repro.observability.runtime import get_registry, get_tracer
from repro.observability.tracing import Tracer
from repro.reliability.validation import ValidationError, validate_spectrum
from repro.serving.batching import (
    BatchingPolicy,
    BrownoutGovernor,
    BrownoutTransition,
    batch_analyzer_from_model,
)
from repro.serving.circuit import CircuitBreaker

__all__ = [
    "Completed",
    "Rejected",
    "Abstained",
    "PendingRequest",
    "AnalysisService",
]

# Batch-size distribution buckets (requests per dispatch, not seconds).
_BATCH_SIZE_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128, 256)


@dataclass(frozen=True)
class Completed:
    """A successful analysis: finite estimate, in budget."""

    value: np.ndarray
    request_id: int = -1
    analyzer_seconds: float = 0.0
    latency_s: float = 0.0

    @property
    def ok(self) -> bool:
        return True


@dataclass(frozen=True)
class Rejected:
    """An explicit refusal; ``reason`` names the defence that fired."""

    reason: str
    request_id: int = -1
    latency_s: float = 0.0
    detail: Dict[str, object] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return False


@dataclass(frozen=True)
class Abstained:
    """An honest "I don't know": valid input, healthy backend, interval
    too wide to vouch for the point estimate.

    ``value`` is the (finite) point prediction the service declined to
    serve, ``lower``/``upper`` the calibrated interval that was too wide,
    ``reason`` one of the gate's ``REASON_*`` constants.  Not a failure:
    abstention never trips the circuit breaker and never counts against
    a degradation ladder — but ``ok`` is ``False`` because the caller
    did not get an answer it may act on.
    """

    reason: str
    value: np.ndarray
    lower: np.ndarray
    upper: np.ndarray
    width: float = float("inf")
    request_id: int = -1
    latency_s: float = 0.0

    @property
    def ok(self) -> bool:
        return False

    @property
    def interval(self):
        return self.lower, self.upper


class PendingRequest:
    """Handle returned by :meth:`AnalysisService.submit`.

    ``result(timeout)`` blocks until the request resolves; on timeout the
    request is resolved as ``Rejected("deadline_exceeded")`` (first
    resolver wins — a worker finishing later finds the request abandoned).
    """

    def __init__(self, request_id: int, data, deadline_at: float, clock,
                 on_resolve=None, priority: int = 0):
        self.request_id = request_id
        self.data = data
        self.deadline_at = deadline_at
        self.priority = int(priority)
        # True once the service validated `data` at admission; the drain
        # paths then skip the redundant re-validation.
        self.prevalidated = False
        self._clock = clock
        self._enqueued_at = float(clock())
        self._resolved_at: Optional[float] = None
        self._event = threading.Event()
        self._lock = threading.Lock()
        self._result = None
        self._on_resolve = on_resolve
        # Trace context installed by the service: the submit span roots the
        # request's trace, the queue span covers time spent waiting.
        self.trace_id: Optional[str] = None
        self._queue_span = None

    @property
    def resolved(self) -> bool:
        return self._event.is_set()

    def latency(self) -> float:
        """Seconds from enqueue to resolution — frozen once resolved.

        While the request is in flight this is the age so far; after
        :meth:`resolve` it reports the latency *at resolution time* and
        never grows again, so ``latency_s`` read later stays stable.
        """
        end = self._resolved_at if self._resolved_at is not None else float(
            self._clock()
        )
        return end - self._enqueued_at

    def resolve(self, result) -> bool:
        """Install ``result`` if nobody beat us to it; True if we won."""
        with self._lock:
            if self._event.is_set():
                return False
            self._resolved_at = float(self._clock())
            self._result = result
            self._event.set()
        if self._on_resolve is not None:
            self._on_resolve(result)
        return True

    def result(self, timeout: Optional[float] = None):
        """The request's outcome; never raises, never returns ``None``."""
        if timeout is None:
            remaining = self.deadline_at - float(self._clock())
            # Grace so a worker that started just under the wire can finish.
            timeout = max(remaining, 0.0) + 1.0
        if not self._event.wait(timeout):
            self.resolve(
                Rejected(
                    reason="deadline_exceeded",
                    request_id=self.request_id,
                    latency_s=self.latency(),
                )
            )
        return self._result


_SHUTDOWN = object()

# swap_analyzer sentinel: "leave the uncertainty gate as it is".
_KEEP = object()


def _outcome_label(result) -> str:
    """The metric/span outcome label for a terminal result."""
    if result.ok:
        return "completed"
    if isinstance(result, Abstained):
        return "abstained"
    return result.reason


class AnalysisService:
    """Bounded-queue, deadline-aware, circuit-broken analyzer frontend.

    ``analyzer`` follows the closed-loop protocol —
    ``analyzer(intensities) -> (estimate, seconds)`` — or returns the bare
    estimate (the service times it).  ``expected_length``, when given, is
    enforced by the admission validator; pass a custom ``validator``
    (``data -> validated array``, raising
    :class:`~repro.reliability.validation.ValidationError`) for stricter
    gates.  All timing uses the injectable monotonic ``clock``.

    Telemetry is default-on through the process-global registry/tracer
    (:mod:`repro.observability.runtime`) and fully injectable via
    ``registry``/``tracer``: per-outcome request counters and latency
    histograms, queue-depth and in-flight gauges (all labeled
    ``service=name``), and a per-request span chain ``serving.submit →
    serving.queue → serving.analyze → serving.resolve`` sharing one
    ``trace_id`` (exposed as ``PendingRequest.trace_id``).  Disabling the
    registry/tracer reduces every instrumentation point to one branch.
    """

    def __init__(
        self,
        analyzer: Callable,
        workers: int = 2,
        queue_size: int = 16,
        default_deadline_s: float = 1.0,
        expected_length: Optional[int] = None,
        validator: Optional[Callable] = None,
        breaker: Optional[CircuitBreaker] = None,
        clock: Callable[[], float] = time.monotonic,
        name: str = "analysis",
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        batching: Optional[BatchingPolicy] = None,
        batch_analyzer: Optional[Callable] = None,
        governor: Optional[BrownoutGovernor] = None,
        shadow_tap: Optional[Callable] = None,
        uncertainty=None,
        frozen: Optional[str] = None,
        validate_at_admission: bool = False,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if queue_size < 1:
            raise ValueError("queue_size must be >= 1")
        if default_deadline_s <= 0:
            raise ValueError("default_deadline_s must be positive")
        # Frozen serving: `analyzer` is a built Sequential, compiled once
        # into an InferencePlan and served through the InferenceEngine's
        # preallocated-scratch batch path.  Falls back transparently to
        # the reference float64 path when the model has a layer the plan
        # compiler does not support (frozen_dtype stays None then).
        self.frozen_dtype: Optional[str] = None
        if frozen is not None:
            if batch_analyzer is not None:
                raise ValueError(
                    "pass either frozen= or batch_analyzer=, not both"
                )
            model = analyzer
            if not (hasattr(model, "predict")
                    and getattr(model, "built", False)):
                raise ValueError(
                    "frozen= requires a built Sequential model as the "
                    "analyzer"
                )
            batch_analyzer = batch_analyzer_from_model(model, frozen=frozen)
            self.frozen_dtype = batch_analyzer.frozen_dtype
            input_shape = getattr(model, "input_shape", None)
            if (expected_length is None and input_shape is not None
                    and len(input_shape) == 1):
                expected_length = int(input_shape[0])

            def analyzer(row, _batch=batch_analyzer):  # noqa: F811
                return _batch(np.asarray(row, dtype=np.float64)[None, :])[0]

        if batch_analyzer is not None and batching is None:
            batching = BatchingPolicy()
        self.validate_at_admission = bool(validate_at_admission)
        self.analyzer = analyzer
        self.workers = int(workers)
        self.queue_size = int(queue_size)
        self.default_deadline_s = float(default_deadline_s)
        self.expected_length = expected_length
        self.validator = validator
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        self.clock = clock
        self.name = str(name)
        self.batching = batching
        self.batch_analyzer = batch_analyzer
        self.governor = governor
        # Shadow tap: called as tap(data, value) after every *served*
        # completion (see set_shadow_tap).  Never on rejections.
        self.shadow_tap = shadow_tap
        # Uncertainty gate: any object with assess(matrix) -> Assessment
        # (see repro.uncertainty.policy.UncertaintyGate).  When set, it
        # replaces the analyzer as the prediction source and every row
        # gains a serve/abstain decision.
        self.uncertainty = uncertainty
        self.model_swaps = 0
        if governor is not None and governor.on_transition is None:
            governor.on_transition = self._on_brownout
        self.registry = registry if registry is not None else get_registry()
        self.tracer = tracer if tracer is not None else get_tracer()
        self._m_submitted = self.registry.counter(
            "serving_submitted_total", "requests entering submit()"
        )
        self._m_requests = self.registry.counter(
            "serving_requests_total", "resolved requests by final outcome"
        )
        self._m_latency = self.registry.histogram(
            "serving_request_latency_seconds",
            "submit-to-resolve latency by final outcome",
        )
        self._m_queue_depth = self.registry.gauge(
            "serving_queue_depth", "requests waiting in the bounded queue"
        )
        self._m_inflight = self.registry.gauge(
            "serving_inflight_requests", "requests currently in a worker"
        )
        self._m_batches = self.registry.counter(
            "serving_batches_total", "batched analyzer dispatches"
        )
        self._m_batch_size = self.registry.histogram(
            "serving_batch_size",
            "requests coalesced per batched dispatch",
            buckets=_BATCH_SIZE_BUCKETS,
        )
        self._m_brownout = self.registry.gauge(
            "serving_brownout_level", "current brownout degradation level"
        )
        self._m_swaps = self.registry.counter(
            "serving_model_swaps_total", "hot analyzer swaps"
        )
        self._m_tap_errors = self.registry.counter(
            "serving_shadow_tap_errors_total",
            "shadow tap invocations that raised (served result unaffected)",
        )
        self._m_abstentions = self.registry.counter(
            "serving_abstentions_total",
            "requests refused by the uncertainty gate, by reason",
        )
        self._m_abstain_rate = self.registry.gauge(
            "serving_abstention_rate",
            "abstained fraction of recently answered requests",
        )
        # Bound series: the label sets are fixed per service instance, so
        # the hot path skips the per-call label-key computation.
        self._b_submitted = self._m_submitted.labels(service=self.name)
        self._b_queue_depth = self._m_queue_depth.labels(service=self.name)
        self._b_inflight = self._m_inflight.labels(service=self.name)
        self._b_batches = self._m_batches.labels(service=self.name)
        self._b_batch_size = self._m_batch_size.labels(service=self.name)
        self._b_brownout = self._m_brownout.labels(service=self.name)
        self._b_swaps = self._m_swaps.labels(service=self.name)
        self._b_tap_errors = self._m_tap_errors.labels(service=self.name)
        self._b_abstain_rate = self._m_abstain_rate.labels(service=self.name)
        self._b_outcomes: Dict[str, tuple] = {}
        # Every live PendingRequest, so stop() can refuse whatever a hung
        # worker leaves unresolved instead of stranding its caller.
        self._pending: "weakref.WeakSet[PendingRequest]" = weakref.WeakSet()
        self._queue: queue.Queue = queue.Queue(maxsize=queue_size)
        self._threads: List[threading.Thread] = []
        self._ids = itertools.count()
        self._stats_lock = threading.Lock()
        self._running = False
        self.submitted = 0
        self.completed = 0
        self.rejections: Dict[str, int] = {}
        self.abstentions: Dict[str, int] = {}
        # Rolling serve/abstain window over *answered* requests (completed
        # or abstained; queue-level refusals say nothing about the model).
        # Feeds the brownout governor's abstain-rate trigger.
        self._answers = deque(maxlen=64)

    @classmethod
    def from_checkpoint(
        cls,
        manager,
        name: str,
        seed: int = 0,
        expected_length: Optional[int] = None,
        **kwargs,
    ) -> "AnalysisService":
        """Build a service over a verified checkpointed model.

        The model comes off disk through the
        :class:`~repro.reliability.checkpoint.CheckpointManager` verified
        path — checksum check, generational fallback, quarantine — so a
        bit-flipped artifact can never silently serve traffic.  The
        admission gate's ``expected_length`` defaults to the model's own
        input length.
        """
        from repro.serving.loading import analyzer_from_checkpoint

        analyzer, model_length = analyzer_from_checkpoint(
            manager, name, seed=seed
        )
        if expected_length is None:
            expected_length = model_length
        return cls(analyzer, expected_length=expected_length, **kwargs)

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "AnalysisService":
        if self._running:
            raise RuntimeError("service already running")
        self._running = True
        target = self._worker_batched if self.batching is not None else self._worker
        self._threads = [
            threading.Thread(
                target=target, name=f"analysis-worker-{i}", daemon=True
            )
            for i in range(self.workers)
        ]
        for thread in self._threads:
            thread.start()
        return self

    def stop(self, timeout: float = 5.0) -> None:
        """Graceful drain: queued requests finish, then workers exit.

        Whatever the drain cannot resolve within ``timeout`` — requests
        still queued behind a shutdown marker *and* requests held by a
        worker stuck in the analyzer — is refused as
        ``Rejected("shutdown")``, so no caller blocked in
        :meth:`PendingRequest.result` is ever stranded by a stop.
        """
        if not self._running:
            return
        self._running = False
        for _ in self._threads:
            self._queue.put(_SHUTDOWN)
        for thread in self._threads:
            thread.join(timeout)
        self._threads = []
        # Anything still queued behind a shutdown marker is refused.
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is _SHUTDOWN:
                continue
            self._b_queue_depth.dec()
            if item._queue_span is not None:
                item._queue_span.end(status="error: shutdown")
            self._finish(
                item,
                Rejected(
                    reason="shutdown",
                    request_id=item.request_id,
                    latency_s=item.latency(),
                ),
                parent_span=item._queue_span,
            )
        # A worker that outlived its join timeout (analyzer hung) may
        # still hold requests in flight; refuse them too.  resolve() is
        # first-wins, so if the worker eventually finishes, its late
        # result is simply dropped.
        for request in list(self._pending):
            if not request.resolved:
                if request._queue_span is not None:
                    request._queue_span.end(status="error: shutdown")
                self._finish(
                    request,
                    Rejected(
                        reason="shutdown",
                        request_id=request.request_id,
                        latency_s=request.latency(),
                    ),
                    parent_span=request._queue_span,
                )

    def __enter__(self) -> "AnalysisService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- the public protocol ----------------------------------------------

    def submit(self, intensities, deadline_s: Optional[float] = None,
               priority: int = 0) -> PendingRequest:
        """Enqueue one spectrum; never blocks.

        Load shedding happens here: a full queue resolves the request
        immediately as ``Rejected("queue_full")`` instead of making the
        caller wait behind traffic that will miss its deadline anyway.
        Under brownout the admission deadline is tightened by the active
        level's ``deadline_factor``, and at the deepest levels requests
        whose ``priority`` falls below the level's ``min_priority`` are
        refused outright as ``Rejected("brownout_shed")``.
        """
        if not self._running:
            raise RuntimeError("service is not running; call start() first")
        deadline_s = (
            self.default_deadline_s if deadline_s is None else float(deadline_s)
        )
        if deadline_s <= 0:
            raise ValueError("deadline_s must be positive")
        level = None
        if self.governor is not None:
            self._observe_governor()
            level = self.governor.active
            deadline_s *= level.deadline_factor
        request = PendingRequest(
            request_id=next(self._ids),
            data=intensities,
            deadline_at=float(self.clock()) + deadline_s,
            clock=self.clock,
            on_resolve=self._record,
            priority=priority,
        )
        self._pending.add(request)
        with self._stats_lock:
            self.submitted += 1
        self._b_submitted.inc()
        submit_span = self.tracer.start_span(
            "serving.submit",
            attributes={"request_id": request.request_id,
                        "service": self.name},
        )
        request.trace_id = submit_span.trace_id or None
        if (
            level is not None
            and level.min_priority is not None
            and request.priority < level.min_priority
        ):
            submit_span.set_attribute("outcome", "brownout_shed")
            submit_span.end(status="error: brownout_shed")
            self._finish(
                request,
                Rejected(
                    reason="brownout_shed",
                    request_id=request.request_id,
                    detail={
                        "level": level.name,
                        "min_priority": level.min_priority,
                        "priority": request.priority,
                    },
                ),
                parent_span=submit_span,
            )
            return request
        if self.validate_at_admission:
            # Admission-time validation: the drain paths skip their
            # per-row re-validation for prevalidated requests, so a row
            # is gated exactly once either way.  Invalid input never
            # even occupies a queue slot.
            try:
                request.data = self._validate(request.data)
                request.prevalidated = True
            except ValidationError as error:
                submit_span.set_attribute("outcome", "invalid_input")
                submit_span.end(status="error: invalid_input")
                self._finish(
                    request,
                    Rejected(
                        reason="invalid_input",
                        request_id=request.request_id,
                        latency_s=request.latency(),
                        detail={"error": str(error)},
                    ),
                    parent_span=submit_span,
                )
                return request
        # The queue span must be attached before the enqueue: a worker can
        # dequeue the request before put_nowait even returns.
        request._queue_span = self.tracer.start_span(
            "serving.queue", parent=submit_span
        )
        try:
            self._queue.put_nowait(request)
        except queue.Full:
            request._queue_span.end(status="error: queue_full")
            submit_span.set_attribute("outcome", "queue_full")
            submit_span.end(status="error: queue_full")
            self._finish(
                request,
                Rejected(
                    reason="queue_full",
                    request_id=request.request_id,
                    detail={"queue_size": self.queue_size},
                ),
                parent_span=submit_span,
            )
        else:
            self._b_queue_depth.inc()
            submit_span.end()
        return request

    def analyze(self, intensities, deadline_s: Optional[float] = None,
                priority: int = 0):
        """Submit and wait; returns a :class:`Completed` or :class:`Rejected`."""
        return self.submit(
            intensities, deadline_s=deadline_s, priority=priority
        ).result()

    def stats(self) -> Dict[str, object]:
        """Counts plus live telemetry: queue depth, in-flight workers and
        per-outcome p50/p95/p99 latencies from the shared histogram."""
        with self._stats_lock:
            base: Dict[str, object] = {
                "submitted": self.submitted,
                "completed": self.completed,
                "rejections": dict(self.rejections),
                "abstentions": dict(self.abstentions),
                "abstained": sum(self.abstentions.values()),
                "circuit_state": self.breaker.state,
                "frozen": self.frozen_dtype,
            }
        if self.uncertainty is not None:
            base["abstention_rate"] = self.abstention_rate()
        base["queue_depth"] = self._b_queue_depth.value()
        base["inflight"] = self._b_inflight.value()
        latency: Dict[str, Dict[str, object]] = {}
        for labels in self._m_latency.series_labels():
            if labels.get("service") != self.name:
                continue
            outcome = labels.get("outcome", "")
            latency[outcome] = {
                "count": self._m_latency.count(**labels),
                **self._m_latency.percentiles(**labels),
            }
        base["latency_s"] = latency
        if self.batching is not None:
            batches = self._b_batches.value()
            requests = self._m_batch_size.sum(service=self.name)
            base["batching"] = {
                "batches": batches,
                "batched_requests": requests,
                "mean_batch_size": (requests / batches) if batches else None,
                **self._m_batch_size.percentiles(service=self.name),
            }
        if self.governor is not None:
            base["brownout"] = self.governor.snapshot()
        with self._stats_lock:
            base["model_swaps"] = self.model_swaps
        return base

    def abstention_rate(self) -> Optional[float]:
        """Abstained fraction of recently *answered* requests.

        Queue-level refusals are excluded — they say nothing about the
        model's confidence.  ``None`` until the first answer.  This is
        the signal the brownout governor's ``enter_abstain_rate``
        trigger consumes: a surging rate usually means the traffic has
        left the training distribution, and shedding load will not fix
        that — but it does stop the service burning batch capacity on
        rows it will refuse anyway.
        """
        with self._stats_lock:
            if not self._answers:
                return None
            return float(sum(self._answers)) / len(self._answers)

    # -- adaptation hooks ---------------------------------------------------

    def set_shadow_tap(self, tap: Optional[Callable]) -> None:
        """Install (or clear, with ``None``) the shadow tap.

        The tap is called as ``tap(data, value)`` — validated input,
        served finite output — after every completion that *won* its
        resolution, on the worker thread that served it.  It exists so an
        adaptation controller can mirror live traffic onto a candidate
        model without the candidate ever producing a served answer: a tap
        that raises is counted (``serving_shadow_tap_errors_total``) and
        swallowed, and the caller's :class:`Completed` was already
        resolved before the tap ran, so no tap behaviour — slow, broken,
        or poisoned — can change, delay-reject, or duplicate a result.
        """
        self.shadow_tap = tap

    def swap_analyzer(
        self,
        analyzer: Callable,
        batch_analyzer: Optional[Callable] = None,
        uncertainty=_KEEP,
    ) -> None:
        """Hot-swap the backend model without a restart or a dropped request.

        In-flight requests finish against whichever analyzer they already
        dereferenced; everything dequeued after the swap is served by the
        new one.  ``batch_analyzer`` *always* replaces the old batched
        backend — passing ``None`` clears it rather than leaving a stale
        batched path serving the previous model (the service then maps
        the single-request analyzer over batches).

        ``uncertainty`` defaults to *keep the current gate* (existing
        callers — the adaptation controller included — are unaware of
        gates).  Pass a new gate to swap it atomically with the model,
        or ``None`` to remove gating.  A service serving through a gate
        ignores the analyzers for predictions, so swapping the model
        under an unchanged gate only affects the ungated fallback paths;
        swap the gate too when its predictor should follow the model.
        """
        span = self.tracer.start_span(
            "serving.swap", attributes={"service": self.name}
        )
        self.analyzer = analyzer
        self.batch_analyzer = batch_analyzer
        if uncertainty is not _KEEP:
            self.uncertainty = uncertainty
        with self._stats_lock:
            self.model_swaps += 1
        self._b_swaps.inc()
        span.end()

    # -- workers -----------------------------------------------------------

    def _worker(self) -> None:
        while True:
            item = self._queue.get()
            if item is _SHUTDOWN:
                return
            try:
                self._handle(item)
            except Exception as error:  # a defence itself failed: refuse,
                # never let a worker thread die and strand the queue.
                self._finish(
                    item,
                    Rejected(
                        reason="internal_error",
                        request_id=item.request_id,
                        latency_s=item.latency(),
                        detail={"error": f"{type(error).__name__}: {error}"},
                    ),
                )

    def _worker_batched(self) -> None:
        """Batched worker loop: coalesce, dispatch, repeat.

        Consumes exactly one shutdown marker before exiting, whether it
        arrives between batches or mid-drain.
        """
        while True:
            item = self._queue.get()
            if item is _SHUTDOWN:
                return
            keep_running = True
            try:
                keep_running = self._drain_and_process(item)
            except Exception:  # pragma: no cover - _process_batch contains
                pass  # its own failures; this is the worker-survival net.
            if not keep_running:
                return

    def _drain_and_process(self, first: PendingRequest) -> bool:
        """Coalesce a batch starting at ``first``, then process it.

        Returns ``False`` when a shutdown marker was consumed during the
        drain — the worker must exit after finishing this batch.
        """
        self._b_queue_depth.dec()
        keep_running = True
        batch = [first]
        growth = 1.0
        if self.governor is not None:
            self._observe_governor()
            growth = self.governor.active.batch_growth
        cap = self.batching.cap_for(growth)
        hold_until = float(self.clock()) + self.batching.wait_for(
            self._queue.qsize(), self.queue_size
        )
        while len(batch) < cap:
            remaining = hold_until - float(self.clock())
            try:
                if remaining > 0:
                    item = self._queue.get(timeout=remaining)
                else:
                    # Wait expired: sweep whatever is already queued, but
                    # never hold the batch open for future arrivals.
                    item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is _SHUTDOWN:
                keep_running = False
                break
            self._b_queue_depth.dec()
            batch.append(item)
        try:
            self._process_batch(batch)
        except Exception as error:  # a defence itself failed: refuse all.
            for request in batch:
                if not request.resolved:
                    self._finish(
                        request,
                        Rejected(
                            reason="internal_error",
                            request_id=request.request_id,
                            latency_s=request.latency(),
                            detail={
                                "error": f"{type(error).__name__}: {error}"
                            },
                        ),
                    )
        return keep_running

    def _process_batch(self, batch: List[PendingRequest]) -> None:
        """Run one coalesced batch with every defence applied per row."""
        self._b_inflight.inc()
        try:
            live = []
            for request in batch:
                if request._queue_span is not None:
                    request._queue_span.end()
                if not request.resolved:  # else: caller gave up in queue
                    live.append(request)
            if not live:
                return
            # Deadline re-check at drain: an expired request is refused
            # here, never given a stale (or late) answer.
            now = float(self.clock())
            admitted = []
            for request in live:
                if now >= request.deadline_at:
                    self._finish(
                        request,
                        Rejected(
                            reason="deadline_expired_in_queue",
                            request_id=request.request_id,
                            latency_s=request.latency(),
                        ),
                        parent_span=request._queue_span,
                    )
                else:
                    admitted.append(request)
            if not admitted:
                return
            if not self.breaker.allow():
                for request in admitted:
                    self._finish(
                        request,
                        Rejected(
                            reason="circuit_open",
                            request_id=request.request_id,
                            latency_s=request.latency(),
                        ),
                        parent_span=request._queue_span,
                    )
                return
            # Per-row validation gate: a malformed spectrum rejects only
            # its own request, never its batchmates.  Rows validated at
            # admission are not re-gated here.
            valid = []
            for request in admitted:
                if request.prevalidated:
                    valid.append((request, request.data))
                    continue
                try:
                    data = self._validate(request.data)
                except ValidationError as error:
                    self._finish(
                        request,
                        Rejected(
                            reason="invalid_input",
                            request_id=request.request_id,
                            latency_s=request.latency(),
                            detail={"error": str(error)},
                        ),
                        parent_span=request._queue_span,
                    )
                else:
                    valid.append((request, data))
            if not valid:
                # Bad input is the callers' fault; release the breaker's
                # half-open probe slot exactly as the single path does.
                self.breaker.record_success()
                return
            batch_span = self.tracer.start_span(
                "serving.batch",
                attributes={
                    "service": self.name,
                    "batch_size": len(valid),
                    "first_request_id": valid[0][0].request_id,
                },
            )
            matrix = np.stack([data for _, data in valid])
            started = float(self.clock())
            assessment = None
            try:
                if self.uncertainty is not None:
                    assessment = self._assess(
                        matrix, batch_span, valid[0][0].request_id
                    )
                    values = np.asarray(assessment.mean, dtype=np.float64)
                else:
                    values = np.asarray(
                        self._call_batch_analyzer(matrix), dtype=np.float64
                    )
                if values.shape[0] != len(valid):
                    raise RuntimeError(
                        f"batch analyzer returned {values.shape[0]} rows "
                        f"for {len(valid)} inputs"
                    )
            except Exception as error:
                batch_span.set_attribute("fallback", True)
                batch_span.end(status=f"error: {type(error).__name__}")
                self._batch_fallback(valid, error)
                return
            elapsed = float(self.clock()) - started
            per_request_s = elapsed / len(valid)
            self._b_batches.inc()
            self._b_batch_size.observe(len(valid))
            finite_rows = np.isfinite(values.reshape(len(valid), -1)).all(
                axis=1
            )
            # The batch is the breaker's unit of work.  A backend that
            # answered with at least one finite row is alive; one that
            # raised or returned nothing finite counts as a failure.
            if finite_rows.any():
                self.breaker.record_success()
            else:
                self.breaker.record_failure()
            batch_span.set_attribute("analyzer_seconds", elapsed)
            batch_span.end()
            end = float(self.clock())
            for index, (request, _) in enumerate(valid):
                if not finite_rows[index]:
                    self._finish(
                        request,
                        Rejected(
                            reason="nonfinite_output",
                            request_id=request.request_id,
                            latency_s=request.latency(),
                        ),
                        parent_span=request._queue_span,
                    )
                elif end >= request.deadline_at:
                    # Correct but too late — never a deadline-violating
                    # answer.
                    self._finish(
                        request,
                        Rejected(
                            reason="deadline_exceeded",
                            request_id=request.request_id,
                            latency_s=request.latency(),
                            detail={"analyzer_seconds": per_request_s},
                        ),
                        parent_span=request._queue_span,
                    )
                elif assessment is not None and assessment.abstain[index]:
                    # Per-row abstention: one OOD spectrum refuses only
                    # itself, never its batchmates.
                    self._finish(
                        request,
                        self._abstained(request, assessment, index),
                        parent_span=request._queue_span,
                    )
                else:
                    self._finish(
                        request,
                        Completed(
                            value=values[index].copy(),
                            request_id=request.request_id,
                            analyzer_seconds=per_request_s,
                            latency_s=request.latency(),
                        ),
                        parent_span=request._queue_span,
                    )
        finally:
            self._b_inflight.dec()

    def _batch_fallback(self, valid, batch_error: Exception) -> None:
        """Single-row retries after a failed batch call.

        One poisoned request must not take down its batchmates: each row
        is retried alone (through the same batch analyzer, so answers
        stay byte-identical) and only its own failure rejects it.  The
        breaker records one outcome for the whole episode — success if
        any row came back, failure if the backend refused them all.
        """
        any_ok = False
        for request, data in valid:
            if request.resolved:
                continue
            started = float(self.clock())
            assessment = None
            try:
                if self.uncertainty is not None:
                    assessment = self._assess(
                        data[np.newaxis, :],
                        request._queue_span,
                        request.request_id,
                    )
                    row = np.asarray(assessment.mean[0], dtype=np.float64)
                else:
                    row = np.asarray(
                        self._call_batch_analyzer(data[np.newaxis, ...])[0],
                        dtype=np.float64,
                    )
            except Exception as error:
                self._finish(
                    request,
                    Rejected(
                        reason="analyzer_error",
                        request_id=request.request_id,
                        latency_s=request.latency(),
                        detail={
                            "error": f"{type(error).__name__}: {error}",
                            "batch_error": (
                                f"{type(batch_error).__name__}: {batch_error}"
                            ),
                        },
                    ),
                    parent_span=request._queue_span,
                )
                continue
            seconds = float(self.clock()) - started
            if not np.isfinite(row).all():
                self._finish(
                    request,
                    Rejected(
                        reason="nonfinite_output",
                        request_id=request.request_id,
                        latency_s=request.latency(),
                    ),
                    parent_span=request._queue_span,
                )
                continue
            any_ok = True
            if float(self.clock()) >= request.deadline_at:
                self._finish(
                    request,
                    Rejected(
                        reason="deadline_exceeded",
                        request_id=request.request_id,
                        latency_s=request.latency(),
                        detail={"analyzer_seconds": seconds},
                    ),
                    parent_span=request._queue_span,
                )
                continue
            if assessment is not None and assessment.abstain[0]:
                self._finish(
                    request,
                    self._abstained(request, assessment, 0),
                    parent_span=request._queue_span,
                )
                continue
            self._finish(
                request,
                Completed(
                    value=row.copy(),
                    request_id=request.request_id,
                    analyzer_seconds=seconds,
                    latency_s=request.latency(),
                ),
                parent_span=request._queue_span,
            )
        if any_ok:
            self.breaker.record_success()
        else:
            self.breaker.record_failure()

    def _call_batch_analyzer(self, matrix: np.ndarray):
        """Dispatch one (n, features) matrix to the batched backend."""
        if self.batch_analyzer is not None:
            return self.batch_analyzer(matrix)
        # No batched backend given: map the single-request analyzer.
        rows = []
        for row in matrix:
            value = self.analyzer(row)
            if isinstance(value, tuple) and len(value) == 2:
                value = value[0]
            rows.append(np.asarray(value, dtype=np.float64))
        return np.stack(rows)

    # -- brownout ----------------------------------------------------------

    def _observe_governor(self) -> int:
        return self.governor.maybe_observe(
            self._queue.qsize() / self.queue_size,
            self._completed_p95,
            abstain_rate_fn=(
                self.abstention_rate if self.uncertainty is not None else None
            ),
        )

    def _completed_p95(self) -> Optional[float]:
        return self._m_latency.percentile(
            95.0, outcome="completed", service=self.name
        )

    def _on_brownout(self, transition: BrownoutTransition) -> None:
        """Default governor callback: gauge + a span event per transition."""
        self._b_brownout.set(transition.to_level)
        span = self.tracer.start_span(
            "serving.brownout",
            attributes={
                "service": self.name,
                "from_level": transition.from_level,
                "to_level": transition.to_level,
                "queue_fill": round(transition.queue_fill, 4),
            },
        )
        span.add_event(
            "brownout_transition",
            {
                "from": self.governor.levels[transition.from_level].name,
                "to": self.governor.levels[transition.to_level].name,
                "p95_s": transition.p95_s,
            },
        )
        span.end()

    def _handle(self, request: PendingRequest) -> None:
        self._b_queue_depth.dec()
        queue_span = request._queue_span
        if queue_span is not None:
            queue_span.end()
        if request.resolved:  # caller gave up while we were queued
            return
        if self.governor is not None:
            self._observe_governor()
        self._b_inflight.inc()
        try:
            self._handle_admitted(request, queue_span)
        finally:
            self._b_inflight.dec()

    def _handle_admitted(self, request: PendingRequest, queue_span) -> None:
        now = float(self.clock())
        if now >= request.deadline_at:
            self._finish(
                request,
                Rejected(
                    reason="deadline_expired_in_queue",
                    request_id=request.request_id,
                    latency_s=request.latency(),
                ),
                parent_span=queue_span,
            )
            return
        if not self.breaker.allow():
            self._finish(
                request,
                Rejected(
                    reason="circuit_open",
                    request_id=request.request_id,
                    latency_s=request.latency(),
                ),
                parent_span=queue_span,
            )
            return
        analyze_span = self.tracer.start_span(
            "serving.analyze",
            parent=queue_span,
            attributes={"request_id": request.request_id},
        )
        try:
            data = (
                request.data if request.prevalidated
                else self._validate(request.data)
            )
        except ValidationError as error:
            # Bad input is the caller's fault, not the analyzer's: it must
            # not push the breaker toward open.
            self.breaker.record_success()
            analyze_span.end(status="error: invalid_input")
            self._finish(
                request,
                Rejected(
                    reason="invalid_input",
                    request_id=request.request_id,
                    latency_s=request.latency(),
                    detail={"error": str(error)},
                ),
                parent_span=analyze_span,
            )
            return
        started = float(self.clock())
        assessment = None
        try:
            if self.uncertainty is not None:
                assessment = self._assess(
                    data[np.newaxis, :], analyze_span, request.request_id
                )
                value = assessment.mean[0]
                analyzer_seconds = float(self.clock()) - started
            else:
                value, analyzer_seconds = self._call_analyzer(data, started)
        except Exception as error:
            self.breaker.record_failure()
            analyze_span.end(status=f"error: {type(error).__name__}")
            self._finish(
                request,
                Rejected(
                    reason="analyzer_error",
                    request_id=request.request_id,
                    latency_s=request.latency(),
                    detail={"error": f"{type(error).__name__}: {error}"},
                ),
                parent_span=analyze_span,
            )
            return
        analyze_span.set_attribute("analyzer_seconds", analyzer_seconds)
        value = np.asarray(value, dtype=np.float64)
        if not np.isfinite(value).all():
            self.breaker.record_failure()
            analyze_span.end(status="error: nonfinite_output")
            self._finish(
                request,
                Rejected(
                    reason="nonfinite_output",
                    request_id=request.request_id,
                    latency_s=request.latency(),
                ),
                parent_span=analyze_span,
            )
            return
        if float(self.clock()) >= request.deadline_at:
            # Correct but too late; a chronically slow backend should trip
            # the breaker just like a failing one.
            self.breaker.record_failure()
            analyze_span.end(status="error: deadline_exceeded")
            self._finish(
                request,
                Rejected(
                    reason="deadline_exceeded",
                    request_id=request.request_id,
                    latency_s=request.latency(),
                    detail={"analyzer_seconds": analyzer_seconds},
                ),
                parent_span=analyze_span,
            )
            return
        # The backend answered with something finite and in budget: a
        # healthy episode for the breaker even if the gate now abstains —
        # abstention is the *gate* distrusting the answer, not the
        # backend failing to produce one.
        self.breaker.record_success()
        if assessment is not None and assessment.abstain[0]:
            analyze_span.set_attribute("outcome", "abstained")
            analyze_span.end()
            self._finish(
                request,
                self._abstained(request, assessment, 0),
                parent_span=analyze_span,
            )
            return
        analyze_span.end()
        self._finish(
            request,
            Completed(
                value=value,
                request_id=request.request_id,
                analyzer_seconds=analyzer_seconds,
                latency_s=request.latency(),
            ),
            parent_span=analyze_span,
        )

    def _validate(self, data) -> np.ndarray:
        if self.validator is not None:
            return self.validator(data)
        return validate_spectrum(data, length=self.expected_length)

    def _call_analyzer(self, data: np.ndarray, started: float):
        result = self.analyzer(data)
        if isinstance(result, tuple) and len(result) == 2:
            return result[0], float(result[1])
        return result, float(self.clock()) - started

    def _assess(self, matrix: np.ndarray, parent_span, first_request_id: int):
        """Run the uncertainty gate under its own span."""
        span = self.tracer.start_span(
            "serving.uncertainty",
            parent=parent_span,
            attributes={
                "service": self.name,
                "rows": int(matrix.shape[0]),
                "first_request_id": first_request_id,
            },
        )
        try:
            assessment = self.uncertainty.assess(matrix)
        except Exception as error:
            span.end(status=f"error: {type(error).__name__}")
            raise
        span.set_attribute("abstained_rows", int(assessment.abstain.sum()))
        span.end()
        return assessment

    def _abstained(self, request: PendingRequest, assessment, row: int):
        """Build the ``Abstained`` result for one assessed row."""
        lower, upper = assessment.row_interval(row)
        return Abstained(
            reason=assessment.reasons[row],
            value=np.asarray(assessment.mean[row], dtype=np.float64).copy(),
            lower=np.asarray(lower, dtype=np.float64).copy(),
            upper=np.asarray(upper, dtype=np.float64).copy(),
            width=float(assessment.width[row]),
            request_id=request.request_id,
            latency_s=request.latency(),
        )

    # -- bookkeeping -------------------------------------------------------

    def _finish(self, request: PendingRequest, result, parent_span=None) -> None:
        """Resolve under a ``serving.resolve`` span closing the trace chain."""
        outcome = _outcome_label(result)
        span = self.tracer.start_span(
            "serving.resolve",
            parent=parent_span,
            attributes={"request_id": request.request_id, "outcome": outcome},
        )
        if request.resolve(result):
            span.end()
            # Mirror the served (data, value) pair to the shadow tap.  The
            # caller already has its answer; a failing tap is recorded and
            # contained here, never surfaced as a serving outcome.
            tap = self.shadow_tap
            if tap is not None and result.ok:
                try:
                    tap(request.data, result.value)
                except Exception:
                    self._b_tap_errors.inc()
        else:
            span.end(status="error: already_resolved")

    def _record(self, result) -> None:
        """Count every resolution exactly once, whoever resolved it."""
        outcome = _outcome_label(result)
        with self._stats_lock:
            if isinstance(result, Completed):
                self.completed += 1
                self._answers.append(0)
                self._b_abstain_rate.set(
                    sum(self._answers) / len(self._answers)
                )
            elif isinstance(result, Abstained):
                self.abstentions[result.reason] = (
                    self.abstentions.get(result.reason, 0) + 1
                )
                self._answers.append(1)
                self._b_abstain_rate.set(
                    sum(self._answers) / len(self._answers)
                )
                self._m_abstentions.inc(
                    service=self.name, reason=result.reason
                )
            else:
                self.rejections[result.reason] = (
                    self.rejections.get(result.reason, 0) + 1
                )
        bound = self._b_outcomes.get(outcome)
        if bound is None:
            # Racing threads may build duplicates; they share one series.
            bound = self._b_outcomes[outcome] = (
                self._m_requests.labels(outcome=outcome, service=self.name),
                self._m_latency.labels(outcome=outcome, service=self.name),
            )
        bound[0].inc()
        bound[1].observe(result.latency_s)

"""A hardened concurrent analysis service over any spectrum analyzer.

The paper's case for ANN analysis is that it runs "in milliseconds" and
therefore supports real-time use.  This module supplies the serving shell
that claim needs in production: a fixed pool of worker threads pulling
from a *bounded* queue (back-pressure instead of unbounded memory growth),
per-request deadlines enforced both in the queue and after the analyzer
runs, a :class:`~repro.serving.circuit.CircuitBreaker` over the backend so
a persistently failing analyzer is isolated instead of hammered, input
validation gates at admission, and an output gate that guarantees a
non-finite concentration is never handed to a caller.

Every request terminates in exactly one of two explicit results:

* :class:`Completed` — validated input, finite output, within deadline;
* :class:`Rejected` — with a machine-readable ``reason`` naming which
  defence fired (``queue_full``, ``deadline_*``, ``circuit_open``,
  ``invalid_input``, ``analyzer_error``, ``nonfinite_output``,
  ``shutdown``).

There is no third outcome and no hang: the chaos test drives the service
with malformed spectra, slow analyzers and burst load concurrently and
asserts exactly this.
"""

from __future__ import annotations

import itertools
import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.reliability.validation import ValidationError, validate_spectrum
from repro.serving.circuit import CircuitBreaker

__all__ = ["Completed", "Rejected", "PendingRequest", "AnalysisService"]


@dataclass(frozen=True)
class Completed:
    """A successful analysis: finite estimate, in budget."""

    value: np.ndarray
    request_id: int = -1
    analyzer_seconds: float = 0.0
    latency_s: float = 0.0

    @property
    def ok(self) -> bool:
        return True


@dataclass(frozen=True)
class Rejected:
    """An explicit refusal; ``reason`` names the defence that fired."""

    reason: str
    request_id: int = -1
    latency_s: float = 0.0
    detail: Dict[str, object] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return False


class PendingRequest:
    """Handle returned by :meth:`AnalysisService.submit`.

    ``result(timeout)`` blocks until the request resolves; on timeout the
    request is resolved as ``Rejected("deadline_exceeded")`` (first
    resolver wins — a worker finishing later finds the request abandoned).
    """

    def __init__(self, request_id: int, data, deadline_at: float, clock,
                 on_resolve=None):
        self.request_id = request_id
        self.data = data
        self.deadline_at = deadline_at
        self._clock = clock
        self._enqueued_at = float(clock())
        self._event = threading.Event()
        self._lock = threading.Lock()
        self._result = None
        self._on_resolve = on_resolve

    @property
    def resolved(self) -> bool:
        return self._event.is_set()

    def latency(self) -> float:
        return float(self._clock()) - self._enqueued_at

    def resolve(self, result) -> bool:
        """Install ``result`` if nobody beat us to it; True if we won."""
        with self._lock:
            if self._event.is_set():
                return False
            self._result = result
            self._event.set()
        if self._on_resolve is not None:
            self._on_resolve(result)
        return True

    def result(self, timeout: Optional[float] = None):
        """The request's outcome; never raises, never returns ``None``."""
        if timeout is None:
            remaining = self.deadline_at - float(self._clock())
            # Grace so a worker that started just under the wire can finish.
            timeout = max(remaining, 0.0) + 1.0
        if not self._event.wait(timeout):
            self.resolve(
                Rejected(
                    reason="deadline_exceeded",
                    request_id=self.request_id,
                    latency_s=self.latency(),
                )
            )
        return self._result


_SHUTDOWN = object()


class AnalysisService:
    """Bounded-queue, deadline-aware, circuit-broken analyzer frontend.

    ``analyzer`` follows the closed-loop protocol —
    ``analyzer(intensities) -> (estimate, seconds)`` — or returns the bare
    estimate (the service times it).  ``expected_length``, when given, is
    enforced by the admission validator; pass a custom ``validator``
    (``data -> validated array``, raising
    :class:`~repro.reliability.validation.ValidationError`) for stricter
    gates.  All timing uses the injectable monotonic ``clock``.
    """

    def __init__(
        self,
        analyzer: Callable,
        workers: int = 2,
        queue_size: int = 16,
        default_deadline_s: float = 1.0,
        expected_length: Optional[int] = None,
        validator: Optional[Callable] = None,
        breaker: Optional[CircuitBreaker] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if queue_size < 1:
            raise ValueError("queue_size must be >= 1")
        if default_deadline_s <= 0:
            raise ValueError("default_deadline_s must be positive")
        self.analyzer = analyzer
        self.workers = int(workers)
        self.queue_size = int(queue_size)
        self.default_deadline_s = float(default_deadline_s)
        self.expected_length = expected_length
        self.validator = validator
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        self.clock = clock
        self._queue: queue.Queue = queue.Queue(maxsize=queue_size)
        self._threads: List[threading.Thread] = []
        self._ids = itertools.count()
        self._stats_lock = threading.Lock()
        self._running = False
        self.submitted = 0
        self.completed = 0
        self.rejections: Dict[str, int] = {}

    @classmethod
    def from_checkpoint(
        cls,
        manager,
        name: str,
        seed: int = 0,
        expected_length: Optional[int] = None,
        **kwargs,
    ) -> "AnalysisService":
        """Build a service over a verified checkpointed model.

        The model comes off disk through the
        :class:`~repro.reliability.checkpoint.CheckpointManager` verified
        path — checksum check, generational fallback, quarantine — so a
        bit-flipped artifact can never silently serve traffic.  The
        admission gate's ``expected_length`` defaults to the model's own
        input length.
        """
        from repro.serving.loading import analyzer_from_checkpoint

        analyzer, model_length = analyzer_from_checkpoint(
            manager, name, seed=seed
        )
        if expected_length is None:
            expected_length = model_length
        return cls(analyzer, expected_length=expected_length, **kwargs)

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "AnalysisService":
        if self._running:
            raise RuntimeError("service already running")
        self._running = True
        self._threads = [
            threading.Thread(
                target=self._worker, name=f"analysis-worker-{i}", daemon=True
            )
            for i in range(self.workers)
        ]
        for thread in self._threads:
            thread.start()
        return self

    def stop(self, timeout: float = 5.0) -> None:
        """Graceful drain: queued requests finish, then workers exit."""
        if not self._running:
            return
        self._running = False
        for _ in self._threads:
            self._queue.put(_SHUTDOWN)
        for thread in self._threads:
            thread.join(timeout)
        self._threads = []
        # Anything still queued behind a shutdown marker is refused.
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is _SHUTDOWN:
                continue
            self._finish(
                item,
                Rejected(
                    reason="shutdown",
                    request_id=item.request_id,
                    latency_s=item.latency(),
                ),
            )

    def __enter__(self) -> "AnalysisService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- the public protocol ----------------------------------------------

    def submit(self, intensities, deadline_s: Optional[float] = None) -> PendingRequest:
        """Enqueue one spectrum; never blocks.

        Load shedding happens here: a full queue resolves the request
        immediately as ``Rejected("queue_full")`` instead of making the
        caller wait behind traffic that will miss its deadline anyway.
        """
        if not self._running:
            raise RuntimeError("service is not running; call start() first")
        deadline_s = (
            self.default_deadline_s if deadline_s is None else float(deadline_s)
        )
        if deadline_s <= 0:
            raise ValueError("deadline_s must be positive")
        request = PendingRequest(
            request_id=next(self._ids),
            data=intensities,
            deadline_at=float(self.clock()) + deadline_s,
            clock=self.clock,
            on_resolve=self._record,
        )
        with self._stats_lock:
            self.submitted += 1
        try:
            self._queue.put_nowait(request)
        except queue.Full:
            request.resolve(
                Rejected(
                    reason="queue_full",
                    request_id=request.request_id,
                    detail={"queue_size": self.queue_size},
                ),
            )
        return request

    def analyze(self, intensities, deadline_s: Optional[float] = None):
        """Submit and wait; returns a :class:`Completed` or :class:`Rejected`."""
        return self.submit(intensities, deadline_s=deadline_s).result()

    def stats(self) -> Dict[str, object]:
        with self._stats_lock:
            return {
                "submitted": self.submitted,
                "completed": self.completed,
                "rejections": dict(self.rejections),
                "circuit_state": self.breaker.state,
            }

    # -- workers -----------------------------------------------------------

    def _worker(self) -> None:
        while True:
            item = self._queue.get()
            if item is _SHUTDOWN:
                return
            try:
                self._handle(item)
            except Exception as error:  # a defence itself failed: refuse,
                # never let a worker thread die and strand the queue.
                self._finish(
                    item,
                    Rejected(
                        reason="internal_error",
                        request_id=item.request_id,
                        latency_s=item.latency(),
                        detail={"error": f"{type(error).__name__}: {error}"},
                    ),
                )

    def _handle(self, request: PendingRequest) -> None:
        if request.resolved:  # caller gave up while we were queued
            return
        now = float(self.clock())
        if now >= request.deadline_at:
            self._finish(
                request,
                Rejected(
                    reason="deadline_expired_in_queue",
                    request_id=request.request_id,
                    latency_s=request.latency(),
                ),
            )
            return
        if not self.breaker.allow():
            self._finish(
                request,
                Rejected(
                    reason="circuit_open",
                    request_id=request.request_id,
                    latency_s=request.latency(),
                ),
            )
            return
        try:
            data = self._validate(request.data)
        except ValidationError as error:
            # Bad input is the caller's fault, not the analyzer's: it must
            # not push the breaker toward open.
            self.breaker.record_success()
            self._finish(
                request,
                Rejected(
                    reason="invalid_input",
                    request_id=request.request_id,
                    latency_s=request.latency(),
                    detail={"error": str(error)},
                ),
            )
            return
        started = float(self.clock())
        try:
            value, analyzer_seconds = self._call_analyzer(data, started)
        except Exception as error:
            self.breaker.record_failure()
            self._finish(
                request,
                Rejected(
                    reason="analyzer_error",
                    request_id=request.request_id,
                    latency_s=request.latency(),
                    detail={"error": f"{type(error).__name__}: {error}"},
                ),
            )
            return
        value = np.asarray(value, dtype=np.float64)
        if not np.isfinite(value).all():
            self.breaker.record_failure()
            self._finish(
                request,
                Rejected(
                    reason="nonfinite_output",
                    request_id=request.request_id,
                    latency_s=request.latency(),
                ),
            )
            return
        if float(self.clock()) >= request.deadline_at:
            # Correct but too late; a chronically slow backend should trip
            # the breaker just like a failing one.
            self.breaker.record_failure()
            self._finish(
                request,
                Rejected(
                    reason="deadline_exceeded",
                    request_id=request.request_id,
                    latency_s=request.latency(),
                    detail={"analyzer_seconds": analyzer_seconds},
                ),
            )
            return
        self.breaker.record_success()
        self._finish(
            request,
            Completed(
                value=value,
                request_id=request.request_id,
                analyzer_seconds=analyzer_seconds,
                latency_s=request.latency(),
            ),
        )

    def _validate(self, data) -> np.ndarray:
        if self.validator is not None:
            return self.validator(data)
        return validate_spectrum(data, length=self.expected_length)

    def _call_analyzer(self, data: np.ndarray, started: float):
        result = self.analyzer(data)
        if isinstance(result, tuple) and len(result) == 2:
            return result[0], float(result[1])
        return result, float(self.clock()) - started

    # -- bookkeeping -------------------------------------------------------

    def _finish(self, request: PendingRequest, result) -> None:
        request.resolve(result)

    def _record(self, result) -> None:
        """Count every resolution exactly once, whoever resolved it."""
        with self._stats_lock:
            if isinstance(result, Completed):
                self.completed += 1
            else:
                self.rejections[result.reason] = (
                    self.rejections.get(result.reason, 0) + 1
                )

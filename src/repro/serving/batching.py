"""Micro-batching policy and brownout governor for the serving layer.

The queue in front of :class:`~repro.serving.service.AnalysisService` is
an opportunity, not just overhead: the NumPy forward passes behind the
analyzer are batch-vectorized, so N queued spectra cost far less as one
``Sequential.predict`` call than as N.  This module holds the two control
components the batched service mode runs on:

* :class:`BatchingPolicy` — how many requests a worker may coalesce into
  one dispatch and how long it may hold the first request open waiting
  for batchmates.  The max-wait *shrinks* as the queue fills: a deep
  queue fills a batch instantly, so holding adds latency for nothing,
  while an idle service dispatches a lone request after at most
  ``max_wait_s``.
* :class:`BrownoutGovernor` — a load governor that watches queue depth
  and completed-request p95 latency and walks the service through
  declared :class:`BrownoutLevel` degradation steps (grow batches →
  tighten admission deadlines → shed low-priority work) with hysteresis:
  levels are entered immediately when a signal crosses its threshold and
  left one step at a time only after the signals have stayed below the
  exit threshold for a hold period, so the service does not flap at the
  boundary.

:func:`batch_analyzer_from_model` builds the batched backend callable
with the byte-identity guarantee the service's contract needs: BLAS
dispatches a single-row matmul to a different kernel (gemv) than a
multi-row one (gemm), which perturbs the last ulp, so a batch of one is
padded to two rows before the forward pass.  Every row then takes the
gemm path and a spectrum's answer is bit-for-bit independent of which
batch it happened to ride in.
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

__all__ = [
    "BatchingPolicy",
    "BrownoutLevel",
    "BrownoutTransition",
    "BrownoutGovernor",
    "batch_analyzer_from_model",
]


@dataclass(frozen=True)
class BatchingPolicy:
    """Coalescing limits for the batched worker loop.

    ``max_batch`` bounds one dispatch; ``max_wait_s`` is the longest a
    worker holds the first dequeued request open for batchmates, and the
    effective wait decays linearly to ``min_wait_s`` as the queue fills
    (see :meth:`wait_for`).
    """

    max_batch: int = 32
    max_wait_s: float = 0.002
    min_wait_s: float = 0.0

    def __post_init__(self):
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.max_wait_s < 0 or self.min_wait_s < 0:
            raise ValueError("waits must be non-negative")
        if self.min_wait_s > self.max_wait_s:
            raise ValueError("min_wait_s must not exceed max_wait_s")

    def wait_for(self, queue_depth: int, queue_size: int) -> float:
        """Adaptive hold time: shrinks toward ``min_wait_s`` under load."""
        if queue_size <= 0:
            return self.max_wait_s
        fill = min(max(queue_depth / queue_size, 0.0), 1.0)
        return self.min_wait_s + (self.max_wait_s - self.min_wait_s) * (
            1.0 - fill
        )

    def cap_for(self, growth: float = 1.0) -> int:
        """Batch-size cap under a brownout growth factor (>= 1 request)."""
        return max(1, int(math.ceil(self.max_batch * float(growth))))


@dataclass(frozen=True)
class BrownoutLevel:
    """One declared degradation step.

    A level activates when queue fill reaches ``enter_fill``, *or*
    completed-request p95 reaches ``enter_p95_s``, *or* the service's
    rolling abstention rate reaches ``enter_abstain_rate`` (only
    meaningful when an uncertainty gate is installed — a surging rate
    means traffic has left the training distribution, and degrading
    early keeps capacity for the rows the gate will still vouch for).
    Its knobs state the full service posture at that level (levels do
    not stack):

    * ``batch_growth`` — multiplier on ``BatchingPolicy.max_batch``;
    * ``deadline_factor`` — multiplier on admission deadlines;
    * ``min_priority`` — requests with a lower ``priority`` are refused
      at admission as ``Rejected("brownout_shed")``; ``None`` sheds
      nothing.
    """

    name: str
    enter_fill: float = math.inf
    enter_p95_s: float = math.inf
    enter_abstain_rate: float = math.inf
    batch_growth: float = 1.0
    deadline_factor: float = 1.0
    min_priority: Optional[int] = None

    def __post_init__(self):
        if self.batch_growth < 1.0:
            raise ValueError("batch_growth must be >= 1.0")
        if not 0.0 < self.deadline_factor <= 1.0:
            raise ValueError("deadline_factor must be in (0, 1]")


# The normal-operation posture (level 0).
_LEVEL_0 = BrownoutLevel(name="normal")


@dataclass(frozen=True)
class BrownoutTransition:
    """One governor level change, for post-mortem analysis."""

    at: float
    from_level: int
    to_level: int
    queue_fill: float
    p95_s: Optional[float]
    abstain_rate: Optional[float] = None


class BrownoutGovernor:
    """Hysteretic level walker over queue depth, p95 latency and
    abstention rate.

    ``observe(fill, p95_s, abstain_rate)`` is the only input; it returns
    the current level index (0 = normal).  Escalation is immediate — the
    highest level whose enter threshold is crossed wins.  De-escalation
    is one level at a time and only after every signal has stayed below
    ``hysteresis`` × the current level's enter thresholds for
    ``hold_s`` seconds of the injectable ``clock``.

    ``maybe_observe`` is the rate-limited form for hot paths: it samples
    at most every ``sample_interval_s`` and takes a zero-argument
    ``p95_fn`` so the (comparatively expensive) histogram read only
    happens on actual samples.
    """

    def __init__(
        self,
        levels: Optional[Sequence[BrownoutLevel]] = None,
        hysteresis: float = 0.75,
        hold_s: float = 0.25,
        sample_interval_s: float = 0.02,
        clock: Callable[[], float] = time.monotonic,
        on_transition: Optional[Callable[[BrownoutTransition], None]] = None,
    ):
        self.levels: List[BrownoutLevel] = [_LEVEL_0] + list(
            levels if levels is not None else self.default_levels()
        )
        if not 0.0 < hysteresis <= 1.0:
            raise ValueError("hysteresis must be in (0, 1]")
        if hold_s < 0 or sample_interval_s < 0:
            raise ValueError("hold_s and sample_interval_s must be >= 0")
        self.hysteresis = float(hysteresis)
        self.hold_s = float(hold_s)
        self.sample_interval_s = float(sample_interval_s)
        self.clock = clock
        self.on_transition = on_transition
        self._lock = threading.Lock()
        self._level = 0
        self._below_since: Optional[float] = None
        self._last_sample = -math.inf
        self.transitions: List[BrownoutTransition] = []

    @staticmethod
    def default_levels() -> List[BrownoutLevel]:
        """The declared ladder from the design: grow → tighten → shed."""
        return [
            BrownoutLevel(
                name="grow_batch", enter_fill=0.50, batch_growth=2.0
            ),
            BrownoutLevel(
                name="tighten_deadlines",
                enter_fill=0.75,
                batch_growth=2.0,
                deadline_factor=0.5,
            ),
            BrownoutLevel(
                name="shed_low_priority",
                enter_fill=0.90,
                batch_growth=2.0,
                deadline_factor=0.5,
                min_priority=0,
            ),
        ]

    # -- state -------------------------------------------------------------

    @property
    def level(self) -> int:
        with self._lock:
            return self._level

    @property
    def active(self) -> BrownoutLevel:
        with self._lock:
            return self.levels[self._level]

    # -- observation -------------------------------------------------------

    def _target_for(self, fill: float, p95_s: Optional[float],
                    abstain_rate: Optional[float]) -> int:
        target = 0
        for index, level in enumerate(self.levels[1:], start=1):
            if (
                fill >= level.enter_fill
                or (p95_s is not None and p95_s >= level.enter_p95_s)
                or (
                    abstain_rate is not None
                    and abstain_rate >= level.enter_abstain_rate
                )
            ):
                target = index
        return target

    def _calm_below(self, level_index: int, fill: float,
                    p95_s: Optional[float],
                    abstain_rate: Optional[float]) -> bool:
        """Are all signals under the exit threshold of ``level_index``?"""
        level = self.levels[level_index]
        if math.isfinite(level.enter_fill):
            if fill >= self.hysteresis * level.enter_fill:
                return False
        if math.isfinite(level.enter_p95_s) and p95_s is not None:
            if p95_s >= self.hysteresis * level.enter_p95_s:
                return False
        if math.isfinite(level.enter_abstain_rate) and abstain_rate is not None:
            if abstain_rate >= self.hysteresis * level.enter_abstain_rate:
                return False
        return True

    def observe(self, fill: float, p95_s: Optional[float] = None,
                abstain_rate: Optional[float] = None) -> int:
        fill = float(fill)
        now = float(self.clock())
        with self._lock:
            target = self._target_for(fill, p95_s, abstain_rate)
            if target > self._level:
                self._shift(target, now, fill, p95_s, abstain_rate)
            elif self._level > 0 and target < self._level:
                if self._calm_below(self._level, fill, p95_s, abstain_rate):
                    if self._below_since is None:
                        self._below_since = now
                    elif now - self._below_since >= self.hold_s:
                        # One step down per hold period — no cliff dives.
                        self._shift(
                            self._level - 1, now, fill, p95_s, abstain_rate
                        )
                else:
                    self._below_since = None
            else:
                self._below_since = None
            return self._level

    def maybe_observe(
        self,
        fill: float,
        p95_fn: Optional[Callable[[], Optional[float]]] = None,
        abstain_rate_fn: Optional[Callable[[], Optional[float]]] = None,
    ) -> int:
        now = float(self.clock())
        with self._lock:
            if now - self._last_sample < self.sample_interval_s:
                return self._level
            self._last_sample = now
        p95_s = p95_fn() if p95_fn is not None else None
        abstain_rate = (
            abstain_rate_fn() if abstain_rate_fn is not None else None
        )
        return self.observe(fill, p95_s, abstain_rate)

    def _shift(self, to_level: int, now: float, fill: float,
               p95_s: Optional[float],
               abstain_rate: Optional[float] = None) -> None:
        transition = BrownoutTransition(
            at=now,
            from_level=self._level,
            to_level=to_level,
            queue_fill=fill,
            p95_s=p95_s,
            abstain_rate=abstain_rate,
        )
        self.transitions.append(transition)
        self._level = to_level
        self._below_since = None
        if self.on_transition is not None:
            self.on_transition(transition)

    def snapshot(self) -> dict:
        """JSON-friendly state for ``AnalysisService.stats()``."""
        with self._lock:
            level = self._level
            transitions = len(self.transitions)
        return {
            "level": level,
            "name": self.levels[level].name,
            "deadline_factor": self.levels[level].deadline_factor,
            "min_priority": self.levels[level].min_priority,
            "batch_growth": self.levels[level].batch_growth,
            "transitions": transitions,
        }


def batch_analyzer_from_model(
    model, validate: bool = False, frozen: Optional[str] = None
) -> Callable:
    """A ``batch_analyzer(matrix) -> (n, outputs)`` over a Sequential.

    Pads a batch of one to two rows before the forward pass so every row
    takes BLAS's multi-row (gemm) kernel: single-row matmuls dispatch to
    gemv, which differs in the last ulp, and the service's contract is
    that a spectrum's answer is byte-identical no matter how it was
    coalesced.

    The remaining ingredient — row-wise results not depending on *how
    many* other rows share the gemm call — is a property of the BLAS
    build and the layer shapes.  It holds for every shape this repo's
    tests and benches exercise (asserted byte-for-byte there), but a
    blocked/threaded kernel switch at some batch size can break it for
    other shapes; if bit-reproducibility across batch sizes matters for
    a new model, probe it the way ``TestByteIdentity`` does before
    relying on it.

    ``frozen`` opts into the compiled inference path: ``"float32"`` or
    ``"int8"`` (``True`` means ``"float32"``) freezes the model into an
    :class:`~repro.inference.plan.InferencePlan` and serves it through
    an :class:`~repro.inference.engine.InferenceEngine` — preallocated
    scratch, fused kernels, no per-layer allocation.  If the model has a
    layer the plan compiler does not support, this *silently falls back*
    to the reference float64 path, so callers can request ``frozen=``
    unconditionally.  The returned callable carries ``engine`` (the
    engine, or ``None``) and ``frozen_dtype`` (the effective dtype, or
    ``None`` after fallback) for introspection.  Note the contract
    change: the frozen path promises accuracy within the plan's pinned
    MAE budget versus the reference, not byte-identity with it.
    """
    if frozen is not None:
        from repro.inference import (
            InferenceEngine,
            UnsupportedLayerError,
            freeze,
        )

        dtype = "float32" if frozen is True else str(frozen)
        try:
            engine = InferenceEngine(freeze(model, dtype=dtype))
        except UnsupportedLayerError:
            engine = None  # fall through to the reference path below
        if engine is not None:
            if validate:
                from repro.reliability.validation import validate_batch

            def frozen_batch_analyzer(matrix: np.ndarray) -> np.ndarray:
                if validate:
                    matrix = validate_batch(
                        matrix, feature_shape=model.input_shape, field="x"
                    )
                else:
                    matrix = np.asarray(matrix, dtype=np.float64)
                if matrix.shape[0] == 1:
                    padded = np.concatenate([matrix, matrix], axis=0)
                    return engine.predict(padded)[:1]
                return engine.predict(matrix)

            frozen_batch_analyzer.engine = engine
            frozen_batch_analyzer.frozen_dtype = dtype
            return frozen_batch_analyzer

    def batch_analyzer(matrix: np.ndarray) -> np.ndarray:
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.shape[0] == 1:
            padded = np.concatenate([matrix, matrix], axis=0)
            return model.predict(padded, validate=validate)[:1]
        return model.predict(matrix, validate=validate)

    batch_analyzer.engine = None
    batch_analyzer.frozen_dtype = None
    return batch_analyzer

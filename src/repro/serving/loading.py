"""Verified model loading for the serving layer.

A model that reaches production traffic must come off disk through the
same verified path training uses: checksummed envelope, newest generation
that passes verification, quarantine for anything that does not.  This
module turns a :class:`~repro.reliability.checkpoint.CheckpointManager`
entry into an analyzer callable for
:class:`~repro.serving.service.AnalysisService` — never a raw
``np.load`` of unverified bytes.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

import numpy as np

from repro.reliability.checkpoint import CheckpointData, CheckpointManager

__all__ = ["load_verified_model", "analyzer_from_checkpoint"]


def load_verified_model(
    manager: CheckpointManager, name: str, seed: int = 0
) -> CheckpointData:
    """Load a served model through checksum verification and fallback.

    Thin veneer over :meth:`CheckpointManager.load` so serving call sites
    read as intent: the returned :class:`CheckpointData` carries
    ``generation`` and ``fell_back`` for the operator's logs.  Raises
    :class:`~repro.storage.integrity.CorruptArtifactError` only if *no*
    generation verifies (everything unreadable is quarantined, not
    deleted).
    """
    return manager.load(name, seed=seed)


def analyzer_from_checkpoint(
    manager: CheckpointManager, name: str, seed: int = 0
) -> Tuple[Callable[[np.ndarray], np.ndarray], Optional[int]]:
    """An ``analyzer(intensities) -> estimate`` over a verified checkpoint.

    Returns ``(analyzer, expected_length)`` where ``expected_length`` is
    the model's input length (for the service's admission gate), or
    ``None`` for models with non-vector inputs.
    """
    data = load_verified_model(manager, name, seed=seed)
    model = data.model

    def analyzer(intensities) -> np.ndarray:
        batch = np.asarray(intensities, dtype=np.float64)[np.newaxis, ...]
        return model.predict(batch)[0]

    shape = model.input_shape
    expected_length = int(shape[0]) if shape is not None and len(shape) == 1 else None
    return analyzer, expected_length

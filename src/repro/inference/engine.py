"""Plan execution with preallocated scratch: the ``InferenceEngine``.

The reference ``Sequential.forward`` allocates every intermediate fresh
on every call and computes in float64.  For the Table-1 CNN that is tens
of megabytes of im2col buffers malloc'd, filled, and discarded per
batch.  The engine executes an :class:`~repro.inference.plan.InferencePlan`
the way an embedded runtime would:

* **compile once per batch capacity** — the first call at a given
  (power-of-two rounded) batch size walks the plan and binds each fused
  op to preallocated float32 scratch buffers and an execution closure;
* **allocate nothing afterwards** — every kernel writes through ``out=``
  /in-place ufuncs into that scratch (``np.take`` for the precomputed
  im2col gather, one GEMM per conv/dense, fused bias-add + activation
  epilogues), so a steady-state ``predict`` performs zero array
  allocations beyond the float64 result it hands back;
* **slice, don't recompile** — a batch of ``n`` runs on ``[:n]`` views
  of the capacity-``c`` scratch (first-axis slices stay C-contiguous),
  so ragged serving drains of 1..32 rows share one workspace instead of
  compiling 32.

``stats()`` exposes the allocation counters the parity tests pin
("second call allocates nothing new"), and ``ensure_accuracy`` enforces
the plan's pinned MAE contract against the float64 reference model.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.nn.activations import _SELU_ALPHA as SELU_ALPHA
from repro.nn.activations import _SELU_SCALE as SELU_SCALE
from repro.inference.plan import AccuracyContractError, InferencePlan

__all__ = ["InferenceEngine"]

_Step = Callable[[int], None]


class _Workspace:
    """Compiled steps + scratch for one batch capacity."""

    __slots__ = ("capacity", "xin", "result", "steps")

    def __init__(self, capacity: int):
        self.capacity = capacity
        self.xin: Optional[np.ndarray] = None
        self.result: Optional[np.ndarray] = None
        self.steps: List[_Step] = []


class InferenceEngine:
    """Executes one :class:`InferencePlan` with reusable scratch buffers.

    ``max_cached_capacities`` bounds how many batch-capacity workspaces
    stay resident (least-recently-used eviction); powers-of-two rounding
    means even a fully ragged caller compiles at most
    ``log2(max_batch)`` of them.
    """

    def __init__(self, plan: InferencePlan, max_cached_capacities: int = 8):
        if max_cached_capacities < 1:
            raise ValueError(
                f"max_cached_capacities must be >= 1, got {max_cached_capacities}"
            )
        self.plan = plan
        self.max_cached_capacities = int(max_cached_capacities)
        self._workspaces: "OrderedDict[int, _Workspace]" = OrderedDict()
        self._scratch_allocations = 0
        self._scratch_bytes = 0
        self._predict_calls = 0
        self._cache_hits = 0
        self._cache_misses = 0

    # -- scratch accounting ------------------------------------------------

    def _alloc(self, shape: Tuple[int, ...]) -> np.ndarray:
        """Allocate one zeroed float32 scratch buffer, counted in stats.

        Zero-filled so padded conv edges and never-written tail rows
        (beyond the live ``[:n]`` slice) hold defined values.
        """
        buffer = np.zeros(shape, dtype=np.float32)
        self._scratch_allocations += 1
        self._scratch_bytes += buffer.nbytes
        return buffer

    # -- compilation -------------------------------------------------------

    def _compile_activation(
        self, name: str, capacity: int, sample_shape: Tuple[int, ...],
        target: np.ndarray,
    ) -> Optional[_Step]:
        """Bind an in-place activation epilogue over ``target[:n]``."""
        if name == "linear":
            return None
        if name == "relu":
            def step(n: int, z=target) -> None:
                v = z[:n]
                np.maximum(v, 0.0, out=v)
            return step
        if name == "tanh":
            def step(n: int, z=target) -> None:
                v = z[:n]
                np.tanh(v, out=v)
            return step
        if name == "sigmoid":
            # sigmoid(x) = 0.5 * (tanh(x / 2) + 1), all in place.
            def step(n: int, z=target) -> None:
                v = z[:n]
                v *= 0.5
                np.tanh(v, out=v)
                v += 1.0
                v *= 0.5
            return step
        if name == "selu":
            t = self._alloc((capacity,) + sample_shape)
            def step(n: int, z=target, t=t) -> None:
                v, u = z[:n], t[:n]
                np.minimum(v, 0.0, out=u)
                np.expm1(u, out=u)
                u *= SELU_ALPHA
                np.maximum(v, 0.0, out=v)
                v += u
                v *= SELU_SCALE
            return step
        if name == "softmax":
            r = self._alloc((capacity,) + sample_shape[:-1] + (1,))
            def step(n: int, z=target, r=r) -> None:
                v, m = z[:n], r[:n]
                np.max(v, axis=-1, keepdims=True, out=m)
                v -= m
                np.exp(v, out=v)
                np.sum(v, axis=-1, keepdims=True, out=m)
                v /= m
            return step
        raise ValueError(f"no in-place kernel for activation {name!r}")

    def _compile(self, capacity: int) -> _Workspace:
        """Walk the plan once, binding scratch and kernels for ``capacity``."""
        plan = self.plan
        ws = _Workspace(capacity)
        ws.xin = self._alloc((capacity,) + plan.input_shape)
        current = ws.xin  # full-capacity buffer holding the live value

        for op in plan.ops:
            if op.kind == "view":
                # Reshape of a contiguous buffer: zero-cost, no kernel.
                current = current.reshape((capacity,) + op.out_shape)
                continue

            if op.kind == "activation":
                step = self._compile_activation(
                    op.activation, capacity, op.out_shape, current
                )
                if step is not None:
                    ws.steps.append(step)
                continue

            if op.kind == "dense":
                features = op.in_shape[-1]
                units = op.out_shape[-1]
                z = self._alloc((capacity,) + op.out_shape)
                def step(n: int, x=current, z=z, W=op.weight, b=op.bias,
                         f=features, u=units) -> None:
                    a = x[:n].reshape(-1, f)
                    out = z[:n].reshape(-1, u)
                    np.matmul(a, W, out=out)
                    if b is not None:
                        out += b
                ws.steps.append(step)

            elif op.kind == "conv1d":
                length, channels = op.in_shape
                out_length, filters = op.out_shape
                kernel = op.windows.shape[1]
                source = current
                if op.pad != (0, 0):
                    lo, hi = op.pad
                    padded = self._alloc(
                        (capacity, length + lo + hi, channels)
                    )
                    def pad_step(n: int, x=current, p=padded, lo=lo,
                                 L=length) -> None:
                        p[:n, lo:lo + L, :] = x[:n]
                    ws.steps.append(pad_step)
                    source = padded
                cols = self._alloc((capacity, out_length, kernel, channels))
                z = self._alloc((capacity,) + op.out_shape)
                def step(n: int, x=source, cols=cols, z=z, W=op.weight,
                         b=op.bias, idx=op.windows, oL=out_length,
                         kc=kernel * channels, F=filters) -> None:
                    np.take(x[:n], idx, axis=1, out=cols[:n])
                    a = cols[:n].reshape(n * oL, kc)
                    out = z[:n].reshape(n * oL, F)
                    np.matmul(a, W, out=out)
                    if b is not None:
                        z[:n] += b
                ws.steps.append(step)

            elif op.kind == "local1d":
                length, channels = op.in_shape
                out_length, filters = op.out_shape
                kernel = op.windows.shape[1]
                cols = self._alloc((capacity, out_length, kernel, channels))
                z = self._alloc((capacity,) + op.out_shape)
                def step(n: int, x=current, cols=cols, z=z, W=op.weight,
                         b=op.bias, idx=op.windows, oL=out_length,
                         kc=kernel * channels) -> None:
                    np.take(x[:n], idx, axis=1, out=cols[:n])
                    flat = cols[:n].reshape(n, oL, kc)
                    np.einsum("nlk,lkf->nlf", flat, W, out=z[:n])
                    if b is not None:
                        z[:n] += b
                ws.steps.append(step)

            elif op.kind in ("maxpool", "avgpool"):
                out_length, channels = op.out_shape
                pool = op.windows.shape[1]
                win = self._alloc((capacity, out_length, pool, channels))
                z = self._alloc((capacity,) + op.out_shape)
                reducer = np.max if op.kind == "maxpool" else np.mean
                def step(n: int, x=current, win=win, z=z, idx=op.windows,
                         reduce=reducer) -> None:
                    np.take(x[:n], idx, axis=1, out=win[:n])
                    reduce(win[:n], axis=2, out=z[:n])
                ws.steps.append(step)

            elif op.kind == "gap":
                z = self._alloc((capacity,) + op.out_shape)
                def step(n: int, x=current, z=z) -> None:
                    np.mean(x[:n], axis=1, out=z[:n])
                ws.steps.append(step)

            else:  # pragma: no cover - freeze() only emits known kinds
                raise ValueError(f"unknown fused op kind {op.kind!r}")

            if op.kind in ("dense", "conv1d", "local1d"):
                current = z
                epilogue = self._compile_activation(
                    op.activation, capacity, op.out_shape, z
                )
                if epilogue is not None:
                    ws.steps.append(epilogue)
            else:
                current = z

        ws.result = current.reshape((capacity,) + plan.output_shape)
        return ws

    def _workspace_for(self, n: int) -> _Workspace:
        capacity = 1 << max(0, n - 1).bit_length()
        workspace = self._workspaces.get(capacity)
        if workspace is not None:
            self._cache_hits += 1
            self._workspaces.move_to_end(capacity)
            return workspace
        self._cache_misses += 1
        workspace = self._compile(capacity)
        self._workspaces[capacity] = workspace
        while len(self._workspaces) > self.max_cached_capacities:
            self._workspaces.popitem(last=False)
        return workspace

    # -- execution ---------------------------------------------------------

    def predict(self, x: np.ndarray, batch_size: int = 256) -> np.ndarray:
        """Run the plan; returns a fresh float64 ``(n, *output_shape)``.

        Inputs are chunked at ``batch_size`` like ``Sequential.predict``;
        each chunk executes entirely inside preallocated scratch.  The
        returned array is the only allocation a warm call performs.
        """
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        x = np.asarray(x, dtype=np.float64)
        if x.shape[1:] != self.plan.input_shape:
            raise ValueError(
                f"expected input shape (n, {', '.join(map(str, self.plan.input_shape))}), "
                f"got {x.shape}"
            )
        self._predict_calls += 1
        total = x.shape[0]
        out = np.empty((total,) + self.plan.output_shape, dtype=np.float64)
        for start in range(0, total, batch_size):
            stop = min(start + batch_size, total)
            n = stop - start
            workspace = self._workspace_for(n)
            workspace.xin[:n] = x[start:stop]  # float64 -> float32 cast
            for step in workspace.steps:
                step(n)
            out[start:stop] = workspace.result[:n]  # float32 -> float64
        return out

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.predict(x)

    # -- introspection and contracts ---------------------------------------

    def stats(self) -> Dict[str, object]:
        return {
            "plan": self.plan.name,
            "dtype": self.plan.dtype,
            "predict_calls": self._predict_calls,
            "scratch_allocations": self._scratch_allocations,
            "scratch_bytes": self._scratch_bytes,
            "cached_capacities": sorted(self._workspaces),
            "cache_hits": self._cache_hits,
            "cache_misses": self._cache_misses,
        }

    def verify_against(self, model, x: np.ndarray) -> Dict[str, float]:
        """Measure frozen-vs-reference deltas on a batch."""
        x = np.asarray(x, dtype=np.float64)
        reference = model.predict(x, validate=False)
        delta = np.abs(self.predict(x) - reference)
        return {
            "n_samples": int(x.shape[0]),
            "mae_delta": float(delta.mean()) if delta.size else 0.0,
            "max_abs_delta": float(delta.max()) if delta.size else 0.0,
            "contract_mae": float(self.plan.contract),
        }

    def ensure_accuracy(self, model, x: np.ndarray) -> Dict[str, float]:
        """Enforce the plan's pinned accuracy contract; raise on drift."""
        report = self.verify_against(model, x)
        if report["mae_delta"] > self.plan.contract:
            raise AccuracyContractError(
                f"plan {self.plan.name!r} [{self.plan.dtype}] drifted: "
                f"MAE delta {report['mae_delta']:.3e} exceeds pinned "
                f"contract {self.plan.contract:.3e}"
            )
        return report

"""Frozen inference: quantized, fused, plan-compiled kernels.

``freeze()`` compiles a built :class:`~repro.nn.model.Sequential` into an
immutable :class:`InferencePlan` of fused ops (conv/dense + bias +
activation, precomputed im2col index plans, float32 or calibrated
symmetric int8 weights); :class:`InferenceEngine` executes plans inside
preallocated scratch with a pinned per-dtype accuracy contract; the
persistence helpers ship plans through the checksummed storage envelope.

This package is a *leaf* over :mod:`repro.nn`, :mod:`repro.embedded` and
:mod:`repro.storage` — serving and the CLI reach down into it, it never
imports upward.
"""

from repro.inference.engine import InferenceEngine
from repro.inference.persistence import (
    inspect_plan,
    load_plan,
    save_plan,
    verify_plan,
)
from repro.inference.plan import (
    DEFAULT_CONTRACTS,
    PLAN_FORMAT_VERSION,
    AccuracyContractError,
    FusedOp,
    InferencePlan,
    UnsupportedLayerError,
    freeze,
)

__all__ = [
    "AccuracyContractError",
    "DEFAULT_CONTRACTS",
    "FusedOp",
    "InferenceEngine",
    "InferencePlan",
    "PLAN_FORMAT_VERSION",
    "UnsupportedLayerError",
    "freeze",
    "inspect_plan",
    "load_plan",
    "save_plan",
    "verify_plan",
]

"""Plan compilation: ``freeze()`` walks a built model into an ``InferencePlan``.

The paper's embedded-inference argument (§IV) is that the speed lives in
"tailor[ing] the processing elements to specific operations and number
formats".  Training-oriented ``Sequential.forward`` does the opposite: it
runs float64, allocates fresh activations per layer, re-derives nothing,
and caches everything ``backward`` might want.  Freezing throws all of
that away once, ahead of time:

* every weight is cast to the inference number format (float32 by
  default; optionally symmetric int8 with per-tensor or per-channel
  scales from :mod:`repro.embedded.quantization`, dequantized to float32
  execution weights exactly once at compile time);
* conv/dense + bias + activation collapse into one fused op — a
  standalone :class:`~repro.nn.layers.core.ActivationLayer` behind a
  linear conv/dense folds into it, ``Dropout`` disappears, and runs of
  ``Reshape``/``Flatten`` collapse into a single zero-cost view;
* the im2col gather indices of every windowed op are precomputed from
  the model's built shapes, so execution never re-derives an index plan.

The result is an *immutable* :class:`InferencePlan` — every array is
marked read-only — that :class:`~repro.inference.engine.InferenceEngine`
executes with preallocated scratch, and that ships to disk through the
checksummed envelope in :mod:`repro.inference.persistence`.

Accuracy is a contract, not a hope: each plan pins the maximum tolerated
mean-absolute delta against the float64 reference forward pass for its
dtype (``DEFAULT_CONTRACTS``), optionally measured on calibration data at
freeze time, and :meth:`InferenceEngine.ensure_accuracy` raises
:class:`AccuracyContractError` when a plan drifts past its pin.

This subsystem is a leaf over :mod:`repro.nn`, :mod:`repro.embedded` and
:mod:`repro.storage`; serving reaches *down* into it, never the reverse.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.embedded.quantization import quantize_tensor
from repro.nn.flops import layer_flops
from repro.nn.layers import (
    ActivationLayer,
    AvgPool1D,
    Conv1D,
    Dense,
    Dropout,
    Flatten,
    GlobalAvgPool1D,
    LocallyConnected1D,
    MaxPool1D,
    Reshape,
)

__all__ = [
    "PLAN_FORMAT_VERSION",
    "DEFAULT_CONTRACTS",
    "UnsupportedLayerError",
    "AccuracyContractError",
    "FusedOp",
    "InferencePlan",
    "freeze",
]

PLAN_FORMAT_VERSION = 1

# Pinned per-dtype accuracy budget: the maximum tolerated mean-absolute
# delta of plan output vs the float64 layer-by-layer reference.  These
# are the regression bounds the parity tests assert against.
DEFAULT_CONTRACTS = {"float32": 1e-5, "int8": 2e-2}

_SUPPORTED_DTYPES = ("float32", "int8")

# Kinds that produce values (and therefore can absorb a trailing
# standalone activation into their epilogue).
_FUSABLE_KINDS = ("dense", "conv1d", "local1d")


class UnsupportedLayerError(ValueError):
    """The model contains a layer the plan compiler cannot freeze.

    Callers that wire freezing into serving treat this as "fall back to
    the reference float64 path", never as a hard failure.
    """

    def __init__(self, layer_name: str, position: int):
        super().__init__(
            f"layer {position} ({layer_name}) has no fused inference kernel; "
            "serve this model through the reference path"
        )
        self.layer_name = layer_name
        self.position = position


class AccuracyContractError(RuntimeError):
    """A frozen plan's output drifted past its pinned accuracy budget."""


def _readonly(array: Optional[np.ndarray]) -> Optional[np.ndarray]:
    if array is None:
        return None
    array = np.ascontiguousarray(array)
    array.setflags(write=False)
    return array


@dataclass(frozen=True, eq=False)
class FusedOp:
    """One compiled inference step.

    ``kind`` is one of ``view`` (reshape/flatten, zero-cost),
    ``dense``/``conv1d``/``local1d`` (matmul + bias + activation in one
    step), ``maxpool``/``avgpool``/``gap`` (windowed reductions) or
    ``activation`` (a standalone nonlinearity that could not be folded
    into a producer).  Shapes exclude the batch axis.  ``weight`` is the
    float32 *execution* weight; on int8 plans ``qweight``/``qscale``
    carry the quantized payload it was dequantized from (what persists
    to disk and what the cost model charges for memory traffic).
    """

    kind: str
    name: str
    in_shape: Tuple[int, ...]
    out_shape: Tuple[int, ...]
    activation: str = "linear"
    weight: Optional[np.ndarray] = None
    bias: Optional[np.ndarray] = None
    windows: Optional[np.ndarray] = None
    pad: Tuple[int, int] = (0, 0)
    flops: int = 0
    param_bytes: int = 0
    activation_bytes: int = 0
    qweight: Optional[np.ndarray] = None
    qscale: Optional[np.ndarray] = None

    def __post_init__(self):
        for attr in ("weight", "bias", "windows", "qweight", "qscale"):
            object.__setattr__(self, attr, _readonly(getattr(self, attr)))
        object.__setattr__(self, "in_shape", tuple(int(d) for d in self.in_shape))
        object.__setattr__(self, "out_shape", tuple(int(d) for d in self.out_shape))
        object.__setattr__(self, "pad", tuple(int(p) for p in self.pad))

    @property
    def is_view(self) -> bool:
        return self.kind == "view"

    def meta(self) -> Dict[str, object]:
        """JSON-serializable description (arrays excluded)."""
        return {
            "kind": self.kind,
            "name": self.name,
            "in_shape": list(self.in_shape),
            "out_shape": list(self.out_shape),
            "activation": self.activation,
            "pad": list(self.pad),
            "flops": int(self.flops),
            "param_bytes": int(self.param_bytes),
            "activation_bytes": int(self.activation_bytes),
        }


@dataclass(frozen=True, eq=False)
class InferencePlan:
    """An immutable, topologically ordered fused-op program.

    Execution belongs to :class:`~repro.inference.engine.InferenceEngine`;
    the plan itself is pure data — which is what lets it persist through
    the checksummed envelope and feed the embedded cost model without
    ever touching the training stack.
    """

    name: str
    dtype: str
    input_shape: Tuple[int, ...]
    output_shape: Tuple[int, ...]
    ops: Tuple[FusedOp, ...]
    contract: float
    per_channel: bool = False
    calibration: Optional[Dict[str, float]] = None
    source_layers: Tuple[str, ...] = ()
    version: int = PLAN_FORMAT_VERSION

    def __post_init__(self):
        object.__setattr__(
            self, "input_shape", tuple(int(d) for d in self.input_shape)
        )
        object.__setattr__(
            self, "output_shape", tuple(int(d) for d in self.output_shape)
        )
        object.__setattr__(self, "ops", tuple(self.ops))
        object.__setattr__(self, "source_layers", tuple(self.source_layers))

    # -- accounting --------------------------------------------------------

    @property
    def fused_op_count(self) -> int:
        """Ops that launch work at run time (views are free)."""
        return sum(1 for op in self.ops if not op.is_view)

    @property
    def total_flops(self) -> int:
        return sum(op.flops for op in self.ops)

    @property
    def weight_bytes(self) -> int:
        """Bytes of weights the plan's number format moves from memory."""
        return sum(op.param_bytes for op in self.ops)

    def summary(self) -> Dict[str, object]:
        """JSON-friendly introspection record (CLI ``freeze --inspect``)."""
        return {
            "name": self.name,
            "dtype": self.dtype,
            "per_channel": self.per_channel,
            "version": self.version,
            "input_shape": list(self.input_shape),
            "output_shape": list(self.output_shape),
            "ops": [op.meta() for op in self.ops],
            "fused_op_count": self.fused_op_count,
            "source_layer_count": len(self.source_layers),
            "total_flops": int(self.total_flops),
            "weight_bytes": int(self.weight_bytes),
            "contract_mae": float(self.contract),
            "calibration": dict(self.calibration) if self.calibration else None,
        }

    def describe(self) -> str:
        """A printable per-op table, ``Sequential.summary`` flavoured."""
        lines = [
            f"InferencePlan: {self.name} [{self.dtype}"
            + (", per-channel" if self.per_channel else "")
            + "]",
            "-" * 66,
            f"{'Op':<30}{'Output shape':<18}{'FLOPs':>10}{'W bytes':>8}",
            "-" * 66,
        ]
        for op in self.ops:
            lines.append(
                f"{op.name:<30}{str(op.out_shape):<18}"
                f"{op.flops:>10,}{op.param_bytes:>8,}"
            )
        lines.append("-" * 66)
        lines.append(
            f"{self.fused_op_count} fused ops from {len(self.source_layers)} "
            f"layers | {self.total_flops:,} FLOPs | "
            f"{self.weight_bytes:,} weight bytes | "
            f"contract MAE <= {self.contract:g}"
        )
        return "\n".join(lines)


# -- freezing ----------------------------------------------------------------

def _prepare_weight(
    weight: np.ndarray, dtype: str, per_channel: bool
) -> Tuple[np.ndarray, Optional[np.ndarray], Optional[np.ndarray], int]:
    """Cast one weight tensor into the plan's number format.

    Returns ``(execution float32, int8 payload, scales, param_bytes)``;
    the int8 payload/scales are ``None`` on float32 plans.  Quantized
    weights are dequantized to float32 exactly once, here — run time
    never pays for it.
    """
    if dtype == "float32":
        return weight.astype(np.float32), None, None, 4 * weight.size
    quantized, scale = quantize_tensor(weight, per_channel=per_channel)
    scale_arr = np.atleast_1d(np.asarray(scale, dtype=np.float64))
    execution = (quantized.astype(np.float64) * scale).astype(np.float32)
    param_bytes = quantized.size + 4 * scale_arr.size
    return execution, quantized, scale_arr, param_bytes


def _fold_view(ops: List[FusedOp], in_shape, out_shape, name: str) -> None:
    """Append a view op, collapsing a run of views into one."""
    if ops and ops[-1].is_view:
        previous = ops.pop()
        in_shape = previous.in_shape
        name = f"{previous.name}+{name}"
    ops.append(
        FusedOp(kind="view", name=name, in_shape=in_shape, out_shape=out_shape)
    )


def _try_fold_activation(ops: List[FusedOp], layer, cost) -> bool:
    """Fold a standalone ActivationLayer into the producing fused op."""
    if not ops:
        return False
    producer = ops[-1]
    if producer.kind not in _FUSABLE_KINDS or producer.activation != "linear":
        return False
    ops[-1] = FusedOp(
        kind=producer.kind,
        name=f"{producer.name}+{layer.activation.name}",
        in_shape=producer.in_shape,
        out_shape=producer.out_shape,
        activation=layer.activation.name,
        weight=producer.weight,
        bias=producer.bias,
        windows=producer.windows,
        pad=producer.pad,
        flops=producer.flops + cost.flops,
        param_bytes=producer.param_bytes,
        activation_bytes=producer.activation_bytes,
        qweight=producer.qweight,
        qscale=producer.qscale,
    )
    return True


def freeze(
    model,
    dtype: str = "float32",
    per_channel: bool = False,
    calibration: Optional[np.ndarray] = None,
    contract: Optional[float] = None,
) -> InferencePlan:
    """Compile a built :class:`~repro.nn.model.Sequential` into a plan.

    ``dtype`` selects the weight number format (``"float32"`` or
    ``"int8"``); ``per_channel`` chooses per-output-channel int8 scales
    over the default per-tensor scale.  ``calibration`` — an optional
    ``(n, *input_shape)`` batch — measures the frozen-vs-reference delta
    at freeze time and records it on the plan.  ``contract`` overrides
    the pinned per-dtype accuracy budget (``DEFAULT_CONTRACTS``).

    Raises :class:`UnsupportedLayerError` on the first layer with no
    fused kernel (LSTM, BatchNorm, the composite research blocks);
    callers wiring this into serving catch it and fall back to the
    reference path.
    """
    if dtype not in _SUPPORTED_DTYPES:
        raise ValueError(
            f"dtype must be one of {_SUPPORTED_DTYPES}, got {dtype!r}"
        )
    if not getattr(model, "built", False):
        raise ValueError("model must be built before freezing")

    ops: List[FusedOp] = []
    source_layers: List[str] = []
    shape = tuple(model.input_shape)
    for position, layer in enumerate(model.layers):
        source_layers.append(layer.name)
        out_shape = tuple(layer.output_shape)
        cost = layer_flops(layer)
        if isinstance(layer, Dropout):
            pass  # identity at inference time
        elif isinstance(layer, (Reshape, Flatten)):
            _fold_view(ops, shape, out_shape, layer.name)
        elif isinstance(layer, ActivationLayer):
            if not _try_fold_activation(ops, layer, cost):
                ops.append(
                    FusedOp(
                        kind="activation",
                        name=layer.activation.name,
                        in_shape=shape,
                        out_shape=out_shape,
                        activation=layer.activation.name,
                        flops=cost.flops,
                        activation_bytes=cost.activation_bytes,
                    )
                )
        elif isinstance(layer, Dense):
            weight, qweight, qscale, wbytes = _prepare_weight(
                layer.params["W"], dtype, per_channel
            )
            bias = (
                layer.params["b"].astype(np.float32)
                if layer.use_bias else None
            )
            ops.append(
                FusedOp(
                    kind="dense",
                    name=f"Dense+bias+{layer.activation.name}"
                    if layer.use_bias else f"Dense+{layer.activation.name}",
                    in_shape=shape,
                    out_shape=out_shape,
                    activation=layer.activation.name,
                    weight=weight,
                    bias=bias,
                    flops=cost.flops,
                    param_bytes=wbytes + (4 * bias.size if bias is not None else 0),
                    activation_bytes=cost.activation_bytes,
                    qweight=qweight,
                    qscale=qscale,
                )
            )
        elif isinstance(layer, (Conv1D, LocallyConnected1D)):
            kind = "conv1d" if isinstance(layer, Conv1D) else "local1d"
            raw = layer.params["W"]
            if kind == "conv1d":
                # (K, C, F) -> (K*C, F): the exact GEMM operand layout.
                raw = raw.reshape(-1, raw.shape[-1])
            weight, qweight, qscale, wbytes = _prepare_weight(
                raw, dtype, per_channel
            )
            bias = (
                layer.params["b"].astype(np.float32)
                if layer.use_bias else None
            )
            ops.append(
                FusedOp(
                    kind=kind,
                    name=f"{layer.name}+bias+{layer.activation.name}"
                    if layer.use_bias
                    else f"{layer.name}+{layer.activation.name}",
                    in_shape=shape,
                    out_shape=out_shape,
                    activation=layer.activation.name,
                    weight=weight,
                    bias=bias,
                    windows=layer._windows.astype(np.int64),
                    pad=layer._pad,
                    flops=cost.flops,
                    param_bytes=wbytes + (4 * bias.size if bias is not None else 0),
                    activation_bytes=cost.activation_bytes,
                    qweight=qweight,
                    qscale=qscale,
                )
            )
        elif isinstance(layer, (MaxPool1D, AvgPool1D)):
            ops.append(
                FusedOp(
                    kind="maxpool" if isinstance(layer, MaxPool1D) else "avgpool",
                    name=layer.name,
                    in_shape=shape,
                    out_shape=out_shape,
                    windows=layer._windows.astype(np.int64),
                    flops=cost.flops,
                    activation_bytes=cost.activation_bytes,
                )
            )
        elif isinstance(layer, GlobalAvgPool1D):
            ops.append(
                FusedOp(
                    kind="gap",
                    name=layer.name,
                    in_shape=shape,
                    out_shape=out_shape,
                    flops=cost.flops,
                    activation_bytes=cost.activation_bytes,
                )
            )
        else:
            raise UnsupportedLayerError(layer.name, position)
        shape = out_shape

    plan = InferencePlan(
        name=getattr(model, "name", "model"),
        dtype=dtype,
        input_shape=tuple(model.input_shape),
        output_shape=shape,
        ops=tuple(ops),
        contract=float(
            contract if contract is not None else DEFAULT_CONTRACTS[dtype]
        ),
        per_channel=bool(per_channel) if dtype == "int8" else False,
        calibration=None,
        source_layers=tuple(source_layers),
    )
    if calibration is not None:
        from repro.inference.engine import InferenceEngine  # lazy: no cycle

        x = np.asarray(calibration, dtype=np.float64)
        reference = model.predict(x, validate=False)
        frozen_out = InferenceEngine(plan).predict(x)
        delta = np.abs(frozen_out - reference)
        object.__setattr__(
            plan,
            "calibration",
            {
                "n_samples": int(x.shape[0]),
                "mae_delta": float(delta.mean()),
                "max_abs_delta": float(delta.max()),
            },
        )
    return plan

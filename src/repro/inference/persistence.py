"""Plan persistence: frozen plans ship like checkpoints.

A frozen plan is a deployment artifact — it leaves the training machine
and lands on a serving host or an embedded target, so it travels inside
the same checksummed ``REPROENV`` envelope every other durable artifact
in this repo uses (:mod:`repro.storage.integrity`): magic, format
version, payload length, SHA-256, written atomically with fsync.  A
flipped bit in a weight tensor is a silent accuracy bug at best; the
envelope turns it into a loud :class:`CorruptArtifactError` at load.

The payload is an in-memory ``.npz``: a ``__meta__`` JSON blob with the
plan topology plus one array entry per op tensor.  int8 plans persist
the *quantized* payload (int8 weights + scales, biases in float32) and
rebuild the float32 execution weights at load — that is the 4x
weight-size saving the paper's embedded story is about, carried all the
way to the artifact on disk.
"""

from __future__ import annotations

import io
import json
import os
from typing import Dict, Optional, Union

import numpy as np

from repro.storage.integrity import (
    CorruptArtifactError,
    read_envelope,
    write_envelope,
)
from repro.inference.plan import PLAN_FORMAT_VERSION, FusedOp, InferencePlan

__all__ = ["save_plan", "load_plan", "inspect_plan", "verify_plan"]

# Tensors persisted per op, keyed as op{index:03d}_{field}.
_FLOAT32_FIELDS = ("weight", "bias", "windows")
_INT8_FIELDS = ("qweight", "qscale", "bias", "windows")


def _op_key(index: int, field: str) -> str:
    return f"op{index:03d}_{field}"


def save_plan(
    plan: InferencePlan, path: Union[str, os.PathLike], fsync: bool = True
) -> str:
    """Atomically publish ``plan`` as a checksummed envelope at ``path``."""
    arrays: Dict[str, np.ndarray] = {}
    fields = _INT8_FIELDS if plan.dtype == "int8" else _FLOAT32_FIELDS
    for index, op in enumerate(plan.ops):
        for field in fields:
            value = getattr(op, field)
            if value is not None:
                arrays[_op_key(index, field)] = value
    meta = {
        "format": PLAN_FORMAT_VERSION,
        "name": plan.name,
        "dtype": plan.dtype,
        "per_channel": plan.per_channel,
        "input_shape": list(plan.input_shape),
        "output_shape": list(plan.output_shape),
        "contract_mae": float(plan.contract),
        "calibration": dict(plan.calibration) if plan.calibration else None,
        "source_layers": list(plan.source_layers),
        "ops": [op.meta() for op in plan.ops],
    }
    buffer = io.BytesIO()
    np.savez(
        buffer,
        __meta__=np.frombuffer(
            json.dumps(meta, sort_keys=True).encode("utf-8"), dtype=np.uint8
        ),
        **arrays,
    )
    return write_envelope(path, buffer.getvalue(), fsync=fsync)


def _load_payload(path: Union[str, os.PathLike]):
    """Envelope-verified npz + parsed meta; typed errors on any damage."""
    payload = read_envelope(path)
    try:
        archive = np.load(io.BytesIO(payload), allow_pickle=False)
        meta = json.loads(bytes(archive["__meta__"]).decode("utf-8"))
    except Exception as error:
        raise CorruptArtifactError(
            f"plan payload unreadable in {os.fspath(path)}: {error}"
        ) from None
    if meta.get("format") != PLAN_FORMAT_VERSION:
        raise CorruptArtifactError(
            f"plan format {meta.get('format')!r} in {os.fspath(path)} "
            f"(this build reads version {PLAN_FORMAT_VERSION})"
        )
    return archive, meta


def load_plan(path: Union[str, os.PathLike]) -> InferencePlan:
    """Load a plan envelope, rebuilding float32 execution weights.

    Raises :class:`~repro.storage.integrity.CorruptArtifactError` if the
    envelope, the npz payload, or the plan structure is damaged.
    """
    archive, meta = _load_payload(path)
    dtype = meta["dtype"]
    ops = []
    try:
        for index, op_meta in enumerate(meta["ops"]):
            def take(field: str) -> Optional[np.ndarray]:
                key = _op_key(index, field)
                return archive[key] if key in archive.files else None

            qweight, qscale = take("qweight"), take("qscale")
            if dtype == "int8":
                weight = None
                if qweight is not None:
                    weight = (
                        qweight.astype(np.float64) * qscale
                    ).astype(np.float32)
            else:
                weight = take("weight")
            ops.append(
                FusedOp(
                    kind=op_meta["kind"],
                    name=op_meta["name"],
                    in_shape=tuple(op_meta["in_shape"]),
                    out_shape=tuple(op_meta["out_shape"]),
                    activation=op_meta["activation"],
                    weight=weight,
                    bias=take("bias"),
                    windows=take("windows"),
                    pad=tuple(op_meta["pad"]),
                    flops=int(op_meta["flops"]),
                    param_bytes=int(op_meta["param_bytes"]),
                    activation_bytes=int(op_meta["activation_bytes"]),
                    qweight=qweight,
                    qscale=qscale,
                )
            )
        return InferencePlan(
            name=meta["name"],
            dtype=dtype,
            input_shape=tuple(meta["input_shape"]),
            output_shape=tuple(meta["output_shape"]),
            ops=tuple(ops),
            contract=float(meta["contract_mae"]),
            per_channel=bool(meta["per_channel"]),
            calibration=meta.get("calibration"),
            source_layers=tuple(meta.get("source_layers", ())),
        )
    except (KeyError, TypeError, ValueError) as error:
        raise CorruptArtifactError(
            f"plan structure damaged in {os.fspath(path)}: {error}"
        ) from None


def inspect_plan(path: Union[str, os.PathLike]) -> Dict[str, object]:
    """Summarize a plan envelope without rebuilding execution weights."""
    archive, meta = _load_payload(path)
    tensor_bytes = sum(
        int(archive[key].nbytes) for key in archive.files if key != "__meta__"
    )
    return {
        "path": os.fspath(path),
        "name": meta["name"],
        "dtype": meta["dtype"],
        "per_channel": meta["per_channel"],
        "format": meta["format"],
        "input_shape": meta["input_shape"],
        "output_shape": meta["output_shape"],
        "contract_mae": meta["contract_mae"],
        "calibration": meta.get("calibration"),
        "fused_op_count": sum(
            1 for op in meta["ops"] if op["kind"] != "view"
        ),
        "ops": meta["ops"],
        "tensor_bytes": tensor_bytes,
        "file_bytes": os.path.getsize(path),
    }


def verify_plan(path: Union[str, os.PathLike]) -> Dict[str, object]:
    """Full integrity check: envelope checksum + structural rebuild.

    Returns a small report on success; raises the typed storage error on
    any damage (the CLI maps that to a non-zero exit).
    """
    plan = load_plan(path)
    return {
        "path": os.fspath(path),
        "name": plan.name,
        "dtype": plan.dtype,
        "fused_op_count": plan.fused_op_count,
        "weight_bytes": plan.weight_bytes,
        "contract_mae": plan.contract,
        "ok": True,
    }

"""Unattended multi-topology training (Tool 4's front- and backend).

"The tools that assist in the definition phase allow the definition of one
or more network topologies and the training- and validation datasets to use
without modifying the source code.  The whole training process can then run
without user interaction.  Backend tools help with the evaluation of the
trained networks ..., the selection of the best-performing networks, based
on selectable quality criteria and the export of analysis data to
spreadsheet applications."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.core.datasets import SpectraDataset
from repro.core.topologies import TopologySpec
from repro.db.provenance import ProvenanceTracker
from repro.nn.metrics import mean_absolute_error, mean_squared_error, r2_score
from repro.nn.model import Sequential
from repro.nn.training import EarlyStopping

__all__ = ["TrainingConfig", "TrainingRun", "TrainingService"]


@dataclass(frozen=True)
class TrainingConfig:
    """Hyperparameters shared by every run of a service invocation."""

    epochs: int = 30
    batch_size: int = 64
    optimizer: str = "adam"
    loss: str = "mae"
    train_fraction: float = 0.8
    patience: Optional[int] = 8
    seed: int = 0

    def __post_init__(self):
        if self.epochs < 1:
            raise ValueError("epochs must be >= 1")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if not 0.0 < self.train_fraction < 1.0:
            raise ValueError("train_fraction must be in (0, 1)")


@dataclass
class TrainingRun:
    """Result of training one topology."""

    topology_name: str
    model: Sequential
    metrics: Dict[str, float]
    epochs_run: int
    artifact_id: Optional[int] = None


class TrainingService:
    """Trains a list of topologies on one dataset, records, ranks, exports."""

    def __init__(
        self,
        config: TrainingConfig = TrainingConfig(),
        provenance: Optional[ProvenanceTracker] = None,
    ):
        self.config = config
        self.provenance = provenance
        self.runs: List[TrainingRun] = []

    def train_all(
        self,
        topologies: Sequence[TopologySpec],
        dataset: SpectraDataset,
        evaluation_data: Optional[SpectraDataset] = None,
        dataset_artifact: Optional[int] = None,
        progress: Optional[Callable[[str], None]] = None,
    ) -> List[TrainingRun]:
        """Train every topology without user interaction.

        ``evaluation_data``, if given, is scored as ``measured_*`` metrics
        (the paper's evaluation on real measurement series).
        """
        if not topologies:
            raise ValueError("topologies must be non-empty")
        names = [t.name for t in topologies]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate topology names: {names}")
        config = self.config
        train, validation = dataset.split(
            config.train_fraction, np.random.default_rng(config.seed)
        )
        for topology in topologies:
            if progress is not None:
                progress(f"training {topology.name}")
            model = topology.build(dataset.input_shape, seed=config.seed)
            model.compile(config.optimizer, config.loss)
            callbacks = []
            if config.patience is not None:
                callbacks.append(
                    EarlyStopping(
                        patience=config.patience, restore_best_weights=True
                    )
                )
            history = model.fit(
                train.x,
                train.y,
                epochs=config.epochs,
                batch_size=config.batch_size,
                validation_data=(validation.x, validation.y),
                callbacks=callbacks,
                seed=config.seed,
            )
            predictions = model.predict(validation.x)
            metrics = {
                "val_mae": mean_absolute_error(predictions, validation.y),
                "val_mse": mean_squared_error(predictions, validation.y),
                "val_r2": r2_score(predictions, validation.y),
            }
            if evaluation_data is not None:
                measured = model.predict(evaluation_data.x)
                metrics["measured_mae"] = mean_absolute_error(
                    measured, evaluation_data.y
                )
                metrics["measured_mse"] = mean_squared_error(
                    measured, evaluation_data.y
                )
            artifact_id = None
            if self.provenance is not None:
                parents = [dataset_artifact] if dataset_artifact is not None else []
                artifact_id = self.provenance.record(
                    "network",
                    {"topology": topology.name, **metrics},
                    parents=parents,
                )
            self.runs.append(
                TrainingRun(
                    topology_name=topology.name,
                    model=model,
                    metrics=metrics,
                    epochs_run=len(history.epochs),
                    artifact_id=artifact_id,
                )
            )
        return self.runs

    def select_best(self, criterion: str = "val_mae", mode: str = "min") -> TrainingRun:
        """Best run by a selectable quality criterion."""
        if not self.runs:
            raise RuntimeError("no runs recorded; call train_all first")
        scored = [run for run in self.runs if criterion in run.metrics]
        if not scored:
            raise KeyError(f"no run has metric {criterion!r}")
        chooser = min if mode == "min" else max
        return chooser(scored, key=lambda run: run.metrics[criterion])

    def export_results(self) -> List[Dict[str, object]]:
        """Spreadsheet-ready rows (one per trained network)."""
        rows = []
        for run in self.runs:
            row: Dict[str, object] = {
                "topology": run.topology_name,
                "parameters": run.model.count_params(),
                "epochs_run": run.epochs_run,
            }
            row.update(run.metrics)
            rows.append(row)
        return rows

"""Unattended multi-topology training (Tool 4's front- and backend).

"The tools that assist in the definition phase allow the definition of one
or more network topologies and the training- and validation datasets to use
without modifying the source code.  The whole training process can then run
without user interaction.  Backend tools help with the evaluation of the
trained networks ..., the selection of the best-performing networks, based
on selectable quality criteria and the export of analysis data to
spreadsheet applications."

Because the process runs without user interaction, it must also survive
without one: given a :class:`~repro.reliability.checkpoint.CheckpointManager`
the service checkpoints every topology as it trains, and
``train_all(resume=True)`` restarts a killed sweep from the last completed
topology/epoch — completed topologies are reloaded (same final metrics as
an uninterrupted run), a half-trained topology resumes from its last
checkpointed epoch with restored optimizer state.  Every checkpoint and
resume event is recorded in the :class:`ProvenanceTracker`.

With an :class:`~repro.compute.executor.ParallelExecutor` the service fans
candidate training out over the executor's backend instead of looping:
each topology trains as one task with the same per-topology seed the
serial path uses, so serial/thread/process sweeps produce byte-identical
models, metrics and :meth:`TrainingService.select_best` outcomes.  A task
that dies (worker crash, injected fault) becomes a typed
:class:`FailedRun` in :attr:`TrainingService.failures` — recorded in
provenance and metrics, never lost, never fatal to the sweep.  In
parallel mode per-epoch checkpointing and mid-topology resume are
disabled (only the final scored snapshot is saved); completed-topology
skip on ``resume=True`` still works.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.compute.executor import ParallelExecutor, TaskFailure
from repro.core.datasets import SpectraDataset
from repro.core.topologies import TopologySpec
from repro.db.provenance import ProvenanceTracker
from repro.nn.metrics import mean_absolute_error, mean_squared_error, r2_score
from repro.nn.model import Sequential
from repro.nn.sentinel import DivergenceSentinel
from repro.nn.training import EarlyStopping
from repro.observability.runtime import counter as _counter
from repro.observability.runtime import get_tracer
from repro.reliability.checkpoint import Checkpoint, CheckpointManager
from repro.storage.integrity import CorruptArtifactError

__all__ = ["TrainingConfig", "TrainingRun", "FailedRun", "TrainingService"]


@dataclass(frozen=True)
class TrainingConfig:
    """Hyperparameters shared by every run of a service invocation.

    ``clip_norm`` enables global gradient-norm clipping in every run.
    ``sentinel=True`` (the default) attaches a
    :class:`~repro.nn.sentinel.DivergenceSentinel` to every run, so a
    topology whose training goes non-finite is rolled back to its
    last-good state with a halved learning rate instead of finishing the
    sweep with NaN weights; ``sentinel_max_rollbacks`` bounds how often
    before the run is abandoned as diverged.
    """

    epochs: int = 30
    batch_size: int = 64
    optimizer: str = "adam"
    loss: str = "mae"
    train_fraction: float = 0.8
    patience: Optional[int] = 8
    seed: int = 0
    clip_norm: Optional[float] = None
    sentinel: bool = True
    sentinel_max_rollbacks: int = 5

    def __post_init__(self):
        if self.epochs < 1:
            raise ValueError("epochs must be >= 1")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if not 0.0 < self.train_fraction < 1.0:
            raise ValueError("train_fraction must be in (0, 1)")
        if self.clip_norm is not None and self.clip_norm <= 0:
            raise ValueError("clip_norm must be positive")
        if self.sentinel_max_rollbacks < 1:
            raise ValueError("sentinel_max_rollbacks must be >= 1")


@dataclass
class TrainingRun:
    """Result of training one topology."""

    topology_name: str
    model: Sequential
    metrics: Dict[str, float]
    epochs_run: int
    artifact_id: Optional[int] = None
    resumed: bool = False
    rollbacks: int = 0


@dataclass(frozen=True)
class FailedRun:
    """A topology whose training task died in a parallel sweep."""

    topology_name: str
    error_type: str
    message: str
    attempts: int = 1


def _train_candidate(payload: dict, rng: np.random.Generator) -> dict:
    """Executor task: train and score one topology (worker-side).

    Module-level and driven only by picklable payload data so the process
    backend can ship it to a worker.  Mirrors the serial ``_train_one``
    path for a fresh (non-resumed) topology — same build seed, callbacks
    and scoring — which is what makes serial and parallel sweeps
    byte-identical.  The executor-provided ``rng`` is unused: training
    determinism comes from the config seed, exactly as in serial mode.
    """
    config = payload["config"]
    spec = TopologySpec.from_json(payload["topology_json"])
    train_x, train_y = payload["train_x"], payload["train_y"]
    model = spec.build(train_x.shape[1:], seed=config["seed"])
    model.compile(config["optimizer"], config["loss"])
    callbacks = []
    if config["patience"] is not None:
        callbacks.append(
            EarlyStopping(patience=config["patience"], restore_best_weights=True)
        )
    sentinel: Optional[DivergenceSentinel] = None
    if config["sentinel"]:
        sentinel = DivergenceSentinel(max_rollbacks=config["sentinel_max_rollbacks"])
        callbacks.append(sentinel)
    history = model.fit(
        train_x,
        train_y,
        epochs=config["epochs"],
        batch_size=config["batch_size"],
        validation_data=(payload["val_x"], payload["val_y"]),
        callbacks=callbacks,
        seed=config["seed"],
        clip_norm=config["clip_norm"],
    )
    predictions = model.predict(payload["val_x"])
    metrics = {
        "val_mae": mean_absolute_error(predictions, payload["val_y"]),
        "val_mse": mean_squared_error(predictions, payload["val_y"]),
        "val_r2": r2_score(predictions, payload["val_y"]),
    }
    if payload["eval_x"] is not None:
        measured = model.predict(payload["eval_x"])
        metrics["measured_mae"] = mean_absolute_error(measured, payload["eval_y"])
        metrics["measured_mse"] = mean_squared_error(measured, payload["eval_y"])
    return {
        "weights": model.get_weights(),
        "metrics": metrics,
        "epochs_run": len(history.epochs),
        "rollbacks": sentinel.rollbacks if sentinel is not None else 0,
        "rollback_events": [
            {
                "epoch": event.epoch,
                "reason": event.reason,
                "new_learning_rate": event.new_learning_rate,
            }
            for event in (sentinel.events if sentinel is not None else [])
        ],
    }


class TrainingService:
    """Trains a list of topologies on one dataset, records, ranks, exports.

    With ``checkpoints`` set, every topology is snapshotted while it trains
    and finalized when it completes, so a killed sweep can be picked up
    with ``train_all(..., resume=True)``.

    With ``executor`` set, topologies train as parallel tasks on the
    executor's backend; failed tasks land in :attr:`failures` instead of
    aborting the sweep.
    """

    def __init__(
        self,
        config: TrainingConfig = TrainingConfig(),
        provenance: Optional[ProvenanceTracker] = None,
        checkpoints: Optional[CheckpointManager] = None,
        executor: Optional[ParallelExecutor] = None,
    ):
        self.config = config
        self.provenance = provenance
        self.checkpoints = checkpoints
        self.executor = executor
        self.runs: List[TrainingRun] = []
        self.failures: List[FailedRun] = []
        if (
            provenance is not None
            and checkpoints is not None
            and checkpoints.on_event is None
        ):
            # Surface the manager's quarantine/fallback events as
            # provenance artifacts so an audit sees every time persisted
            # state failed verification or an older generation was used.
            checkpoints.on_event = (
                lambda kind, detail: provenance.record(kind, dict(detail))
            )

    def train_all(
        self,
        topologies: Sequence[TopologySpec],
        dataset: SpectraDataset,
        evaluation_data: Optional[SpectraDataset] = None,
        dataset_artifact: Optional[int] = None,
        progress: Optional[Callable[[str], None]] = None,
        resume: bool = False,
        checkpoint_every: int = 1,
        sweep_name: str = "sweep",
    ) -> List[TrainingRun]:
        """Train every topology without user interaction.

        ``evaluation_data``, if given, is scored as ``measured_*`` metrics
        (the paper's evaluation on real measurement series).

        ``resume=True`` (requires a :class:`CheckpointManager`) reloads
        topologies that already completed in a previous invocation —
        reproducing their recorded metrics exactly — and resumes a
        half-trained topology from its last checkpointed epoch.  Note that
        mid-topology resume restarts the early-stopping patience window at
        the resume point; kill/resume between topologies is bit-exact.
        """
        if not topologies:
            raise ValueError("topologies must be non-empty")
        if resume and self.checkpoints is None:
            raise ValueError("resume=True requires a CheckpointManager")
        names = [t.name for t in topologies]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate topology names: {names}")
        config = self.config
        train, validation = dataset.split(
            config.train_fraction, np.random.default_rng(config.seed)
        )
        sweep_state: Dict[str, object] = {"completed": {}}
        if self.checkpoints is not None and resume:
            try:
                stored = self.checkpoints.load_state(sweep_name)
            except CorruptArtifactError as error:
                # The corrupt sidecar is already quarantined; the sweep
                # restarts from the per-topology checkpoints instead.
                self._record_event(
                    "sweep_state_corrupt",
                    {"sweep": sweep_name, "error": str(error)},
                    dataset_artifact,
                )
                stored = None
            if stored is not None:
                sweep_state = stored
        completed: Dict[str, dict] = dict(sweep_state.get("completed", {}))

        topologies_counter = _counter(
            "training_topologies_total", "topology runs by disposition"
        )
        with get_tracer().start_span(
            "train.sweep",
            attributes={"sweep": sweep_name, "topologies": len(topologies)},
        ) as sweep_span:
            if self.executor is not None:
                sweep_span.set_attribute("backend", self.executor.backend)
                self._train_all_parallel(
                    topologies, train, validation, evaluation_data,
                    dataset_artifact, progress, resume, sweep_name,
                    sweep_state, completed, topologies_counter, sweep_span,
                )
                return self.runs
            for topology in topologies:
                checkpoint_name = f"{sweep_name}-{topology.name}"
                if resume and topology.name in completed:
                    try:
                        run = self._reload_completed(
                            topology, checkpoint_name, completed[topology.name],
                            dataset_artifact, progress,
                        )
                    except CorruptArtifactError:
                        # Every generation of the finished topology failed
                        # verification (all quarantined): retrain it.
                        completed.pop(topology.name, None)
                    else:
                        topologies_counter.inc(disposition="reloaded")
                        self.runs.append(run)
                        continue
                with get_tracer().start_span(
                    "train.topology",
                    parent=sweep_span,
                    attributes={"topology": topology.name},
                ) as topology_span:
                    run = self._train_one(
                        topology,
                        checkpoint_name,
                        train,
                        validation,
                        evaluation_data,
                        dataset_artifact,
                        progress,
                        resume=resume,
                        checkpoint_every=checkpoint_every,
                    )
                    topology_span.set_attribute("epochs_run", run.epochs_run)
                    topology_span.set_attribute("rollbacks", run.rollbacks)
                topologies_counter.inc(
                    disposition="resumed" if run.resumed else "trained"
                )
                self.runs.append(run)
                if self.checkpoints is not None:
                    completed[topology.name] = {
                        "metrics": run.metrics,
                        "epochs_run": run.epochs_run,
                    }
                    sweep_state["completed"] = completed
                    self.checkpoints.save_state(sweep_name, sweep_state)
        return self.runs

    # -- parallel sweep ----------------------------------------------------

    def _train_all_parallel(
        self,
        topologies: Sequence[TopologySpec],
        train: SpectraDataset,
        validation: SpectraDataset,
        evaluation_data: Optional[SpectraDataset],
        dataset_artifact: Optional[int],
        progress: Optional[Callable[[str], None]],
        resume: bool,
        sweep_name: str,
        sweep_state: Dict[str, object],
        completed: Dict[str, dict],
        topologies_counter,
        sweep_span,
    ) -> None:
        """Fan candidate training out over the executor.

        Phase 1 reloads topologies a previous invocation completed (same
        semantics as the serial path); phase 2 trains the rest as one
        executor wave.  Results are consumed in input order, so
        ``self.runs`` ordering — and therefore ``select_best``
        tie-breaking — matches the serial path exactly.
        """
        to_train: List[TopologySpec] = []
        for topology in topologies:
            if resume and topology.name in completed:
                checkpoint_name = f"{sweep_name}-{topology.name}"
                try:
                    run = self._reload_completed(
                        topology, checkpoint_name, completed[topology.name],
                        dataset_artifact, progress,
                    )
                except CorruptArtifactError:
                    completed.pop(topology.name, None)
                else:
                    topologies_counter.inc(disposition="reloaded")
                    self.runs.append(run)
                    continue
            to_train.append(topology)
        if not to_train:
            return
        if progress is not None:
            progress(
                f"training {len(to_train)} topologies on the "
                f"{self.executor.backend} backend"
            )
        config = self.config
        payload_config = {
            "epochs": config.epochs,
            "batch_size": config.batch_size,
            "optimizer": config.optimizer,
            "loss": config.loss,
            "patience": config.patience,
            "seed": config.seed,
            "clip_norm": config.clip_norm,
            "sentinel": config.sentinel,
            "sentinel_max_rollbacks": config.sentinel_max_rollbacks,
        }
        # Publish the dataset once per sweep instead of once per payload:
        # on the process backend every topology's payload carries tiny
        # SharedArrayRef handles and workers resolve them into read-only
        # memory maps; on serial/thread this is a pass-through.
        shared = {
            "train_x": train.x,
            "train_y": train.y,
            "val_x": validation.x,
            "val_y": validation.y,
        }
        if evaluation_data is not None:
            shared["eval_x"] = evaluation_data.x
            shared["eval_y"] = evaluation_data.y
        handles = self.executor.scatter(shared)
        payloads = [
            {
                "topology_json": topology.to_json(),
                "config": payload_config,
                "eval_x": None,
                "eval_y": None,
                **handles,
            }
            for topology in to_train
        ]
        results = self.executor.map_tasks(
            _train_candidate, payloads, label=f"train.{sweep_name}"
        )
        n_failed = 0
        for topology, result in zip(to_train, results):
            if isinstance(result, TaskFailure):
                n_failed += 1
                topologies_counter.inc(disposition="failed")
                failure = FailedRun(
                    topology_name=topology.name,
                    error_type=result.error_type,
                    message=result.message,
                    attempts=result.attempts,
                )
                self.failures.append(failure)
                self._record_event(
                    "topology_failed",
                    {
                        "topology": topology.name,
                        "error_type": result.error_type,
                        "message": result.message,
                        "attempts": result.attempts,
                    },
                    dataset_artifact,
                )
                if progress is not None:
                    progress(
                        f"failed {topology.name}: "
                        f"{result.error_type}: {result.message}"
                    )
                continue
            model = topology.build(train.input_shape, seed=config.seed)
            model.compile(config.optimizer, config.loss)
            model.set_weights(result["weights"])
            metrics = {k: float(v) for k, v in result["metrics"].items()}
            for event in result["rollback_events"]:
                self._record_event(
                    "divergence_rollback",
                    {"topology": topology.name, **event},
                    dataset_artifact,
                )
            if self.checkpoints is not None:
                self.checkpoints.save(
                    f"{sweep_name}-{topology.name}",
                    model,
                    state={
                        "epoch": result["epochs_run"],
                        "completed": True,
                        "metrics": metrics,
                    },
                )
            artifact_id = self._record_network(
                topology.name, metrics, dataset_artifact
            )
            topologies_counter.inc(disposition="trained")
            self.runs.append(
                TrainingRun(
                    topology_name=topology.name,
                    model=model,
                    metrics=metrics,
                    epochs_run=int(result["epochs_run"]),
                    artifact_id=artifact_id,
                    rollbacks=int(result["rollbacks"]),
                )
            )
            if self.checkpoints is not None:
                completed[topology.name] = {
                    "metrics": metrics,
                    "epochs_run": int(result["epochs_run"]),
                }
                sweep_state["completed"] = completed
                self.checkpoints.save_state(sweep_name, sweep_state)
        sweep_span.set_attribute("failed", n_failed)

    # -- one topology ------------------------------------------------------

    def _train_one(
        self,
        topology: TopologySpec,
        checkpoint_name: str,
        train: SpectraDataset,
        validation: SpectraDataset,
        evaluation_data: Optional[SpectraDataset],
        dataset_artifact: Optional[int],
        progress: Optional[Callable[[str], None]],
        resume: bool,
        checkpoint_every: int,
    ) -> TrainingRun:
        config = self.config
        initial_epoch = 0
        model: Optional[Sequential] = None
        if resume and self.checkpoints is not None and self.checkpoints.exists(
            checkpoint_name
        ):
            try:
                data = self.checkpoints.load(checkpoint_name, seed=config.seed)
            except CorruptArtifactError as error:
                # No generation verified (all quarantined by the manager):
                # train from scratch rather than resuming from bad bytes.
                self._record_event(
                    "checkpoint_unreadable",
                    {"topology": topology.name, "error": str(error)},
                    dataset_artifact,
                )
                data = None
            saved_epoch = int(data.state.get("epoch", 0)) if data else 0
            if data is not None and data.state.get("completed"):
                # Crash landed between the final snapshot and the sweep
                # state update; the checkpoint already holds the scored model.
                return self._reload_completed(
                    topology,
                    checkpoint_name,
                    {"metrics": data.state["metrics"], "epochs_run": saved_epoch},
                    dataset_artifact,
                    progress,
                )
            if data is not None and 0 < saved_epoch < config.epochs:
                model = data.model
                model.compile(data.optimizer or config.optimizer, config.loss)
                initial_epoch = saved_epoch
                self._record_event(
                    "resume",
                    {"topology": topology.name, "epoch": saved_epoch},
                    dataset_artifact,
                )
        if progress is not None:
            verb = f"resuming from epoch {initial_epoch}" if initial_epoch else "training"
            progress(f"{verb} {topology.name}")
        if model is None:
            model = topology.build(train.input_shape, seed=config.seed)
            model.compile(config.optimizer, config.loss)
        callbacks = []
        if config.patience is not None:
            callbacks.append(
                EarlyStopping(patience=config.patience, restore_best_weights=True)
            )
        sentinel: Optional[DivergenceSentinel] = None
        if config.sentinel:
            sentinel = DivergenceSentinel(
                max_rollbacks=config.sentinel_max_rollbacks,
                manager=self.checkpoints,
                checkpoint_name=(
                    checkpoint_name if self.checkpoints is not None else None
                ),
            )
            callbacks.append(sentinel)
        if self.checkpoints is not None:
            callbacks.append(
                Checkpoint(
                    self.checkpoints,
                    checkpoint_name,
                    every=checkpoint_every,
                    on_save=lambda path, epoch: self._record_event(
                        "checkpoint",
                        {"topology": topology.name, "epoch": epoch},
                        dataset_artifact,
                    ),
                )
            )
        history = model.fit(
            train.x,
            train.y,
            epochs=config.epochs,
            batch_size=config.batch_size,
            validation_data=(validation.x, validation.y),
            callbacks=callbacks,
            seed=config.seed,
            initial_epoch=initial_epoch,
            clip_norm=config.clip_norm,
        )
        if sentinel is not None and sentinel.triggered:
            for event in sentinel.events:
                self._record_event(
                    "divergence_rollback",
                    {
                        "topology": topology.name,
                        "epoch": event.epoch,
                        "reason": event.reason,
                        "new_learning_rate": event.new_learning_rate,
                    },
                    dataset_artifact,
                )
        epochs_run = initial_epoch + len(history.epochs)
        metrics = self._score(model, validation, evaluation_data)
        if self.checkpoints is not None:
            # Final snapshot carries the (possibly best-weights-restored)
            # model so a later resume reloads exactly what was scored.
            self.checkpoints.save(
                checkpoint_name,
                model,
                state={
                    "epoch": epochs_run,
                    "completed": True,
                    "metrics": metrics,
                },
            )
        artifact_id = self._record_network(topology.name, metrics, dataset_artifact)
        return TrainingRun(
            topology_name=topology.name,
            model=model,
            metrics=metrics,
            epochs_run=epochs_run,
            artifact_id=artifact_id,
            resumed=initial_epoch > 0,
            rollbacks=sentinel.rollbacks if sentinel is not None else 0,
        )

    def _reload_completed(
        self,
        topology: TopologySpec,
        checkpoint_name: str,
        record: dict,
        dataset_artifact: Optional[int],
        progress: Optional[Callable[[str], None]],
    ) -> TrainingRun:
        """Skip a topology the previous invocation finished."""
        if progress is not None:
            progress(f"skipping completed {topology.name}")
        data = self.checkpoints.load(checkpoint_name, seed=self.config.seed)
        metrics = {k: float(v) for k, v in record["metrics"].items()}
        self._record_event(
            "resume",
            {"topology": topology.name, "skipped_completed": True},
            dataset_artifact,
        )
        artifact_id = self._record_network(topology.name, metrics, dataset_artifact)
        return TrainingRun(
            topology_name=topology.name,
            model=data.model,
            metrics=metrics,
            epochs_run=int(record.get("epochs_run", 0)),
            artifact_id=artifact_id,
            resumed=True,
        )

    def _score(
        self,
        model: Sequential,
        validation: SpectraDataset,
        evaluation_data: Optional[SpectraDataset],
    ) -> Dict[str, float]:
        predictions = model.predict(validation.x)
        metrics = {
            "val_mae": mean_absolute_error(predictions, validation.y),
            "val_mse": mean_squared_error(predictions, validation.y),
            "val_r2": r2_score(predictions, validation.y),
        }
        if evaluation_data is not None:
            measured = model.predict(evaluation_data.x)
            metrics["measured_mae"] = mean_absolute_error(
                measured, evaluation_data.y
            )
            metrics["measured_mse"] = mean_squared_error(
                measured, evaluation_data.y
            )
        return metrics

    # -- provenance --------------------------------------------------------

    def _record_network(
        self, topology_name: str, metrics: Dict[str, float],
        dataset_artifact: Optional[int],
    ) -> Optional[int]:
        if self.provenance is None:
            return None
        parents = [dataset_artifact] if dataset_artifact is not None else []
        return self.provenance.record(
            "network", {"topology": topology_name, **metrics}, parents=parents
        )

    def _record_event(
        self, kind: str, metadata: dict, dataset_artifact: Optional[int]
    ) -> None:
        if self.provenance is None:
            return
        parents = [dataset_artifact] if dataset_artifact is not None else []
        self.provenance.record(kind, metadata, parents=parents)

    # -- selection & export ------------------------------------------------

    def select_best(self, criterion: str = "val_mae", mode: str = "min") -> TrainingRun:
        """Best run by a selectable quality criterion.

        Raises a clear ``RuntimeError("no completed training runs")`` when
        no run ever completed (empty or fully-failed sweep) instead of a
        bare ``ValueError`` escaping from ``min()``, and ``KeyError`` when
        runs exist but none recorded ``criterion``.
        """
        if not self.runs:
            raise RuntimeError("no completed training runs")
        scored = [run for run in self.runs if criterion in run.metrics]
        if not scored:
            raise KeyError(f"no run has metric {criterion!r}")
        chooser = min if mode == "min" else max
        return chooser(scored, key=lambda run: run.metrics[criterion])

    def export_results(self) -> List[Dict[str, object]]:
        """Spreadsheet-ready rows (one per trained network)."""
        rows = []
        for run in self.runs:
            row: Dict[str, object] = {
                "topology": run.topology_name,
                "parameters": run.model.count_params(),
                "epochs_run": run.epochs_run,
            }
            row.update(run.metrics)
            rows.append(row)
        return rows

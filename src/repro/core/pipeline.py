"""The four-tool MS toolchain (the paper's Fig. 3), end to end.

Step 1 — ideal line spectra (Tool 1, :mod:`repro.ms.line_spectra`);
Step 2 — simulator generation from reference measurements (Tool 2,
:mod:`repro.ms.characterization`);
Step 3 — continuous-spectrum simulation and bulk dataset generation
(Tool 3, :mod:`repro.ms.simulator`);
Step 4 — automated ANN training and evaluation (Tool 4, :mod:`repro.nn`
via :mod:`repro.core.topologies`).

Every intermediate artifact is recorded in the provenance database so "it
is possible to trace the basis on which the respective data was generated".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.datasets import SpectraDataset
from repro.core.evaluation import evaluate_per_compound, measurements_to_arrays
from repro.core.topologies import TopologySpec, table1_topology
from repro.db.provenance import ProvenanceTracker
from repro.ms.characterization import CharacterizationResult, characterize_instrument
from repro.ms.compounds import CompoundLibrary, default_library
from repro.ms.mixtures import MassFlowControllerRig, MixturePlan, default_mixture_plan
from repro.ms.simulator import MassSpectrometerSimulator
from repro.ms.spectrum import MassSpectrum, MzAxis
from repro.nn.model import Sequential
from repro.nn.training import EarlyStopping, History
from repro.reliability.retry import RetryPolicy, finite_intensities
from repro.reliability.validation import validate_spectrum

__all__ = ["MSToolchain", "ToolchainResult"]

Measurement = Tuple[MassSpectrum, Mapping[str, float]]


@dataclass
class ToolchainResult:
    """Everything a full toolchain run produces."""

    model: Sequential
    history: History
    characterization: CharacterizationResult
    simulator: MassSpectrometerSimulator
    validation_mae: float
    measured_report: Dict[str, float]
    artifact_ids: Dict[str, int] = field(default_factory=dict)

    @property
    def measured_mae(self) -> float:
        return self.measured_report["mean"]


class MSToolchain:
    """Orchestrates Tools 1-4 for one measurement task."""

    def __init__(
        self,
        task_compounds: Sequence[str],
        axis: MzAxis = MzAxis(),
        library: Optional[CompoundLibrary] = None,
        provenance: Optional[ProvenanceTracker] = None,
    ):
        if not task_compounds:
            raise ValueError("task_compounds must be non-empty")
        self.task_compounds = tuple(task_compounds)
        self.axis = axis
        self.library = library if library is not None else default_library()
        for name in self.task_compounds:
            self.library.get(name)  # validate early
        self.provenance = provenance if provenance is not None else ProvenanceTracker()

    # -- step 2: reference measurements + characterization --------------------

    def collect_reference_measurements(
        self,
        rig: MassFlowControllerRig,
        samples_per_mixture: int,
        plan: Optional[MixturePlan] = None,
        n_mixtures: int = 14,
        retry_policy: Optional[RetryPolicy] = None,
    ) -> Tuple[List[Measurement], int]:
        """Measure a calibration plan on the (real) device.

        With a ``retry_policy``, each sample is acquired individually and a
        dropped scan (:class:`~repro.reliability.faults.AcquisitionError`)
        or a scan with non-finite intensities — e.g. dead detector channels
        injected by a :class:`~repro.reliability.faults.FaultInjector` — is
        re-acquired instead of poisoning the characterization fit.

        Returns the measurements and their provenance artifact id.
        """
        plan = plan if plan is not None else default_mixture_plan(
            self.task_compounds, n_mixtures
        )
        if retry_policy is None:
            measurements = rig.measure_plan(plan, samples_per_mixture)
        else:
            measurements = []
            for mixture in plan.mixtures:
                for _ in range(samples_per_mixture):
                    measurements.append(
                        retry_policy.call(
                            self._checked_measurement, rig, mixture
                        )
                    )
        artifact = self.provenance.record(
            "measurement_series",
            {
                "mixtures": len(plan),
                "samples_per_mixture": samples_per_mixture,
                "task": list(self.task_compounds),
            },
        )
        return measurements, artifact

    @staticmethod
    def _checked_measurement(
        rig: MassFlowControllerRig, mixture: Mapping[str, float]
    ) -> Measurement:
        """One sample; non-finite scans are failed acquisitions (retried)."""
        from repro.reliability.faults import AcquisitionError

        measurement = rig.measure_mixture(mixture)
        if not finite_intensities(measurement):
            raise AcquisitionError("scan contains non-finite intensities")
        return measurement

    def build_simulator(
        self, measurements: Sequence[Measurement], measurements_artifact: int
    ) -> Tuple[MassSpectrometerSimulator, CharacterizationResult, int]:
        """Tool 2 + Tool 3: characterize, then construct the simulator.

        Ingestion gate: every reference spectrum is validated (1-D, finite,
        matching this toolchain's m/z axis) before it can reach the
        characterization fit — one NaN scan admitted here would otherwise
        poison the fitted peak characteristics and, through the simulator,
        every training spectrum derived from them.  Invalid scans raise a
        :class:`~repro.reliability.validation.ValidationError` subclass
        naming the offending measurement.
        """
        for index, (spectrum, _) in enumerate(measurements):
            validate_spectrum(
                spectrum,
                length=self.axis.size,
                field=f"measurement[{index}]",
            )
        result = characterize_instrument(
            measurements, self.task_compounds, self.library
        )
        simulator = MassSpectrometerSimulator(
            result.characteristics, self.axis, self.library
        )
        artifact = self.provenance.record(
            "simulator",
            {
                "n_measurements": result.n_measurements,
                "n_peaks_used": result.n_peaks_used,
            },
            parents=[measurements_artifact],
        )
        return simulator, result, artifact

    # -- step 3: training data --------------------------------------------------

    def generate_training_data(
        self,
        simulator: MassSpectrometerSimulator,
        n: int,
        rng: Optional[np.random.Generator] = None,
        simulator_artifact: Optional[int] = None,
        cache: Optional["ArtifactCache"] = None,
        seed: Optional[int] = None,
    ) -> Tuple[SpectraDataset, int]:
        """Tool 1 + Tool 3: a labelled simulated dataset.

        With a :class:`~repro.compute.cache.ArtifactCache` (requires
        ``seed`` — the cache key is derived from the generating config, so
        generation must be seed-driven, not generator-driven) a repeat of
        an identical config is a verified read instead of a re-render; the
        provenance record then carries the content key and hit/miss
        disposition.
        """
        metadata: Dict[str, object] = {"source": "simulated", "n": n}
        record: Dict[str, object] = {"n": n}
        if cache is not None:
            if seed is None:
                raise ValueError("cache-aware generation requires seed=")
            from repro.compute.datasets import generate_ms_dataset

            x, y, info = generate_ms_dataset(
                simulator, self.task_compounds, n, seed, cache=cache
            )
            metadata["cache_key"] = record["cache_key"] = info["key"]
            metadata["cache_hit"] = record["cache_hit"] = bool(info["hit"])
        else:
            if rng is None:
                if seed is None:
                    raise ValueError("provide rng= or seed=")
                rng = np.random.default_rng(seed)
            x, y = simulator.generate_dataset(self.task_compounds, n, rng)
        dataset = SpectraDataset(x, y, self.task_compounds, metadata)
        parents = [simulator_artifact] if simulator_artifact is not None else []
        artifact = self.provenance.record("dataset", record, parents=parents)
        return dataset, artifact

    # -- step 4: training + evaluation --------------------------------------------

    def train_network(
        self,
        dataset: SpectraDataset,
        topology: Optional[TopologySpec] = None,
        epochs: int = 30,
        batch_size: int = 64,
        train_fraction: float = 0.8,
        seed: int = 0,
        dataset_artifact: Optional[int] = None,
        patience: Optional[int] = 8,
        learning_rate: float = 0.006,
    ) -> Tuple[Sequential, History, float, int]:
        """Train one network; returns (model, history, validation MAE, id).

        The default learning rate is tuned for the Table-1 CNN with MAE
        loss and softmax outputs, where small rates converge very slowly.
        """
        topology = topology if topology is not None else table1_topology(
            len(self.task_compounds)
        )
        train, validation = dataset.split(train_fraction, np.random.default_rng(seed))
        model = topology.build(dataset.input_shape, seed=seed)
        from repro.nn.optimizers import Adam

        model.compile(Adam(learning_rate), "mae")
        callbacks = []
        if patience is not None:
            callbacks.append(
                EarlyStopping(patience=patience, restore_best_weights=True)
            )
        history = model.fit(
            train.x,
            train.y,
            epochs=epochs,
            batch_size=batch_size,
            validation_data=(validation.x, validation.y),
            callbacks=callbacks,
            seed=seed,
        )
        validation_mae = model.evaluate(validation.x, validation.y)
        parents = [dataset_artifact] if dataset_artifact is not None else []
        artifact = self.provenance.record(
            "network",
            {
                "topology": topology.name,
                "epochs_run": len(history.epochs),
                "validation_mae": validation_mae,
            },
            parents=parents,
        )
        return model, history, validation_mae, artifact

    def fine_tune_network(
        self,
        model: Sequential,
        dataset: SpectraDataset,
        epochs: int = 8,
        batch_size: int = 32,
        learning_rate: float = 0.002,
        seed: int = 0,
        dataset_artifact: Optional[int] = None,
        parent_artifact: Optional[int] = None,
    ) -> Tuple[Sequential, History, int]:
        """Continue training a *copy* of ``model`` on a small dataset.

        This is the cheap arm of in-lifecycle re-adaptation: instead of
        re-running the whole characterize-simulate-train loop, the
        deployed network is cloned (the serving weights are never touched
        — the adaptation controller decides whether the tuned copy ever
        serves) and nudged with a few epochs at a reduced learning rate
        on the handful of labelled shifted-real measurements an operator
        can actually afford.  Returns (tuned model, history, artifact id).
        """
        from repro.nn.optimizers import Adam
        from repro.nn.serialization import clone_model

        tuned = clone_model(model, seed=seed)
        tuned.compile(Adam(learning_rate), "mae")
        history = tuned.fit(
            dataset.x,
            dataset.y,
            epochs=epochs,
            batch_size=min(batch_size, len(dataset.x)),
            seed=seed,
        )
        parents = [
            parent for parent in (dataset_artifact, parent_artifact)
            if parent is not None
        ]
        artifact = self.provenance.record(
            "network_finetune",
            {
                "epochs_run": len(history.epochs),
                "n_samples": len(dataset.x),
                "learning_rate": learning_rate,
            },
            parents=parents,
        )
        return tuned, history, artifact

    def evaluate_on_measurements(
        self, model: Sequential, measurements: Sequence[Measurement]
    ) -> Dict[str, float]:
        """Per-compound MAE of a network on real device measurements."""
        x, y = measurements_to_arrays(measurements, self.task_compounds, self.axis)
        predictions = model.predict(x)
        return evaluate_per_compound(predictions, y, self.task_compounds)

    # -- convenience --------------------------------------------------------------

    def run(
        self,
        rig: MassFlowControllerRig,
        evaluation_measurements: Sequence[Measurement],
        samples_per_mixture: int = 25,
        n_training_spectra: int = 20_000,
        topology: Optional[TopologySpec] = None,
        epochs: int = 30,
        seed: int = 0,
        retry_policy: Optional[RetryPolicy] = None,
        cache: Optional["ArtifactCache"] = None,
    ) -> ToolchainResult:
        """The full Fig.-3 flow against a device and an evaluation set.

        ``cache``, if given, makes the training-data step content-addressed:
        repeating the flow with an identical fitted simulator and seed
        reloads the dataset instead of re-rendering it.
        """
        rng = np.random.default_rng(seed)
        measurements, m_id = self.collect_reference_measurements(
            rig, samples_per_mixture, retry_policy=retry_policy
        )
        simulator, characterization, s_id = self.build_simulator(measurements, m_id)
        dataset, d_id = self.generate_training_data(
            simulator, n_training_spectra, rng, s_id, cache=cache,
            seed=seed if cache is not None else None,
        )
        model, history, validation_mae, n_id = self.train_network(
            dataset, topology=topology, epochs=epochs, seed=seed,
            dataset_artifact=d_id,
        )
        report = self.evaluate_on_measurements(model, evaluation_measurements)
        return ToolchainResult(
            model=model,
            history=history,
            characterization=characterization,
            simulator=simulator,
            validation_mae=validation_mae,
            measured_report=report,
            artifact_ids={
                "measurements": m_id,
                "simulator": s_id,
                "dataset": d_id,
                "network": n_id,
            },
        )

"""The paper's primary contribution: the simulate-augment-train flow.

This package sits on top of the substrates (:mod:`repro.nn`,
:mod:`repro.ms`, :mod:`repro.nmr`, :mod:`repro.db`, :mod:`repro.embedded`)
and implements the flow the paper proposes:

* :mod:`repro.core.topologies` — declarative network-topology specs,
  including Table 1 and its eight activation-function variants (Fig. 5),
  the NMR conv/LSTM models, and the preliminary-study MLP/ResNet/Highway
  variants;
* :mod:`repro.core.datasets` — labelled spectra datasets with splits;
* :mod:`repro.core.augmentation` — plateau emulation and window slicing
  for the LSTM time-series model;
* :mod:`repro.core.pipeline` — the four-tool MS toolchain (Fig. 3),
  end-to-end: reference measurements -> characterization -> simulator ->
  dataset -> trained network -> evaluation on "real" measurements;
* :mod:`repro.core.training_service` — unattended multi-topology training
  with database-backed provenance (Tool 4's front/backend);
* :mod:`repro.core.evaluation` — per-compound error reports, plateau
  standard deviations and quality criteria for model selection.
"""

from repro.core.topologies import (
    TopologySpec,
    activation_study_variants,
    mlp_topology,
    highway_topology,
    nmr_conv_topology,
    nmr_lstm_topology,
    resnet_topology,
    table1_topology,
)
from repro.core.datasets import SpectraDataset
from repro.core.augmentation import plateau_time_series, sliding_windows
from repro.core.pipeline import MSToolchain, ToolchainResult
from repro.core.training_service import TrainingConfig, TrainingService
from repro.core.topology_search import ConvBlock, ExplorativeSearch, SearchResult
from repro.core.evaluation import (
    evaluate_per_compound,
    measurements_to_arrays,
    plateau_standard_deviation,
)
from repro.core.lifecycle import DriftMonitor, DriftStatus, recalibrate
from repro.core.closed_loop import (
    ClosedLoopSimulation,
    ControlStep,
    PIController,
    ann_analyzer,
    ihm_analyzer,
)

__all__ = [
    "ClosedLoopSimulation",
    "ControlStep",
    "ConvBlock",
    "DriftMonitor",
    "DriftStatus",
    "ExplorativeSearch",
    "MSToolchain",
    "PIController",
    "SearchResult",
    "ann_analyzer",
    "ihm_analyzer",
    "SpectraDataset",
    "ToolchainResult",
    "TopologySpec",
    "TrainingConfig",
    "TrainingService",
    "activation_study_variants",
    "evaluate_per_compound",
    "highway_topology",
    "measurements_to_arrays",
    "mlp_topology",
    "nmr_conv_topology",
    "nmr_lstm_topology",
    "plateau_standard_deviation",
    "plateau_time_series",
    "recalibrate",
    "resnet_topology",
    "sliding_windows",
    "table1_topology",
]

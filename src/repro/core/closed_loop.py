"""Closed-loop process control driven by spectroscopic ANN predictions.

The paper's opening argument: traditional MS/NMR analysis "prevents their
utilization for real-time closed-loop process control", while ANN
evaluation in milliseconds enables exactly that.  This module closes the
loop on the virtual flow reactor: a PI controller adjusts the reactor's
residence time to hold a target product concentration, with the measured
variable supplied not by an oracle but by an analyzer (ANN, IHM, or any
callable) reading benchtop NMR spectra of the reactor output.

Because the plant responds once per control period, an analyzer that takes
longer than the period (IHM at commercial speed) forces a slower loop —
the latency argument of §III.B.3 made operational.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, List, Optional

import numpy as np

from repro.nmr.acquisition import VirtualNMRSpectrometer
from repro.nmr.reaction import OBSERVED_COMPONENTS, ReactionConditions, ReactionKinetics
from repro.reliability.faults import AcquisitionError
from repro.reliability.retry import RetryPolicy

__all__ = ["PIController", "ControlStep", "ClosedLoopSimulation"]


@dataclass
class PIController:
    """A discrete proportional-integral controller with output clamping."""

    kp: float
    ki: float
    setpoint: float
    output_min: float
    output_max: float
    _integral: float = field(default=0.0, repr=False)

    def __post_init__(self):
        if self.output_max <= self.output_min:
            raise ValueError("output_max must exceed output_min")

    def update(self, measurement: float, dt: float = 1.0) -> float:
        """One control step; returns the new actuator value.

        Anti-windup is conditional integration: the integral only
        accumulates while the actuator is unsaturated, or while the error
        drives the output *back toward* the permitted range.  The
        saturation test is the explicit clamping condition (``raw`` beyond
        the bound), not a float-equality comparison of the clipped value —
        exact equality misclassifies ``raw`` landing on a bound and is one
        rounding error away from silently disabling the back-out.
        """
        if dt <= 0:
            raise ValueError("dt must be positive")
        error = self.setpoint - measurement
        candidate = self._integral + error * dt
        raw = self.kp * error + self.ki * candidate
        output = float(np.clip(raw, self.output_min, self.output_max))
        winding_deeper = (raw > self.output_max and error > 0) or (
            raw < self.output_min and error < 0
        )
        if not winding_deeper:
            self._integral = candidate
        return output

    def reset(self) -> None:
        self._integral = 0.0


@dataclass(frozen=True)
class ControlStep:
    """One sample of the closed-loop trajectory.

    ``degraded`` marks steps where acquisition failed even after retries
    and the controller held its last actuator value instead of updating.
    """

    step: int
    residence_time_s: float
    true_product: float
    estimated_product: float
    analyzer_seconds: float
    degraded: bool = False


class ClosedLoopSimulation:
    """Holds a product-concentration setpoint on the virtual reactor.

    The actuator is the residence time (pump speed); the measured variable
    is the MNDPA concentration as estimated by ``analyzer`` from a fresh
    benchtop spectrum each control period.

    ``analyzer(spectrum_intensities) -> (concentration_vector, seconds)``
    where the vector follows :data:`OBSERVED_COMPONENTS` order.
    """

    def __init__(
        self,
        kinetics: ReactionKinetics,
        spectrometer: VirtualNMRSpectrometer,
        analyzer: Callable[[np.ndarray], tuple],
        target_product: float = 0.20,
        base_conditions: ReactionConditions = ReactionConditions(),
        controller: Optional[PIController] = None,
        disturbance: Optional[Callable[[int, ReactionConditions], ReactionConditions]] = None,
        retry_policy: Optional[RetryPolicy] = None,
    ):
        if target_product <= 0:
            raise ValueError("target_product must be positive")
        self.kinetics = kinetics
        self.spectrometer = spectrometer
        self.analyzer = analyzer
        self.target_product = float(target_product)
        self.base_conditions = base_conditions
        self.controller = controller if controller is not None else PIController(
            kp=600.0, ki=150.0, setpoint=self.target_product,
            output_min=10.0, output_max=600.0,
        )
        self.disturbance = disturbance
        self.retry_policy = retry_policy
        self.dropped_steps = 0

    def run(self, n_steps: int, rng: np.random.Generator) -> List[ControlStep]:
        """Simulate ``n_steps`` control periods; returns the trajectory.

        With a ``retry_policy``, a dropped scan is re-acquired within the
        control period; if every attempt fails the controller performs a
        safe actuator hold (no update) for that step and the step is marked
        ``degraded``.  Without a policy, acquisition errors propagate.
        """
        if n_steps <= 0:
            raise ValueError("n_steps must be positive")
        product_index = OBSERVED_COMPONENTS.index("MNDPA")
        residence = self.base_conditions.residence_time_s
        last_estimate = self.target_product
        trajectory: List[ControlStep] = []
        for step in range(n_steps):
            conditions = replace(
                self.base_conditions, residence_time_s=residence
            )
            if self.disturbance is not None:
                conditions = self.disturbance(step, conditions)
            outlet = self.kinetics.outlet_concentrations(conditions)
            spectrum = self._acquire(outlet, rng)
            if spectrum is None:
                # Acquisition lost even after retries: hold the actuator.
                self.dropped_steps += 1
                trajectory.append(
                    ControlStep(
                        step=step,
                        residence_time_s=conditions.residence_time_s,
                        true_product=outlet["MNDPA"],
                        estimated_product=float(last_estimate),
                        analyzer_seconds=0.0,
                        degraded=True,
                    )
                )
                continue
            estimate, seconds = self.analyzer(spectrum.intensities)
            estimated_product = float(estimate[product_index])
            last_estimate = estimated_product
            residence = self.controller.update(estimated_product)
            trajectory.append(
                ControlStep(
                    step=step,
                    residence_time_s=conditions.residence_time_s,
                    true_product=outlet["MNDPA"],
                    estimated_product=estimated_product,
                    analyzer_seconds=float(seconds),
                )
            )
        return trajectory

    def _acquire(self, outlet, rng):
        """One spectrum, or None if acquisition failed after all retries."""
        if self.retry_policy is None:
            return self.spectrometer.acquire(outlet, rng=rng)
        try:
            return self.retry_policy.call(
                self.spectrometer.acquire, outlet, rng=rng
            )
        except AcquisitionError:
            return None

    @staticmethod
    def settling_step(
        trajectory: List[ControlStep], target: float, band: float = 0.1
    ) -> Optional[int]:
        """First step after which the true product stays within ±band of
        target; ``None`` if it never settles."""
        if band <= 0:
            raise ValueError("band must be positive")
        lower, upper = target * (1 - band), target * (1 + band)
        for i in range(len(trajectory)):
            tail = trajectory[i:]
            if all(lower <= s.true_product <= upper for s in tail):
                return i
        return None


def ann_analyzer(model) -> Callable[[np.ndarray], tuple]:
    """Wrap a trained network as a timed closed-loop analyzer."""
    import time

    def analyze(intensities: np.ndarray) -> tuple:
        start = time.perf_counter()
        estimate = model.predict(intensities[None, :])[0]
        return estimate, time.perf_counter() - start

    return analyze


def ihm_analyzer(ihm) -> Callable[[np.ndarray], tuple]:
    """Wrap an :class:`~repro.nmr.ihm.IHMAnalysis` as a timed analyzer."""

    def analyze(intensities: np.ndarray) -> tuple:
        result = ihm.analyze(intensities)
        vector = result.concentration_vector(list(OBSERVED_COMPONENTS))
        return vector, result.elapsed_seconds

    return analyze

"""Labelled spectra datasets with splitting and normalization."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

__all__ = ["SpectraDataset"]


@dataclass
class SpectraDataset:
    """Spectra ``x`` with concentration labels ``y``.

    ``x`` is ``(n, spectrum_length)`` (or ``(n, timesteps, length)`` for
    windowed time-series data), ``y`` is ``(n, n_outputs)``;
    ``output_names`` label the y columns.
    """

    x: np.ndarray
    y: np.ndarray
    output_names: Tuple[str, ...]
    metadata: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self):
        self.x = np.asarray(self.x, dtype=np.float64)
        self.y = np.asarray(self.y, dtype=np.float64)
        if self.x.shape[0] != self.y.shape[0]:
            raise ValueError(
                f"x has {self.x.shape[0]} samples but y has {self.y.shape[0]}"
            )
        if self.y.ndim != 2:
            raise ValueError("y must be 2-D (samples, outputs)")
        if len(self.output_names) != self.y.shape[1]:
            raise ValueError(
                f"{len(self.output_names)} output names for {self.y.shape[1]} outputs"
            )
        self.output_names = tuple(self.output_names)

    def __len__(self) -> int:
        return self.x.shape[0]

    @property
    def input_shape(self) -> Tuple[int, ...]:
        return tuple(self.x.shape[1:])

    def split(
        self, train_fraction: float = 0.8, rng: Optional[np.random.Generator] = None
    ) -> Tuple["SpectraDataset", "SpectraDataset"]:
        """Shuffled train/test split (the paper uses 80 %/20 %)."""
        if not 0.0 < train_fraction < 1.0:
            raise ValueError(f"train_fraction must be in (0, 1), got {train_fraction}")
        rng = rng if rng is not None else np.random.default_rng(0)
        n = len(self)
        order = rng.permutation(n)
        cut = int(round(train_fraction * n))
        if cut == 0 or cut == n:
            raise ValueError(
                f"split of {n} samples at {train_fraction} leaves an empty side"
            )
        train_idx, test_idx = order[:cut], order[cut:]
        return self.subset(train_idx, "train"), self.subset(test_idx, "test")

    def subset(self, indices: Sequence[int], label: str = "subset") -> "SpectraDataset":
        """Rows at ``indices`` as a new dataset.

        ``indices`` may be an integer sequence/array or a boolean mask of
        length ``len(self)``.  Negative integers follow Python semantics
        (``-1`` is the last sample) and are normalized before selection;
        anything outside ``[-len(self), len(self))`` raises ``IndexError``
        naming the offending values instead of silently aliasing.
        """
        indices = np.asarray(indices)
        n = len(self)
        if indices.dtype == np.bool_:
            if indices.shape != (n,):
                raise IndexError(
                    f"boolean mask of shape {indices.shape} cannot index "
                    f"{n} samples (need ({n},))"
                )
            indices = np.flatnonzero(indices)
        else:
            if indices.size and not np.issubdtype(indices.dtype, np.integer):
                raise IndexError(
                    f"indices must be integers or a boolean mask, "
                    f"got dtype {indices.dtype}"
                )
            if indices.ndim > 1:
                raise IndexError(
                    f"indices must be 1-D, got shape {indices.shape}"
                )
            indices = indices.astype(np.intp, copy=True).reshape(-1)
            bad = (indices < -n) | (indices >= n)
            if np.any(bad):
                offending = indices[bad][:5].tolist()
                raise IndexError(
                    f"indices {offending} out of range for {n} samples "
                    f"(valid: [-{n}, {n}))"
                )
            indices[indices < 0] += n
        metadata = dict(self.metadata)
        metadata["subset"] = label
        return SpectraDataset(
            self.x[indices], self.y[indices], self.output_names, metadata
        )

    def labels_as_dicts(self) -> list:
        """Rows of y as {name: value} dicts (for reports)."""
        return [
            {name: float(v) for name, v in zip(self.output_names, row)}
            for row in self.y
        ]

    def label_ranges(self) -> Dict[str, Tuple[float, float]]:
        return {
            name: (float(self.y[:, j].min()), float(self.y[:, j].max()))
            for j, name in enumerate(self.output_names)
        }

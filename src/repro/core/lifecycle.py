"""Lifecycle monitoring and automatic re-adaptation.

The paper's conclusion names the open problem this module addresses: "it
has to be investigated how these systems can be automatically and reliably
adapted to perturbations or changes in parameters within the life cycle of
a production."

:class:`DriftMonitor` watches the stream of incoming spectra through the
plausibility checker's unexplained-residual statistic: against a baseline
established on simulated training data, an exponentially weighted moving
average of the residual fraction rising above an alarm factor signals that
the instrument has drifted away from the state the simulator (and hence
the network) was built for.  :func:`recalibrate` then re-runs the
characterize-simulate-train loop to produce a fresh network.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Union

import numpy as np

from repro.core.pipeline import MSToolchain, ToolchainResult
from repro.ms.mixtures import MassFlowControllerRig
from repro.ms.plausibility import PlausibilityChecker
from repro.ms.simulator import MassSpectrometerSimulator
from repro.ms.spectrum import MassSpectrum
from repro.observability.runtime import get_registry

__all__ = ["DriftStatus", "DriftMonitor", "recalibrate"]


@dataclass(frozen=True)
class DriftStatus:
    """State of the monitor after one observation."""

    drifted: bool
    ewma_residual: float
    baseline_residual: float
    observations: int

    @property
    def severity(self) -> float:
        """EWMA residual relative to baseline (1.0 = nominal).

        Degenerate baselines are handled explicitly rather than dividing
        by zero: a zero (or negative) ``baseline_residual`` with *any*
        positive observed residual returns ``inf`` — against a perfect
        baseline, any unexplained residual is infinitely anomalous and
        callers comparing ``severity`` against an alarm threshold will
        always fire.  When both baseline and observation are zero the
        status is nominal and severity is exactly ``1.0``.  Callers that
        persist severity (JSON, provenance records) must be prepared for
        the non-finite value.
        """
        if self.baseline_residual <= 0:
            return float("inf") if self.ewma_residual > 0 else 1.0
        return self.ewma_residual / self.baseline_residual

    def clamped_severity(self, cap: float = 1e6) -> float:
        """Severity as a *finite* float, safe for arithmetic consumers.

        ``severity`` can legitimately be ``inf`` (zero baseline, see
        above); code that scales cooldowns, budgets or backoffs by
        severity must never let that propagate into its arithmetic.
        ``inf`` clamps to ``cap``; a NaN (impossible from this class but
        cheap to guard for duck-typed callers) reads as nominal ``1.0``.
        """
        severity = self.severity
        if np.isnan(severity):
            return 1.0
        return float(min(severity, cap))

    def to_record(self) -> dict:
        """A JSON-portable encoding of this status.

        ``severity`` can legitimately be ``inf`` (see above), and the
        JSON ``Infinity`` token is a Python extension many parsers refuse
        — so the record carries ``severity: null`` alongside
        ``severity_finite: false`` in that case, and round-trips through
        strict encoders (``json.dumps(..., allow_nan=False)``) unchanged.
        """
        severity = self.severity
        finite = bool(np.isfinite(severity))
        return {
            "drifted": bool(self.drifted),
            "ewma_residual": float(self.ewma_residual),
            "baseline_residual": float(self.baseline_residual),
            "observations": int(self.observations),
            "severity": float(severity) if finite else None,
            "severity_finite": finite,
        }


class DriftMonitor:
    """EWMA drift detector over plausibility residuals."""

    def __init__(
        self,
        simulator: MassSpectrometerSimulator,
        task_compounds: Sequence[str],
        alarm_factor: float = 2.5,
        smoothing: float = 0.1,
        warmup: int = 5,
        baseline_samples: int = 200,
        rng: Optional[np.random.Generator] = None,
        name: str = "default",
    ):
        """``alarm_factor`` is how far above the simulated baseline the
        smoothed residual must rise before drift is declared; ``warmup``
        observations are collected before any alarm can fire.  ``name``
        labels this monitor's telemetry series."""
        if alarm_factor <= 1.0:
            raise ValueError("alarm_factor must exceed 1.0")
        if not 0.0 < smoothing <= 1.0:
            raise ValueError("smoothing must be in (0, 1]")
        if warmup < 1:
            raise ValueError("warmup must be >= 1")
        self.checker = PlausibilityChecker(simulator, task_compounds)
        self.alarm_factor = float(alarm_factor)
        self.smoothing = float(smoothing)
        self.warmup = int(warmup)
        self.name = str(name)
        self._ewma: Optional[float] = None
        self._count = 0
        self.skipped_nonfinite = 0
        self._alarmed = False
        registry = get_registry()
        self._m_severity = registry.gauge(
            "drift_severity", "EWMA residual relative to baseline"
        ).labels(monitor=self.name)
        self._m_alarms = registry.counter(
            "drift_alarms_total", "drift alarm onsets (not re-fires)"
        ).labels(monitor=self.name)
        rng = rng if rng is not None else np.random.default_rng(0)
        self.baseline_residual = self._establish_baseline(
            simulator, task_compounds, baseline_samples, rng
        )

    def _establish_baseline(
        self, simulator, task_compounds, n: int, rng: np.random.Generator
    ) -> float:
        """Median residual fraction over freshly simulated in-task spectra."""
        spectra, _ = simulator.generate_dataset(task_compounds, n, rng)
        residuals = [
            self.checker.check(row).residual_fraction for row in spectra
        ]
        return float(np.median(residuals))

    def observe(self, spectrum: Union[MassSpectrum, np.ndarray]) -> DriftStatus:
        """Feed one production spectrum; returns the updated drift status.

        Non-finite spectra (NaN/inf channels from a faulty detector) are
        skipped rather than folded into the EWMA — one bad scan must not
        poison the drift statistic forever.  Skips are counted in
        :attr:`skipped_nonfinite` and leave the status unchanged.
        """
        data = (
            spectrum.intensities
            if isinstance(spectrum, MassSpectrum)
            else np.asarray(spectrum, dtype=np.float64)
        )
        if not np.isfinite(data).all():
            self.skipped_nonfinite += 1
            return self._status()
        report = self.checker.check(spectrum)
        value = report.residual_fraction
        if not np.isfinite(value):
            self.skipped_nonfinite += 1
            return self._status()
        if self._ewma is None:
            self._ewma = value
        else:
            self._ewma = (
                self.smoothing * value + (1.0 - self.smoothing) * self._ewma
            )
        self._count += 1
        return self._status()

    def _status(self) -> DriftStatus:
        """The monitor's current state as a DriftStatus."""
        ewma = self._ewma if self._ewma is not None else self.baseline_residual
        drifted = (
            self._count >= self.warmup
            and ewma > self.alarm_factor * max(self.baseline_residual, 1e-6)
        )
        status = DriftStatus(
            drifted=drifted,
            ewma_residual=float(ewma),
            baseline_residual=self.baseline_residual,
            observations=self._count,
        )
        self._m_severity.set(status.severity)
        if drifted and not self._alarmed:
            # Count alarm *onsets*: a sustained excursion is one alarm,
            # however many observations it spans.
            self._alarmed = True
            self._m_alarms.inc()
        elif not drifted:
            self._alarmed = False
        return status

    def snapshot(self) -> dict:
        """The monitor's restorable observation state.

        JSON-portable (the EWMA and baseline are finite by construction
        — non-finite residuals never enter them), so it can ride a
        checkpoint state payload or a journal record and survive a
        process restart via :meth:`restore`.
        """
        return {
            "ewma": self._ewma,
            "count": self._count,
            "skipped_nonfinite": self.skipped_nonfinite,
            "baseline_residual": self.baseline_residual,
            "alarmed": self._alarmed,
        }

    def restore(self, snapshot: dict) -> None:
        """Resume from a :meth:`snapshot` taken before a restart.

        The baseline is restored too — it was established against the
        simulator the *deployed* model was trained on, which need not
        match whatever simulator this process was constructed with.
        """
        ewma = snapshot["ewma"]
        self._ewma = None if ewma is None else float(ewma)
        self._count = int(snapshot["count"])
        self.skipped_nonfinite = int(snapshot["skipped_nonfinite"])
        self.baseline_residual = float(snapshot["baseline_residual"])
        self._alarmed = bool(snapshot.get("alarmed", False))

    def reset(self) -> None:
        """Clear the observation state (e.g. after recalibration)."""
        self._ewma = None
        self._count = 0
        self.skipped_nonfinite = 0
        self._alarmed = False


def recalibrate(
    chain: MSToolchain,
    rig: MassFlowControllerRig,
    evaluation_measurements,
    samples_per_mixture: int = 25,
    n_training_spectra: int = 10_000,
    epochs: int = 15,
    seed: int = 0,
    topology=None,
) -> ToolchainResult:
    """Re-run the characterize-simulate-train loop after a drift alarm.

    This is deliberately just the standard toolchain run — the paper's
    point is that the *same* automated flow that commissioned the system
    also re-adapts it, with fresh reference measurements reflecting the
    instrument's current state.
    """
    return chain.run(
        rig,
        evaluation_measurements,
        samples_per_mixture=samples_per_mixture,
        n_training_spectra=n_training_spectra,
        topology=topology,
        epochs=epochs,
        seed=seed,
    )

"""Time-series augmentation for the LSTM model.

"As our time dependent experimental data consists of a time series of
several steady state plateaus with different concentrations, we repeated
random training spectra one to twenty times to emulate plateaus with jumps
between them."  :func:`plateau_time_series` performs that augmentation;
:func:`sliding_windows` then slices the resulting sequence into the
fixed-length windows the LSTM consumes (the paper uses five timesteps).
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

import numpy as np

__all__ = ["plateau_time_series", "sliding_windows"]


def plateau_time_series(
    x: np.ndarray,
    y: np.ndarray,
    n_timesteps: int,
    rng: np.random.Generator,
    min_repeats: int = 1,
    max_repeats: int = 20,
    renoise: Optional[Callable[[np.ndarray, np.random.Generator], np.ndarray]] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Emulate a plateau-structured time series from i.i.d. spectra.

    Random source samples are repeated a random number of times (a
    plateau), back to back, until at least ``n_timesteps`` steps exist.
    ``renoise``, if given, is applied to every repeated frame so the
    repeats differ by measurement noise rather than being bit-identical
    (pass e.g. a simulator re-render; default is exact repetition, matching
    the paper's description).

    Returns ``(x_seq, y_seq)`` of shapes ``(T, length)`` / ``(T, outputs)``.
    """
    if n_timesteps <= 0:
        raise ValueError("n_timesteps must be positive")
    if not 1 <= min_repeats <= max_repeats:
        raise ValueError(
            f"need 1 <= min_repeats <= max_repeats, got {min_repeats}, {max_repeats}"
        )
    if x.shape[0] == 0:
        raise ValueError("cannot build a time series from an empty dataset")
    if renoise is None:
        # Exact repetition: no per-frame draws interleave with the plateau
        # structure, so draw every (source, repeats) pair first — same two
        # scalar draws per plateau, same order — then build the series as
        # one repeated gather instead of a per-frame Python append loop.
        sources: list = []
        repeats: list = []
        total = 0
        while total < n_timesteps:
            sources.append(int(rng.integers(0, x.shape[0])))
            repeats.append(int(rng.integers(min_repeats, max_repeats + 1)))
            total += repeats[-1]
        index = np.repeat(sources, repeats)[:n_timesteps]
        return x[index].copy(), y[index].copy()
    # With a renoise hook every frame consumes generator draws between the
    # structure draws, so the original interleaved per-frame loop is kept
    # verbatim to preserve the generator stream.
    frames = []
    labels = []
    while len(frames) < n_timesteps:
        source = int(rng.integers(0, x.shape[0]))
        count = int(rng.integers(min_repeats, max_repeats + 1))
        for _ in range(count):
            frames.append(renoise(x[source], rng))
            labels.append(y[source])
    x_seq = np.stack(frames[:n_timesteps])
    y_seq = np.stack(labels[:n_timesteps])
    return x_seq, y_seq


def sliding_windows(
    x_seq: np.ndarray, y_seq: np.ndarray, window: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Slice a time series into overlapping windows for the LSTM.

    Returns ``(x_windows, y_last)`` with shapes ``(n, window, length)`` and
    ``(n, outputs)``; each window is labelled with the concentration at its
    *last* timestep (the LSTM predicts the current composition from the
    recent past).
    """
    if window <= 0:
        raise ValueError("window must be positive")
    timesteps = x_seq.shape[0]
    if timesteps < window:
        raise ValueError(
            f"time series of {timesteps} steps is shorter than window {window}"
        )
    if y_seq.shape[0] != timesteps:
        raise ValueError("x_seq and y_seq lengths differ")
    n = timesteps - window + 1
    # Gather via stride-free fancy indexing to keep the result writable.
    idx = np.arange(window)[None, :] + np.arange(n)[:, None]
    return x_seq[idx], y_seq[window - 1 :]

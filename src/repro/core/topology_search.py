"""Explorative topology development (the paper's §III.A.2 procedure).

"Based on this target, the topology of the network was developed by
starting with only one convolutional layer and one MLP layer for the
output.  Based on this we exploratively added more convolutional layers
and adjusted the parameters of these layers until a satisfactory result
could be achieved."

:class:`ExplorativeSearch` automates that loop: starting from the minimal
one-conv topology, each round proposes mutations (add a conv layer, widen
filters, change kernel/stride), trains every candidate through the
:class:`~repro.core.training_service.TrainingService`, keeps the best, and
stops when the target MAE is met or no mutation improves the incumbent.

With an :class:`~repro.compute.executor.ParallelExecutor`, each round's
candidates train concurrently instead of one after another; the
greedy-selection outcome is identical for a fixed seed because every
candidate trains from the same per-candidate seed on every backend, and a
candidate whose task dies simply drops out of the round instead of
aborting the search.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.compute.executor import ParallelExecutor
from repro.core.datasets import SpectraDataset
from repro.core.topologies import TopologySpec
from repro.core.training_service import TrainingConfig, TrainingService

__all__ = ["ConvBlock", "SearchResult", "ExplorativeSearch"]


@dataclass(frozen=True)
class ConvBlock:
    """One convolutional stage of a candidate topology."""

    filters: int
    kernel_size: int
    strides: int

    def __post_init__(self):
        if self.filters <= 0 or self.kernel_size <= 0 or self.strides <= 0:
            raise ValueError(f"invalid conv block {self!r}")


@dataclass
class SearchResult:
    """Outcome of an explorative search."""

    best_spec: TopologySpec
    best_blocks: Tuple[ConvBlock, ...]
    best_metric: float
    rounds: int
    target_reached: bool
    history: List[Dict] = field(default_factory=list)


def _spec_from_blocks(
    blocks: Sequence[ConvBlock],
    n_outputs: int,
    hidden_activation: str,
    output_activation: str,
) -> TopologySpec:
    name = "cnn_" + "_".join(
        f"f{b.filters}k{b.kernel_size}s{b.strides}" for b in blocks
    )
    spec = TopologySpec(name, description="explorative-search candidate")
    spec.add("Reshape", target_shape=[-1, 1])
    for block in blocks:
        spec.add(
            "Conv1D",
            filters=block.filters,
            kernel_size=block.kernel_size,
            strides=block.strides,
            activation=hidden_activation,
        )
    spec.add("Flatten")
    spec.add("Dense", units=n_outputs, activation=output_activation)
    return spec


def _output_length(input_length: int, blocks: Sequence[ConvBlock]) -> int:
    """Conv-stack output length; <= 0 means the stack does not fit."""
    length = input_length
    for block in blocks:
        length = (length - block.kernel_size) // block.strides + 1
        if length <= 0:
            return 0
    return length


class ExplorativeSearch:
    """Greedy mutate-train-select search over conv-stack topologies."""

    def __init__(
        self,
        n_outputs: int,
        input_length: int,
        target_mae: float = 0.005,
        hidden_activation: str = "selu",
        output_activation: str = "softmax",
        config: TrainingConfig = TrainingConfig(epochs=8),
        max_rounds: int = 4,
        candidates_per_round: int = 4,
        seed: int = 0,
        executor: Optional[ParallelExecutor] = None,
    ):
        if target_mae <= 0:
            raise ValueError("target_mae must be positive")
        if max_rounds < 1 or candidates_per_round < 1:
            raise ValueError("max_rounds and candidates_per_round must be >= 1")
        self.n_outputs = int(n_outputs)
        self.input_length = int(input_length)
        self.target_mae = float(target_mae)
        self.hidden_activation = hidden_activation
        self.output_activation = output_activation
        self.config = config
        self.max_rounds = int(max_rounds)
        self.candidates_per_round = int(candidates_per_round)
        self.executor = executor
        self._rng = np.random.default_rng(seed)

    # -- mutation proposals ---------------------------------------------------

    def _mutations(self, blocks: Tuple[ConvBlock, ...]) -> List[Tuple[ConvBlock, ...]]:
        """All structural mutations of the incumbent that fit the input."""
        proposals: List[Tuple[ConvBlock, ...]] = []
        last = blocks[-1]
        # Deepen: append a conv layer (the paper's primary move).
        proposals.append(
            blocks + (ConvBlock(last.filters, max(last.kernel_size - 5, 3),
                                min(last.strides + 1, 4)),)
        )
        # Widen / narrow the last stage.
        proposals.append(blocks[:-1] + (ConvBlock(last.filters * 2, last.kernel_size, last.strides),))
        if last.filters >= 8:
            proposals.append(blocks[:-1] + (ConvBlock(last.filters // 2, last.kernel_size, last.strides),))
        # Adjust kernel and stride of the first stage.
        first = blocks[0]
        proposals.append((ConvBlock(first.filters, first.kernel_size + 5, first.strides),) + blocks[1:])
        proposals.append((ConvBlock(first.filters, first.kernel_size, first.strides + 1),) + blocks[1:])
        # Keep only candidates whose stack fits the input length.
        valid = [p for p in proposals if _output_length(self.input_length, p) > 0]
        # De-duplicate while preserving order.
        seen = set()
        unique = []
        for proposal in valid:
            if proposal not in seen:
                seen.add(proposal)
                unique.append(proposal)
        order = self._rng.permutation(len(unique))
        return [unique[i] for i in order[: self.candidates_per_round]]

    # -- the search loop ---------------------------------------------------------

    def run(
        self,
        dataset: SpectraDataset,
        progress: Optional[Callable[[str], None]] = None,
    ) -> SearchResult:
        """Search until ``target_mae`` is met or mutations stop helping."""
        if dataset.input_shape != (self.input_length,):
            raise ValueError(
                f"dataset input shape {dataset.input_shape} != "
                f"({self.input_length},)"
            )
        incumbent_blocks: Tuple[ConvBlock, ...] = (ConvBlock(16, 20, 2),)
        incumbent_metric = np.inf
        incumbent_spec: Optional[TopologySpec] = None
        history: List[Dict] = []

        for round_index in range(self.max_rounds):
            if round_index == 0:
                candidates = [incumbent_blocks]
            else:
                candidates = self._mutations(incumbent_blocks)
            specs = [
                _spec_from_blocks(
                    blocks, self.n_outputs,
                    self.hidden_activation, self.output_activation,
                )
                for blocks in candidates
            ]
            service = TrainingService(self.config, executor=self.executor)
            service.train_all(specs, dataset, progress=progress)
            # Match runs to candidates by name: a parallel sweep may have
            # dropped a failed candidate, so positional zip would misalign.
            runs_by_name = {run.topology_name: run for run in service.runs}
            improved = False
            for blocks, spec in zip(candidates, specs):
                run = runs_by_name.get(spec.name)
                if run is None:
                    continue  # candidate's task failed; skip, don't abort
                metric = run.metrics["val_mae"]
                history.append(
                    {"round": round_index, "topology": run.topology_name,
                     "val_mae": metric}
                )
                if metric < incumbent_metric:
                    incumbent_metric = metric
                    incumbent_blocks = blocks
                    incumbent_spec = _spec_from_blocks(
                        blocks, self.n_outputs,
                        self.hidden_activation, self.output_activation,
                    )
                    improved = True
            if incumbent_metric <= self.target_mae:
                return SearchResult(
                    best_spec=incumbent_spec,
                    best_blocks=incumbent_blocks,
                    best_metric=incumbent_metric,
                    rounds=round_index + 1,
                    target_reached=True,
                    history=history,
                )
            if round_index > 0 and not improved:
                break
        return SearchResult(
            best_spec=incumbent_spec,
            best_blocks=incumbent_blocks,
            best_metric=incumbent_metric,
            rounds=min(round_index + 1, self.max_rounds),
            target_reached=incumbent_metric <= self.target_mae,
            history=history,
        )

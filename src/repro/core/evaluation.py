"""Evaluation utilities for the paper's result figures.

* per-compound MAE bars (blue) and overall MAE (red) of Figs. 5-7;
* plateau standard deviations (the LSTM's 20 %-reduced temporal scatter);
* converting raw measurement lists into network-ready arrays.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Tuple

import numpy as np

from repro.ms.spectrum import MassSpectrum, MzAxis
from repro.ms.resolution import resample_spectrum

__all__ = [
    "evaluate_per_compound",
    "measurements_to_arrays",
    "plateau_standard_deviation",
]


def evaluate_per_compound(
    predictions: np.ndarray,
    targets: np.ndarray,
    names: Sequence[str],
) -> Dict[str, float]:
    """Per-output and overall MAE, as plotted in Figs. 5-7.

    Returns ``{name: mae, ..., "mean": overall_mae}``.
    """
    predictions = np.asarray(predictions, dtype=np.float64)
    targets = np.asarray(targets, dtype=np.float64)
    if predictions.shape != targets.shape:
        raise ValueError(
            f"shape mismatch: {predictions.shape} vs {targets.shape}"
        )
    if predictions.shape[1] != len(names):
        raise ValueError(
            f"{len(names)} names for {predictions.shape[1]} outputs"
        )
    errors = np.mean(np.abs(predictions - targets), axis=0)
    report = {name: float(err) for name, err in zip(names, errors)}
    report["mean"] = float(errors.mean())
    return report


def measurements_to_arrays(
    measurements: Sequence[Tuple[MassSpectrum, Mapping[str, float]]],
    task_compounds: Sequence[str],
    axis: MzAxis,
    normalize: str = "max",
) -> Tuple[np.ndarray, np.ndarray]:
    """Convert (spectrum, label-dict) pairs to network inputs/targets.

    Spectra measured on a different m/z axis are interpolated onto ``axis``
    (the paper's resolution-change handling); intensities are normalized
    the same way the training data was.
    """
    if not measurements:
        raise ValueError("measurements must be non-empty")
    x = np.empty((len(measurements), axis.size))
    y = np.empty((len(measurements), len(task_compounds)))
    for i, (spectrum, labels) in enumerate(measurements):
        if (spectrum.axis.start, spectrum.axis.stop, spectrum.axis.step) != (
            axis.start,
            axis.stop,
            axis.step,
        ):
            spectrum = resample_spectrum(spectrum, axis)
        x[i] = spectrum.normalized(normalize).intensities
        lower = {k.lower(): float(v) for k, v in labels.items()}
        y[i] = [lower.get(name.lower(), 0.0) for name in task_compounds]
    return x, y


def plateau_standard_deviation(
    predictions: np.ndarray, plateau_ids: np.ndarray
) -> float:
    """Mean within-plateau standard deviation of predictions.

    During steady-state operation the true concentrations are constant, so
    scatter of the predictions within one plateau is pure estimator noise —
    the quantity the paper reports the LSTM reduces by ~20 %.
    """
    predictions = np.asarray(predictions, dtype=np.float64)
    plateau_ids = np.asarray(plateau_ids)
    if predictions.shape[0] != plateau_ids.shape[0]:
        raise ValueError("predictions and plateau_ids lengths differ")
    stds: List[float] = []
    for plateau in np.unique(plateau_ids):
        block = predictions[plateau_ids == plateau]
        if block.shape[0] < 2:
            continue
        stds.append(float(np.mean(np.std(block, axis=0))))
    if not stds:
        raise ValueError("no plateau has at least two samples")
    return float(np.mean(stds))

"""Declarative network topologies.

The paper's Tool-4 frontend "allow[s] the definition of one or more network
topologies and the training- and validation datasets to use without
modifying the source code"; a :class:`TopologySpec` is that definition —
a named, JSON-serializable layer list that builds into a
:class:`repro.nn.Sequential`.

Factory functions provide every architecture the paper uses:

* :func:`table1_topology` — the MS CNN of Table 1, with the activation
  functions of layer 6 (last conv) and layer 8 (output) configurable,
  exactly the axes of the Fig. 5 study;
* :func:`activation_study_variants` — all eight Fig. 5 variants, named as
  the paper labels them (e.g. ``selu_sftm_sftm``);
* :func:`nmr_conv_topology` — the 10 532-parameter locally-connected NMR
  net;
* :func:`nmr_lstm_topology` — the 221 956-parameter LSTM(32) model;
* :func:`mlp_topology`, :func:`resnet_topology`, :func:`highway_topology`
  — the preliminary-study architectures.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.nn.layers import LAYER_REGISTRY
from repro.nn.model import Sequential

__all__ = [
    "TopologySpec",
    "table1_topology",
    "activation_study_variants",
    "nmr_conv_topology",
    "nmr_lstm_topology",
    "mlp_topology",
    "resnet_topology",
    "highway_topology",
]


@dataclass
class TopologySpec:
    """A named, serializable network architecture."""

    name: str
    layers: List[Dict] = field(default_factory=list)
    description: str = ""

    def add(self, layer_class: str, **config) -> "TopologySpec":
        if layer_class not in LAYER_REGISTRY:
            raise ValueError(
                f"unknown layer class {layer_class!r}; "
                f"known: {sorted(LAYER_REGISTRY)}"
            )
        self.layers.append({"class": layer_class, "config": dict(config)})
        return self

    def build(self, input_shape: Tuple[int, ...], seed: Optional[int] = 0) -> Sequential:
        """Instantiate and build the model for ``input_shape``."""
        if not self.layers:
            raise ValueError(f"topology {self.name!r} has no layers")
        model = Sequential(name=self.name)
        for entry in self.layers:
            model.add(LAYER_REGISTRY[entry["class"]](**entry["config"]))
        model.build(input_shape, seed=seed)
        return model

    # -- serialization -----------------------------------------------------

    def to_json(self) -> str:
        return json.dumps(
            {"name": self.name, "description": self.description, "layers": self.layers}
        )

    @classmethod
    def from_json(cls, payload: str) -> "TopologySpec":
        data = json.loads(payload)
        spec = cls(name=data["name"], description=data.get("description", ""))
        for entry in data["layers"]:
            spec.add(entry["class"], **entry["config"])
        return spec

    def __len__(self) -> int:
        return len(self.layers)


def table1_topology(
    n_outputs: int,
    hidden_activation: str = "selu",
    conv6_activation: str = "softmax",
    output_activation: str = "softmax",
    name: Optional[str] = None,
) -> TopologySpec:
    """The paper's Table-1 MS network.

    Layers (input and reshape implicit in our framework's build step):
    Conv1D(25, k20, s1) / Conv1D(25, k20, s3) / Conv1D(25, k15, s2) with the
    hidden activation, Conv1D(15, k15, s4) with ``conv6_activation``,
    Flatten, Dense(n_outputs) with ``output_activation``.
    """
    if name is None:
        short = {"softmax": "sftm", "linear": "lin"}
        name = (
            f"{hidden_activation}_{short.get(conv6_activation, conv6_activation)}"
            f"_{short.get(output_activation, output_activation)}"
        )
    spec = TopologySpec(name, description="Table 1 MS CNN")
    spec.add("Reshape", target_shape=[-1, 1])
    spec.add("Conv1D", filters=25, kernel_size=20, strides=1, activation=hidden_activation)
    spec.add("Conv1D", filters=25, kernel_size=20, strides=3, activation=hidden_activation)
    spec.add("Conv1D", filters=25, kernel_size=15, strides=2, activation=hidden_activation)
    spec.add("Conv1D", filters=15, kernel_size=15, strides=4, activation=conv6_activation)
    spec.add("Flatten")
    spec.add("Dense", units=n_outputs, activation=output_activation)
    return spec


def activation_study_variants(n_outputs: int) -> List[TopologySpec]:
    """The eight Fig. 5 networks: {relu,selu} x {sftm,lin} x {sftm,lin}.

    Order matches the paper's figure axis: for each hidden activation, the
    (layer-6, layer-8) combinations sftm/sftm, sftm/lin, lin/sftm, lin/lin.
    """
    variants = []
    for hidden in ("relu", "selu"):
        for conv6 in ("softmax", "linear"):
            for output in ("softmax", "linear"):
                variants.append(
                    table1_topology(
                        n_outputs,
                        hidden_activation=hidden,
                        conv6_activation=conv6,
                        output_activation=output,
                    )
                )
    return variants


def nmr_conv_topology(n_outputs: int = 4) -> TopologySpec:
    """The paper's NMR model: one locally-connected conv layer (4 filters,
    kernel and stride 9), flatten, dense output — 10 532 parameters on the
    1700-point axis."""
    spec = TopologySpec("nmr_conv", description="locally connected NMR CNN")
    spec.add("Reshape", target_shape=[-1, 1])
    spec.add("LocallyConnected1D", filters=4, kernel_size=9, strides=9)
    spec.add("Flatten")
    spec.add("Dense", units=n_outputs, activation="linear")
    return spec


def nmr_lstm_topology(n_outputs: int = 4, units: int = 32) -> TopologySpec:
    """The paper's LSTM model: LSTM(32) over a window of raw spectra plus a
    dense head — 221 956 parameters for 1700-point spectra."""
    spec = TopologySpec(f"nmr_lstm{units}", description="NMR time-series LSTM")
    spec.add("LSTM", units=units)
    spec.add("Dense", units=n_outputs, activation="linear")
    return spec


def mlp_topology(
    n_outputs: int,
    hidden_units: Sequence[int] = (256, 128),
    activation: str = "relu",
    output_activation: str = "softmax",
) -> TopologySpec:
    """A plain MLP (preliminary-study baseline)."""
    spec = TopologySpec(
        f"mlp_{'x'.join(str(u) for u in hidden_units)}",
        description="preliminary-study MLP",
    )
    for units in hidden_units:
        spec.add("Dense", units=units, activation=activation)
    spec.add("Dense", units=n_outputs, activation=output_activation)
    return spec


def resnet_topology(
    n_outputs: int,
    width: int = 128,
    depth: int = 3,
    activation: str = "relu",
    output_activation: str = "softmax",
) -> TopologySpec:
    """A ResNet-style stack of identity-skip dense blocks."""
    if depth < 1:
        raise ValueError("depth must be >= 1")
    spec = TopologySpec(f"resnet_{width}x{depth}", description="preliminary-study ResNet")
    spec.add("Dense", units=width, activation=activation)
    for _ in range(depth):
        spec.add("ResidualDense", activation=activation)
    spec.add("Dense", units=n_outputs, activation=output_activation)
    return spec


def highway_topology(
    n_outputs: int,
    width: int = 128,
    depth: int = 3,
    activation: str = "relu",
    output_activation: str = "softmax",
) -> TopologySpec:
    """A Highway-network stack (the paper's ref [13])."""
    if depth < 1:
        raise ValueError("depth must be >= 1")
    spec = TopologySpec(f"highway_{width}x{depth}", description="preliminary-study Highway net")
    spec.add("Dense", units=width, activation=activation)
    for _ in range(depth):
        spec.add("HighwayDense", activation=activation)
    spec.add("Dense", units=n_outputs, activation=output_activation)
    return spec

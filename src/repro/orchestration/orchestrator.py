"""The campaign runner: plan cells, skip cached, journal progress, resume.

:class:`SweepOrchestrator` turns a :class:`~repro.orchestration.campaign.CampaignSpec`
into a supervised run:

* **plan** — enumerate the grid in canonical order and probe the
  :class:`~repro.compute.cache.ArtifactCache` for each cell's canonical
  key, so the operator sees exactly what a run will cost before paying;
* **run** — pre-warm the shared dataset artifacts in-parent (one
  generation per sample-size column, not one per worker), fan pending
  cells out over a :class:`~repro.compute.executor.ParallelExecutor` in
  checkpointed waves, and append a journal record as each cell commits;
* **resume** — an interrupted campaign leaves a ``campaign_started``
  journal record without its ``campaign_completed``; reopening with
  ``resume=True`` replays the journal, re-plans against the cache (the
  cache, not the journal, is the source of truth for completed work —
  a cell that committed its row before the kill replays as a verified
  cache hit even if its journal append was torn), and runs only what is
  missing.  Reopening *without* ``resume=True`` raises
  :class:`CampaignInProgressError` so two operators cannot silently
  interleave runs.

The final :class:`~repro.orchestration.campaign.CampaignReport` is
rebuilt from cached rows in canonical grid order, so a
killed-and-resumed campaign serializes byte-identically to an
uninterrupted one — the acceptance contract the resume tests pin.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.compute.cache import ArtifactCache, canonical_key
from repro.compute.executor import ParallelExecutor, TaskFailure
from repro.observability.runtime import get_registry, get_tracer
from repro.orchestration.campaign import (
    CampaignCell,
    CampaignReport,
    CampaignSpec,
    campaign_datasets,
    cell_config,
    run_campaign_cell,
)
from repro.storage.journal import Journal

__all__ = [
    "CampaignInProgressError",
    "IncompleteCampaignError",
    "CampaignRunResult",
    "SweepOrchestrator",
    "report_json",
]


class CampaignInProgressError(RuntimeError):
    """The journal shows a started-but-unfinished run and resume=False."""


class IncompleteCampaignError(RuntimeError):
    """A strict report was requested while cells are still pending."""


@dataclass
class CampaignRunResult:
    """What one ``run()`` invocation did.

    ``report`` is None when the run paused early (``max_cells``) with
    cells still pending; resume with ``run(resume=True)``.
    """

    report: Optional[CampaignReport]
    computed: int = 0
    cached: int = 0
    failed: int = 0
    paused: bool = False
    failures: List[dict] = field(default_factory=list)

    @property
    def complete(self) -> bool:
        return self.report is not None


class SweepOrchestrator:
    """Plans, executes, journals and resumes one campaign grid."""

    def __init__(
        self,
        spec: CampaignSpec,
        cache: ArtifactCache,
        journal_path: Optional[str] = None,
        executor: Optional[ParallelExecutor] = None,
        wave_size: Optional[int] = None,
        on_cell: Optional[Callable[[int, CampaignCell, dict], None]] = None,
    ):
        if wave_size is not None and wave_size < 1:
            raise ValueError("wave_size must be >= 1")
        self.spec = spec
        self.cache = cache
        self.journal_path = journal_path
        self.executor = executor
        self.wave_size = wave_size
        # Parent-side hook fired after each newly computed cell commits
        # (tests use it to kill a run at a precise point in the grid).
        self.on_cell = on_cell
        registry = get_registry()
        self._m_cells = registry.counter(
            "orchestration_cells_total", "campaign cells by outcome"
        )
        self._m_runs = registry.counter(
            "orchestration_runs_total", "campaign run() calls by disposition"
        )

    # -- planning ------------------------------------------------------------

    def cells(self) -> List[CampaignCell]:
        return self.spec.cells()

    def plan(self) -> List[dict]:
        """One entry per cell: id, canonical key, and cached state."""
        entries = []
        for cell in self.cells():
            key = canonical_key(cell_config(self.spec, cell))
            entries.append(
                {
                    "cell_id": cell.cell_id,
                    "key": key,
                    "cached": self.cache.path_for(key).exists(),
                }
            )
        return entries

    # -- journal -------------------------------------------------------------

    def _journal(self) -> Optional[Journal]:
        if self.journal_path is None:
            return None
        return Journal(self.journal_path)

    def _journal_state(self, journal: Journal) -> str:
        """``'fresh'`` | ``'in_progress'`` | ``'completed'``.

        Also guards against pointing one journal at a different
        campaign: every record carries the campaign key.
        """
        if not journal.exists():
            return "fresh"
        records, _stats = journal.replay()
        state = "fresh"
        for record in records:
            recorded_key = record.get("campaign_key")
            if recorded_key is not None and recorded_key != self.spec.campaign_key():
                raise ValueError(
                    f"journal {self.journal_path} belongs to campaign "
                    f"{recorded_key[:12]}…, not {self.spec.campaign_key()[:12]}…"
                )
            event = record.get("event")
            if event in ("campaign_started", "campaign_resumed"):
                state = "in_progress"
            elif event == "campaign_completed":
                state = "completed"
        return state

    # -- execution -----------------------------------------------------------

    def _payload(self, cell: CampaignCell) -> dict:
        return {
            "spec": self.spec.as_config(),
            "cell": cell.as_config(),
            "cache_root": str(self.cache.root),
        }

    def run(
        self,
        resume: bool = False,
        max_cells: Optional[int] = None,
    ) -> CampaignRunResult:
        """Execute (or resume) the campaign; returns what happened.

        ``max_cells`` stops scheduling after that many *newly computed*
        cells commit, leaving the journal in progress — the deterministic
        pause the CI smoke uses in place of an actual kill.  Completed
        campaigns re-run as pure cache replay and still return the full
        report.
        """
        if max_cells is not None and max_cells < 0:
            raise ValueError("max_cells must be >= 0")
        journal = self._journal()
        try:
            if journal is not None:
                state = self._journal_state(journal)
                if state == "in_progress" and not resume:
                    raise CampaignInProgressError(
                        f"journal {self.journal_path} records an unfinished "
                        f"campaign; pass resume=True (CLI: --resume) to "
                        f"continue it"
                    )
                event = (
                    "campaign_resumed" if state == "in_progress"
                    else "campaign_started"
                )
                journal.append(
                    {
                        "event": event,
                        "campaign_key": self.spec.campaign_key(),
                        "cells": len(self.cells()),
                    }
                )
                self._m_runs.inc(
                    disposition="resumed" if event == "campaign_resumed"
                    else "started"
                )
            else:
                self._m_runs.inc(disposition="unjournaled")
            return self._run_cells(journal, max_cells)
        finally:
            if journal is not None:
                journal.close()

    def _run_cells(
        self, journal: Optional[Journal], max_cells: Optional[int]
    ) -> CampaignRunResult:
        plan = self.plan()
        cells = self.cells()
        pending = [
            (index, cell)
            for index, (cell, entry) in enumerate(zip(cells, plan))
            if not entry["cached"]
        ]
        executor = self.executor if self.executor is not None else ParallelExecutor()
        wave_size = (
            self.wave_size if self.wave_size is not None
            else max(1, executor.max_workers)
        )
        result = CampaignRunResult(
            report=None, cached=len(cells) - len(pending)
        )
        for _ in range(result.cached):
            self._m_cells.inc(outcome="cached")
        budget = max_cells if max_cells is not None else len(pending)
        with get_tracer().start_span(
            "orchestration.campaign",
            attributes={
                "cells": len(cells),
                "cached": result.cached,
                "pending": len(pending),
                "backend": executor.backend,
            },
        ) as span:
            scheduled = pending[:budget]
            for start in range(0, len(scheduled), wave_size):
                wave = scheduled[start:start + wave_size]
                rows = executor.map_tasks(
                    run_campaign_cell,
                    [self._payload(cell) for _index, cell in wave],
                    label="campaign",
                )
                for (index, cell), row in zip(wave, rows):
                    if isinstance(row, TaskFailure):
                        result.failed += 1
                        self._m_cells.inc(outcome="failed")
                        failure = {
                            "cell_id": cell.cell_id,
                            "error_type": row.error_type,
                            "message": row.message,
                            "attempts": row.attempts,
                        }
                        result.failures.append(failure)
                        if journal is not None:
                            journal.append(
                                {
                                    "event": "cell_failed",
                                    "campaign_key": self.spec.campaign_key(),
                                    **failure,
                                }
                            )
                        continue
                    result.computed += 1
                    self._m_cells.inc(outcome="computed")
                    if journal is not None:
                        journal.append(
                            {
                                "event": "cell_completed",
                                "campaign_key": self.spec.campaign_key(),
                                "cell_id": cell.cell_id,
                                "cell_index": index,
                                "cache_key": row.get("cache_key"),
                            }
                        )
                    if self.on_cell is not None:
                        self.on_cell(index, cell, row)
            result.paused = (
                result.computed + result.failed < len(pending)
            )
            span.set_attribute("computed", result.computed)
            span.set_attribute("failed", result.failed)
            span.set_attribute("paused", result.paused)
            if result.paused:
                self._m_runs.inc(disposition="paused")
                return result
            result.report = self._build_report(result.failures)
            if journal is not None and result.failed == 0:
                journal.append(
                    {
                        "event": "campaign_completed",
                        "campaign_key": self.spec.campaign_key(),
                        "cells": len(cells),
                        "report_digest": canonical_key(
                            result.report.to_payload()
                        ),
                    }
                )
                self._m_runs.inc(disposition="completed")
        return result

    # -- reporting -----------------------------------------------------------

    def prewarm_datasets(self) -> int:
        """Generate the shared dataset artifacts in-parent.

        One training set per sample-size column plus the single shared
        evaluation set; returns how many artifacts were cache misses.
        Running this before fan-out stops N concurrent cold workers all
        generating the same spectra.
        """
        misses = 0
        for n_train in self.spec.sample_sizes:
            (_, _, train_info), (_, _, eval_info) = campaign_datasets(
                self.spec, n_train, self.cache
            )
            misses += (not train_info["hit"]) + (not eval_info["hit"])
        return misses

    def _build_report(self, failures: List[dict]) -> CampaignReport:
        """Rebuild the report purely from cached rows, in grid order.

        Every completed cell replays as a verified cache hit here, which
        is what makes the report byte-identical no matter how the
        campaign was interrupted along the way.
        """
        failed_ids = {failure["cell_id"] for failure in failures}
        rows = []
        for cell in self.cells():
            if cell.cell_id in failed_ids:
                continue
            key = canonical_key(cell_config(self.spec, cell))
            if not self.cache.path_for(key).exists():
                continue
            rows.append(run_campaign_cell(self._payload(cell)))
        return CampaignReport.from_rows(self.spec, rows, failures)

    def report(self, strict: bool = True) -> CampaignReport:
        """The aggregated surface of whatever the cache holds.

        ``strict=True`` (the default) refuses to summarize a partial
        campaign; pass ``strict=False`` to render work-in-progress.
        """
        plan = self.plan()
        missing = [entry["cell_id"] for entry in plan if not entry["cached"]]
        if missing and strict:
            raise IncompleteCampaignError(
                f"{len(missing)} of {len(plan)} cells have not completed "
                f"(first missing: {missing[0]}); run the campaign or pass "
                f"strict=False"
            )
        return self._build_report([])

    def to_status(self) -> dict:
        """JSON-ready plan summary for the CLI."""
        plan = self.plan()
        cached = sum(1 for entry in plan if entry["cached"])
        return {
            "campaign_key": self.spec.campaign_key(),
            "cells": len(plan),
            "cached": cached,
            "pending": len(plan) - cached,
            "plan": plan,
        }


def report_json(report: CampaignReport) -> str:
    """The canonical serialized form (what byte-identity is asserted on)."""
    return json.dumps(report.to_payload(), sort_keys=True, indent=2)

"""Sweep orchestration: the paper grid as one resumable campaign.

The paper's central empirical surface is a grid — activation pairs ×
training-set sizes × topologies (Figs. 5–7, Table 2).  This package
turns that grid into a single supervised unit of experimentation:

* :mod:`repro.orchestration.campaign` — :class:`CampaignSpec` pins the
  grid's full generating surface (canonical-config keyed, like
  ``MatrixSpec``); :func:`run_campaign_cell` computes one cell as a pure
  function of config (executor rng deliberately unused → byte-identical
  across backends and resumes) with its row cached under the cell
  config's canonical key; :class:`CampaignReport` aggregates the
  Fig-5/Fig-6 surfaces from rows in canonical grid order.
* :mod:`repro.orchestration.orchestrator` — :class:`SweepOrchestrator`
  plans cells against the :class:`~repro.compute.cache.ArtifactCache`,
  pre-warms shared dataset artifacts in-parent, fans pending cells out
  over a warm-pooled :class:`~repro.compute.executor.ParallelExecutor`
  in checkpointed waves, journals per-cell progress through the
  :class:`~repro.storage.journal.Journal` WAL, and resumes a killed
  campaign to a byte-identical report.

Layering: ``orchestration`` sits above ``compute``/``storage``/
``observability`` and imports ``core``/``nn``/``ms`` lazily inside cell
execution, mirroring ``adaptation``.
"""

from repro.orchestration.campaign import (
    CampaignCell,
    CampaignReport,
    CampaignSpec,
    cell_config,
    run_campaign_cell,
)
from repro.orchestration.orchestrator import (
    CampaignInProgressError,
    CampaignRunResult,
    IncompleteCampaignError,
    SweepOrchestrator,
    report_json,
)

__all__ = [
    "CampaignCell",
    "CampaignInProgressError",
    "CampaignReport",
    "CampaignRunResult",
    "CampaignSpec",
    "IncompleteCampaignError",
    "SweepOrchestrator",
    "cell_config",
    "report_json",
    "run_campaign_cell",
]

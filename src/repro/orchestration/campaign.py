"""The paper-reproduction campaign grid: spec, cells, and report.

One :class:`CampaignSpec` pins the full generating surface of a
Fig-5/Fig-6-style campaign — the grid axes (hidden/output activation
pairs × training-set sizes × MLP topologies) plus everything the axes
share (compounds, instrument, m/z axis, evaluation set size, training
budget, seeds).  From it every :class:`CampaignCell` is a *pure function
of configuration*:

* the training and evaluation datasets draw from seeds derived from the
  canonical content of the dataset's own generating surface, so every
  cell with the same ``n_train`` reuses one cached dataset artifact —
  workers hydrate spectra through the
  :class:`~repro.compute.cache.ArtifactCache` instead of receiving them
  pickled per task;
* model build/init/fit determinism comes from ``spec.seed`` exactly as in
  the serial training paths;
* the executor's per-task rng is deliberately unused, so cells are
  byte-identical across ``serial``/``thread``/``process`` backends and
  across killed-and-resumed runs.

:func:`run_campaign_cell` is the module-level executor task (picklable);
each cell caches its result row under the canonical key of its cell
config, which is what makes an interrupted campaign resumable: cells that
committed their row before the kill replay as cache hits.

:class:`CampaignReport` aggregates the rows into the two surfaces the
paper plots: accuracy versus training-set size per activation pair
(Fig. 5) and the per-topology comparison (Fig. 6).  Its
:meth:`~CampaignReport.to_payload` is canonical — rows in grid order,
run-variant fields stripped — so a resumed campaign's report is
byte-identical to an uninterrupted one.
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.compute.cache import ArtifactCache, canonical_blob, canonical_key
from repro.compute.datasets import generate_ms_dataset

__all__ = [
    "CampaignSpec",
    "CampaignCell",
    "CampaignReport",
    "run_campaign_cell",
    "cell_config",
]

# Fields added to a cell row at run time that must NOT appear in the
# canonical report payload (they vary between a cold run and a resume).
_RUN_VARIANT_FIELDS = ("cache_hit", "cache_key")


@dataclass(frozen=True)
class CampaignSpec:
    """The full generating surface of one reproduction campaign.

    Grid axes: ``activations`` are ``(hidden, output)`` activation pairs,
    ``sample_sizes`` are training-set sizes, ``topologies`` are MLP
    hidden-layer stacks.  Everything else is shared by every cell.
    """

    compounds: Tuple[str, ...]
    activations: Tuple[Tuple[str, str], ...] = (("relu", "softmax"),)
    sample_sizes: Tuple[int, ...] = (1000, 4000)
    topologies: Tuple[Tuple[int, ...], ...] = ((32,),)
    axis: Tuple[float, float, float] = (1.0, 50.0, 0.2)
    characteristics: Optional[dict] = None  # None = instrument defaults
    n_eval: int = 512
    epochs: int = 8
    batch_size: int = 64
    learning_rate: float = 0.006
    loss: str = "mae"
    seed: int = 0

    def __post_init__(self):
        if not self.compounds:
            raise ValueError("compounds must be non-empty")
        for label in ("activations", "sample_sizes", "topologies"):
            if not getattr(self, label):
                raise ValueError(f"{label} must be non-empty")
        for pair in self.activations:
            if len(pair) != 2:
                raise ValueError(
                    f"activations entries must be (hidden, output) pairs, "
                    f"got {pair!r}"
                )
        for n in self.sample_sizes:
            if n < 1:
                raise ValueError(f"sample_sizes must be >= 1, got {n}")
        for stack in self.topologies:
            if not stack or any(units < 1 for units in stack):
                raise ValueError(
                    f"topologies entries must be non-empty positive "
                    f"unit stacks, got {stack!r}"
                )
        if self.n_eval < 1 or self.epochs < 1 or self.batch_size < 1:
            raise ValueError("n_eval, epochs and batch_size must be >= 1")

    def as_config(self) -> dict:
        config = dataclasses.asdict(self)
        config["compounds"] = list(self.compounds)
        config["activations"] = [list(pair) for pair in self.activations]
        config["sample_sizes"] = list(self.sample_sizes)
        config["topologies"] = [list(stack) for stack in self.topologies]
        config["axis"] = list(self.axis)
        return config

    @classmethod
    def from_config(cls, config: dict) -> "CampaignSpec":
        config = dict(config)
        config["compounds"] = tuple(config["compounds"])
        config["activations"] = tuple(
            (str(hidden), str(output))
            for hidden, output in config["activations"]
        )
        config["sample_sizes"] = tuple(
            int(n) for n in config["sample_sizes"]
        )
        config["topologies"] = tuple(
            tuple(int(units) for units in stack)
            for stack in config["topologies"]
        )
        config["axis"] = tuple(config["axis"])
        return cls(**config)

    def campaign_key(self) -> str:
        """Canonical identity of the whole campaign (journal guard)."""
        return canonical_key({"kind": "campaign", "spec": self.as_config()})

    def dataset_surface(self) -> dict:
        """The fields that determine dataset bytes — and nothing more.

        Deliberately excludes the grid axes: adding a topology to the
        campaign must not re-seed (and therefore regenerate) the shared
        datasets every existing cell trained on.
        """
        return {
            "compounds": list(self.compounds),
            "axis": list(self.axis),
            "characteristics": self.characteristics,
            "seed": self.seed,
        }

    def cells(self) -> List["CampaignCell"]:
        """Every grid cell, in canonical (activation, n, topology) order."""
        return [
            CampaignCell(
                activation=hidden,
                output_activation=output,
                n_train=n,
                hidden_units=stack,
            )
            for hidden, output in self.activations
            for n in self.sample_sizes
            for stack in self.topologies
        ]


@dataclass(frozen=True)
class CampaignCell:
    """One grid coordinate: (activation pair, sample size, topology)."""

    activation: str
    output_activation: str
    n_train: int
    hidden_units: Tuple[int, ...]

    @property
    def activation_id(self) -> str:
        return f"{self.activation}-{self.output_activation}"

    @property
    def topology_id(self) -> str:
        return "x".join(str(units) for units in self.hidden_units)

    @property
    def cell_id(self) -> str:
        return f"{self.activation_id}/n{self.n_train}/h{self.topology_id}"

    def as_config(self) -> dict:
        return {
            "activation": self.activation,
            "output_activation": self.output_activation,
            "n_train": int(self.n_train),
            "hidden_units": list(self.hidden_units),
        }


def cell_config(spec: CampaignSpec, cell: CampaignCell) -> dict:
    """The canonical config one cell's cached row is keyed by."""
    return {
        "kind": "campaign_cell",
        "spec": spec.as_config(),
        "cell": cell.as_config(),
    }


def _derived_seed(tag: str, *configs: dict) -> int:
    """A stable 31-bit seed from canonical config content.

    Seeds depend only on *what* is generated, never on scheduling, so
    every backend and every resumed run draws identical streams.
    """
    blob = canonical_blob({"tag": tag, "configs": list(configs)})
    return int.from_bytes(hashlib.sha256(blob).digest()[:4], "big") % (2**31)


def _build_simulator(spec: CampaignSpec):
    from repro.ms.compounds import default_library
    from repro.ms.instrument import InstrumentCharacteristics
    from repro.ms.simulator import MassSpectrometerSimulator
    from repro.ms.spectrum import MzAxis

    characteristics = InstrumentCharacteristics(**(spec.characteristics or {}))
    start, stop, step = spec.axis
    return MassSpectrometerSimulator(
        characteristics, MzAxis(start, stop, step), default_library()
    )


def train_dataset_seed(spec: CampaignSpec, n_train: int) -> int:
    """Seed of the shared training dataset for one sample-size column."""
    return _derived_seed(
        "campaign_train", spec.dataset_surface(), {"n": int(n_train)}
    )


def eval_dataset_seed(spec: CampaignSpec) -> int:
    """Seed of the single evaluation dataset every cell scores against."""
    return _derived_seed("campaign_eval", spec.dataset_surface())


def campaign_datasets(
    spec: CampaignSpec,
    n_train: int,
    cache: Optional[ArtifactCache],
):
    """Hydrate (or generate) the train/eval datasets for one column.

    This is the ArtifactCache-backed dataset handoff: the orchestrator
    pre-warms these entries in-parent, so workers reload the arrays from
    the content-addressed store instead of shipping them pickled through
    the task pipe — and every cell that shares ``n_train`` shares one
    artifact.
    """
    simulator = _build_simulator(spec)
    train_x, train_y, train_info = generate_ms_dataset(
        simulator, list(spec.compounds), n_train,
        train_dataset_seed(spec, n_train), cache=cache,
    )
    eval_x, eval_y, eval_info = generate_ms_dataset(
        simulator, list(spec.compounds), spec.n_eval,
        eval_dataset_seed(spec), cache=cache,
    )
    return (train_x, train_y, train_info), (eval_x, eval_y, eval_info)


def run_campaign_cell(payload: dict, rng=None) -> dict:
    """Train and score one campaign cell; module-level for pickling.

    ``rng`` (the executor's per-task generator) is intentionally unused:
    every random draw comes from seeds derived from canonical config
    content, which is what makes cells byte-identical across backends
    and across killed-and-resumed campaigns.  The result row is cached
    under the cell config's canonical key, so re-running a completed
    cell is a verified read.
    """
    spec = CampaignSpec.from_config(payload["spec"])
    cell = CampaignCell(
        activation=payload["cell"]["activation"],
        output_activation=payload["cell"]["output_activation"],
        n_train=int(payload["cell"]["n_train"]),
        hidden_units=tuple(payload["cell"]["hidden_units"]),
    )
    cache_root = payload.get("cache_root")
    cache = ArtifactCache(cache_root) if cache_root else None
    config = cell_config(spec, cell)

    def compute() -> dict:
        from repro.core.topologies import mlp_topology
        from repro.nn.optimizers import Adam

        (train_x, train_y, train_info), (eval_x, eval_y, _) = (
            campaign_datasets(spec, cell.n_train, cache)
        )
        topology = mlp_topology(
            len(spec.compounds),
            hidden_units=cell.hidden_units,
            activation=cell.activation,
            output_activation=cell.output_activation,
        )
        model = topology.build(train_x.shape[1:], seed=spec.seed)
        model.compile(Adam(spec.learning_rate), spec.loss)
        history = model.fit(
            train_x, train_y,
            epochs=spec.epochs, batch_size=spec.batch_size,
            seed=spec.seed, verbose=False,
        )
        predictions = model.predict(eval_x)
        error = predictions - eval_y
        return {
            "cell_id": cell.cell_id,
            "activation": cell.activation,
            "output_activation": cell.output_activation,
            "n_train": int(cell.n_train),
            "hidden_units": list(cell.hidden_units),
            "mae": float(np.mean(np.abs(error))),
            "mse": float(np.mean(error ** 2)),
            "final_train_loss": float(history.history["loss"][-1]),
            "epochs_run": len(history.epochs),
            "n_eval": int(spec.n_eval),
            "dataset_key": train_info["key"],
        }

    if cache is None:
        row = compute()
        row["cache_hit"] = False
        return row
    row, key, hit = cache.get_or_create_json(config, compute)
    row = dict(row)
    row["cache_key"] = key
    row["cache_hit"] = bool(hit)
    return row


@dataclass
class CampaignReport:
    """The campaign's aggregated Fig-5/Fig-6 surfaces.

    ``rows`` hold one result dict per completed cell, in canonical grid
    order and stripped of run-variant fields, so two reports over the
    same completed campaign serialize byte-identically no matter how
    (or how many times) the campaign was interrupted.
    """

    spec: CampaignSpec
    rows: List[dict]
    failures: List[dict] = field(default_factory=list)

    @classmethod
    def from_rows(
        cls,
        spec: CampaignSpec,
        rows: List[dict],
        failures: Optional[List[dict]] = None,
    ) -> "CampaignReport":
        """Canonicalize: strip run-variant fields, sort into grid order."""
        order = {cell.cell_id: i for i, cell in enumerate(spec.cells())}
        cleaned = []
        for row in rows:
            row = {
                key: value for key, value in row.items()
                if key not in _RUN_VARIANT_FIELDS
            }
            cleaned.append(row)
        cleaned.sort(key=lambda row: order.get(row["cell_id"], len(order)))
        return cls(
            spec=spec,
            rows=cleaned,
            failures=sorted(
                (dict(f) for f in (failures or [])),
                key=lambda f: order.get(f.get("cell_id", ""), len(order)),
            ),
        )

    def accuracy_vs_samples(self, metric: str = "mae") -> Dict[str, List[Optional[float]]]:
        """Fig-5 surface: ``{activation_id: [metric per sample size]}``.

        Each point averages the metric over the topology axis, matching
        the paper's per-activation accuracy-vs-training-set-size curves.
        """
        sizes = list(self.spec.sample_sizes)
        index = {n: i for i, n in enumerate(sizes)}
        sums: Dict[str, List[float]] = {}
        counts: Dict[str, List[int]] = {}
        for row in self.rows:
            activation_id = f"{row['activation']}-{row['output_activation']}"
            if activation_id not in sums:
                sums[activation_id] = [0.0] * len(sizes)
                counts[activation_id] = [0] * len(sizes)
            i = index[int(row["n_train"])]
            sums[activation_id][i] += float(row[metric])
            counts[activation_id][i] += 1
        return {
            activation_id: [
                (sums[activation_id][i] / counts[activation_id][i])
                if counts[activation_id][i] else None
                for i in range(len(sizes))
            ]
            for activation_id in sums
        }

    def topology_surface(self, metric: str = "mae") -> Dict[str, List[Optional[float]]]:
        """Fig-6 surface: ``{topology_id: [metric per sample size]}``,
        averaged over the activation axis."""
        sizes = list(self.spec.sample_sizes)
        index = {n: i for i, n in enumerate(sizes)}
        sums: Dict[str, List[float]] = {}
        counts: Dict[str, List[int]] = {}
        for row in self.rows:
            topology_id = "x".join(str(u) for u in row["hidden_units"])
            if topology_id not in sums:
                sums[topology_id] = [0.0] * len(sizes)
                counts[topology_id] = [0] * len(sizes)
            i = index[int(row["n_train"])]
            sums[topology_id][i] += float(row[metric])
            counts[topology_id][i] += 1
        return {
            topology_id: [
                (sums[topology_id][i] / counts[topology_id][i])
                if counts[topology_id][i] else None
                for i in range(len(sizes))
            ]
            for topology_id in sums
        }

    def best_cell(self, metric: str = "mae") -> dict:
        """The winning cell (lowest metric) over the whole grid."""
        if not self.rows:
            raise ValueError("campaign has no completed cells")
        return min(self.rows, key=lambda row: float(row[metric]))

    def to_payload(self) -> dict:
        """Canonical JSON-ready form (byte-stable across resumes)."""
        return {
            "kind": "campaign_report",
            "campaign_key": self.spec.campaign_key(),
            "spec": self.spec.as_config(),
            "cells_total": len(self.spec.cells()),
            "cells_completed": len(self.rows),
            "rows": [dict(row) for row in self.rows],
            "failures": [dict(f) for f in self.failures],
            "accuracy_vs_samples": self.accuracy_vs_samples(),
            "topology_surface": self.topology_surface(),
            "sample_sizes": list(self.spec.sample_sizes),
        }

"""Thread-safe metrics: labeled counters, gauges and fixed-bucket histograms.

The paper's Tool 4 is an *automated* train/evaluate flow; the ROADMAP's
north star is a production service.  Both need the same primitive: cheap,
always-on measurement of where time and errors actually accrue.  This
module is the metrics half of :mod:`repro.observability` — a
:class:`MetricsRegistry` handing out three instrument kinds:

* :class:`Counter` — monotonically increasing totals (requests served,
  retries spent, checkpoints quarantined);
* :class:`Gauge` — point-in-time levels (queue depth, in-flight requests,
  current training loss);
* :class:`Histogram` — fixed-bucket latency/size distributions with
  percentile queries (``p50``/``p95``/``p99``) answered from bucket
  counts, never from stored samples.

Every instrument is labeled: one ``Counter`` object is a *family* and
``inc(outcome="queue_full")`` addresses one series within it.  All
operations are guarded by a per-instrument lock, so worker threads can
increment concurrently without losing updates.  Time comes from the
registry's injectable ``clock`` so tests are deterministic.

Hot paths that hit the same series repeatedly should bind it once with
``family.labels(service="x")`` — the returned child skips the per-call
kwargs allocation and label-key sort, which is most of a labeled write's
cost.

Cost model: a disabled registry short-circuits every write at a single
attribute check (no lock, no allocation), which is what keeps default-on
instrumentation inside the serving layer's < 5% overhead budget.
Layering: this module imports only the standard library.
"""

from __future__ import annotations

import bisect
import math
import threading
import time
from typing import Callable, Dict, Iterable, List, Optional, Tuple

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
]

# Upper bounds in seconds, spanning sub-millisecond analyzer calls to
# multi-second training epochs; the final +inf bucket is implicit.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)

_LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, object]) -> _LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _key_to_labels(key: _LabelKey) -> Dict[str, str]:
    return dict(key)


class _Instrument:
    """Common shell: name, help text, registry back-reference, lock."""

    kind = "instrument"

    def __init__(self, name: str, help: str, registry: "MetricsRegistry"):
        self.name = name
        self.help = help
        self._registry = registry
        self._lock = threading.Lock()

    @property
    def enabled(self) -> bool:
        return self._registry.enabled

    def series_labels(self) -> List[Dict[str, str]]:
        """The label sets this family has recorded, insertion-ordered."""
        with self._lock:
            return [_key_to_labels(key) for key in self._series_keys()]

    def _series_keys(self) -> Iterable[_LabelKey]:  # pragma: no cover
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


class _BoundCounter:
    """One counter series with its label key precomputed (see ``labels()``)."""

    __slots__ = ("_family", "_key")

    def __init__(self, family: "Counter", key: _LabelKey):
        self._family = family
        self._key = key

    def inc(self, amount: float = 1.0) -> None:
        family = self._family
        if not family._registry.enabled:
            return
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        with family._lock:
            family._values[self._key] = (
                family._values.get(self._key, 0.0) + float(amount)
            )

    def value(self) -> float:
        with self._family._lock:
            return self._family._values.get(self._key, 0.0)


class _BoundGauge:
    """One gauge series with its label key precomputed."""

    __slots__ = ("_family", "_key")

    def __init__(self, family: "Gauge", key: _LabelKey):
        self._family = family
        self._key = key

    def set(self, value: float) -> None:
        family = self._family
        if not family._registry.enabled:
            return
        with family._lock:
            family._values[self._key] = float(value)

    def inc(self, amount: float = 1.0) -> None:
        family = self._family
        if not family._registry.enabled:
            return
        with family._lock:
            family._values[self._key] = (
                family._values.get(self._key, 0.0) + float(amount)
            )

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    def value(self) -> float:
        with self._family._lock:
            return self._family._values.get(self._key, 0.0)


class _BoundHistogram:
    """One histogram series with its label key precomputed."""

    __slots__ = ("_family", "_key")

    def __init__(self, family: "Histogram", key: _LabelKey):
        self._family = family
        self._key = key

    def observe(self, value: float) -> None:
        family = self._family
        if not family._registry.enabled:
            return
        value = float(value)
        index = bisect.bisect_left(family.buckets, value)
        with family._lock:
            series = family._series.get(self._key)
            if series is None:
                series = family._series[self._key] = _HistogramSeries(
                    len(family.buckets)
                )
            series.bucket_counts[index] += 1
            series.count += 1
            series.sum += value
            if value < series.min:
                series.min = value
            if value > series.max:
                series.max = value

    def time(self):
        return _BoundHistogramTimer(self)


class Counter(_Instrument):
    """A labeled, monotonically increasing total."""

    kind = "counter"

    def __init__(self, name: str, help: str, registry: "MetricsRegistry"):
        super().__init__(name, help, registry)
        self._values: Dict[_LabelKey, float] = {}

    def labels(self, **labels) -> _BoundCounter:
        """Bind one series for repeated hot-path increments."""
        return _BoundCounter(self, _label_key(labels))

    def inc(self, amount: float = 1.0, **labels) -> None:
        if not self._registry.enabled:
            return
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + float(amount)

    def value(self, **labels) -> float:
        with self._lock:
            return self._values.get(_label_key(labels), 0.0)

    def total(self) -> float:
        """Sum across every label series."""
        with self._lock:
            return float(sum(self._values.values()))

    def _series_keys(self):
        return list(self._values)

    def snapshot(self) -> List[dict]:
        with self._lock:
            return [
                {"labels": _key_to_labels(key), "value": value}
                for key, value in self._values.items()
            ]


class Gauge(_Instrument):
    """A labeled level that can move both ways."""

    kind = "gauge"

    def __init__(self, name: str, help: str, registry: "MetricsRegistry"):
        super().__init__(name, help, registry)
        self._values: Dict[_LabelKey, float] = {}

    def labels(self, **labels) -> _BoundGauge:
        """Bind one series for repeated hot-path updates."""
        return _BoundGauge(self, _label_key(labels))

    def set(self, value: float, **labels) -> None:
        if not self._registry.enabled:
            return
        with self._lock:
            self._values[_label_key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels) -> None:
        if not self._registry.enabled:
            return
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + float(amount)

    def dec(self, amount: float = 1.0, **labels) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels) -> float:
        with self._lock:
            return self._values.get(_label_key(labels), 0.0)

    def _series_keys(self):
        return list(self._values)

    def snapshot(self) -> List[dict]:
        with self._lock:
            return [
                {"labels": _key_to_labels(key), "value": value}
                for key, value in self._values.items()
            ]


class _HistogramSeries:
    """Bucket counts plus count/sum/min/max for one label set."""

    __slots__ = ("bucket_counts", "count", "sum", "min", "max")

    def __init__(self, n_buckets: int):
        self.bucket_counts = [0] * (n_buckets + 1)  # final slot: overflow
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")


class Histogram(_Instrument):
    """Fixed upper-bound buckets with percentile queries.

    ``observe(v)`` lands ``v`` in the first bucket whose bound is ``>= v``
    (values above the last bound go to an implicit overflow bucket).
    :meth:`percentile` answers from cumulative bucket counts by linear
    interpolation inside the covering bucket, clamped to the observed
    ``[min, max]`` — so a series whose samples all share one value reports
    that exact value at every percentile, and a single-sample series
    reports the sample itself.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        registry: "MetricsRegistry",
        buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS,
    ):
        super().__init__(name, help, registry)
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError(f"bucket bounds must be strictly increasing: {bounds}")
        self.buckets = bounds
        self._series: Dict[_LabelKey, _HistogramSeries] = {}

    def labels(self, **labels) -> _BoundHistogram:
        """Bind one series for repeated hot-path observations."""
        return _BoundHistogram(self, _label_key(labels))

    def observe(self, value: float, **labels) -> None:
        if not self._registry.enabled:
            return
        value = float(value)
        key = _label_key(labels)
        index = bisect.bisect_left(self.buckets, value)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = _HistogramSeries(len(self.buckets))
            series.bucket_counts[index] += 1
            series.count += 1
            series.sum += value
            if value < series.min:
                series.min = value
            if value > series.max:
                series.max = value

    def time(self, **labels):
        """Context manager: observe the elapsed registry-clock time."""
        return _HistogramTimer(self, labels)

    # -- queries -----------------------------------------------------------

    def count(self, **labels) -> int:
        with self._lock:
            series = self._series.get(_label_key(labels))
            return series.count if series is not None else 0

    def sum(self, **labels) -> float:
        with self._lock:
            series = self._series.get(_label_key(labels))
            return series.sum if series is not None else 0.0

    def mean(self, **labels) -> Optional[float]:
        with self._lock:
            series = self._series.get(_label_key(labels))
            if series is None or series.count == 0:
                return None
            return series.sum / series.count

    def percentile(self, p: float, **labels) -> Optional[float]:
        """The p-th percentile estimate (p in [0, 100]); None when empty."""
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"p must be in [0, 100], got {p}")
        with self._lock:
            series = self._series.get(_label_key(labels))
            if series is None or series.count == 0:
                return None
            if series.count == 1:
                return series.sum  # the single sample, exactly
            rank = min(max(math.ceil(p / 100.0 * series.count), 1),
                       series.count)
            cumulative = 0
            for index, bucket_count in enumerate(series.bucket_counts):
                if bucket_count == 0:
                    continue
                if cumulative + bucket_count >= rank:
                    lower = (
                        self.buckets[index - 1] if index > 0 else series.min
                    )
                    upper = (
                        self.buckets[index]
                        if index < len(self.buckets)
                        else series.max
                    )
                    # No sample can lie outside the observed range, so
                    # tighten the interpolation ends with it.
                    lower = max(lower, series.min)
                    upper = min(upper, series.max)
                    position = (rank - cumulative) / bucket_count
                    estimate = lower + (upper - lower) * position
                    return min(max(estimate, series.min), series.max)
                cumulative += bucket_count
            return series.max  # unreachable; defensive

    def percentiles(self, ps=(50.0, 95.0, 99.0), **labels) -> Dict[str, Optional[float]]:
        return {f"p{p:g}": self.percentile(p, **labels) for p in ps}

    def _series_keys(self):
        return list(self._series)

    def snapshot(self) -> List[dict]:
        with self._lock:
            out = []
            for key, series in self._series.items():
                out.append(
                    {
                        "labels": _key_to_labels(key),
                        "count": series.count,
                        "sum": series.sum,
                        "min": series.min if series.count else None,
                        "max": series.max if series.count else None,
                        "bucket_bounds": list(self.buckets),
                        "bucket_counts": list(series.bucket_counts),
                    }
                )
        for entry in out:
            labels = entry["labels"]
            entry.update(self.percentiles(**labels))
        return out


class _HistogramTimer:
    __slots__ = ("_histogram", "_labels", "_start")

    def __init__(self, histogram: Histogram, labels: Dict[str, object]):
        self._histogram = histogram
        self._labels = labels

    def __enter__(self):
        self._start = self._histogram._registry.clock()
        return self

    def __exit__(self, *exc_info):
        self._histogram.observe(
            self._histogram._registry.clock() - self._start, **self._labels
        )


class _BoundHistogramTimer:
    __slots__ = ("_bound", "_start")

    def __init__(self, bound: _BoundHistogram):
        self._bound = bound

    def __enter__(self):
        self._start = self._bound._family._registry.clock()
        return self

    def __exit__(self, *exc_info):
        self._bound.observe(
            self._bound._family._registry.clock() - self._start
        )


class MetricsRegistry:
    """Named instruments behind one lock; the process-global default lives
    in :mod:`repro.observability.runtime`.

    ``registry.counter(name)`` registers on first use and returns the same
    family on every later call; asking for an existing name as a different
    kind raises.  ``enabled=False`` (or :meth:`disable`) turns every write
    on every instrument of this registry into a single-branch no-op —
    reads still work, reporting whatever was recorded while enabled.
    """

    def __init__(
        self,
        enabled: bool = True,
        clock: Callable[[], float] = time.perf_counter,
    ):
        self.enabled = bool(enabled)
        self.clock = clock
        self._lock = threading.Lock()
        self._metrics: Dict[str, _Instrument] = {}

    # -- lifecycle ---------------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def clear(self) -> None:
        """Drop every instrument (tests; not for production use)."""
        with self._lock:
            self._metrics = {}

    # -- instrument factories ----------------------------------------------

    def _get(self, name: str, kind: type, factory) -> _Instrument:
        if not name:
            raise ValueError("metric name must be non-empty")
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, kind):
                    raise ValueError(
                        f"metric {name!r} is a {existing.kind}, not a "
                        f"{kind.kind}"
                    )
                return existing
            instrument = factory()
            self._metrics[name] = instrument
            return instrument

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get(name, Counter, lambda: Counter(name, help, self))

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get(name, Gauge, lambda: Gauge(name, help, self))

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        return self._get(
            name, Histogram, lambda: Histogram(name, help, self, buckets)
        )

    # -- introspection -----------------------------------------------------

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._metrics)

    def get(self, name: str) -> Optional[_Instrument]:
        with self._lock:
            return self._metrics.get(name)

    def snapshot(self) -> dict:
        """A JSON-serializable view of every series of every instrument."""
        with self._lock:
            instruments = list(self._metrics.values())
        return {
            "enabled": self.enabled,
            "metrics": [
                {
                    "name": instrument.name,
                    "type": instrument.kind,
                    "help": instrument.help,
                    "series": instrument.snapshot(),
                }
                for instrument in sorted(instruments, key=lambda m: m.name)
            ],
        }

"""Telemetry export: JSONL files, human-readable dumps, provenance bridge.

Three audiences, three formats:

* **machines** — :func:`export_spans_jsonl` / :func:`export_metrics_jsonl`
  write one JSON object per line (``grep``-able during an incident, easy
  to load into anything downstream); :func:`read_jsonl` is the matching
  loader and the round-trip is covered by tests;
* **humans** — :func:`text_dump` renders the live registry and tracer
  (or previously exported line dicts, via :func:`format_metric_dicts` /
  :func:`format_span_dicts`) as an aligned report, which is what
  ``python -m repro.cli telemetry`` prints;
* **provenance** — :func:`snapshot_to_provenance` persists a metrics
  snapshot as a :class:`~repro.db.provenance.ProvenanceTracker` artifact,
  so the paper's "trace the basis on which the data was generated"
  requirement extends to *how the system behaved* while generating it.

Layering: stdlib-only at import time; the provenance bridge imports
:mod:`repro.db` lazily inside the function so ``observability`` stays a
leaf package.
"""

from __future__ import annotations

import json
import math
import os
from typing import Iterable, List, Optional, Sequence, Union

from repro.observability.metrics import MetricsRegistry
from repro.observability.tracing import Span, Tracer

__all__ = [
    "sanitize_nonfinite",
    "export_spans_jsonl",
    "export_metrics_jsonl",
    "read_jsonl",
    "format_span_dicts",
    "format_metric_dicts",
    "text_dump",
    "snapshot_to_provenance",
]


def sanitize_nonfinite(value):
    """Recursively replace non-finite floats with ``None``.

    Telemetry legitimately contains ``inf`` (a drift severity against a
    perfect baseline) and ``nan`` (an empty histogram percentile), but
    the JSON ``Infinity``/``NaN`` tokens are a Python extension: strict
    parsers (and ``json.loads`` consumers in other languages) reject
    them, which would make the exported file unreadable exactly when it
    matters.  ``None`` is the portable encoding of "no usable number";
    :func:`read_jsonl` round-trips it as-is.
    """
    if isinstance(value, float):
        return value if math.isfinite(value) else None
    if isinstance(value, dict):
        return {key: sanitize_nonfinite(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [sanitize_nonfinite(item) for item in value]
    return value


def _encode_default(value):
    """Coerce non-JSON scalars (numpy floats/ints) before sanitizing."""
    try:
        as_float = float(value)
    except (TypeError, ValueError):
        raise TypeError(
            f"telemetry value of type {type(value).__name__} is not "
            f"JSON-encodable"
        )
    return as_float if math.isfinite(as_float) else None


def _write_jsonl(path: Union[str, os.PathLike], lines: Iterable[dict]) -> int:
    path = os.fspath(path)
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for line in lines:
            # allow_nan=False is the tripwire: nothing non-portable can
            # reach the file, because every non-finite float was mapped
            # to null first (including numpy scalars via the default).
            handle.write(
                json.dumps(
                    sanitize_nonfinite(line),
                    ensure_ascii=False,
                    allow_nan=False,
                    default=_encode_default,
                )
            )
            handle.write("\n")
            count += 1
    return count


def export_spans_jsonl(
    source: Union[Tracer, Sequence[Span]],
    path: Union[str, os.PathLike],
) -> int:
    """Write finished spans, one JSON object per line; returns the count."""
    spans = source.finished_spans() if isinstance(source, Tracer) else source
    return _write_jsonl(
        path, ({"kind": "span", **span.to_dict()} for span in spans)
    )


def export_metrics_jsonl(
    source: Union[MetricsRegistry, dict],
    path: Union[str, os.PathLike],
) -> int:
    """Write one line per metric *series*; returns the line count.

    ``source`` is a registry or an already-taken ``registry.snapshot()``.
    """
    snapshot = source.snapshot() if isinstance(source, MetricsRegistry) else source
    lines = []
    for metric in snapshot.get("metrics", []):
        for series in metric["series"]:
            lines.append(
                {
                    "kind": "metric",
                    "name": metric["name"],
                    "type": metric["type"],
                    "help": metric["help"],
                    **series,
                }
            )
    return _write_jsonl(path, lines)


def read_jsonl(path: Union[str, os.PathLike]) -> List[dict]:
    """Parse every line back into a dict (the export round-trip)."""
    records = []
    with open(os.fspath(path), "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


# -- human-readable rendering ------------------------------------------------


def _format_value(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def _format_labels(labels: dict) -> str:
    if not labels:
        return ""
    inner = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
    return "{" + inner + "}"


def format_metric_dicts(lines: Sequence[dict]) -> str:
    """Render exported metric line dicts as an aligned text block."""
    rows = ["== metrics =="]
    for line in lines:
        name = line.get("name", "?") + _format_labels(line.get("labels", {}))
        kind = line.get("type", "?")
        if kind == "histogram":
            rows.append(
                f"  {name:48s} count={line.get('count', 0)} "
                f"sum={_format_value(line.get('sum'))} "
                f"p50={_format_value(line.get('p50'))} "
                f"p95={_format_value(line.get('p95'))} "
                f"p99={_format_value(line.get('p99'))} "
                f"max={_format_value(line.get('max'))}"
            )
        else:
            rows.append(
                f"  {name:48s} {kind} = {_format_value(line.get('value'))}"
            )
    if len(rows) == 1:
        rows.append("  (no metrics recorded)")
    return "\n".join(rows)


def format_span_dicts(lines: Sequence[dict]) -> str:
    """Render exported span line dicts as indented per-trace trees."""
    rows = ["== spans =="]
    by_trace: dict = {}
    for line in lines:
        by_trace.setdefault(line.get("trace_id", "?"), []).append(line)
    for trace_id, spans in by_trace.items():
        rows.append(f"  trace {trace_id}")
        by_id = {s.get("span_id"): s for s in spans}
        depths = {}

        def depth_of(span: dict) -> int:
            span_id = span.get("span_id")
            if span_id in depths:
                return depths[span_id]
            parent = by_id.get(span.get("parent_id"))
            depths[span_id] = 0 if parent is None else depth_of(parent) + 1
            return depths[span_id]

        for span in sorted(
            spans, key=lambda s: (s.get("start_time") or 0.0, s.get("span_id") or "")
        ):
            indent = "  " * (depth_of(span) + 2)
            duration = span.get("duration_s")
            timing = (
                f"{1000.0 * duration:.3f} ms" if duration is not None else "open"
            )
            attributes = span.get("attributes") or {}
            attribute_text = (
                " " + _format_labels(attributes) if attributes else ""
            )
            rows.append(
                f"{indent}{span.get('name', '?'):24s} {timing:>12s} "
                f"[{span.get('status', '?')}]"
                f"{attribute_text}"
            )
    if len(rows) == 1:
        rows.append("  (no spans collected)")
    return "\n".join(rows)


def text_dump(
    registry: Optional[MetricsRegistry] = None,
    tracer: Optional[Tracer] = None,
) -> str:
    """One report of everything collected so far (defaults: the globals)."""
    from repro.observability import runtime

    registry = registry if registry is not None else runtime.get_registry()
    tracer = tracer if tracer is not None else runtime.get_tracer()
    metric_lines = []
    for metric in registry.snapshot()["metrics"]:
        for series in metric["series"]:
            metric_lines.append(
                {"name": metric["name"], "type": metric["type"], **series}
            )
    span_lines = [span.to_dict() for span in tracer.finished_spans()]
    return (
        format_metric_dicts(metric_lines)
        + "\n\n"
        + format_span_dicts(span_lines)
    )


# -- provenance bridge --------------------------------------------------------


def snapshot_to_provenance(
    registry: Optional[MetricsRegistry] = None,
    tracker=None,
    store=None,
    kind: str = "metrics_snapshot",
    metadata: Optional[dict] = None,
    parents: Sequence[int] = (),
) -> int:
    """Persist a metrics snapshot as a provenance artifact; returns its id.

    Pass a :class:`~repro.db.provenance.ProvenanceTracker` (``tracker``)
    or a :class:`~repro.db.document_store.DocumentStore` (``store``, a
    tracker is wrapped around it).  The artifact's metadata carries the
    full ``registry.snapshot()`` under ``"snapshot"`` plus any extra
    ``metadata`` keys, so a trained network's lineage can link to the
    telemetry of the run that produced it.
    """
    from repro.db.provenance import ProvenanceTracker  # lazy: keep leaf-ness
    from repro.observability import runtime

    registry = registry if registry is not None else runtime.get_registry()
    if tracker is None:
        tracker = ProvenanceTracker(store)
    payload = dict(metadata or {})
    payload["snapshot"] = registry.snapshot()
    return tracker.record(kind, payload, parents=parents)

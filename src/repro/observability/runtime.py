"""The process-global telemetry runtime: one registry, one tracer.

Instrumented modules (training loop, serving frontend, checkpoint
manager, journal, retry policy) default to the instruments returned here,
so a plain ``python examples/hardened_serving.py`` collects telemetry
with zero configuration — and every instrumented constructor also takes
an explicit ``registry=``/``tracer=`` so tests and benchmarks can isolate
or disable collection per instance.

``disable()``/``enable()`` flip both global halves at once;
:func:`scoped` swaps the globals for the duration of a ``with`` block
(tests that assert on exact counts use it to see only their own traffic).
Layering: imports only :mod:`repro.observability.metrics`/``tracing``,
which are stdlib-only leaves.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Optional

from repro.observability.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.observability.tracing import Tracer

__all__ = [
    "get_registry",
    "set_registry",
    "get_tracer",
    "set_tracer",
    "counter",
    "gauge",
    "histogram",
    "enable",
    "disable",
    "scoped",
]

_lock = threading.Lock()
_registry = MetricsRegistry()
_tracer = Tracer()


def get_registry() -> MetricsRegistry:
    """The process-global metrics registry (default-on)."""
    return _registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Install ``registry`` globally; returns the previous one."""
    global _registry
    with _lock:
        previous, _registry = _registry, registry
    return previous


def get_tracer() -> Tracer:
    """The process-global tracer (default-on)."""
    return _tracer


def set_tracer(tracer: Tracer) -> Tracer:
    """Install ``tracer`` globally; returns the previous one."""
    global _tracer
    with _lock:
        previous, _tracer = _tracer, tracer
    return previous


def counter(name: str, help: str = "") -> Counter:
    return _registry.counter(name, help)


def gauge(name: str, help: str = "") -> Gauge:
    return _registry.gauge(name, help)


def histogram(name: str, help: str = "", buckets=DEFAULT_LATENCY_BUCKETS) -> Histogram:
    return _registry.histogram(name, help, buckets)


def enable() -> None:
    """Turn global metric writes and span creation back on."""
    _registry.enable()
    _tracer.enable()


def disable() -> None:
    """Reduce every global instrument write to a single-branch no-op."""
    _registry.disable()
    _tracer.disable()


@contextmanager
def scoped(
    registry: Optional[MetricsRegistry] = None,
    tracer: Optional[Tracer] = None,
):
    """Temporarily swap the global registry and/or tracer.

    Yields ``(registry, tracer)`` — fresh default instances when not
    given — and restores the previous globals on exit, even on error.
    """
    new_registry = registry if registry is not None else MetricsRegistry()
    new_tracer = tracer if tracer is not None else Tracer()
    old_registry = set_registry(new_registry)
    old_tracer = set_tracer(new_tracer)
    try:
        yield new_registry, new_tracer
    finally:
        set_registry(old_registry)
        set_tracer(old_tracer)

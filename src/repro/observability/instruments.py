"""Small instrumentation helpers shared by the wired-up subsystems.

These are the three idioms the instrumented modules kept repeating —
time a block into a histogram, track an in-flight level in a gauge,
time a whole function — packaged once so call sites stay one line.
Layering: stdlib-only, like the rest of :mod:`repro.observability`.
"""

from __future__ import annotations

import functools
from contextlib import contextmanager

from repro.observability.metrics import Gauge, Histogram

__all__ = ["time_block", "track_inflight", "timed"]


@contextmanager
def time_block(histogram: Histogram, **labels):
    """Observe the elapsed registry-clock seconds of the ``with`` body."""
    clock = histogram._registry.clock
    start = clock()
    try:
        yield
    finally:
        histogram.observe(clock() - start, **labels)


@contextmanager
def track_inflight(gauge: Gauge, **labels):
    """Increment ``gauge`` on entry and decrement on exit (even on error)."""
    gauge.inc(**labels)
    try:
        yield
    finally:
        gauge.dec(**labels)


def timed(histogram: Histogram, **labels):
    """Decorator form of :func:`time_block`."""

    def decorate(fn):
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            with time_block(histogram, **labels):
                return fn(*args, **kwargs)

        return wrapper

    return decorate

"""Nested tracing spans with an in-memory collector.

Where :mod:`repro.observability.metrics` aggregates, spans *narrate*: one
:class:`Span` covers one unit of work (an epoch, a queued request, a
checkpoint save) with a start/end time, a status, free-form attributes,
and parent/trace ids that link spans into a causal chain.  The serving
layer uses exactly that chain to show where a request's budget went —
``submit → queue → analyze → resolve`` share one ``trace_id`` and each
span's ``parent_id`` is the previous link.

Spans are context managers (an escaping exception marks the span
``error: <type>``) but can also be ended manually with :meth:`Span.end`,
which is what cross-thread work needs: the serving queue span starts on
the submitting thread and ends on the worker that dequeues it.

The :class:`Tracer` collects finished spans into a bounded deque (oldest
evicted first) so a long-running default-on process cannot grow without
limit.  Ids are drawn from a deterministic per-tracer counter and the
clock is injectable — tests assert on exact ids and durations.  A
disabled tracer hands out a single shared no-op span, keeping the
default-on cost of an instrumented hot path to one branch.
Layering: this module imports only the standard library.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable, Dict, List, Optional

__all__ = ["STATUS_OK", "STATUS_UNSET", "Span", "Tracer"]

STATUS_UNSET = "unset"
STATUS_OK = "ok"


class Span:
    """One timed, attributed unit of work inside a trace."""

    __slots__ = (
        "name",
        "trace_id",
        "span_id",
        "parent_id",
        "start_time",
        "end_time",
        "status",
        "attributes",
        "events",
        "_tracer",
    )

    def __init__(
        self,
        name: str,
        trace_id: str,
        span_id: str,
        parent_id: Optional[str],
        start_time: float,
        tracer: Optional["Tracer"],
        attributes: Optional[Dict[str, object]] = None,
    ):
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.start_time = start_time
        self.end_time: Optional[float] = None
        self.status = STATUS_UNSET
        self.attributes: Dict[str, object] = dict(attributes or {})
        self.events: List[dict] = []
        self._tracer = tracer

    # -- recording ---------------------------------------------------------

    def set_attribute(self, key: str, value) -> "Span":
        self.attributes[key] = value
        return self

    def add_event(
        self, name: str, attributes: Optional[Dict[str, object]] = None
    ) -> "Span":
        """Record a timestamped point event inside this span.

        Events narrate moments a whole child span would be too heavy for
        — a brownout level change, a retry fired, a fallback taken.  The
        timestamp comes from the owning tracer's clock; events survive
        into :meth:`to_dict` and the JSONL export.
        """
        tracer = self._tracer
        self.events.append(
            {
                "name": name,
                "time": tracer.clock() if tracer is not None else self.start_time,
                "attributes": dict(attributes or {}),
            }
        )
        return self

    def set_status(self, status: str) -> "Span":
        self.status = status
        return self

    def end(self, status: Optional[str] = None) -> "Span":
        """Close the span (idempotent) and hand it to the collector."""
        if self.end_time is not None:
            return self
        if status is not None:
            self.status = status
        elif self.status == STATUS_UNSET:
            self.status = STATUS_OK
        tracer = self._tracer
        self.end_time = tracer.clock() if tracer is not None else self.start_time
        if tracer is not None:
            tracer._collect(self)
        return self

    @property
    def ended(self) -> bool:
        return self.end_time is not None

    @property
    def duration(self) -> Optional[float]:
        if self.end_time is None:
            return None
        return self.end_time - self.start_time

    # -- context manager ---------------------------------------------------

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None and self.status == STATUS_UNSET:
            self.status = f"error: {exc_type.__name__}"
        self.end()

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_time": self.start_time,
            "end_time": self.end_time,
            "duration_s": self.duration,
            "status": self.status,
            "attributes": dict(self.attributes),
            "events": [dict(event) for event in self.events],
        }

    def __repr__(self) -> str:
        return (
            f"<Span {self.name!r} trace={self.trace_id} id={self.span_id} "
            f"parent={self.parent_id} status={self.status!r}>"
        )


class _NullSpan:
    """Shared do-nothing span handed out by a disabled tracer."""

    __slots__ = ()
    name = ""
    trace_id = ""
    span_id = ""
    parent_id = None
    start_time = 0.0
    end_time = 0.0
    status = STATUS_UNSET
    attributes: Dict[str, object] = {}
    events: List[dict] = []
    ended = True
    duration = 0.0

    def set_attribute(self, key, value):
        return self

    def add_event(self, name, attributes=None):
        return self

    def set_status(self, status):
        return self

    def end(self, status=None):
        return self

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        return None

    def to_dict(self) -> dict:
        return {}


NULL_SPAN = _NullSpan()


class Tracer:
    """Hands out spans and collects the finished ones in memory.

    ``max_spans`` bounds the collector (oldest finished spans are evicted
    first); ``enabled=False`` makes :meth:`start_span` return a shared
    no-op span.  Ids are deterministic: the n-th span of a tracer is
    ``s%012x`` of n, the n-th trace ``t%012x``.
    """

    def __init__(
        self,
        enabled: bool = True,
        clock: Callable[[], float] = time.perf_counter,
        max_spans: int = 10_000,
    ):
        if max_spans < 1:
            raise ValueError("max_spans must be >= 1")
        self.enabled = bool(enabled)
        self.clock = clock
        self._lock = threading.Lock()
        self._finished: deque = deque(maxlen=int(max_spans))
        self._next_span = 0
        self._next_trace = 0
        self.dropped = 0  # finished spans evicted by the bound

    # -- lifecycle ---------------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def clear(self) -> None:
        with self._lock:
            self._finished.clear()
            self.dropped = 0

    # -- spans -------------------------------------------------------------

    def start_span(
        self,
        name: str,
        parent: Optional[Span] = None,
        trace_id: Optional[str] = None,
        attributes: Optional[Dict[str, object]] = None,
    ):
        """A new span; with ``parent`` (a real, enabled span) it joins the
        parent's trace, otherwise it roots a fresh trace."""
        if not self.enabled:
            return NULL_SPAN
        if parent is not None and parent.span_id:
            trace_id = parent.trace_id
            parent_id: Optional[str] = parent.span_id
        else:
            parent_id = None
        with self._lock:
            self._next_span += 1
            span_id = f"s{self._next_span:012x}"
            if trace_id is None:
                self._next_trace += 1
                trace_id = f"t{self._next_trace:012x}"
        return Span(
            name=name,
            trace_id=trace_id,
            span_id=span_id,
            parent_id=parent_id,
            start_time=self.clock(),
            tracer=self,
            attributes=attributes,
        )

    def span(self, name: str, **kwargs):
        """Alias of :meth:`start_span` for ``with tracer.span(...)`` use."""
        return self.start_span(name, **kwargs)

    def _collect(self, span: Span) -> None:
        with self._lock:
            if len(self._finished) == self._finished.maxlen:
                self.dropped += 1
            self._finished.append(span)

    # -- queries -----------------------------------------------------------

    def finished_spans(self) -> List[Span]:
        with self._lock:
            return list(self._finished)

    def trace(self, trace_id: str) -> List[Span]:
        """Finished spans of one trace, in start order."""
        spans = [s for s in self.finished_spans() if s.trace_id == trace_id]
        return sorted(spans, key=lambda s: (s.start_time, s.span_id))

    def trace_ids(self) -> List[str]:
        seen: List[str] = []
        for span in self.finished_spans():
            if span.trace_id not in seen:
                seen.append(span.trace_id)
        return seen

"""Observability: metrics, tracing spans and telemetry export.

The paper's Tool 4 records full provenance of every automated
train/evaluate run; the ROADMAP's north star is a production service.
Both need to *see inside* the system, so this package supplies the three
standard pillars as a stdlib-only leaf:

* :mod:`repro.observability.metrics` — thread-safe
  :class:`MetricsRegistry` with labeled :class:`Counter` / :class:`Gauge`
  / :class:`Histogram` families; histograms use fixed buckets and answer
  p50/p95/p99 queries from bucket counts;
* :mod:`repro.observability.tracing` — :class:`Tracer` producing nested
  :class:`Span` context managers (span/parent/trace ids, status,
  attributes) collected into a bounded in-memory deque;
* :mod:`repro.observability.export` — JSONL export of spans and metric
  snapshots, a human-readable :func:`text_dump`, and
  :func:`snapshot_to_provenance` bridging a snapshot into the
  :class:`~repro.db.provenance.ProvenanceTracker` DAG;
* :mod:`repro.observability.runtime` — the default-on process-global
  registry/tracer every instrumented subsystem falls back to, with
  :func:`disable`/:func:`scoped` for isolation;
* :mod:`repro.observability.instruments` — ``time_block`` /
  ``track_inflight`` / ``timed`` helpers.

Instrumentation is wired through ``nn.training``, ``core.training_service``,
``serving``, ``reliability.checkpoint``, ``reliability.retry``, ``db`` and
``storage.journal``; every instrumented constructor accepts explicit
``registry=``/``tracer=`` overrides, and a disabled registry or tracer
costs one branch per call site.

Layering: ``observability`` imports only the standard library at import
time (the provenance bridge imports :mod:`repro.db` lazily), so every
other package may depend on it.
"""

from repro.observability.export import (
    export_metrics_jsonl,
    export_spans_jsonl,
    format_metric_dicts,
    format_span_dicts,
    read_jsonl,
    snapshot_to_provenance,
    text_dump,
)
from repro.observability.instruments import time_block, timed, track_inflight
from repro.observability.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.observability.runtime import (
    counter,
    disable,
    enable,
    gauge,
    get_registry,
    get_tracer,
    histogram,
    scoped,
    set_registry,
    set_tracer,
)
from repro.observability.tracing import STATUS_OK, STATUS_UNSET, Span, Tracer

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "STATUS_OK",
    "STATUS_UNSET",
    "Span",
    "Tracer",
    "counter",
    "disable",
    "enable",
    "export_metrics_jsonl",
    "export_spans_jsonl",
    "format_metric_dicts",
    "format_span_dicts",
    "gauge",
    "get_registry",
    "get_tracer",
    "histogram",
    "read_jsonl",
    "scoped",
    "set_registry",
    "set_tracer",
    "snapshot_to_provenance",
    "text_dump",
    "time_block",
    "timed",
    "track_inflight",
]

"""NMR substrate: Part B of the paper.

The paper's NMR study monitors the synthesis of 2-nitro-4'-methyl-
diphenylamine (MNDPA) from p-toluidine and 1-fluoro-2-nitrobenzene (o-FNB),
with p-toluidine activated by Li-HMDS, in a laboratory flow reactor.  Four
compound concentrations are the labels of interest.  300 experimental
low-field spectra are augmented to 300 000 synthetic spectra via Indirect
Hard Modelling (IHM): each pure component is a parametric sum of
Lorentz-Gauss lines; mixture spectra are linear combinations with
physically motivated peak shifts and broadening.

Modules:

* :mod:`repro.nmr.lineshapes` — Lorentz / Gauss / pseudo-Voigt profiles;
* :mod:`repro.nmr.hard_model` — parametric pure-component models and the
  built-in four-component reaction model set;
* :mod:`repro.nmr.simulator` — the IHM-based synthetic-spectra generator
  (the paper's data-augmentation engine);
* :mod:`repro.nmr.ihm` — IHM mixture fitting, the state-of-the-art analysis
  baseline the ANNs are compared against;
* :mod:`repro.nmr.reaction` — lithiation kinetics, DoE and the virtual
  flow reactor (substitute for the laboratory experiment);
* :mod:`repro.nmr.acquisition` — virtual benchtop (43 MHz) and high-field
  (500 MHz) spectrometers.
"""

from repro.nmr.lineshapes import gaussian, lorentzian, pseudo_voigt
from repro.nmr.hard_model import (
    ChemicalShiftAxis,
    HardModelSet,
    Peak,
    PureComponentModel,
    mndpa_reaction_models,
)
from repro.nmr.simulator import NMRSpectrumSimulator
from repro.nmr.ihm import IHMAnalysis, IHMResult
from repro.nmr.reaction import (
    DoEPlan,
    FlowReactorExperiment,
    ReactionConditions,
    ReactionKinetics,
)
from repro.nmr.acquisition import NMRSpectrum, VirtualNMRSpectrometer
from repro.nmr.quantification import IntegralQuantification, IntegrationRegion
from repro.nmr.fid import AcquisitionParameters, FIDSynthesizer, fid_to_spectrum

__all__ = [
    "AcquisitionParameters",
    "ChemicalShiftAxis",
    "DoEPlan",
    "FIDSynthesizer",
    "FlowReactorExperiment",
    "HardModelSet",
    "IHMAnalysis",
    "IHMResult",
    "IntegralQuantification",
    "IntegrationRegion",
    "NMRSpectrum",
    "NMRSpectrumSimulator",
    "Peak",
    "PureComponentModel",
    "ReactionConditions",
    "ReactionKinetics",
    "VirtualNMRSpectrometer",
    "fid_to_spectrum",
    "gaussian",
    "lorentzian",
    "mndpa_reaction_models",
    "pseudo_voigt",
]

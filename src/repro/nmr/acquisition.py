"""Virtual NMR spectrometers.

The paper measured the reaction "simultaneously online using two methods:
medium-resolution and high-resolution NMR spectroscopy".  Both instruments
are modelled here:

* :meth:`VirtualNMRSpectrometer.benchtop` — a 43 MHz medium-resolution
  instrument: broad lines, visible noise, peak-position jitter,
  concentration-dependent matrix shifts and a weak baseline roll;
* :meth:`VirtualNMRSpectrometer.highfield` — a 500 MHz instrument with
  narrow lines and very low noise, whose spectra feed the *reference
  analysis* the ANNs are validated against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

import numpy as np

from repro.nmr.hard_model import ChemicalShiftAxis, HardModelSet

__all__ = ["NMRSpectrum", "VirtualNMRSpectrometer"]


@dataclass
class NMRSpectrum:
    """A sampled 1H NMR spectrum on a uniform chemical-shift axis."""

    axis: ChemicalShiftAxis
    intensities: np.ndarray
    metadata: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self):
        self.intensities = np.asarray(self.intensities, dtype=np.float64)
        if self.intensities.ndim != 1:
            raise ValueError("intensities must be 1-D")
        if self.intensities.size != self.axis.points:
            raise ValueError(
                f"intensities length {self.intensities.size} != axis points "
                f"{self.axis.points}"
            )

    @property
    def ppm(self) -> np.ndarray:
        return self.axis.values()

    def integral(self, low_ppm: float, high_ppm: float) -> float:
        """Signal area between two chemical shifts (the quantitative basis
        of NMR: area is proportional to the number of nuclei)."""
        if high_ppm <= low_ppm:
            raise ValueError("high_ppm must exceed low_ppm")
        grid = self.ppm
        mask = (grid >= low_ppm) & (grid <= high_ppm)
        return float(np.sum(self.intensities[mask]) * self.axis.step)

    def __len__(self) -> int:
        return self.intensities.size


class VirtualNMRSpectrometer:
    """Renders mixture spectra from hard models with instrument effects."""

    def __init__(
        self,
        models: HardModelSet,
        field_mhz: float = 43.0,
        noise_sigma: float = 0.015,
        shift_jitter: float = 0.006,
        broadening_jitter: float = 0.04,
        broadening_factor: float = 1.0,
        baseline_amplitude: float = 0.01,
        matrix_shift_coeff: float = 0.008,
        phase_error_sigma: float = 0.06,
        peak_jitter: float = 0.004,
        seed: int = 0,
    ):
        if field_mhz <= 0:
            raise ValueError("field_mhz must be positive")
        if broadening_factor <= 0:
            raise ValueError("broadening_factor must be positive")
        for label, value in (
            ("noise_sigma", noise_sigma),
            ("shift_jitter", shift_jitter),
            ("broadening_jitter", broadening_jitter),
            ("baseline_amplitude", baseline_amplitude),
            ("phase_error_sigma", phase_error_sigma),
            ("peak_jitter", peak_jitter),
        ):
            if value < 0:
                raise ValueError(f"{label} must be non-negative")
        self.models = models
        self.field_mhz = float(field_mhz)
        self.noise_sigma = float(noise_sigma)
        self.shift_jitter = float(shift_jitter)
        self.broadening_jitter = float(broadening_jitter)
        self.broadening_factor = float(broadening_factor)
        self.baseline_amplitude = float(baseline_amplitude)
        self.matrix_shift_coeff = float(matrix_shift_coeff)
        self.phase_error_sigma = float(phase_error_sigma)
        self.peak_jitter = float(peak_jitter)
        self._rng = np.random.default_rng(seed)

    @classmethod
    def benchtop(cls, models: HardModelSet, seed: int = 0) -> "VirtualNMRSpectrometer":
        """A 43 MHz benchtop instrument (the paper's online sensor)."""
        return cls(models, field_mhz=43.0, seed=seed)

    @classmethod
    def highfield(cls, models: HardModelSet, seed: int = 0) -> "VirtualNMRSpectrometer":
        """A 500 MHz laboratory instrument (the paper's reference method)."""
        return cls(
            models,
            field_mhz=500.0,
            noise_sigma=0.001,
            shift_jitter=0.001,
            broadening_jitter=0.005,
            broadening_factor=0.35,
            baseline_amplitude=0.001,
            matrix_shift_coeff=0.002,
            phase_error_sigma=0.005,
            peak_jitter=0.0005,
            seed=seed,
        )

    def acquire(
        self,
        concentrations: Mapping[str, float],
        rng: Optional[np.random.Generator] = None,
    ) -> NMRSpectrum:
        """Acquire one spectrum of a mixture (concentrations in mol/L)."""
        rng = rng if rng is not None else self._rng
        total = float(sum(max(v, 0.0) for v in concentrations.values()))
        phase = rng.normal(0.0, self.phase_error_sigma)
        signal = np.zeros(self.models.axis.points)
        for model in self.models.models:
            c = float(concentrations.get(model.name, 0.0))
            if c < 0:
                raise ValueError(f"negative concentration for {model.name}")
            if c == 0:
                continue
            # Matrix effect: lines shift with total solute load, plus
            # random per-acquisition jitter (field drift, lock errors) and
            # independent per-line scatter the IHM model class cannot fit.
            shift = self.matrix_shift_coeff * total + rng.normal(
                0.0, self.shift_jitter
            )
            broadening = self.broadening_factor * max(
                1.0 + rng.normal(0.0, self.broadening_jitter), 0.2
            )
            peak_shifts = rng.normal(0.0, self.peak_jitter, size=len(model.peaks))
            signal += model.evaluate(
                self.models.axis,
                shift=shift,
                broadening=broadening,
                concentration=c,
                phase=phase,
                peak_shifts=peak_shifts,
            )
        signal = signal + self._baseline(rng)
        signal = signal + rng.normal(0.0, self.noise_sigma, size=signal.shape)
        return NMRSpectrum(
            self.models.axis,
            signal,
            metadata={
                "field_mhz": self.field_mhz,
                "concentrations": dict(concentrations),
            },
        )

    def _baseline(self, rng: np.random.Generator) -> np.ndarray:
        if self.baseline_amplitude == 0:
            return np.zeros(self.models.axis.points)
        grid = self.models.axis.values()
        span = self.models.axis.stop - self.models.axis.start
        phase = rng.uniform(0.0, 2.0 * np.pi)
        # One slow roll across the spectrum (imperfect phase correction).
        return self.baseline_amplitude * np.sin(
            2.0 * np.pi * (grid - self.models.axis.start) / (2.0 * span) + phase
        )

"""The lithiation reaction, DoE and virtual flow reactor.

The paper's dataset: "different reaction conditions for an organic
lithiation reaction were generated with the help of laboratory equipment
and measured simultaneously online ... resulting in a set of 300 spectra as
raw data basis with four compound concentrations as the four labels of
interest."  The chemistry (its Fig. 8): p-toluidine is activated by proton
exchange with Li-HMDS to lithium p-toluidide, which substitutes the
fluorine of 1-fluoro-2-nitrobenzene (o-FNB) to give MNDPA.

We model this as two consecutive bimolecular steps with Arrhenius kinetics

    A + B --k1--> I        (activation; B = Li-HMDS, consumed)
    I + C --k2--> P        (aromatic substitution)

and track the four *observed* components A (p-toluidine), I (Li-toluidide),
C (o-FNB) and P (MNDPA).  The flow reactor operates as a plug-flow element:
outlet concentrations are a batch integration over the residence time.
A design of experiments (DoE) steps the reactor through operating points;
each point is held as a steady-state plateau while spectra accumulate —
exactly the plateau-with-jumps structure the paper's LSTM exploits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy.integrate import solve_ivp

from repro.nmr.acquisition import NMRSpectrum, VirtualNMRSpectrometer

__all__ = [
    "ReactionKinetics",
    "ReactionConditions",
    "DoEPlan",
    "PlateauRecord",
    "ReactionDataset",
    "FlowReactorExperiment",
    "OBSERVED_COMPONENTS",
]

GAS_CONSTANT = 8.314462618  # J / (mol K)

OBSERVED_COMPONENTS = ("p-toluidine", "Li-toluidide", "o-FNB", "MNDPA")


@dataclass(frozen=True)
class ReactionConditions:
    """One flow-reactor operating point."""

    feed_toluidine: float = 0.5  # mol/L (A)
    feed_lihmds: float = 0.55  # mol/L (B)
    feed_ofnb: float = 0.5  # mol/L (C)
    temperature_c: float = 25.0
    residence_time_s: float = 120.0

    def __post_init__(self):
        for label in ("feed_toluidine", "feed_lihmds", "feed_ofnb"):
            if getattr(self, label) < 0:
                raise ValueError(f"{label} must be non-negative")
        if self.residence_time_s <= 0:
            raise ValueError("residence_time_s must be positive")
        if self.temperature_c < -80 or self.temperature_c > 150:
            raise ValueError("temperature_c outside plausible reactor range")


@dataclass(frozen=True)
class ReactionKinetics:
    """Arrhenius parameters of the two reaction steps."""

    k1_ref: float = 0.08  # L/(mol s) at T_ref: fast activation
    k2_ref: float = 0.010  # L/(mol s): rate-limiting substitution
    ea1: float = 30_000.0  # J/mol
    ea2: float = 55_000.0
    t_ref_c: float = 25.0

    def rate_constants(self, temperature_c: float) -> Tuple[float, float]:
        t = temperature_c + 273.15
        t_ref = self.t_ref_c + 273.15
        k1 = self.k1_ref * np.exp(-self.ea1 / GAS_CONSTANT * (1.0 / t - 1.0 / t_ref))
        k2 = self.k2_ref * np.exp(-self.ea2 / GAS_CONSTANT * (1.0 / t - 1.0 / t_ref))
        return float(k1), float(k2)

    def outlet_concentrations(
        self, conditions: ReactionConditions
    ) -> Dict[str, float]:
        """Steady-state outlet composition of the plug-flow reactor."""
        k1, k2 = self.rate_constants(conditions.temperature_c)

        def rhs(_t, y):
            a, b, i, c, p = y
            r1 = k1 * a * b
            r2 = k2 * i * c
            return [-r1, -r1, r1 - r2, -r2, r2]

        y0 = [
            conditions.feed_toluidine,
            conditions.feed_lihmds,
            0.0,
            conditions.feed_ofnb,
            0.0,
        ]
        solution = solve_ivp(
            rhs,
            (0.0, conditions.residence_time_s),
            y0,
            method="LSODA",
            rtol=1e-8,
            atol=1e-10,
        )
        if not solution.success:
            raise RuntimeError(f"kinetics integration failed: {solution.message}")
        a, _b, i, c, p = solution.y[:, -1]
        return {
            "p-toluidine": max(float(a), 0.0),
            "Li-toluidide": max(float(i), 0.0),
            "o-FNB": max(float(c), 0.0),
            "MNDPA": max(float(p), 0.0),
        }


@dataclass
class DoEPlan:
    """A design of experiments over reactor operating points."""

    conditions: List[ReactionConditions] = field(default_factory=list)

    @classmethod
    def full_factorial(
        cls,
        residence_times_s: Sequence[float] = (30.0, 90.0, 240.0),
        temperatures_c: Sequence[float] = (10.0, 25.0, 40.0),
        ofnb_equivalents: Sequence[float] = (0.8, 1.0, 1.2),
        feed_toluidine: float = 0.5,
        lihmds_equivalents: float = 1.1,
    ) -> "DoEPlan":
        """Full factorial DoE (default 3x3x3 + centre-ish coverage = 27)."""
        points = []
        for tau, temp, eq in product(residence_times_s, temperatures_c, ofnb_equivalents):
            points.append(
                ReactionConditions(
                    feed_toluidine=feed_toluidine,
                    feed_lihmds=feed_toluidine * lihmds_equivalents,
                    feed_ofnb=feed_toluidine * eq,
                    temperature_c=temp,
                    residence_time_s=tau,
                )
            )
        return cls(points)

    def __len__(self) -> int:
        return len(self.conditions)

    def __iter__(self):
        return iter(self.conditions)


@dataclass
class PlateauRecord:
    """All acquisitions of one steady-state plateau."""

    conditions: ReactionConditions
    true_concentrations: Dict[str, float]
    spectra: List[NMRSpectrum]
    reference_concentrations: np.ndarray  # (n_spectra, 4) high-field labels


@dataclass
class ReactionDataset:
    """The full experimental campaign, flattened for model training."""

    component_names: Tuple[str, ...]
    spectra: np.ndarray  # (n, points)
    reference_labels: np.ndarray  # (n, 4): high-field reference analysis
    true_labels: np.ndarray  # (n, 4): exact simulator ground truth
    plateau_ids: np.ndarray  # (n,) index of the operating point
    plateaus: List[PlateauRecord] = field(default_factory=list)

    def __len__(self) -> int:
        return self.spectra.shape[0]

    def concentration_ranges(self) -> Dict[str, Tuple[float, float]]:
        """Per-component (min, max) of the reference labels.

        The paper stresses that an ANN "can only reproduce those changes
        that lie within the training label range"; augmentation samples
        from (a padded version of) these ranges.
        """
        ranges = {}
        for j, name in enumerate(self.component_names):
            column = self.reference_labels[:, j]
            ranges[name] = (float(column.min()), float(column.max()))
        return ranges


class FlowReactorExperiment:
    """Runs a DoE campaign on the virtual reactor + spectrometers."""

    def __init__(
        self,
        kinetics: ReactionKinetics,
        benchtop: VirtualNMRSpectrometer,
        highfield: Optional[VirtualNMRSpectrometer] = None,
        reference_error: float = 0.005,
        seed: int = 0,
    ):
        if reference_error < 0:
            raise ValueError("reference_error must be non-negative")
        self.kinetics = kinetics
        self.benchtop = benchtop
        self.highfield = highfield
        self.reference_error = float(reference_error)
        self._rng = np.random.default_rng(seed)

    def run(self, plan: DoEPlan, spectra_per_plateau: int = 11) -> ReactionDataset:
        """Execute the campaign; defaults give ~300 spectra for a 27-point DoE."""
        if spectra_per_plateau <= 0:
            raise ValueError("spectra_per_plateau must be positive")
        if len(plan) == 0:
            raise ValueError("the DoE plan is empty")
        plateaus: List[PlateauRecord] = []
        all_spectra = []
        all_reference = []
        all_truth = []
        plateau_ids = []
        for plateau_id, conditions in enumerate(plan):
            truth = self.kinetics.outlet_concentrations(conditions)
            truth_vec = np.array([truth[name] for name in OBSERVED_COMPONENTS])
            spectra = []
            references = []
            for _ in range(spectra_per_plateau):
                spectrum = self.benchtop.acquire(truth, rng=self._rng)
                spectra.append(spectrum)
                references.append(self._reference_analysis(truth_vec))
                all_spectra.append(spectrum.intensities)
                plateau_ids.append(plateau_id)
            references = np.stack(references)
            all_reference.append(references)
            all_truth.append(np.tile(truth_vec, (spectra_per_plateau, 1)))
            plateaus.append(
                PlateauRecord(conditions, truth, spectra, references)
            )
        return ReactionDataset(
            component_names=OBSERVED_COMPONENTS,
            spectra=np.stack(all_spectra),
            reference_labels=np.concatenate(all_reference, axis=0),
            true_labels=np.concatenate(all_truth, axis=0),
            plateau_ids=np.array(plateau_ids),
            plateaus=plateaus,
        )

    def _reference_analysis(self, truth: np.ndarray) -> np.ndarray:
        """High-field reference concentrations: truth + small analysis error.

        (The reference method itself — acquisition on the 500 MHz virtual
        instrument followed by integration — is exercised in the IHM
        module; for labelling purposes its residual error is modelled as a
        small multiplicative noise.)
        """
        noise = self._rng.normal(1.0, self.reference_error, size=truth.shape)
        return np.clip(truth * noise, 0.0, None)

"""Indirect Hard Modelling: parametric pure-component spectra.

"Based on a physical assumption (hard model), each component can be
described as a pure component, which is done with a series of Lorentz-Gauss
functions."  A :class:`PureComponentModel` is exactly that series; a
:class:`HardModelSet` bundles the models of all mixture components and can
evaluate a full mixture spectrum for arbitrary concentrations, with
per-component shift and broadening freedom (the two effects IHM handles
that plain linear combination of experimental spectra cannot).

The built-in model set :func:`mndpa_reaction_models` covers the paper's
lithiation reaction: p-toluidine, lithium p-toluidide (the Li-HMDS-activated
intermediate), 1-fluoro-2-nitrobenzene (o-FNB) and the MNDPA product, with
approximate 1H chemical shifts as seen on a 43 MHz benchtop instrument
(J-multiplets collapse into broadened single lines at medium resolution).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.nmr.lineshapes import pseudo_voigt, pseudo_voigt_with_phase

__all__ = [
    "ChemicalShiftAxis",
    "Peak",
    "PureComponentModel",
    "HardModelSet",
    "mndpa_reaction_models",
    "PAPER_SPECTRUM_POINTS",
]

# The paper's LSTM parameter count (221 956 with 32 units) pins the network
# input — and therefore the spectrum length — to exactly 1700 points.
PAPER_SPECTRUM_POINTS = 1700


@dataclass(frozen=True)
class ChemicalShiftAxis:
    """A uniform 1H chemical-shift axis in ppm (ascending)."""

    start: float = -0.5
    stop: float = 10.0
    points: int = PAPER_SPECTRUM_POINTS

    def __post_init__(self):
        if self.points < 2:
            raise ValueError(f"points must be >= 2, got {self.points}")
        if self.stop <= self.start:
            raise ValueError("stop must exceed start")

    @property
    def step(self) -> float:
        return (self.stop - self.start) / (self.points - 1)

    def values(self) -> np.ndarray:
        return np.linspace(self.start, self.stop, self.points)

    def index_of(self, ppm: float) -> int:
        idx = int(np.round((ppm - self.start) / self.step))
        return int(np.clip(idx, 0, self.points - 1))


@dataclass(frozen=True)
class Peak:
    """One Lorentz-Gauss line of a hard model.

    ``area`` is proportional to the number of nuclei behind the signal
    (e.g. 3 for a CH3 singlet), ``fwhm`` in ppm, ``eta`` the Lorentzian
    fraction.
    """

    center: float
    area: float
    fwhm: float
    eta: float = 0.7

    def __post_init__(self):
        if self.area <= 0:
            raise ValueError(f"area must be positive, got {self.area}")
        if self.fwhm <= 0:
            raise ValueError(f"fwhm must be positive, got {self.fwhm}")
        if not 0.0 <= self.eta <= 1.0:
            raise ValueError(f"eta must be in [0, 1], got {self.eta}")


@dataclass(frozen=True)
class PureComponentModel:
    """A pure component as a series of Lorentz-Gauss lines."""

    name: str
    peaks: Tuple[Peak, ...]

    def __post_init__(self):
        if not self.peaks:
            raise ValueError(f"{self.name}: a model needs at least one peak")

    def evaluate(
        self,
        axis: ChemicalShiftAxis,
        shift: float = 0.0,
        broadening: float = 1.0,
        concentration: float = 1.0,
        phase: float = 0.0,
        peak_shifts: Optional[Sequence[float]] = None,
    ) -> np.ndarray:
        """Spectrum of this component at unit (or given) concentration.

        ``shift`` moves every line (solvent/matrix effects), ``broadening``
        multiplies every width (temperature, shimming), ``phase`` is an
        uncorrected zero-order phase error, ``peak_shifts`` adds an extra
        per-line displacement (the IHM model class fits one shift per
        component; real lines scatter individually).  Output is in
        area-per-ppm units scaled by ``concentration``.
        """
        if broadening <= 0:
            raise ValueError(f"broadening must be positive, got {broadening}")
        if peak_shifts is not None and len(peak_shifts) != len(self.peaks):
            raise ValueError(
                f"peak_shifts needs {len(self.peaks)} entries, "
                f"got {len(peak_shifts)}"
            )
        grid = axis.values()
        out = np.zeros(axis.points)
        for i, peak in enumerate(self.peaks):
            extra = peak_shifts[i] if peak_shifts is not None else 0.0
            out += peak.area * pseudo_voigt_with_phase(
                grid,
                peak.center + shift + extra,
                peak.fwhm * broadening,
                peak.eta,
                phase,
            )
        return concentration * out

    @property
    def total_area(self) -> float:
        return float(sum(peak.area for peak in self.peaks))

    def shifted(self, delta: float) -> "PureComponentModel":
        """A copy with all line positions moved by ``delta`` ppm."""
        return PureComponentModel(
            self.name,
            tuple(replace(peak, center=peak.center + delta) for peak in self.peaks),
        )


class HardModelSet:
    """The hard models of every component in a mixture."""

    def __init__(self, models: Sequence[PureComponentModel], axis: Optional[ChemicalShiftAxis] = None):
        if not models:
            raise ValueError("at least one component model is required")
        names = [model.name for model in models]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate component names in {names}")
        self.models: Tuple[PureComponentModel, ...] = tuple(models)
        self.axis = axis if axis is not None else ChemicalShiftAxis()

    @property
    def names(self) -> List[str]:
        return [model.name for model in self.models]

    def __len__(self) -> int:
        return len(self.models)

    def __getitem__(self, name: str) -> PureComponentModel:
        for model in self.models:
            if model.name == name:
                return model
        raise KeyError(f"unknown component {name!r}; known: {self.names}")

    def pure_spectra(
        self,
        shifts: Optional[Sequence[float]] = None,
        broadenings: Optional[Sequence[float]] = None,
    ) -> np.ndarray:
        """(n_components, points) matrix of unit-concentration spectra."""
        k = len(self.models)
        shifts = shifts if shifts is not None else [0.0] * k
        broadenings = broadenings if broadenings is not None else [1.0] * k
        if len(shifts) != k or len(broadenings) != k:
            raise ValueError("shifts/broadenings must have one entry per component")
        return np.stack(
            [
                model.evaluate(self.axis, shift=s, broadening=b)
                for model, s, b in zip(self.models, shifts, broadenings)
            ]
        )

    def mixture_spectrum(
        self,
        concentrations: Mapping[str, float],
        shifts: Optional[Mapping[str, float]] = None,
        broadenings: Optional[Mapping[str, float]] = None,
    ) -> np.ndarray:
        """Noise-free mixture spectrum for named concentrations (mol/L)."""
        shifts = dict(shifts or {})
        broadenings = dict(broadenings or {})
        out = np.zeros(self.axis.points)
        for model in self.models:
            c = float(concentrations.get(model.name, 0.0))
            if c < 0:
                raise ValueError(f"negative concentration for {model.name}")
            if c == 0:
                continue
            out += model.evaluate(
                self.axis,
                shift=shifts.get(model.name, 0.0),
                broadening=broadenings.get(model.name, 1.0),
                concentration=c,
            )
        return out

    def concentration_vector(self, concentrations: Mapping[str, float]) -> np.ndarray:
        """Concentrations as an array in model order (absent -> 0)."""
        return np.array(
            [float(concentrations.get(name, 0.0)) for name in self.names]
        )


# Typical benchtop (43 MHz) linewidth in ppm: ~1-2 Hz natural width plus
# unresolved J-multiplets spread over ~15 Hz -> effective 0.05-0.15 ppm.
_W = 0.06


def mndpa_reaction_models(axis: Optional[ChemicalShiftAxis] = None) -> HardModelSet:
    """Hard models of the paper's four reaction components.

    Approximate 1H shifts (ppm, in THF, medium resolution):

    * **p-toluidine** — aromatic AA'BB' around 6.5/6.9, NH2 ~3.9, CH3 ~2.15;
    * **Li-toluidide** (activated intermediate) — aromatic shifted upfield
      (electron-rich anilide), CH3 ~2.05, TMS-amine by-product ~0.1;
    * **o-FNB** — four aromatic signals 7.2-8.1 (strongly deshielded by NO2);
    * **MNDPA** — overlapping aromatic envelope 6.8-8.2, NH ~9.4, CH3 ~2.32.

    The overlap structure (all four CH3 lines within 0.3 ppm; crowded
    aromatics) is what makes the analysis multivariate, as in the paper.
    """
    toluidine = PureComponentModel(
        "p-toluidine",
        (
            Peak(6.52, 2.0, _W),
            Peak(6.88, 2.0, _W),
            Peak(3.90, 2.0, 0.10, eta=0.5),  # NH2, broad
            Peak(2.15, 3.0, 0.8 * _W),
        ),
    )
    toluidide = PureComponentModel(
        "Li-toluidide",
        (
            Peak(6.21, 2.0, _W),
            Peak(6.67, 2.0, _W),
            Peak(2.05, 3.0, 0.8 * _W),
            Peak(0.12, 18.0, 0.7 * _W),  # HMDS trimethylsilyl protons
        ),
    )
    ofnb = PureComponentModel(
        "o-FNB",
        (
            Peak(7.28, 1.0, _W),
            Peak(7.45, 1.0, _W),
            Peak(7.72, 1.0, _W),
            Peak(8.05, 1.0, _W),
        ),
    )
    mndpa = PureComponentModel(
        "MNDPA",
        (
            Peak(9.42, 1.0, 0.09, eta=0.5),  # NH, broad
            Peak(8.18, 1.0, _W),
            Peak(7.35, 2.0, 1.2 * _W),
            Peak(7.12, 3.0, 1.3 * _W),
            Peak(6.85, 2.0, 1.2 * _W),
            Peak(2.32, 3.0, 0.8 * _W),
        ),
    )
    return HardModelSet([toluidine, toluidide, ofnb, mndpa], axis)

"""Indirect Hard Modelling analysis — the state-of-the-art baseline.

"With IHM, these pure components can be found in the total spectrum of a
mixture by fitting algorithms and their intensities and thus concentrations
can be determined, although individual signals are allowed to shift or
broaden."

The fit is a bounded nonlinear least-squares over, per component, one
concentration, one shift and one broadening factor (3k parameters for k
components), warm-started by a non-negative linear solve with the unshifted
pure spectra.  This is deliberately an *honest* implementation of the
reference method: it is accurate but, being an iterative optimization over
re-rendered model spectra, orders of magnitude slower than a single ANN
forward pass — the paper's ">1000x faster" comparison.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Sequence, Union

import numpy as np
from scipy.optimize import least_squares, nnls

from repro.nmr.acquisition import NMRSpectrum
from repro.nmr.hard_model import HardModelSet

__all__ = ["IHMResult", "IHMAnalysis"]


@dataclass
class IHMResult:
    """Outcome of one IHM mixture fit."""

    concentrations: Dict[str, float]
    shifts: Dict[str, float]
    broadenings: Dict[str, float]
    residual_norm: float
    n_function_evaluations: int
    elapsed_seconds: float

    def concentration_vector(self, names: Sequence[str]) -> np.ndarray:
        return np.array([self.concentrations[name] for name in names])


class IHMAnalysis:
    """Fits a :class:`HardModelSet` to measured mixture spectra."""

    def __init__(
        self,
        models: HardModelSet,
        fit_shifts: bool = True,
        fit_broadening: bool = True,
        max_shift: float = 0.05,
        broadening_bounds: tuple = (0.5, 2.0),
        max_concentration: float = 10.0,
    ):
        if max_shift < 0:
            raise ValueError("max_shift must be non-negative")
        low, high = broadening_bounds
        if not 0 < low <= 1.0 <= high:
            raise ValueError(
                f"broadening_bounds must bracket 1.0 with a positive lower "
                f"bound, got {broadening_bounds}"
            )
        self.models = models
        self.fit_shifts = bool(fit_shifts)
        self.fit_broadening = bool(fit_broadening)
        self.max_shift = float(max_shift)
        self.broadening_bounds = (float(low), float(high))
        self.max_concentration = float(max_concentration)
        self._unshifted = models.pure_spectra()

    # -- public API ---------------------------------------------------------

    def analyze(self, spectrum: Union[NMRSpectrum, np.ndarray]) -> IHMResult:
        """Fit one mixture spectrum; returns concentrations per component."""
        data = self._as_array(spectrum)
        start = time.perf_counter()
        k = len(self.models)

        c0 = self._linear_warm_start(data)
        x0 = [c0]
        lower = [np.zeros(k)]
        upper = [np.full(k, self.max_concentration)]
        if self.fit_shifts:
            x0.append(np.zeros(k))
            lower.append(np.full(k, -self.max_shift))
            upper.append(np.full(k, self.max_shift))
        if self.fit_broadening:
            x0.append(np.ones(k))
            lower.append(np.full(k, self.broadening_bounds[0]))
            upper.append(np.full(k, self.broadening_bounds[1]))

        result = least_squares(
            self._residuals,
            np.concatenate(x0),
            bounds=(np.concatenate(lower), np.concatenate(upper)),
            args=(data,),
            method="trf",
            xtol=1e-10,
            ftol=1e-10,
            max_nfev=200,
        )
        conc, shifts, broadenings = self._unpack(result.x)
        elapsed = time.perf_counter() - start
        names = self.models.names
        return IHMResult(
            concentrations={n: float(c) for n, c in zip(names, conc)},
            shifts={n: float(s) for n, s in zip(names, shifts)},
            broadenings={n: float(b) for n, b in zip(names, broadenings)},
            residual_norm=float(np.linalg.norm(result.fun)),
            n_function_evaluations=int(result.nfev),
            elapsed_seconds=elapsed,
        )

    def analyze_batch(
        self, spectra: Union[np.ndarray, Sequence[NMRSpectrum]]
    ) -> List[IHMResult]:
        """Fit a batch of spectra one by one (IHM has no batch mode)."""
        return [self.analyze(s) for s in spectra]

    def predict(self, spectra: np.ndarray) -> np.ndarray:
        """(n, points) -> (n, k) concentration matrix, model order."""
        names = self.models.names
        return np.stack(
            [r.concentration_vector(names) for r in self.analyze_batch(spectra)]
        )

    # -- internals ------------------------------------------------------------

    def _as_array(self, spectrum) -> np.ndarray:
        data = spectrum.intensities if isinstance(spectrum, NMRSpectrum) else spectrum
        data = np.asarray(data, dtype=np.float64)
        if data.shape != (self.models.axis.points,):
            raise ValueError(
                f"spectrum has shape {data.shape}, expected "
                f"({self.models.axis.points},)"
            )
        return data

    def _linear_warm_start(self, data: np.ndarray) -> np.ndarray:
        coeffs, _ = nnls(self._unshifted.T, np.clip(data, 0.0, None))
        return np.clip(coeffs, 0.0, self.max_concentration)

    def _unpack(self, x: np.ndarray):
        k = len(self.models)
        conc = x[:k]
        idx = k
        if self.fit_shifts:
            shifts = x[idx : idx + k]
            idx += k
        else:
            shifts = np.zeros(k)
        if self.fit_broadening:
            broadenings = x[idx : idx + k]
        else:
            broadenings = np.ones(k)
        return conc, shifts, broadenings

    def _residuals(self, x: np.ndarray, data: np.ndarray) -> np.ndarray:
        conc, shifts, broadenings = self._unpack(x)
        model = np.zeros_like(data)
        for j, component in enumerate(self.models.models):
            if conc[j] == 0.0:
                continue
            model += component.evaluate(
                self.models.axis,
                shift=shifts[j],
                broadening=broadenings[j],
                concentration=conc[j],
            )
        return model - data

"""Integral-based NMR quantification — the classical reference method.

NMR "exhibits a direct correlation between the signal area in the spectrum
and the number of observed nuclei in the active sample region, allowing for
a calibration-free relative quantification".  On the high-field instrument,
where lines are narrow and overlap is limited, classical region integration
recovers concentrations directly; this module implements that method and is
what makes the virtual 500 MHz spectrometer a genuine *reference* channel.

For each component an isolated integration region is chosen automatically
from the hard models (the region where only that component contributes
meaningfully); concentration follows from area / (nuclei count in region).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.nmr.acquisition import NMRSpectrum
from repro.nmr.hard_model import HardModelSet

__all__ = ["IntegrationRegion", "IntegralQuantification"]


@dataclass(frozen=True)
class IntegrationRegion:
    """One component's integration window."""

    component: str
    low_ppm: float
    high_ppm: float
    nuclei: float  # summed peak area (proton count) inside the window

    def __post_init__(self):
        if self.high_ppm <= self.low_ppm:
            raise ValueError("high_ppm must exceed low_ppm")
        if self.nuclei <= 0:
            raise ValueError("nuclei must be positive")


class IntegralQuantification:
    """Classical region-integration analysis over a hard-model set."""

    def __init__(
        self,
        models: HardModelSet,
        regions: Optional[Sequence[IntegrationRegion]] = None,
        margin_ppm: float = 0.15,
        purity_threshold: float = 0.95,
    ):
        """Without explicit ``regions``, one region per component is found
        automatically: around each candidate peak a ±margin window is
        scored by purity (fraction of in-window model area belonging to the
        component); the purest window above ``purity_threshold`` wins."""
        self.models = models
        if regions is not None:
            self.regions = list(regions)
            known = set(models.names)
            for region in self.regions:
                if region.component not in known:
                    raise ValueError(
                        f"region references unknown component "
                        f"{region.component!r}"
                    )
        else:
            self.regions = self._auto_regions(margin_ppm, purity_threshold)
        covered = {region.component for region in self.regions}
        missing = [name for name in models.names if name not in covered]
        if missing:
            raise ValueError(
                f"no isolated integration region found for {missing}; "
                "pass explicit regions"
            )

    def _auto_regions(
        self, margin: float, purity_threshold: float
    ) -> List[IntegrationRegion]:
        regions = []
        for model in self.models.models:
            best: Optional[Tuple[float, IntegrationRegion]] = None
            for peak in model.peaks:
                low, high = peak.center - margin, peak.center + margin
                own = sum(
                    p.area for p in model.peaks if low <= p.center <= high
                )
                other = sum(
                    p.area
                    for m in self.models.models
                    if m.name != model.name
                    for p in m.peaks
                    if low - margin / 2 <= p.center <= high + margin / 2
                )
                purity = own / (own + other) if own + other > 0 else 0.0
                candidate = IntegrationRegion(model.name, low, high, own)
                if purity >= purity_threshold and (
                    best is None or purity > best[0]
                ):
                    best = (purity, candidate)
            if best is not None:
                regions.append(best[1])
        return regions

    def region_for(self, component: str) -> IntegrationRegion:
        for region in self.regions:
            if region.component == component:
                return region
        raise KeyError(f"no region for component {component!r}")

    def analyze(
        self, spectrum: Union[NMRSpectrum, np.ndarray]
    ) -> Dict[str, float]:
        """Concentrations from region integrals (mol/L, model units)."""
        if isinstance(spectrum, np.ndarray):
            spectrum = NMRSpectrum(self.models.axis, spectrum)
        concentrations = {}
        for region in self.regions:
            area = spectrum.integral(region.low_ppm, region.high_ppm)
            concentrations[region.component] = max(area / region.nuclei, 0.0)
        return concentrations

    def predict(self, spectra: np.ndarray) -> np.ndarray:
        """(n, points) -> (n, k) concentration matrix in model order."""
        spectra = np.asarray(spectra, dtype=np.float64)
        out = np.empty((spectra.shape[0], len(self.models)))
        for i, row in enumerate(spectra):
            result = self.analyze(row)
            out[i] = [result.get(name, 0.0) for name in self.models.names]
        return out

"""The IHM-based synthetic-spectra generator (the data-augmentation engine).

"Linear combinations of the parametric models of pure component spectra can
then be calculated to generate NMR spectra for arbitrary values of the four
compound concentrations" — with per-component peak *shifts* and
*broadening* included, which is the stated advantage of IHM simulation over
a naive linear combination of experimental spectra (whose noise would scale
wrongly and whose peaks could not move).

The generator samples concentrations from per-component ranges (typically
the padded ranges of the experimental campaign, since an ANN cannot
extrapolate beyond its training label range), then renders each spectrum
with random shift/broadening/noise/baseline realizations.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from repro.nmr.hard_model import HardModelSet
from repro.nmr.lineshapes import fwhm_to_sigma

__all__ = ["NMRSpectrumSimulator"]


class NMRSpectrumSimulator:
    """Bulk generator of labelled synthetic NMR spectra."""

    def __init__(
        self,
        models: HardModelSet,
        concentration_ranges: Mapping[str, Tuple[float, float]],
        shift_sigma: float = 0.008,
        broadening_sigma: float = 0.05,
        noise_sigma: float = 0.015,
        baseline_amplitude: float = 0.01,
        phase_sigma: float = 0.06,
        peak_jitter: float = 0.004,
    ):
        for label, value in (
            ("shift_sigma", shift_sigma),
            ("broadening_sigma", broadening_sigma),
            ("noise_sigma", noise_sigma),
            ("baseline_amplitude", baseline_amplitude),
            ("phase_sigma", phase_sigma),
            ("peak_jitter", peak_jitter),
        ):
            if value < 0:
                raise ValueError(f"{label} must be non-negative")
        self.models = models
        self.ranges: Dict[str, Tuple[float, float]] = {}
        for name in models.names:
            if name not in concentration_ranges:
                raise ValueError(f"no concentration range for component {name!r}")
            low, high = concentration_ranges[name]
            if low < 0 or high < low:
                raise ValueError(
                    f"invalid range for {name}: ({low}, {high})"
                )
            self.ranges[name] = (float(low), float(high))
        self.shift_sigma = float(shift_sigma)
        self.broadening_sigma = float(broadening_sigma)
        self.noise_sigma = float(noise_sigma)
        self.baseline_amplitude = float(baseline_amplitude)
        self.phase_sigma = float(phase_sigma)
        self.peak_jitter = float(peak_jitter)

    @classmethod
    def from_dataset(
        cls,
        models: HardModelSet,
        dataset,
        range_padding: float = 0.15,
        **kwargs,
    ) -> "NMRSpectrumSimulator":
        """Build a simulator whose label ranges cover an experimental
        dataset (plus padding), the paper's recommended practice of
        training "over the full range of concentrations, not just the ones
        available in our experimental ... dataset"."""
        if range_padding < 0:
            raise ValueError("range_padding must be non-negative")
        ranges = {}
        for name, (low, high) in dataset.concentration_ranges().items():
            span = max(high - low, 1e-6)
            ranges[name] = (
                max(low - range_padding * span, 0.0),
                high + range_padding * span,
            )
        return cls(models, ranges, **kwargs)

    # -- sampling ---------------------------------------------------------

    def sample_concentrations(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Uniform, independent concentrations within each component range.

        Independent sampling deliberately covers combinations the reaction
        could never produce — the network should learn spectroscopy, not
        the reaction manifold.
        """
        if n <= 0:
            raise ValueError("n must be positive")
        columns = []
        for name in self.models.names:
            low, high = self.ranges[name]
            columns.append(rng.uniform(low, high, size=n))
        return np.stack(columns, axis=1)

    # -- generation ---------------------------------------------------------

    def generate_dataset(
        self,
        n: int,
        rng: np.random.Generator,
        concentrations: Optional[np.ndarray] = None,
        with_noise: bool = True,
        chunk_size: int = 2048,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Generate ``n`` labelled spectra; returns (X, Y).

        X has shape ``(n, axis.points)``, Y ``(n, n_components)`` in mol/L.
        Rendering is chunked to bound peak-table memory.
        """
        if concentrations is None:
            labels = self.sample_concentrations(n, rng)
        else:
            labels = np.asarray(concentrations, dtype=np.float64)
            if labels.shape != (n, len(self.models)):
                raise ValueError(
                    f"concentrations shape {labels.shape} != "
                    f"{(n, len(self.models))}"
                )
        if chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        out = np.empty((n, self.models.axis.points))
        for start in range(0, n, chunk_size):
            stop = min(start + chunk_size, n)
            out[start:stop] = self._render_chunk(labels[start:stop], rng, with_noise)
        return out, labels

    def generate_dataset_cached(
        self,
        n: int,
        seed: int,
        cache,
        with_noise: bool = True,
        chunk_size: int = 2048,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Seed-driven :meth:`generate_dataset` through an
        :class:`~repro.compute.cache.ArtifactCache`.

        The cache key covers the full generating config (hard-model peak
        tables, label ranges, noise parameters, n, seed, chunking), so a
        repeat call with an identical config is a checksummed read.
        """
        from repro.compute.datasets import generate_nmr_dataset

        x, y, _ = generate_nmr_dataset(
            self, n, seed, cache=cache,
            with_noise=with_noise, chunk_size=chunk_size,
        )
        return x, y

    def _render_chunk(
        self, labels: np.ndarray, rng: np.random.Generator, with_noise: bool
    ) -> np.ndarray:
        n = labels.shape[0]
        grid = self.models.axis.values()
        out = np.zeros((n, grid.size))
        phases = rng.normal(0.0, self.phase_sigma, size=n) if with_noise else np.zeros(n)
        for j, model in enumerate(self.models.models):
            shifts = rng.normal(0.0, self.shift_sigma, size=n) if with_noise else np.zeros(n)
            broadenings = (
                np.clip(rng.normal(1.0, self.broadening_sigma, size=n), 0.3, None)
                if with_noise
                else np.ones(n)
            )
            component = np.zeros((n, grid.size))
            for peak in model.peaks:
                centers = peak.center + shifts
                if with_noise and self.peak_jitter > 0:
                    centers = centers + rng.normal(0.0, self.peak_jitter, size=n)
                fwhms = peak.fwhm * broadenings
                component += peak.area * _pseudo_voigt_batch(
                    grid, centers, fwhms, peak.eta, phases
                )
            out += labels[:, j : j + 1] * component
        if with_noise:
            out += self._batch_baselines(n, rng)
            out += rng.normal(0.0, self.noise_sigma, size=out.shape)
        return out

    def _batch_baselines(self, n: int, rng: np.random.Generator) -> np.ndarray:
        if self.baseline_amplitude == 0:
            return np.zeros((n, self.models.axis.points))
        axis = self.models.axis
        grid = axis.values()
        span = axis.stop - axis.start
        phases = rng.uniform(0.0, 2.0 * np.pi, size=(n, 1))
        return self.baseline_amplitude * np.sin(
            2.0 * np.pi * (grid[None, :] - axis.start) / (2.0 * span) + phases
        )


def _pseudo_voigt_batch(
    grid: np.ndarray,
    centers: np.ndarray,
    fwhms: np.ndarray,
    eta: float,
    phases: Optional[np.ndarray] = None,
) -> np.ndarray:
    """(n, grid) pseudo-Voigt table for per-sample centers/widths/phases."""
    delta = grid[None, :] - centers[:, None]
    hwhm = 0.5 * fwhms[:, None]
    denom = delta * delta + hwhm * hwhm
    lorentz = (hwhm / np.pi) / denom
    if eta == 1.0:
        absorptive = lorentz
    else:
        sigma = fwhm_to_sigma(1.0) * fwhms[:, None]
        z = delta / sigma
        gauss = np.exp(-0.5 * z * z) / (sigma * np.sqrt(2.0 * np.pi))
        absorptive = gauss if eta == 0.0 else eta * lorentz + (1.0 - eta) * gauss
    if phases is None or not np.any(phases):
        return absorptive
    dispersive = eta * (delta / np.pi) / denom
    cos = np.cos(phases)[:, None]
    sin = np.sin(phases)[:, None]
    return cos * absorptive + sin * dispersive

"""Time-domain NMR: free induction decay synthesis and Fourier processing.

The paper's Fig. 2 describes the acquisition chain: "the resulting change
in overall magnetization can be detected with a radio frequency coil as a
decaying receiver signal and digitally recorded.  The NMR spectrum is
produced by Fourier transformation."  This module implements that chain:
each hard-model line becomes a decaying complex exponential in the FID;
apodization, zero-filling and FFT produce the frequency-domain spectrum.

The physics closes consistently with :mod:`repro.nmr.lineshapes`: the
Fourier transform of ``exp(-t/T2)`` is a Lorentzian of FWHM ``1/(pi*T2)``,
so a hard-model peak with FWHM ``w`` ppm maps to ``T2 = 1/(pi * w_hz)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

import numpy as np

from repro.nmr.hard_model import HardModelSet

__all__ = ["AcquisitionParameters", "FIDSynthesizer", "fid_to_spectrum"]


@dataclass(frozen=True)
class AcquisitionParameters:
    """Digitizer settings of the virtual receiver."""

    spectrometer_mhz: float = 43.0  # proton Larmor frequency
    n_points: int = 4096  # complex points recorded
    acquisition_time_s: float = 1.6
    carrier_ppm: float = 4.75  # transmitter offset (center of spectrum)
    zero_fill_factor: int = 2
    line_broadening_hz: float = 0.0  # exponential apodization

    def __post_init__(self):
        if self.spectrometer_mhz <= 0:
            raise ValueError("spectrometer_mhz must be positive")
        if self.n_points < 8:
            raise ValueError("n_points must be >= 8")
        if self.acquisition_time_s <= 0:
            raise ValueError("acquisition_time_s must be positive")
        if self.zero_fill_factor < 1:
            raise ValueError("zero_fill_factor must be >= 1")
        if self.line_broadening_hz < 0:
            raise ValueError("line_broadening_hz must be non-negative")

    @property
    def dwell_time_s(self) -> float:
        return self.acquisition_time_s / self.n_points

    @property
    def spectral_width_hz(self) -> float:
        return 1.0 / self.dwell_time_s

    @property
    def spectral_width_ppm(self) -> float:
        return self.spectral_width_hz / self.spectrometer_mhz

    def time_axis(self) -> np.ndarray:
        return np.arange(self.n_points) * self.dwell_time_s

    def ppm_axis(self) -> np.ndarray:
        """Chemical-shift axis of the processed spectrum (ascending)."""
        n = self.n_points * self.zero_fill_factor
        freq_hz = np.fft.fftshift(np.fft.fftfreq(n, d=self.dwell_time_s))
        return self.carrier_ppm + freq_hz / self.spectrometer_mhz


class FIDSynthesizer:
    """Synthesizes FIDs for mixtures described by a hard-model set."""

    def __init__(
        self,
        models: HardModelSet,
        parameters: AcquisitionParameters = AcquisitionParameters(),
    ):
        self.models = models
        self.parameters = parameters

    def synthesize(
        self,
        concentrations: Mapping[str, float],
        rng: Optional[np.random.Generator] = None,
        noise_sigma: float = 0.0,
        phase_error: float = 0.0,
    ) -> np.ndarray:
        """Complex FID of a mixture.

        Each hard-model line of FWHM ``w`` (ppm) contributes
        ``area * c * exp(i*(2*pi*f*t + phase)) * exp(-t/T2)`` with
        ``f`` the offset from the carrier and ``T2 = 1/(pi * w_hz)``.
        Gaussian line components are approximated by their Lorentzian
        equivalent (exact for eta=1 models).
        """
        params = self.parameters
        t = params.time_axis()
        fid = np.zeros(params.n_points, dtype=np.complex128)
        for model in self.models.models:
            c = float(concentrations.get(model.name, 0.0))
            if c < 0:
                raise ValueError(f"negative concentration for {model.name}")
            if c == 0:
                continue
            for peak in model.peaks:
                offset_hz = (peak.center - params.carrier_ppm) * params.spectrometer_mhz
                width_hz = peak.fwhm * params.spectrometer_mhz
                t2 = 1.0 / (np.pi * width_hz)
                fid += (
                    c
                    * peak.area
                    * np.exp(1j * (2.0 * np.pi * offset_hz * t + phase_error))
                    * np.exp(-t / t2)
                )
        if noise_sigma > 0:
            if rng is None:
                raise ValueError("noise_sigma > 0 requires an rng")
            fid = fid + rng.normal(0.0, noise_sigma, params.n_points) \
                + 1j * rng.normal(0.0, noise_sigma, params.n_points)
        return fid


def fid_to_spectrum(
    fid: np.ndarray,
    parameters: AcquisitionParameters,
) -> np.ndarray:
    """Process an FID into a real absorption spectrum.

    Applies exponential apodization, zero-fills, FFTs, and returns the real
    part on the ascending ppm axis of ``parameters.ppm_axis()``.  The first
    point is halved (standard DC-offset correction for discrete FTs of
    one-sided signals).
    """
    fid = np.asarray(fid, dtype=np.complex128)
    if fid.shape != (parameters.n_points,):
        raise ValueError(
            f"fid has shape {fid.shape}, expected ({parameters.n_points},)"
        )
    processed = fid.copy()
    if parameters.line_broadening_hz > 0:
        processed *= np.exp(
            -np.pi * parameters.line_broadening_hz * parameters.time_axis()
        )
    processed[0] *= 0.5
    n = parameters.n_points * parameters.zero_fill_factor
    spectrum = np.fft.fftshift(np.fft.fft(processed, n=n))
    # Normalize to area-per-Hz units independent of the digitizer settings:
    # dwell-time scaling of the discrete FT, times two because the FT of a
    # one-sided (causal) decay carries half the absorption-mode amplitude.
    return spectrum.real * (2.0 * parameters.dwell_time_s)

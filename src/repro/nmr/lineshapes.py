"""NMR line shapes.

IHM describes every pure component "with a series of Lorentz-Gauss
functions"; the pseudo-Voigt profile here is that Lorentz-Gauss mix.  All
profiles are *unit-area* in their pure forms so a peak's area parameter
maps directly to a number of nuclei (NMR's direct proportionality between
signal area and spin count is what makes it calibration-free).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "lorentzian",
    "gaussian",
    "pseudo_voigt",
    "dispersive_lorentzian",
    "pseudo_voigt_with_phase",
    "fwhm_to_sigma",
]

_SIGMA_PER_FWHM = 1.0 / 2.3548200450309493  # Gaussian sigma = FWHM * this


def fwhm_to_sigma(fwhm: float) -> float:
    """Gaussian sigma for a given full width at half maximum."""
    return fwhm * _SIGMA_PER_FWHM


def lorentzian(x: np.ndarray, center: float, fwhm: float) -> np.ndarray:
    """Unit-area Lorentzian profile.

    L(x) = (1/pi) * (hwhm / ((x-center)^2 + hwhm^2))
    """
    if fwhm <= 0:
        raise ValueError(f"fwhm must be positive, got {fwhm}")
    hwhm = 0.5 * fwhm
    return (hwhm / np.pi) / ((np.asarray(x) - center) ** 2 + hwhm * hwhm)


def gaussian(x: np.ndarray, center: float, fwhm: float) -> np.ndarray:
    """Unit-area Gaussian profile with the same FWHM convention."""
    if fwhm <= 0:
        raise ValueError(f"fwhm must be positive, got {fwhm}")
    sigma = fwhm_to_sigma(fwhm)
    z = (np.asarray(x) - center) / sigma
    return np.exp(-0.5 * z * z) / (sigma * np.sqrt(2.0 * np.pi))


def pseudo_voigt(
    x: np.ndarray, center: float, fwhm: float, eta: float = 0.5
) -> np.ndarray:
    """Unit-area pseudo-Voigt: eta*Lorentzian + (1-eta)*Gaussian.

    ``eta`` is the Lorentzian fraction; 0 gives a pure Gaussian, 1 a pure
    Lorentzian.  Real NMR lines in well-shimmed magnets are mostly
    Lorentzian; field inhomogeneity adds the Gaussian component.
    """
    if not 0.0 <= eta <= 1.0:
        raise ValueError(f"eta must be in [0, 1], got {eta}")
    if eta == 0.0:
        return gaussian(x, center, fwhm)
    if eta == 1.0:
        return lorentzian(x, center, fwhm)
    return eta * lorentzian(x, center, fwhm) + (1.0 - eta) * gaussian(x, center, fwhm)


def dispersive_lorentzian(x: np.ndarray, center: float, fwhm: float) -> np.ndarray:
    """The dispersive (imaginary) partner of the Lorentzian line.

    D(x) = (1/pi) * (x-center) / ((x-center)^2 + hwhm^2)

    A spectrum with an uncorrected phase error phi contains
    ``cos(phi)*absorptive + sin(phi)*dispersive`` — an asymmetric line no
    purely absorptive hard model can fit, which is one reason real IHM
    analyses underperform idealized ones.
    """
    if fwhm <= 0:
        raise ValueError(f"fwhm must be positive, got {fwhm}")
    hwhm = 0.5 * fwhm
    delta = np.asarray(x) - center
    return (delta / np.pi) / (delta * delta + hwhm * hwhm)


def pseudo_voigt_with_phase(
    x: np.ndarray, center: float, fwhm: float, eta: float = 0.5, phase: float = 0.0
) -> np.ndarray:
    """Pseudo-Voigt with an uncorrected zero-order phase error (radians).

    Only the Lorentzian fraction contributes dispersion (the Gaussian
    dispersive partner, a Dawson function, is small and neglected here).
    """
    absorptive = pseudo_voigt(x, center, fwhm, eta)
    if phase == 0.0:
        return absorptive
    dispersive = eta * dispersive_lorentzian(x, center, fwhm)
    return np.cos(phase) * absorptive + np.sin(phase) * dispersive

"""The domain-shift scenario matrix: shift × strategy → MAE surface.

One :class:`MatrixSpec` pins the *entire* generating surface of a
campaign — task compounds, axis, base instrument characteristics, dataset
sizes, topology, seeds — so every cell is a pure function of
``(spec, scenario, strategy)``.  :class:`DriftMatrix` fans the cells out
through a :class:`~repro.compute.executor.ParallelExecutor` and keys each
one (and each trained model) in an
:class:`~repro.compute.cache.ArtifactCache`:

* **Resumable** — an interrupted campaign re-run completes from cache;
  only the cells that never finished are recomputed.
* **Byte-deterministic across backends** — cells consume only seeds
  derived from the canonical content of their configs (the executor's
  per-task rng is deliberately unused), so ``serial``/``thread``/
  ``process`` produce identical surfaces.
* **Shared sub-artifacts** — the base model and the ensemble's
  drift-level members are cached as their own entries, so the expensive
  trainings happen once per campaign, not once per cell.

The output :class:`MatrixResult` is the Fig-6/7-style surface the
``bench_drift_matrix`` benchmark reports and the serving controller uses
to pick its recalibration strategy.
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.adaptation.scenarios import DriftScenario, shifted_ms_simulator
from repro.adaptation.strategies import (
    STRATEGIES,
    AdaptationContext,
    adapt,
)
from repro.compute.cache import ArtifactCache, canonical_blob

__all__ = ["MatrixSpec", "MatrixResult", "DriftMatrix", "run_cell"]


@dataclass(frozen=True)
class MatrixSpec:
    """The full generating surface of one matrix campaign."""

    compounds: Tuple[str, ...]
    axis: Tuple[float, float, float] = (1.0, 50.0, 0.2)
    characteristics: Optional[dict] = None  # None = defaults
    n_train: int = 4000
    n_small: int = 512
    n_eval: int = 512
    epochs: int = 8
    fine_tune_epochs: int = 6
    fine_tune_lr: float = 0.002
    hidden_units: Tuple[int, ...] = (32,)
    seed: int = 0
    ensemble_member_scenarios: Tuple[dict, ...] = field(default_factory=tuple)

    def __post_init__(self):
        if not self.compounds:
            raise ValueError("compounds must be non-empty")
        for label in ("n_train", "n_small", "n_eval", "epochs"):
            if getattr(self, label) < 1:
                raise ValueError(f"{label} must be >= 1")

    def as_config(self) -> dict:
        config = dataclasses.asdict(self)
        config["compounds"] = list(self.compounds)
        config["axis"] = list(self.axis)
        config["hidden_units"] = list(self.hidden_units)
        config["ensemble_member_scenarios"] = [
            dict(entry) for entry in self.ensemble_member_scenarios
        ]
        return config

    @classmethod
    def from_config(cls, config: dict) -> "MatrixSpec":
        config = dict(config)
        config["compounds"] = tuple(config["compounds"])
        config["axis"] = tuple(config["axis"])
        config["hidden_units"] = tuple(config["hidden_units"])
        config["ensemble_member_scenarios"] = tuple(
            dict(entry) for entry in config.get(
                "ensemble_member_scenarios", ()
            )
        )
        return cls(**config)


def _derived_seed(tag: str, *configs: dict) -> int:
    """A stable 31-bit seed from canonical config content.

    Seeds must depend only on *what* is being generated, never on cell
    scheduling, so every backend and every resumed run draws the same
    streams.
    """
    blob = canonical_blob({"tag": tag, "configs": list(configs)})
    return int.from_bytes(hashlib.sha256(blob).digest()[:4], "big") % (2**31)


def _build_simulator(spec: MatrixSpec, scenario: Optional[DriftScenario]):
    from repro.ms.compounds import default_library
    from repro.ms.instrument import InstrumentCharacteristics
    from repro.ms.simulator import MassSpectrometerSimulator
    from repro.ms.spectrum import MzAxis

    characteristics = InstrumentCharacteristics(
        **(spec.characteristics or {})
    )
    start, stop, step = spec.axis
    simulator = MassSpectrometerSimulator(
        characteristics, MzAxis(start, stop, step), default_library()
    )
    if scenario is not None and not scenario.is_identity:
        simulator = shifted_ms_simulator(simulator, scenario)
    return simulator


def _train_model(
    spec: MatrixSpec,
    scenario: Optional[DriftScenario],
    cache: Optional[ArtifactCache],
):
    """Train (or reload) the model for one training-time scenario.

    ``scenario=None`` is the base model trained on the unshifted
    simulator; ensemble members pass their assumed drift level.  Weights
    are cached as arrays keyed by the full generating config.
    """
    from repro.core.topologies import mlp_topology

    scenario_config = scenario.as_config() if scenario is not None else None
    config = {
        "kind": "drift_matrix_model",
        "spec": spec.as_config(),
        "scenario": scenario_config,
    }
    topology = mlp_topology(len(spec.compounds), hidden_units=spec.hidden_units)

    def input_length() -> int:
        start, stop, step = spec.axis
        from repro.ms.spectrum import MzAxis

        return MzAxis(start, stop, step).size

    def train() -> List[np.ndarray]:
        from repro.nn.optimizers import Adam

        simulator = _build_simulator(spec, scenario)
        rng = np.random.default_rng(
            _derived_seed("train", config)
        )
        x, y = simulator.generate_dataset(spec.compounds, spec.n_train, rng)
        model = topology.build((input_length(),), seed=spec.seed)
        model.compile(Adam(0.006), "mae")
        model.fit(
            x, y, epochs=spec.epochs, batch_size=64, seed=spec.seed,
            verbose=False,
        )
        return model.get_weights()

    if cache is None:
        weights = train()
    else:
        arrays, _, _ = cache.get_or_create(
            config,
            lambda: {
                f"w{i:04d}": w for i, w in enumerate(train())
            },
        )
        weights = [arrays[k] for k in sorted(arrays)]
    model = topology.build((input_length(),), seed=spec.seed)
    model.set_weights(weights)
    return model


def run_cell(payload: dict, rng=None) -> dict:
    """Compute one (scenario, strategy) cell; module-level for pickling.

    ``rng`` (the executor's per-task generator) is intentionally unused:
    every random draw comes from seeds derived from the cell's canonical
    config, which is what makes cells byte-identical across backends and
    across resumed runs.
    """
    spec = MatrixSpec.from_config(payload["spec"])
    scenario = DriftScenario(**payload["scenario"])
    strategy = payload["strategy"]
    cache_root = payload.get("cache_root")
    cache = ArtifactCache(cache_root) if cache_root else None

    cell_config = {
        "kind": "drift_matrix_cell",
        "spec": spec.as_config(),
        "scenario": scenario.as_config(),
        "strategy": strategy,
    }

    def compute() -> dict:
        base_model = _train_model(spec, None, cache)
        shifted = _build_simulator(spec, scenario)
        base = _build_simulator(spec, None)
        eval_rng = np.random.default_rng(
            _derived_seed("eval", cell_config["spec"], scenario.as_config())
        )
        eval_x, eval_y = shifted.generate_dataset(
            spec.compounds, spec.n_eval, eval_rng
        )
        small_rng = np.random.default_rng(
            _derived_seed("small", cell_config["spec"], scenario.as_config())
        )
        small_x, small_y = shifted.generate_dataset(
            spec.compounds, spec.n_small, small_rng
        )
        reference_rng = np.random.default_rng(
            _derived_seed("reference", cell_config["spec"])
        )
        reference_x, _ = base.generate_dataset(
            spec.compounds, spec.n_small, reference_rng
        )
        members = []
        if strategy == "ensemble":
            members = [
                _train_model(spec, DriftScenario(**entry), cache)
                for entry in spec.ensemble_member_scenarios
            ]
        context = AdaptationContext(
            model=base_model,
            small_x=small_x,
            small_y=small_y,
            reference_x=reference_x,
            seed=spec.seed,
            fine_tune_epochs=spec.fine_tune_epochs,
            fine_tune_lr=spec.fine_tune_lr,
            member_models=members,
        )
        predictor = adapt(strategy, context)
        predictions = predictor(eval_x)
        mae = float(np.mean(np.abs(predictions - eval_y)))
        return {
            "scenario": scenario.name,
            "strategy": strategy,
            "mae": mae,
            "n_eval": spec.n_eval,
            "detail": predictor.detail,
        }

    if cache is None:
        row = compute()
        row["cache_hit"] = False
        return row
    row, key, hit = cache.get_or_create_json(cell_config, compute)
    row = dict(row)
    row["cache_key"] = key
    row["cache_hit"] = bool(hit)
    return row


@dataclass
class MatrixResult:
    """The campaign's MAE surface plus any dead cells."""

    scenarios: List[str]
    strategies: List[str]
    rows: List[dict]
    failures: List[object] = field(default_factory=list)

    def surface(self) -> Dict[str, List[Optional[float]]]:
        """``{strategy: [mae per scenario, in scenario order]}``."""
        table: Dict[str, List[Optional[float]]] = {
            strategy: [None] * len(self.scenarios)
            for strategy in self.strategies
        }
        index = {name: i for i, name in enumerate(self.scenarios)}
        for row in self.rows:
            table[row["strategy"]][index[row["scenario"]]] = row["mae"]
        return table

    def best_strategy(self, scenario: str) -> Tuple[str, float]:
        """The winning strategy (lowest MAE) on one scenario column."""
        candidates = [
            (row["strategy"], row["mae"])
            for row in self.rows
            if row["scenario"] == scenario
        ]
        if not candidates:
            raise KeyError(f"no cells for scenario {scenario!r}")
        return min(candidates, key=lambda item: item[1])

    def to_payload(self) -> dict:
        """JSON-ready summary (what ``drift_matrix.json`` stores)."""
        return {
            "scenarios": list(self.scenarios),
            "strategies": list(self.strategies),
            "surface": self.surface(),
            "rows": [dict(row) for row in self.rows],
            "failures": [repr(failure) for failure in self.failures],
        }


class DriftMatrix:
    """Executes the scenario × strategy campaign."""

    def __init__(
        self,
        spec: MatrixSpec,
        scenarios: Sequence[DriftScenario],
        strategies: Sequence[str] = STRATEGIES,
        cache: Optional[ArtifactCache] = None,
        executor=None,
    ):
        if not scenarios:
            raise ValueError("scenarios must be non-empty")
        for strategy in strategies:
            if strategy not in STRATEGIES:
                raise ValueError(
                    f"unknown strategy {strategy!r}; expected one of "
                    f"{STRATEGIES}"
                )
        names = [scenario.name for scenario in scenarios]
        if len(set(names)) != len(names):
            raise ValueError(f"scenario names must be unique, got {names}")
        self.spec = spec
        self.scenarios = list(scenarios)
        self.strategies = list(strategies)
        self.cache = cache
        self.executor = executor

    def payloads(self) -> List[dict]:
        cache_root = str(self.cache.root) if self.cache is not None else None
        spec_config = self.spec.as_config()
        return [
            {
                "spec": spec_config,
                "scenario": scenario.as_config(),
                "strategy": strategy,
                "cache_root": cache_root,
            }
            for scenario in self.scenarios
            for strategy in self.strategies
        ]

    def run(self) -> MatrixResult:
        """Execute (or resume) every cell; returns the surface.

        The base model is pre-warmed in-parent so concurrent cold cells
        do not all train it; with a cache, completed cells are verified
        reads and only missing cells cost compute.
        """
        from repro.compute.executor import ParallelExecutor, TaskFailure
        from repro.observability.runtime import get_tracer

        executor = (
            self.executor if self.executor is not None else ParallelExecutor()
        )
        if self.cache is not None:
            _train_model(self.spec, None, self.cache)
        with get_tracer().start_span(
            "adaptation.matrix",
            attributes={
                "scenarios": len(self.scenarios),
                "strategies": len(self.strategies),
                "cached": self.cache is not None,
            },
        ) as span:
            outcomes = executor.map_tasks(
                run_cell, self.payloads(), label="drift_matrix"
            )
            rows = [o for o in outcomes if not isinstance(o, TaskFailure)]
            failures = [o for o in outcomes if isinstance(o, TaskFailure)]
            span.set_attribute("failures", len(failures))
        return MatrixResult(
            scenarios=[scenario.name for scenario in self.scenarios],
            strategies=list(self.strategies),
            rows=rows,
            failures=failures,
        )

"""Parameterized domain-shift scenarios over the spectrum simulators.

The training-data simulator "only considers a static system state"; the
instrument it serves does not stay static.  A :class:`DriftScenario`
names the four shift families the virtual prototype and the related
sim-to-real studies exhibit — sensitivity drift, noise scale/family,
peak-shift severity, baseline wander — as one declarative object that can
be applied to either simulator to manufacture a "shifted-real" instrument:

* **MS** — :func:`shift_characteristics` rewrites
  :class:`~repro.ms.instrument.InstrumentCharacteristics` (gain and
  attenuation-tau for sensitivity, noise sigmas, m/z offset, baseline
  amplitude); :func:`shifted_ms_simulator` wraps that into a new
  :class:`~repro.ms.simulator.MassSpectrometerSimulator`.
* **NMR** — :func:`shifted_nmr_simulator` maps the same axes onto the
  :class:`~repro.nmr.simulator.NMRSpectrumSimulator` surface (broadening
  for sensitivity loss, noise sigma, shift sigma, baseline amplitude).

Scenarios are plain frozen dataclasses with a canonical ``as_config()``
so the matrix layer can key cached cells by scenario content through
:func:`~repro.compute.cache.canonical_key`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import List, Sequence

__all__ = [
    "NOISE_FAMILIES",
    "DriftScenario",
    "scenario_grid",
    "shift_characteristics",
    "shifted_ms_simulator",
    "shifted_nmr_simulator",
]

# "gaussian" scales the additive noise only; "heavy" additionally inflates
# the signal-proportional (shot) component, the tail-heavy failure family.
NOISE_FAMILIES = ("gaussian", "heavy")


@dataclass(frozen=True)
class DriftScenario:
    """One point on the domain-shift axis.

    ``sensitivity_drift`` is the fractional loss of detector sensitivity
    (0 = none, 0.3 = 30% gain loss plus a proportional attenuation-tau
    shrink, which *changes the spectral shape* — the part normalization
    cannot hide).  ``noise_scale`` multiplies the noise sigmas,
    ``noise_family`` picks which sigmas; ``peak_shift`` is an absolute
    mass-axis calibration offset (m/z units on MS, scaled into ppm shift
    sigma on NMR); ``baseline_wander`` multiplies the baseline amplitude.
    """

    name: str
    sensitivity_drift: float = 0.0
    noise_scale: float = 1.0
    noise_family: str = "gaussian"
    peak_shift: float = 0.0
    baseline_wander: float = 1.0

    def __post_init__(self):
        if not 0.0 <= self.sensitivity_drift < 1.0:
            raise ValueError("sensitivity_drift must be in [0, 1)")
        if self.noise_scale <= 0:
            raise ValueError("noise_scale must be positive")
        if self.noise_family not in NOISE_FAMILIES:
            raise ValueError(
                f"noise_family must be one of {NOISE_FAMILIES}, "
                f"got {self.noise_family!r}"
            )
        if self.baseline_wander < 0:
            raise ValueError("baseline_wander must be non-negative")

    @property
    def is_identity(self) -> bool:
        return (
            self.sensitivity_drift == 0.0
            and self.noise_scale == 1.0
            and self.peak_shift == 0.0
            and self.baseline_wander == 1.0
        )

    def as_config(self) -> dict:
        """Canonical dict for cache keys (field order never matters)."""
        return dataclasses.asdict(self)

    def scaled(self, fraction: float, name: str = None) -> "DriftScenario":
        """The scenario at ``fraction`` of its severity (0 = identity)."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        return DriftScenario(
            name=name if name is not None else f"{self.name}@{fraction:g}",
            sensitivity_drift=self.sensitivity_drift * fraction,
            noise_scale=1.0 + (self.noise_scale - 1.0) * fraction,
            noise_family=self.noise_family,
            peak_shift=self.peak_shift * fraction,
            baseline_wander=1.0 + (self.baseline_wander - 1.0) * fraction,
        )


def scenario_grid(
    levels: Sequence[float] = (0.0, 0.5, 1.0),
    max_sensitivity_drift: float = 0.35,
    max_noise_scale: float = 3.0,
    noise_family: str = "gaussian",
    max_peak_shift: float = 0.06,
    max_baseline_wander: float = 4.0,
) -> List[DriftScenario]:
    """A monotone ladder of scenarios from nominal to full shift.

    Level 0 is always the identity scenario (the sim-equals-real column
    of the matrix); level 1 applies every maximum at once.
    """
    top = DriftScenario(
        name="full",
        sensitivity_drift=max_sensitivity_drift,
        noise_scale=max_noise_scale,
        noise_family=noise_family,
        peak_shift=max_peak_shift,
        baseline_wander=max_baseline_wander,
    )
    return [
        top.scaled(float(level), name=f"drift-{float(level):.2f}")
        for level in levels
    ]


def shift_characteristics(characteristics, scenario: DriftScenario):
    """Apply a scenario to MS :class:`InstrumentCharacteristics`.

    Sensitivity drift both attenuates the gain and shrinks the
    attenuation tau (heavier high-m/z loss), so the per-channel response
    *shape* changes — max-normalization alone cannot undo it.
    """
    shot_scale = (
        scenario.noise_scale if scenario.noise_family == "heavy" else 1.0
    )
    return dataclasses.replace(
        characteristics,
        gain=characteristics.gain * (1.0 - scenario.sensitivity_drift),
        attenuation_tau=characteristics.attenuation_tau
        * (1.0 - 0.5 * scenario.sensitivity_drift),
        noise_sigma=characteristics.noise_sigma * scenario.noise_scale,
        shot_noise_factor=characteristics.shot_noise_factor * shot_scale,
        mz_offset=characteristics.mz_offset + scenario.peak_shift,
        baseline_amplitude=characteristics.baseline_amplitude
        * scenario.baseline_wander,
    )


def shifted_ms_simulator(simulator, scenario: DriftScenario):
    """A new MS simulator standing in for the drifted real instrument."""
    from repro.ms.simulator import MassSpectrometerSimulator

    return MassSpectrometerSimulator(
        shift_characteristics(simulator.characteristics, scenario),
        simulator.axis,
        simulator.library,
    )


def shifted_nmr_simulator(simulator, scenario: DriftScenario):
    """Apply the same shift axes to an NMR spectrum simulator.

    Sensitivity loss on an NMR spectrometer shows up as line broadening
    (shimming decay), so ``sensitivity_drift`` inflates
    ``broadening_sigma``; ``peak_shift`` maps onto the chemical-shift
    jitter sigma, the rest map one-to-one.
    """
    from repro.nmr.simulator import NMRSpectrumSimulator

    shot_scale = (
        scenario.noise_scale if scenario.noise_family == "heavy" else 1.0
    )
    return NMRSpectrumSimulator(
        simulator.models,
        dict(simulator.ranges),
        shift_sigma=simulator.shift_sigma + scenario.peak_shift,
        broadening_sigma=simulator.broadening_sigma
        * (1.0 + 2.0 * scenario.sensitivity_drift),
        noise_sigma=simulator.noise_sigma * scenario.noise_scale,
        baseline_amplitude=simulator.baseline_amplitude
        * scenario.baseline_wander,
        phase_sigma=simulator.phase_sigma,
        peak_jitter=simulator.peak_jitter * shot_scale,
    )

"""Guarded online recalibration: shadow → gate → promote, or reject/rollback.

The paper leaves automatic in-lifecycle re-adaptation as an open problem;
the failure mode that makes it hard is not *training* the replacement
model but *trusting* it.  A recalibration triggered by a drift alarm is
trained on whatever the drifted instrument currently emits — if that data
is poisoned (a dying detector producing NaNs, a mis-run reference
measurement) the "fresh" model can be strictly worse than the stale one,
and an unguarded hot-swap turns a drift incident into an outage.

:class:`AdaptationController` therefore never serves a candidate model
directly.  The sequence is:

1. **Trigger** — :meth:`observe` consumes
   :class:`~repro.core.lifecycle.DriftStatus` from the drift monitor; a
   drift alarm invokes the caller-supplied ``recalibrate`` hook to build
   a candidate model.
2. **Shadow** — the current primary keeps serving while the service's
   shadow tap mirrors every served request onto the candidate.  Candidate
   outputs are compared against the served answers (delta histogram,
   finiteness counts) and *never* returned to any caller.
3. **Gate** — after ``min_shadow_requests`` mirrored requests, the
   :class:`PromotionGate` checks the candidate's output finiteness over
   the shadow window and its MAE on a held-out labelled reference set
   against the primary's.  Fail → the candidate is discarded and
   journaled as rejected; the primary was never disturbed.
4. **Promote** — pass → the pre-promotion primary is already persisted as
   a ``<name>-rollback`` checkpoint (written at shadow start, *before*
   anything could go wrong), the candidate is checkpointed under
   ``<name>`` and hot-swapped in.
5. **Watch / rollback** — for a post-promotion watch window, a renewed
   drift alarm rolls back: the ``<name>-rollback`` checkpoint is loaded
   through the verified envelope path and swapped back in.  Checkpoint
   round-trips preserve float64 weights exactly, so the restored primary
   is byte-identical to the pre-promotion one.

Every transition is journaled through
:class:`~repro.storage.promotion.PromotionJournal` before it takes
effect, so a crash mid-transition leaves a record of intent, and the
full history (who served when, what was rejected and why) survives the
process.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, Optional, Tuple

import numpy as np

from repro.observability.runtime import get_registry, get_tracer
from repro.reliability.checkpoint import CheckpointManager
from repro.serving.batching import batch_analyzer_from_model
from repro.serving.service import AnalysisService
from repro.storage.promotion import PromotionJournal

__all__ = [
    "AdaptationController",
    "GateDecision",
    "PromotionGate",
    "ShadowStats",
]

# Shadow-delta histogram buckets: |candidate - served| mean per request,
# in concentration units (served outputs are ~[0, 1] fractions).
_DELTA_BUCKETS = (0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0)

# Hardest a drift severity may shorten the retry cooldown: at most 4x
# faster than the base, even for inf severity (zero-baseline statuses).
_MAX_COOLDOWN_SCALE = 4.0


@dataclass
class ShadowStats:
    """What the candidate did over the mirrored-request window."""

    requests: int = 0
    finite: int = 0
    errors: int = 0
    delta_sum: float = 0.0
    delta_count: int = 0

    @property
    def finite_fraction(self) -> float:
        return self.finite / self.requests if self.requests else 0.0

    @property
    def mean_delta(self) -> Optional[float]:
        if self.delta_count == 0:
            return None
        return self.delta_sum / self.delta_count

    def as_dict(self) -> dict:
        return {
            "requests": self.requests,
            "finite": self.finite,
            "errors": self.errors,
            "finite_fraction": self.finite_fraction,
            "mean_delta": self.mean_delta,
        }


@dataclass(frozen=True)
class GateDecision:
    """One gate evaluation; ``reasons`` names every failed check."""

    promote: bool
    reasons: Tuple[str, ...]
    detail: dict = field(default_factory=dict)


@dataclass(frozen=True)
class PromotionGate:
    """The promotion criteria, all of which must hold.

    * the candidate produced a finite output for at least
      ``min_finite_fraction`` of ``min_shadow_requests`` mirrored
      requests (default: *every* one — a model that NaNs once under real
      traffic has no business serving it);
    * its MAE on the labelled reference set is within
      ``max_reference_mae_ratio`` of the primary's (it may be slightly
      worse on *nominal* data if it was trained for drifted data, hence
      the ratio is > 1);
    * optionally, its mean per-request deviation from the served answers
      stays under ``max_shadow_delta`` (a sanity bound against a
      candidate that is finite but wild);
    * optionally, its conformal interval coverage on the reference set
      reaches ``min_interval_coverage`` (a candidate whose uncertainty
      intervals stop covering the truth would turn the serving
      abstention gate into a liar, however good its point MAE looks).
    """

    min_shadow_requests: int = 25
    min_finite_fraction: float = 1.0
    max_reference_mae_ratio: float = 1.25
    max_shadow_delta: Optional[float] = None
    min_interval_coverage: Optional[float] = None

    def __post_init__(self):
        if self.min_shadow_requests < 1:
            raise ValueError("min_shadow_requests must be >= 1")
        if not 0.0 < self.min_finite_fraction <= 1.0:
            raise ValueError("min_finite_fraction must be in (0, 1]")
        if self.max_reference_mae_ratio <= 0:
            raise ValueError("max_reference_mae_ratio must be positive")
        if self.min_interval_coverage is not None and not (
            0.0 < self.min_interval_coverage <= 1.0
        ):
            raise ValueError("min_interval_coverage must be in (0, 1]")

    def decide(
        self,
        stats: ShadowStats,
        candidate_mae: float,
        primary_mae: float,
        interval_coverage: Optional[float] = None,
    ) -> GateDecision:
        reasons = []
        if stats.requests < self.min_shadow_requests:
            reasons.append("insufficient_shadow_requests")
        if stats.finite_fraction < self.min_finite_fraction:
            reasons.append("nonfinite_shadow_outputs")
        if not np.isfinite(candidate_mae):
            reasons.append("nonfinite_reference_mae")
        elif candidate_mae > self.max_reference_mae_ratio * primary_mae:
            reasons.append("reference_mae_regression")
        if self.max_shadow_delta is not None:
            mean_delta = stats.mean_delta
            if mean_delta is None or mean_delta > self.max_shadow_delta:
                reasons.append("shadow_delta_excessive")
        if self.min_interval_coverage is not None:
            if interval_coverage is None:
                reasons.append("interval_coverage_unavailable")
            elif not np.isfinite(interval_coverage) or (
                interval_coverage < self.min_interval_coverage
            ):
                reasons.append("interval_coverage_low")
        return GateDecision(
            promote=not reasons,
            reasons=tuple(reasons),
            detail={
                **stats.as_dict(),
                "candidate_reference_mae": float(candidate_mae),
                "primary_reference_mae": float(primary_mae),
                "interval_coverage": (
                    None if interval_coverage is None
                    else float(interval_coverage)
                ),
            },
        )


class AdaptationController:
    """Drives the shadow → gate → promote/rollback state machine.

    ``service`` is a running :class:`AnalysisService` currently serving
    ``model``; ``recalibrate`` builds a candidate model from a drift
    status (typically a fine-tune or a fresh toolchain run — the
    controller does not care how).  ``reference_x``/``reference_y`` is a
    small held-out labelled set on *nominal* data used by the gate.
    States: ``nominal`` → ``shadowing`` → (``watch`` | ``nominal``) →
    ``nominal``.  All methods are thread-safe; the shadow tap runs on the
    service's worker threads.
    """

    def __init__(
        self,
        service: AnalysisService,
        model,
        checkpoints: CheckpointManager,
        journal: PromotionJournal,
        reference_x: np.ndarray,
        reference_y: np.ndarray,
        name: str = "serving",
        gate: Optional[PromotionGate] = None,
        recalibrate: Optional[Callable] = None,
        cooldown_observations: int = 10,
        watch_observations: int = 30,
        coverage_probe: Optional[Callable] = None,
        registry=None,
        tracer=None,
    ):
        if len(reference_x) != len(reference_y) or len(reference_x) == 0:
            raise ValueError("reference set must be non-empty and aligned")
        self.service = service
        self.model = model
        self.checkpoints = checkpoints
        self.journal = journal
        self.reference_x = np.asarray(reference_x, dtype=np.float64)
        self.reference_y = np.asarray(reference_y, dtype=np.float64)
        self.name = str(name)
        self.gate = gate if gate is not None else PromotionGate()
        self.recalibrate = recalibrate
        self.cooldown_observations = int(cooldown_observations)
        self.watch_observations = int(watch_observations)
        # Optional uncertainty probe: coverage_probe(candidate_model) ->
        # conformal interval coverage on held-out data, consumed by the
        # gate's min_interval_coverage check.  A probe that raises reads
        # as "coverage unavailable" — the gate then refuses if it
        # requires coverage, which is the safe direction.
        self.coverage_probe = coverage_probe
        self.registry = registry if registry is not None else get_registry()
        self.tracer = tracer if tracer is not None else get_tracer()
        self.state = "nominal"
        self.candidate = None
        self.shadow_stats = ShadowStats()
        self.last_decision: Optional[GateDecision] = None
        self._cooldown = 0
        self._watch_remaining = 0
        self._lock = threading.RLock()
        self._m_shadow = self.registry.counter(
            "adaptation_shadow_requests_total",
            "mirrored requests by candidate outcome",
        )
        self._m_delta = self.registry.histogram(
            "adaptation_shadow_delta",
            "mean |candidate - served| per mirrored request",
            buckets=_DELTA_BUCKETS,
        )
        self._m_promotions = self.registry.counter(
            "adaptation_promotions_total", "candidates promoted to serving"
        )
        self._m_rejections = self.registry.counter(
            "adaptation_rejections_total", "candidates refused by the gate"
        )
        self._m_rollbacks = self.registry.counter(
            "adaptation_rollbacks_total",
            "promotions reverted to the rollback checkpoint",
        )
        self._m_state = self.registry.gauge(
            "adaptation_state",
            "controller state (0 nominal, 1 shadowing, 2 watch)",
        )
        self._set_state("nominal")

    # -- drift-signal entry point -------------------------------------------

    def observe(self, status) -> str:
        """Feed one drift status; returns the action taken.

        Actions: ``"none"``, ``"cooldown"``, ``"shadow_started"``,
        ``"recalibrate_failed"``, ``"rolled_back"``, ``"watch_cleared"``.
        Promotion/rejection decisions do not happen here — they fire from
        the shadow tap once the mirrored-request window fills.
        """
        with self._lock:
            if self._cooldown > 0:
                self._cooldown -= 1
                return "cooldown"
            if self.state == "watch":
                if status.drifted:
                    self.rollback("post_promotion_drift", status=status)
                    return "rolled_back"
                self._watch_remaining -= 1
                if self._watch_remaining <= 0:
                    self._set_state("nominal")
                    return "watch_cleared"
                return "none"
            if self.state != "nominal" or not status.drifted:
                return "none"
            if self.recalibrate is None:
                return "none"
            try:
                candidate = self.recalibrate(status)
            except Exception as error:
                # A recalibration that cannot even produce a model is not
                # a gate matter; note it and back off before retrying.
                self.journal.append(
                    "rejected",
                    name=self.name,
                    stage="recalibrate",
                    error=f"{type(error).__name__}: {error}",
                    drift=_drift_record(status),
                )
                self._m_rejections.inc(stage="recalibrate")
                self._cooldown = self._cooldown_after(status)
                return "recalibrate_failed"
            self.start_shadow(candidate, status=status)
            return "shadow_started"

    # -- shadow lifecycle ----------------------------------------------------

    def start_shadow(self, candidate, status=None) -> None:
        """Persist the rollback point, then start mirroring traffic.

        Order matters: the pre-promotion primary is checkpointed as
        ``<name>-rollback`` *before* the candidate touches anything, so a
        later rollback restores a verified artifact regardless of what
        the candidate or a crash does in between.
        """
        with self._lock:
            if self.state != "nominal":
                raise RuntimeError(
                    f"cannot start shadow from state {self.state!r}"
                )
            span = self.tracer.start_span(
                "adaptation.shadow_start", attributes={"name": self.name}
            )
            self.checkpoints.save(
                f"{self.name}-rollback",
                self.model,
                state={"role": "rollback_point", "for": self.name},
            )
            self.candidate = candidate
            self.shadow_stats = ShadowStats()
            self.last_decision = None
            self.journal.append(
                "shadow_started",
                name=self.name,
                gate={
                    "min_shadow_requests": self.gate.min_shadow_requests,
                    "min_finite_fraction": self.gate.min_finite_fraction,
                    "max_reference_mae_ratio": self.gate.max_reference_mae_ratio,
                    "min_interval_coverage": self.gate.min_interval_coverage,
                },
                drift=_drift_record(status),
            )
            self._set_state("shadowing")
            self.service.set_shadow_tap(self._shadow)
            span.end()

    def _shadow(self, data, served_value) -> None:
        """The service tap: mirror one served request onto the candidate."""
        with self._lock:
            if self.state != "shadowing":
                return
            stats = self.shadow_stats
            stats.requests += 1
            try:
                row = np.asarray(data, dtype=np.float64)[np.newaxis, ...]
                candidate_value = np.asarray(
                    self.candidate.predict(row)[0], dtype=np.float64
                )
            except Exception:
                stats.errors += 1
                self._m_shadow.inc(outcome="error")
            else:
                if np.isfinite(candidate_value).all():
                    stats.finite += 1
                    self._m_shadow.inc(outcome="finite")
                    served = np.asarray(served_value, dtype=np.float64)
                    if served.shape == candidate_value.shape:
                        delta = float(
                            np.mean(np.abs(candidate_value - served))
                        )
                        stats.delta_sum += delta
                        stats.delta_count += 1
                        self._m_delta.observe(delta)
                else:
                    self._m_shadow.inc(outcome="nonfinite")
            if stats.requests >= self.gate.min_shadow_requests:
                self._decide()

    def _decide(self) -> None:
        """Gate the candidate once the shadow window has filled."""
        span = self.tracer.start_span(
            "adaptation.decide", attributes={"name": self.name}
        )
        candidate_mae = self._reference_mae(self.candidate)
        primary_mae = self._reference_mae(self.model)
        coverage = None
        if self.coverage_probe is not None:
            try:
                coverage = float(self.coverage_probe(self.candidate))
            except Exception:
                coverage = None
        decision = self.gate.decide(
            self.shadow_stats, candidate_mae, primary_mae,
            interval_coverage=coverage,
        )
        self.last_decision = decision
        span.set_attribute("promote", decision.promote)
        if decision.promote:
            self.promote(decision)
        else:
            self.reject(decision)
        span.end(status=None if decision.promote else "error: rejected")

    def _reference_mae(self, model) -> float:
        try:
            predictions = np.asarray(
                model.predict(self.reference_x), dtype=np.float64
            )
        except Exception:
            return float("inf")
        if predictions.shape != self.reference_y.shape:
            return float("inf")
        error = np.abs(predictions - self.reference_y)
        if not np.isfinite(error).all():
            return float("inf")
        return float(np.mean(error))

    # -- transitions ---------------------------------------------------------

    def promote(self, decision: GateDecision) -> None:
        """The candidate becomes the primary — journal, persist, swap."""
        with self._lock:
            span = self.tracer.start_span(
                "adaptation.promote", attributes={"name": self.name}
            )
            self.service.set_shadow_tap(None)
            self.journal.append(
                "promoted", name=self.name, gate_detail=decision.detail
            )
            self.checkpoints.save(
                self.name,
                self.candidate,
                state={"role": "promoted", "gate": decision.detail},
            )
            self.model = self.candidate
            self.candidate = None
            analyzer, batch = self._analyzers(self.model)
            self.service.swap_analyzer(analyzer, batch)
            self._m_promotions.inc()
            self._watch_remaining = self.watch_observations
            self._set_state("watch")
            span.end()

    def reject(self, decision: GateDecision) -> None:
        """Discard the candidate; the primary was never disturbed."""
        with self._lock:
            self.service.set_shadow_tap(None)
            self.journal.append(
                "rejected",
                name=self.name,
                stage="gate",
                reasons=list(decision.reasons),
                gate_detail=decision.detail,
            )
            self._m_rejections.inc(stage="gate")
            self.candidate = None
            self._cooldown = self.cooldown_observations
            self._set_state("nominal")

    def rollback(self, reason: str, status=None) -> None:
        """Restore the pre-promotion primary from its verified checkpoint.

        The checkpoint envelope preserves float64 weights bit-exactly, so
        the restored model's predictions are byte-identical to the
        pre-promotion primary's.
        """
        with self._lock:
            span = self.tracer.start_span(
                "adaptation.rollback",
                attributes={"name": self.name, "reason": reason},
            )
            self.service.set_shadow_tap(None)
            restored = self.checkpoints.load(f"{self.name}-rollback")
            self.journal.append(
                "rolled_back",
                name=self.name,
                reason=reason,
                generation=restored.generation,
                fell_back=restored.fell_back,
                drift=_drift_record(status),
            )
            self.model = restored.model
            self.candidate = None
            self.checkpoints.save(
                self.name,
                self.model,
                state={"role": "rolled_back", "reason": reason},
            )
            analyzer, batch = self._analyzers(self.model)
            self.service.swap_analyzer(analyzer, batch)
            self._m_rollbacks.inc()
            self._cooldown = self._cooldown_after(status)
            self._watch_remaining = 0
            self._set_state("nominal")
            span.end()

    # -- internals -----------------------------------------------------------

    def _cooldown_after(self, status) -> int:
        """Severity-scaled backoff, hardened against ``inf``/NaN severity.

        :attr:`DriftStatus.severity` is documented to return ``inf``
        against a zero baseline, and duck-typed statuses can hand us NaN
        — naive arithmetic (``base / severity``, ``int(...)``) would
        raise or produce a zero/negative cooldown and spin the
        controller into retrying every observation.  The rules:

        * no status / no usable severity / NaN → the full base cooldown
          (unknown severity is *not* a reason to retry faster);
        * severity <= 1 (nominal or sub-nominal) → the full base cooldown;
        * severe drift shortens the backoff — the more anomalous the
          signal, the sooner a retry is warranted — but the scale is
          clamped (``inf`` included) so the result is always a finite
          int of at least 1.
        """
        base = self.cooldown_observations
        severity = getattr(status, "severity", None)
        if severity is None:
            return base
        try:
            severity = float(severity)
        except (TypeError, ValueError):
            return base
        if np.isnan(severity) or severity <= 1.0:
            return base
        scale = min(severity, _MAX_COOLDOWN_SCALE)
        return max(1, int(np.ceil(base / scale)))

    def _analyzers(self, model):
        """(single, batched-or-None) analyzers over ``model``."""

        def analyzer(intensities):
            batch = np.asarray(intensities, dtype=np.float64)[np.newaxis, ...]
            return model.predict(batch)[0]

        batched = None
        if self.service.batching is not None:
            batched = batch_analyzer_from_model(model, validate=False)
        return analyzer, batched

    def _set_state(self, state: str) -> None:
        self.state = state
        self._m_state.labels(name=self.name).set(
            {"nominal": 0, "shadowing": 1, "watch": 2}[state]
        )

    def snapshot(self) -> dict:
        """Controller state for stats endpoints and tests."""
        with self._lock:
            return {
                "state": self.state,
                "cooldown": self._cooldown,
                "watch_remaining": self._watch_remaining,
                "shadow": self.shadow_stats.as_dict(),
                "last_decision": (
                    None
                    if self.last_decision is None
                    else {
                        "promote": self.last_decision.promote,
                        "reasons": list(self.last_decision.reasons),
                    }
                ),
            }


def _drift_record(status) -> Optional[dict]:
    """A journal-safe encoding of a drift status (or None)."""
    if status is None:
        return None
    if hasattr(status, "to_record"):
        return status.to_record()
    return {"drifted": bool(getattr(status, "drifted", False))}

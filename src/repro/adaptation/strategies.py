"""Adaptation strategies: what to do about a domain-shifted instrument.

Each strategy consumes one :class:`AdaptationContext` — the deployed base
model, the base (training-time) simulator, and a *small* labelled dataset
from the shifted instrument standing in for the handful of real reference
measurements an operator can afford — and returns an
:class:`AdaptedPredictor`: a named ``predict(x) -> y`` plus the adapted
model (when the strategy produces one).  The four strategies are the
matrix's columns and the related sim-to-real works' usual suspects:

* ``none`` — serve the frozen base model (the degradation baseline);
* ``fine_tune`` — clone the base model and continue training on the
  small shifted dataset (never mutates the deployed weights);
* ``scaler_recal`` — recalibrate the *input* instead of the model: a
  per-channel multiplicative correction mapping the shifted instrument's
  mean response back onto the base simulator's, which is exactly the
  right inverse for sensitivity drift (a per-channel gain change);
* ``ensemble`` — average the base model with models trained on simulated
  intermediate drift levels, hedging across the severity axis.

Strategies are pure given their context and seeds, which is what lets the
matrix cache cells by content.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.nn.serialization import clone_model

__all__ = [
    "STRATEGIES",
    "AdaptationContext",
    "AdaptedPredictor",
    "adapt",
    "channel_correction",
]

STRATEGIES = ("none", "fine_tune", "scaler_recal", "ensemble")


@dataclass
class AdaptationContext:
    """Everything a strategy may consume.

    ``small_x``/``small_y`` is the small labelled shifted-real set;
    ``reference_x`` is unlabelled base-simulator output used by the
    scaler recalibration (its mean spectrum defines "nominal").
    ``member_models`` are pre-trained drift-level models for the ensemble
    (trained by the caller, typically through the cached matrix cells).
    """

    model: object
    small_x: np.ndarray
    small_y: np.ndarray
    reference_x: np.ndarray
    seed: int = 0
    fine_tune_epochs: int = 8
    fine_tune_lr: float = 0.002
    member_models: Sequence[object] = field(default_factory=tuple)


@dataclass
class AdaptedPredictor:
    """A named predictor produced by one strategy."""

    strategy: str
    predict: Callable[[np.ndarray], np.ndarray]
    model: Optional[object] = None
    detail: dict = field(default_factory=dict)

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.predict(x)


def channel_correction(
    reference_x: np.ndarray, shifted_x: np.ndarray, floor: float = 1e-6
) -> np.ndarray:
    """Per-channel gain correction mapping shifted spectra to nominal.

    The ratio of mean spectra; channels the shifted instrument barely
    sees any more are clipped by ``floor`` so the correction stays finite
    and bounded.
    """
    reference_mean = np.asarray(reference_x, dtype=np.float64).mean(axis=0)
    shifted_mean = np.asarray(shifted_x, dtype=np.float64).mean(axis=0)
    correction = (reference_mean + floor) / (shifted_mean + floor)
    return np.clip(correction, 0.1, 10.0)


def _predict_none(context: AdaptationContext) -> AdaptedPredictor:
    model = context.model
    return AdaptedPredictor("none", lambda x: model.predict(x), model=model)


def _predict_fine_tune(context: AdaptationContext) -> AdaptedPredictor:
    from repro.nn.optimizers import Adam

    tuned = clone_model(context.model, seed=context.seed)
    tuned.compile(Adam(context.fine_tune_lr), "mae")
    history = tuned.fit(
        context.small_x,
        context.small_y,
        epochs=context.fine_tune_epochs,
        batch_size=min(32, len(context.small_x)),
        seed=context.seed,
        verbose=False,
    )
    return AdaptedPredictor(
        "fine_tune",
        lambda x: tuned.predict(x),
        model=tuned,
        detail={"epochs_run": len(history.epochs)},
    )


def _predict_scaler_recal(context: AdaptationContext) -> AdaptedPredictor:
    model = context.model
    correction = channel_correction(context.reference_x, context.small_x)

    def predict(x: np.ndarray) -> np.ndarray:
        corrected = np.asarray(x, dtype=np.float64) * correction[None, :]
        peak = np.max(corrected, axis=1, keepdims=True)
        np.clip(peak, 1e-12, None, out=peak)
        return model.predict(corrected / peak)

    return AdaptedPredictor(
        "scaler_recal",
        predict,
        model=model,
        detail={
            "correction_min": float(correction.min()),
            "correction_max": float(correction.max()),
        },
    )


def _predict_ensemble(context: AdaptationContext) -> AdaptedPredictor:
    members: List[object] = [context.model, *context.member_models]

    def predict(x: np.ndarray) -> np.ndarray:
        stacked = np.stack([member.predict(x) for member in members])
        return stacked.mean(axis=0)

    return AdaptedPredictor(
        "ensemble", predict, detail={"members": len(members)}
    )


_BUILDERS = {
    "none": _predict_none,
    "fine_tune": _predict_fine_tune,
    "scaler_recal": _predict_scaler_recal,
    "ensemble": _predict_ensemble,
}


def adapt(strategy: str, context: AdaptationContext) -> AdaptedPredictor:
    """Run one named strategy over a context."""
    builder = _BUILDERS.get(strategy)
    if builder is None:
        raise ValueError(
            f"unknown strategy {strategy!r}; expected one of {STRATEGIES}"
        )
    return builder(context)

"""Sim-to-real adaptation: domain-shift scenarios, strategies, serving.

The paper's conclusion names the open lifecycle problem — systems must be
"automatically and reliably adapted to perturbations or changes in
parameters" in production — and three of the PAPERS.md related works show
that simulated-trained models degrade *non-uniformly* under real-world
shift.  This package turns that from an anecdote into a measured surface
and a guarded serving behaviour:

* :mod:`repro.adaptation.scenarios` — a parameterized domain-shift axis
  (sensitivity drift, noise family/scale, peak-shift severity, baseline
  wander) applied to the MS and NMR simulators to manufacture
  "shifted-real" instruments;
* :mod:`repro.adaptation.strategies` — adaptation strategies (none,
  small-real fine-tune, per-channel scaler recalibration, ensemble of
  drift-level models) producing candidate predictors;
* :mod:`repro.adaptation.matrix` — the scenario × strategy campaign:
  MAE-on-shifted-real surface executed through
  :class:`~repro.compute.executor.ParallelExecutor` with
  :class:`~repro.compute.cache.ArtifactCache`-keyed cells, so an
  interrupted campaign resumes from cache and every backend produces
  byte-identical cells;
* :mod:`repro.adaptation.controller` — guarded online recalibration in
  serving: drift-severity-triggered candidates run in *shadow* (mirrored
  requests, never served), pass a promotion gate or are rejected, and a
  promoted model that regresses is rolled back to the prior verified
  checkpoint byte-identically, with every transition journaled.
"""

from repro.adaptation.controller import (
    AdaptationController,
    PromotionGate,
    ShadowStats,
)
from repro.adaptation.matrix import DriftMatrix, MatrixResult, MatrixSpec
from repro.adaptation.scenarios import (
    DriftScenario,
    scenario_grid,
    shift_characteristics,
    shifted_ms_simulator,
    shifted_nmr_simulator,
)
from repro.adaptation.strategies import (
    STRATEGIES,
    AdaptationContext,
    adapt,
)

__all__ = [
    "AdaptationContext",
    "AdaptationController",
    "DriftMatrix",
    "DriftScenario",
    "MatrixResult",
    "MatrixSpec",
    "PromotionGate",
    "STRATEGIES",
    "ShadowStats",
    "adapt",
    "scenario_grid",
    "shift_characteristics",
    "shifted_ms_simulator",
    "shifted_nmr_simulator",
]

"""Typed promotion/rollback records on the append-only journal.

Every serving-model transition the adaptation controller makes — a
candidate entering shadow, a promotion, a gate rejection, a rollback —
is an operational fact that must survive the process that made it: the
operator debugging a bad night needs to know *which* model was serving
when, and the controller itself replays the journal to refuse to promote
a candidate lineage that already failed.  :class:`PromotionJournal` wraps
the checksummed :class:`~repro.storage.journal.Journal` with a closed
event vocabulary and monotonically increasing sequence numbers, so a
replayed history is typed and ordered, not free-form dicts.

Layering: storage stays a leaf — records are plain dicts; callers encode
non-portable values (e.g. an ``inf`` drift severity) before appending,
via :meth:`~repro.core.lifecycle.DriftStatus.to_record`.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Tuple, Union

from repro.storage.journal import Journal

__all__ = ["PROMOTION_EVENTS", "PromotionJournal"]

PROMOTION_EVENTS = (
    "shadow_started",
    "promoted",
    "rejected",
    "rolled_back",
)


class PromotionJournal:
    """A write-ahead log of serving-model transitions."""

    def __init__(self, path: Union[str, os.PathLike], fsync: bool = True):
        self._journal = Journal(path, fsync=fsync)
        self._seq = self._replay_seq()

    def _replay_seq(self) -> int:
        if not self._journal.exists():
            return 0
        records, _ = self._journal.replay()
        return max((int(r.get("seq", 0)) for r in records), default=0)

    @property
    def path(self) -> str:
        return self._journal.path

    def close(self) -> None:
        self._journal.close()

    def append(self, event: str, **detail) -> dict:
        """Durably record one transition; returns the committed record."""
        if event not in PROMOTION_EVENTS:
            raise ValueError(
                f"unknown promotion event {event!r}; expected one of "
                f"{PROMOTION_EVENTS}"
            )
        self._seq += 1
        record = {"seq": self._seq, "event": event, **detail}
        self._journal.append(record)
        return record

    def replay(self) -> Tuple[List[dict], Dict[str, int]]:
        """Committed records (torn tail discarded) plus recovery stats.

        Records with an unknown event name are dropped and counted in
        ``stats["skipped_unknown"]`` — a forward-compatible reader, not a
        crash on a newer writer's vocabulary.
        """
        records, stats = self._journal.replay()
        known = [r for r in records if r.get("event") in PROMOTION_EVENTS]
        stats = dict(stats)
        stats["skipped_unknown"] = len(records) - len(known)
        return known, stats

    def last_event(self) -> Optional[dict]:
        records, _ = self.replay()
        return records[-1] if records else None

    def counts(self) -> Dict[str, int]:
        """Event-name histogram over the committed history."""
        records, _ = self.replay()
        table = {event: 0 for event in PROMOTION_EVENTS}
        for record in records:
            table[record["event"]] += 1
        return table

"""Checksummed artifact envelopes and fsync'd atomic writes.

The paper's Tool 4 leans on a provenance database and on checkpoints that
outlive the process that wrote them.  Bytes on disk are only trustworthy
if a reader can *prove* they are the bytes the writer meant: this leaf
module defines a self-describing envelope format — magic, format version,
payload length and a SHA-256 digest over the payload — plus crash-safe
write primitives (temp file, flush, fsync, rename, directory fsync) that
every durable artifact in the repo goes through.

Error taxonomy::

    StorageError
    ├── CorruptArtifactError   # bad magic, truncation, checksum mismatch
    └── SchemaVersionError     # well-formed envelope, unsupported version

The module also hosts the storage fault hook: a
:class:`~repro.reliability.storage_faults.StorageFaultInjector` installs
itself here (see :func:`install_injector`) and the write primitives
consult it at each step, so chaos tests can tear writes at a byte offset,
skip the fsync/rename, flip bits or vanish files without monkeypatching.
This module is a leaf: it imports only the standard library.
"""

from __future__ import annotations

import hashlib
import os
import struct
import tempfile
from typing import Optional, Union

__all__ = [
    "StorageError",
    "CorruptArtifactError",
    "SchemaVersionError",
    "SimulatedCrash",
    "MAGIC",
    "FORMAT_VERSION",
    "HEADER_SIZE",
    "wrap",
    "unwrap",
    "write_envelope",
    "read_envelope",
    "verify_envelope",
    "atomic_write_bytes",
    "fsync_directory",
    "install_injector",
    "clear_injector",
    "active_injector",
]

MAGIC = b"REPROENV"
FORMAT_VERSION = 1
# magic (8s) | format version (u32) | payload length (u64) | sha256 (32s)
_HEADER = struct.Struct("<8sIQ32s")
HEADER_SIZE = _HEADER.size


class StorageError(Exception):
    """Base class for durable-state failures."""


class CorruptArtifactError(StorageError):
    """The bytes on disk are not the bytes the writer committed."""


class SchemaVersionError(StorageError):
    """A well-formed envelope written by an incompatible format version."""


class SimulatedCrash(BaseException):
    """Raised by a fault injector to emulate ``kill -9`` mid-write.

    Derives from :class:`BaseException` so ordinary ``except Exception``
    recovery code cannot accidentally swallow the simulated kill, exactly
    like a real SIGKILL cannot be caught.  The atomic writers deliberately
    leave their temp-file debris behind on a simulated crash — recovery
    must ignore it, just as it must ignore debris from a real crash.
    """


# -- fault hook --------------------------------------------------------------

_injector = None


def install_injector(injector) -> None:
    """Route subsequent writes through ``injector`` (chaos testing)."""
    global _injector
    if _injector is not None:
        raise RuntimeError("a storage fault injector is already installed")
    _injector = injector


def clear_injector() -> None:
    global _injector
    _injector = None


def active_injector():
    """The currently installed fault injector, or None."""
    return _injector


# -- envelope format ---------------------------------------------------------

def wrap(payload: bytes, version: int = FORMAT_VERSION) -> bytes:
    """Frame ``payload`` in a checksummed envelope."""
    payload = bytes(payload)
    digest = hashlib.sha256(payload).digest()
    return _HEADER.pack(MAGIC, int(version), len(payload), digest) + payload


def unwrap(blob: bytes, source: Optional[str] = None) -> bytes:
    """Verify an envelope and return its payload.

    Raises :class:`CorruptArtifactError` on a short/foreign/truncated blob
    or a checksum mismatch, :class:`SchemaVersionError` on an unsupported
    format version.
    """
    where = f" in {source}" if source else ""
    if len(blob) < HEADER_SIZE:
        raise CorruptArtifactError(
            f"envelope truncated{where}: {len(blob)} bytes, "
            f"header alone is {HEADER_SIZE}"
        )
    magic, version, length, digest = _HEADER.unpack(blob[:HEADER_SIZE])
    if magic != MAGIC:
        raise CorruptArtifactError(f"bad magic {magic!r}{where}")
    if version != FORMAT_VERSION:
        raise SchemaVersionError(
            f"unsupported envelope format version {version}{where} "
            f"(this build reads version {FORMAT_VERSION})"
        )
    payload = blob[HEADER_SIZE:]
    if len(payload) != length:
        raise CorruptArtifactError(
            f"payload truncated{where}: header promises {length} bytes, "
            f"found {len(payload)}"
        )
    if hashlib.sha256(payload).digest() != digest:
        raise CorruptArtifactError(f"payload checksum mismatch{where}")
    return payload


def is_envelope(blob: bytes) -> bool:
    """True if ``blob`` starts with the envelope magic."""
    return blob[: len(MAGIC)] == MAGIC


# -- crash-safe writes -------------------------------------------------------

def fsync_directory(directory: Union[str, os.PathLike]) -> None:
    """Flush a directory entry (the rename itself) to stable storage."""
    fd = os.open(os.fspath(directory), os.O_RDONLY)
    try:
        os.fsync(fd)
    except OSError:
        pass  # some filesystems refuse directory fsync; rename is still atomic
    finally:
        os.close(fd)


def _apply_umask_mode(tmp: str) -> None:
    """Give a mkstemp file (0600) the permissions a plain open() would."""
    umask = os.umask(0)
    os.umask(umask)
    os.chmod(tmp, 0o666 & ~umask)


def atomic_write_bytes(
    path: Union[str, os.PathLike], data: bytes, fsync: bool = True
) -> str:
    """Publish ``data`` at ``path`` all-or-nothing.

    Writes to a temp file in the target directory, flushes, fsyncs, then
    renames over ``path`` and fsyncs the directory — a crash at any point
    leaves either the previous complete file or the new one, never a
    mixture.  ``fsync=False`` trades the durability barrier for speed
    (atomicity is preserved either way).
    """
    path = os.fspath(path)
    directory = os.path.dirname(os.path.abspath(path))
    injector = _injector
    if injector is not None:
        data = injector.filter_write(path, data)
    fd, tmp = tempfile.mkstemp(dir=directory, prefix=".tmp-")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            if fsync and not (injector is not None and injector.skip_fsync(path)):
                os.fsync(handle.fileno())
        if injector is not None:
            injector.after_write(path)  # may raise SimulatedCrash
        _apply_umask_mode(tmp)
        if injector is not None and injector.skip_rename(tmp, path):
            # Lost rename: the write happened but never got published —
            # readers keep seeing the previous version (stale but intact).
            os.remove(tmp)
            return path
        os.replace(tmp, path)
        if fsync and not (injector is not None and injector.skip_fsync(path)):
            fsync_directory(directory)
        if injector is not None:
            injector.after_publish(path)
    except SimulatedCrash:
        # A real SIGKILL leaves the temp file behind; so do we.
        raise
    except BaseException:
        if os.path.exists(tmp):
            os.remove(tmp)
        raise
    return path


def write_envelope(
    path: Union[str, os.PathLike],
    payload: bytes,
    version: int = FORMAT_VERSION,
    fsync: bool = True,
) -> str:
    """Atomically publish ``payload`` wrapped in a checksummed envelope."""
    return atomic_write_bytes(path, wrap(payload, version=version), fsync=fsync)


def read_envelope(path: Union[str, os.PathLike]) -> bytes:
    """Read and verify an envelope file; returns the payload."""
    path = os.fspath(path)
    with open(path, "rb") as handle:
        blob = handle.read()
    return unwrap(blob, source=path)


def verify_envelope(path: Union[str, os.PathLike]) -> int:
    """Verify an envelope file without keeping the payload.

    Returns the payload size in bytes; raises the typed error otherwise.
    """
    return len(read_envelope(path))

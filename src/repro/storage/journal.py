"""Append-only write-ahead journal with torn-tail recovery.

One record per line: ``<sha256-prefix> <json-payload>\n``.  A record is
*committed* once its full line (checksum, payload, newline) is on disk;
:meth:`Journal.replay` returns exactly the committed prefix and discards
the torn tail a crash mid-append leaves behind.  Appends are flushed and
fsynced before :meth:`Journal.append` returns, so a record the caller saw
acknowledged survives power loss.

The journal deliberately stays line-oriented JSON: it can be inspected
with ``grep`` during an incident, and Python's ``json`` round-trips the
NaN/Infinity floats that provenance metadata legitimately contains.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Dict, List, Optional, Tuple, Union

from repro.observability.runtime import counter as _counter
from repro.observability.runtime import histogram as _histogram
from repro.storage.integrity import active_injector

__all__ = ["Journal"]

_CHECKSUM_CHARS = 16  # hex chars of the sha256 prefix


def _checksum(payload: bytes) -> str:
    return hashlib.sha256(payload).hexdigest()[:_CHECKSUM_CHARS]


class Journal:
    """A checksummed append-only record log at one path."""

    def __init__(self, path: Union[str, os.PathLike], fsync: bool = True):
        self.path = os.fspath(path)
        self.fsync = bool(fsync)
        self._handle = None

    # -- lifecycle -----------------------------------------------------------

    def exists(self) -> bool:
        return os.path.exists(self.path)

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def reset(self) -> None:
        """Drop every record (after a successful compaction)."""
        self.close()
        if os.path.exists(self.path):
            os.remove(self.path)

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- writes --------------------------------------------------------------

    def append(self, record: dict) -> None:
        """Durably append one record; returns only once it is committed.

        Each committed append counts into ``journal_appends_total`` and
        its full write+flush+fsync time into ``journal_append_seconds``.
        """
        with _histogram(
            "journal_append_seconds",
            "WAL append time including flush and fsync",
        ).time(fsync="on" if self.fsync else "off"):
            payload = json.dumps(
                record, ensure_ascii=False, default=float
            ).encode("utf-8")
            line = _checksum(payload).encode("ascii") + b" " + payload + b"\n"
            injector = active_injector()
            if injector is not None:
                line = injector.filter_append(self.path, line)
            if self._handle is None:
                self._handle = open(self.path, "ab")
            self._handle.write(line)
            self._handle.flush()
            if self.fsync and not (
                injector is not None and injector.skip_fsync(self.path)
            ):
                os.fsync(self._handle.fileno())
        _counter("journal_appends_total", "committed WAL appends").inc()
        if injector is not None:
            injector.after_append(self.path)  # may raise SimulatedCrash

    # -- recovery ------------------------------------------------------------

    def replay(self) -> Tuple[List[dict], Dict[str, int]]:
        """All committed records plus recovery stats.

        Stops at the first record that is incomplete (no trailing newline)
        or fails its checksum — everything from that point on is the torn
        tail of an interrupted append and is discarded, never trusted.
        Stats: ``{"replayed": n, "discarded_records": k,
        "discarded_bytes": b}``.
        """
        # Read through any still-open append handle's view of the file.
        self.close()
        if not self.exists():
            return [], {"replayed": 0, "discarded_records": 0, "discarded_bytes": 0}
        with open(self.path, "rb") as handle:
            blob = handle.read()
        records: List[dict] = []
        offset = 0
        while offset < len(blob):
            newline = blob.find(b"\n", offset)
            if newline < 0:
                break  # incomplete final line: torn append
            record = self._parse_line(blob[offset:newline])
            if record is None:
                break  # corrupt line: distrust it and everything after
            records.append(record)
            offset = newline + 1
        discarded = blob[offset:]
        return records, {
            "replayed": len(records),
            "discarded_records": 1 if discarded else 0,
            "discarded_bytes": len(discarded),
        }

    @staticmethod
    def _parse_line(line: bytes) -> Optional[dict]:
        if b" " not in line:
            return None
        checksum, payload = line.split(b" ", 1)
        if checksum.decode("ascii", "replace") != _checksum(payload):
            return None
        try:
            record = json.loads(payload.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            return None
        return record if isinstance(record, dict) else None

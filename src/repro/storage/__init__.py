"""Durable-state layer: verified bytes for everything the repo persists.

The paper's closed-loop and provenance tooling assume state written
yesterday is still trustworthy today; this package makes that assumption
checkable instead of hopeful:

* :mod:`repro.storage.integrity` — the checksummed, schema-versioned
  envelope format (magic + version + length + SHA-256), the
  ``CorruptArtifactError``/``SchemaVersionError`` taxonomy, and fsync'd
  atomic-write primitives every durable artifact goes through;
* :mod:`repro.storage.journal` — a checksummed append-only write-ahead
  journal with torn-tail recovery, backing
  :class:`~repro.db.document_store.DocumentStore` crash recovery;
* :mod:`repro.storage.promotion` — typed serving-model transition records
  (shadow/promote/reject/rollback) on the journal, consumed by
  :class:`~repro.adaptation.controller.AdaptationController`.

Layering: ``storage`` is a leaf below ``nn``, ``reliability``, ``db`` and
``serving`` — it imports only the standard library.
"""

from repro.storage.integrity import (
    FORMAT_VERSION,
    MAGIC,
    CorruptArtifactError,
    SchemaVersionError,
    SimulatedCrash,
    StorageError,
    atomic_write_bytes,
    fsync_directory,
    read_envelope,
    unwrap,
    verify_envelope,
    wrap,
    write_envelope,
)
from repro.storage.journal import Journal
from repro.storage.promotion import PROMOTION_EVENTS, PromotionJournal

__all__ = [
    "CorruptArtifactError",
    "FORMAT_VERSION",
    "Journal",
    "MAGIC",
    "PROMOTION_EVENTS",
    "PromotionJournal",
    "SchemaVersionError",
    "SimulatedCrash",
    "StorageError",
    "atomic_write_bytes",
    "fsync_directory",
    "read_envelope",
    "unwrap",
    "verify_envelope",
    "wrap",
    "write_envelope",
]

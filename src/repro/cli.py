"""Command-line tools for the toolchain.

The paper packages its flow as tools an operator runs without touching
source code; this module is that surface:

* ``ms-generate``  — Tools 1+3: generate a labelled simulated MS dataset;
* ``train``        — Tool 4: train a topology on a dataset file;
* ``evaluate``     — Tool 4 backend: score a trained model on a dataset;
* ``table2``       — predict embedded execution costs for a trained model;
* ``freeze``       — compile a checkpoint into a frozen inference plan
  envelope (float32 or calibrated int8), or inspect/verify one;
* ``nmr-campaign`` — run the virtual NMR DoE campaign and save its spectra;
* ``telemetry``    — render exported span/metric JSONL files (or a live
  instrumented demo workload) as a human-readable report;
* ``cache``        — inspect, verify or clear a content-addressed
  artifact cache directory (``repro cache stats --dir <path>``);
* ``sweep``        — plan, run (``--resume``-able) and report the
  Fig-5/Fig-6 campaign grid through the sweep orchestrator.

Datasets are ``.npz`` files with arrays ``x``, ``y`` and a JSON-encoded
``meta`` record.  Run ``python -m repro.cli <command> --help`` for options.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

import numpy as np

__all__ = ["main", "build_parser"]


def _save_dataset(path: str, x: np.ndarray, y: np.ndarray, meta: dict) -> None:
    meta_blob = np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8)
    np.savez(path, x=x, y=y, meta=meta_blob)


def _load_dataset(path: str):
    with np.load(path) as data:
        x, y = data["x"], data["y"]
        meta = json.loads(bytes(data["meta"].tobytes()).decode("utf-8"))
    return x, y, meta


def _cmd_ms_generate(args: argparse.Namespace) -> int:
    from repro.ms import (
        InstrumentCharacteristics,
        MassSpectrometerSimulator,
        MzAxis,
        default_library,
    )

    compounds = [c.strip() for c in args.compounds.split(",") if c.strip()]
    axis = MzAxis(args.mz_start, args.mz_stop, args.mz_step)
    simulator = MassSpectrometerSimulator(
        InstrumentCharacteristics(), axis, default_library()
    )
    rng = np.random.default_rng(args.seed)
    x, y = simulator.generate_dataset(compounds, args.n, rng)
    meta = {
        "kind": "ms_simulated",
        "compounds": compounds,
        "axis": [axis.start, axis.stop, axis.step],
        "seed": args.seed,
    }
    _save_dataset(args.out, x, y, meta)
    print(f"wrote {args.n} spectra x {axis.size} points to {args.out}")
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    from repro import nn
    from repro.core import (
        mlp_topology,
        nmr_conv_topology,
        table1_topology,
    )

    x, y, meta = _load_dataset(args.data)
    n_outputs = y.shape[1]
    if args.topology == "table1":
        topology = table1_topology(n_outputs)
    elif args.topology == "nmr_conv":
        topology = nmr_conv_topology(n_outputs)
    elif args.topology == "mlp":
        topology = mlp_topology(n_outputs)
    else:
        raise SystemExit(f"unknown topology {args.topology!r}")

    model = topology.build(x.shape[1:], seed=args.seed)
    model.compile(nn.Adam(args.learning_rate), args.loss)
    split = int(0.8 * x.shape[0])
    history = model.fit(
        x[:split], y[:split],
        epochs=args.epochs, batch_size=args.batch_size,
        validation_data=(x[split:], y[split:]),
        seed=args.seed, verbose=args.verbose,
    )
    val = history["val_loss"][-1]
    path = nn.save_model(model, args.out)
    print(f"trained {topology.name}: final val_{args.loss} {val:.6f}; "
          f"saved to {path}")
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    from repro import nn

    model = nn.load_model(args.model)
    x, y, meta = _load_dataset(args.data)
    predictions = model.predict(x)
    mae = nn.mean_absolute_error(predictions, y)
    mse = nn.mean_squared_error(predictions, y)
    r2 = nn.r2_score(predictions, y)
    names = meta.get("compounds") or meta.get("components") or [
        f"output{i}" for i in range(y.shape[1])
    ]
    print(f"samples: {x.shape[0]}  MAE: {mae:.6f}  MSE: {mse:.6e}  R2: {r2:.4f}")
    for j, name in enumerate(names):
        per = float(np.mean(np.abs(predictions[:, j] - y[:, j])))
        print(f"  {name:14s} MAE {per:.6f}")
    return 0


def _cmd_table2(args: argparse.Namespace) -> int:
    from repro import nn
    from repro.embedded import TABLE2_PLATFORMS
    from repro.embedded.cost_model import InferenceCostModel

    model = nn.load_model(args.model)
    print(f"{'platform':22s}{'time/s':>10}{'power/W':>10}{'energy/J':>10}")
    for key, spec in TABLE2_PLATFORMS.items():
        estimate = InferenceCostModel(spec).estimate(
            model, args.samples, args.batch_size
        )
        print(f"{spec.name:22s}{estimate.execution_time_s:10.2f}"
              f"{estimate.power_w:10.2f}{estimate.energy_j:10.2f}")
    return 0


def _cmd_freeze(args: argparse.Namespace) -> int:
    from repro.storage.integrity import StorageError

    if args.inspect or args.verify:
        from repro.inference import inspect_plan, verify_plan

        try:
            if args.verify:
                report = verify_plan(args.model)
                print(
                    f"plan OK: {report['name']} [{report['dtype']}] "
                    f"{report['fused_op_count']} fused ops, "
                    f"{report['weight_bytes']:,} weight bytes, "
                    f"contract MAE <= {report['contract_mae']:g}"
                )
            else:
                print(json.dumps(inspect_plan(args.model), indent=2,
                                 sort_keys=True))
        except StorageError as error:
            print(f"plan check FAILED: {error}", file=sys.stderr)
            return 1
        return 0

    from repro import nn
    from repro.inference import UnsupportedLayerError, freeze, save_plan

    model = nn.load_model(args.model)
    calibration = None
    if args.calibrate:
        x, _, _ = _load_dataset(args.calibrate)
        calibration = x[: args.calibrate_samples]
    try:
        plan = freeze(
            model,
            dtype=args.dtype,
            per_channel=args.per_channel,
            calibration=calibration,
            contract=args.contract,
        )
    except UnsupportedLayerError as error:
        print(f"cannot freeze: {error}", file=sys.stderr)
        return 1
    out = args.out
    if out is None:
        stem = args.model[:-4] if args.model.endswith(".npz") else args.model
        out = stem + ".plan"
    path = save_plan(plan, out)
    print(plan.describe())
    if plan.calibration:
        print(
            f"calibrated on {plan.calibration['n_samples']} samples: "
            f"MAE delta {plan.calibration['mae_delta']:.3e}, "
            f"max {plan.calibration['max_abs_delta']:.3e}"
        )
    print(f"saved plan envelope to {path}")
    return 0


def _cmd_nmr_campaign(args: argparse.Namespace) -> int:
    from repro.nmr import (
        DoEPlan,
        FlowReactorExperiment,
        ReactionKinetics,
        VirtualNMRSpectrometer,
        mndpa_reaction_models,
    )

    models = mndpa_reaction_models()
    experiment = FlowReactorExperiment(
        ReactionKinetics(),
        VirtualNMRSpectrometer.benchtop(models, seed=args.seed),
        seed=args.seed,
    )
    dataset = experiment.run(
        DoEPlan.full_factorial(), args.spectra_per_plateau
    )
    meta = {
        "kind": "nmr_campaign",
        "components": list(dataset.component_names),
        "plateaus": int(dataset.plateau_ids.max()) + 1,
        "seed": args.seed,
    }
    _save_dataset(args.out, dataset.spectra, dataset.reference_labels, meta)
    print(f"wrote {len(dataset)} spectra "
          f"({meta['plateaus']} plateaus) to {args.out}")
    return 0


def _cmd_telemetry(args: argparse.Namespace) -> int:
    from repro.observability import (
        format_metric_dicts,
        format_span_dicts,
        read_jsonl,
        text_dump,
    )

    shown = False
    if args.metrics:
        print(format_metric_dicts(read_jsonl(args.metrics)))
        shown = True
    if args.spans:
        if shown:
            print()
        print(format_span_dicts(read_jsonl(args.spans)))
        shown = True
    if shown:
        return 0

    if args.demo:
        import numpy as np

        from repro.serving import AnalysisService

        rng = np.random.default_rng(0)
        service = AnalysisService(
            lambda data: np.array([float(np.mean(data))]),
            workers=2,
            queue_size=8,
            expected_length=32,
        )
        with service:
            for _ in range(16):
                service.analyze(rng.random(32))
            service.analyze(rng.random(7))  # refused: wrong length
    # With neither files nor --demo this dumps whatever the process has
    # collected so far (typically empty — telemetry is per-process).
    print(text_dump())
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.compute import ArtifactCache

    cache = ArtifactCache(args.dir)
    if args.action == "stats":
        stats = cache.stats()
        print(f"cache root: {stats['root']}")
        print(f"entries: {stats['entries']}  "
              f"total bytes: {stats['total_bytes']}  "
              f"quarantined: {stats['quarantined']}")
        for row in cache.entries():
            print(f"  {row['key'][:16]}...  {row['bytes']:>12} bytes")
        return 0
    if args.action == "verify":
        report = cache.verify()
        corrupt = 0
        for key, status in sorted(report.items()):
            print(f"  {key[:16]}...  {status}")
            if status != "ok":
                corrupt += 1
        print(f"verified {len(report)} entries, {corrupt} corrupt "
              f"({'quarantined' if corrupt else 'nothing quarantined'})")
        return 1 if corrupt else 0
    if args.action == "clear":
        removed = cache.clear()
        print(f"removed {removed} entries from {cache.root}")
        return 0
    raise SystemExit(f"unknown cache action {args.action!r}")


def _cmd_uncertainty(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.uncertainty import (
        AbstentionPolicy,
        ConformalCalibrator,
        EnsembleSpec,
        UncertaintyGate,
        train_ensemble,
    )
    from repro.uncertainty.predictors import _build_simulator

    compounds = tuple(c for c in args.compounds.split(",") if c)
    spec = EnsembleSpec(
        compounds=compounds,
        axis=(1.0, 50.0, 0.5),
        n_train=args.n,
        epochs=args.epochs,
        hidden_units=(16,),
        n_members=args.members,
        seed=args.seed,
    )
    predictor = train_ensemble(spec)
    simulator = _build_simulator(spec)
    cal_x, cal_y = simulator.generate_dataset(
        compounds, max(64, args.n // 4), np.random.default_rng(args.seed + 1)
    )
    test_x, test_y = simulator.generate_dataset(
        compounds, max(64, args.n // 4), np.random.default_rng(args.seed + 2)
    )
    calibrator = ConformalCalibrator(alpha=args.alpha)
    calibrator.calibrate(predictor.predict(cal_x), cal_y)
    report = calibrator.report()
    prediction = predictor.predict(test_x)
    coverage = calibrator.coverage(prediction, test_y)
    widths = calibrator.width(prediction)

    print(f"ensemble: {spec.n_members} members x {spec.epochs} epochs "
          f"on {spec.n_train} spectra ({','.join(compounds)})")
    print("calibration:")
    print(f"  alpha:            {report['alpha']:.3f}  "
          f"(nominal coverage {report['nominal_coverage']:.0%})")
    print(f"  q_hat:            {report['q_hat']:.4f}")
    print(f"  calibration rows: {report['n_calibration']}")
    print(f"held-out ({len(test_x)} rows):")
    print(f"  empirical coverage: {coverage:.1%}")
    print(f"  interval width p50: {float(np.median(widths)):.4f}  "
          f"p95: {float(np.percentile(widths, 95)):.4f}")

    if not args.demo:
        return 0

    print()
    print("-- OOD abstention walkthrough "
          "(in-distribution vs noise spectra) --")
    from repro.serving import AnalysisService

    policy = AbstentionPolicy(
        max_width=4.0 * float(np.percentile(widths, 95))
    )
    gate = UncertaintyGate(predictor, calibrator, policy)
    service = AnalysisService(
        analyzer=lambda data: predictor.predict_mean(data[np.newaxis, :])[0],
        workers=2,
        queue_size=32,
        expected_length=test_x.shape[1],
        uncertainty=gate,
    )
    rng = np.random.default_rng(args.seed + 3)
    with service:
        for row in test_x[:8]:
            result = service.analyze(row)
            label = type(result).__name__
            print(f"  in-dist  -> {label}")
        for _ in range(8):
            noise = rng.random(test_x.shape[1])
            noise /= noise.max()
            result = service.analyze(noise)
            label = type(result).__name__
            extra = (
                f" (reason={result.reason}, width={result.width:.3f})"
                if label == "Abstained" else ""
            )
            print(f"  noise    -> {label}{extra}")
    stats = service.stats()
    print(f"served: {stats['completed']}  abstained: {stats['abstained']} "
          f"{stats['abstentions']}  abstention rate: "
          f"{stats['abstention_rate']:.1%}")
    return 0


def _sweep_spec(args: argparse.Namespace):
    """Build the CampaignSpec a ``sweep`` invocation describes."""
    from repro.orchestration import CampaignSpec

    compounds = tuple(c.strip() for c in args.compounds.split(",") if c.strip())
    activations = tuple(
        tuple(part.strip() for part in pair.split(":"))
        for pair in args.activations.split(",") if pair.strip()
    )
    sample_sizes = tuple(
        int(n) for n in args.sample_sizes.split(",") if n.strip()
    )
    topologies = tuple(
        tuple(int(units) for units in stack.split("x") if units.strip())
        for stack in args.topologies.split(",") if stack.strip()
    )
    return CampaignSpec(
        compounds=compounds,
        activations=activations,
        sample_sizes=sample_sizes,
        topologies=topologies,
        axis=(args.mz_start, args.mz_stop, args.mz_step),
        n_eval=args.n_eval,
        epochs=args.epochs,
        seed=args.seed,
    )


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.compute import ArtifactCache, ParallelExecutor
    from repro.orchestration import (
        CampaignInProgressError,
        IncompleteCampaignError,
        SweepOrchestrator,
        report_json,
    )

    spec = _sweep_spec(args)
    cache = ArtifactCache(args.cache_dir)
    orchestrator = SweepOrchestrator(
        spec, cache, journal_path=args.journal
    )

    if args.sweep_action == "plan":
        status = orchestrator.to_status()
        print(f"campaign {status['campaign_key'][:16]}...  "
              f"{status['cells']} cells "
              f"({status['cached']} cached, {status['pending']} pending)")
        for entry in status["plan"]:
            state = "cached " if entry["cached"] else "pending"
            print(f"  {state}  {entry['cell_id']}")
        return 0

    if args.sweep_action == "run":
        with ParallelExecutor(
            backend=args.backend, max_workers=args.workers
        ) as executor:
            orchestrator.executor = executor
            orchestrator.prewarm_datasets()
            try:
                result = orchestrator.run(
                    resume=args.resume, max_cells=args.max_cells
                )
            except CampaignInProgressError as error:
                print(f"refused: {error}")
                return 1
        print(f"computed {result.computed}  cached {result.cached}  "
              f"failed {result.failed}")
        if result.paused:
            print("paused with cells pending; continue with "
                  "`repro sweep run --resume`")
            return 0
        if args.out:
            with open(args.out, "w", encoding="utf-8") as handle:
                handle.write(report_json(result.report))
            print(f"wrote campaign report to {args.out}")
        best = result.report.best_cell() if result.report.rows else None
        if best is not None:
            print(f"best cell: {best['cell_id']}  mae {best['mae']:.6f}")
        return 1 if result.failed else 0

    if args.sweep_action == "report":
        try:
            report = orchestrator.report(strict=not args.partial)
        except IncompleteCampaignError as error:
            print(f"incomplete: {error}")
            return 1
        payload = report.to_payload()
        print(f"campaign {payload['campaign_key'][:16]}...  "
              f"{payload['cells_completed']}/{payload['cells_total']} cells")
        sizes = payload["sample_sizes"]
        header = "".join(f"{f'n={n}':>12}" for n in sizes)
        print(f"{'activation (mean mae)':26s}{header}")
        for activation_id, row in sorted(
            payload["accuracy_vs_samples"].items()
        ):
            cells = "".join(
                f"{value:12.6f}" if value is not None else f"{'-':>12}"
                for value in row
            )
            print(f"  {activation_id:24s}{cells}")
        print(f"{'topology (mean mae)':26s}{header}")
        for topology_id, row in sorted(payload["topology_surface"].items()):
            cells = "".join(
                f"{value:12.6f}" if value is not None else f"{'-':>12}"
                for value in row
            )
            print(f"  {topology_id:24s}{cells}")
        if report.rows:
            best = report.best_cell()
            print(f"best cell: {best['cell_id']}  mae {best['mae']:.6f}")
        if args.out:
            with open(args.out, "w", encoding="utf-8") as handle:
                handle.write(report_json(report))
            print(f"wrote campaign report to {args.out}")
        return 0

    raise SystemExit(f"unknown sweep action {args.sweep_action!r}")


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse command tree."""
    parser = argparse.ArgumentParser(
        prog="repro", description="MS/NMR AI toolchain commands"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("ms-generate", help="generate simulated MS spectra")
    gen.add_argument("--compounds", default="N2,O2,Ar,CO2")
    gen.add_argument("--n", type=int, default=1000)
    gen.add_argument("--mz-start", type=float, default=1.0)
    gen.add_argument("--mz-stop", type=float, default=50.0)
    gen.add_argument("--mz-step", type=float, default=0.1)
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--out", required=True)
    gen.set_defaults(func=_cmd_ms_generate)

    train = sub.add_parser("train", help="train a topology on a dataset")
    train.add_argument("--data", required=True)
    train.add_argument("--topology", default="table1",
                       choices=["table1", "nmr_conv", "mlp"])
    train.add_argument("--epochs", type=int, default=10)
    train.add_argument("--batch-size", type=int, default=64)
    train.add_argument("--learning-rate", type=float, default=0.003)
    train.add_argument("--loss", default="mae", choices=["mae", "mse"])
    train.add_argument("--seed", type=int, default=0)
    train.add_argument("--verbose", action="store_true")
    train.add_argument("--out", required=True)
    train.set_defaults(func=_cmd_train)

    evaluate = sub.add_parser("evaluate", help="score a model on a dataset")
    evaluate.add_argument("--model", required=True)
    evaluate.add_argument("--data", required=True)
    evaluate.set_defaults(func=_cmd_evaluate)

    table2 = sub.add_parser("table2", help="embedded cost prediction")
    table2.add_argument("--model", required=True)
    table2.add_argument("--samples", type=int, default=21_600)
    table2.add_argument("--batch-size", type=int, default=128)
    table2.set_defaults(func=_cmd_table2)

    frz = sub.add_parser(
        "freeze",
        help="compile a checkpoint into a frozen inference plan "
        "(or --inspect/--verify an existing plan envelope)",
    )
    frz.add_argument(
        "model",
        help="model checkpoint (.npz) to freeze; with --inspect/--verify, "
        "an existing .plan envelope",
    )
    frz.add_argument(
        "--out", default=None, help="plan output path (default: <model>.plan)"
    )
    frz.add_argument("--dtype", choices=["float32", "int8"], default="float32")
    frz.add_argument(
        "--per-channel", dest="per_channel", action="store_true",
        help="per-output-channel int8 scales instead of per-tensor",
    )
    frz.add_argument(
        "--calibrate", default=None,
        help="dataset .npz; measures the frozen-vs-reference delta at freeze "
        "time and records it on the plan",
    )
    frz.add_argument("--calibrate-samples", type=int, default=256)
    frz.add_argument(
        "--contract", type=float, default=None,
        help="override the pinned per-dtype MAE contract",
    )
    frz.add_argument(
        "--inspect", action="store_true",
        help="print a JSON summary of an existing plan envelope",
    )
    frz.add_argument(
        "--verify", action="store_true",
        help="integrity-check an existing plan envelope (exit 1 on damage)",
    )
    frz.set_defaults(func=_cmd_freeze)

    campaign = sub.add_parser("nmr-campaign", help="run the virtual NMR DoE")
    campaign.add_argument("--spectra-per-plateau", type=int, default=11)
    campaign.add_argument("--seed", type=int, default=0)
    campaign.add_argument("--out", required=True)
    campaign.set_defaults(func=_cmd_nmr_campaign)

    telemetry = sub.add_parser(
        "telemetry", help="dump collected telemetry as a readable report"
    )
    telemetry.add_argument(
        "--spans", help="span JSONL file written by export_spans_jsonl"
    )
    telemetry.add_argument(
        "--metrics", help="metrics JSONL file written by export_metrics_jsonl"
    )
    telemetry.add_argument(
        "--demo", action="store_true",
        help="run a small instrumented serving workload, then dump it",
    )
    telemetry.set_defaults(func=_cmd_telemetry)

    cache = sub.add_parser(
        "cache", help="inspect, verify or clear an artifact cache directory"
    )
    cache.add_argument(
        "action", choices=["stats", "verify", "clear"],
        help="stats: list entries and counters; verify: checksum every "
             "entry (quarantines failures, exit 1 if any); clear: remove "
             "all live entries (quarantine is kept)",
    )
    cache.add_argument(
        "--dir", required=True, help="cache root directory"
    )
    cache.set_defaults(func=_cmd_cache)

    uncertainty = sub.add_parser(
        "uncertainty",
        help="train a small ensemble, render its conformal calibration "
             "table; --demo walks an OOD abstention scenario",
    )
    uncertainty.add_argument("--compounds", default="H2,N2,O2")
    uncertainty.add_argument("--members", type=int, default=3)
    uncertainty.add_argument("--alpha", type=float, default=0.1)
    uncertainty.add_argument("--n", type=int, default=256)
    uncertainty.add_argument("--epochs", type=int, default=3)
    uncertainty.add_argument("--seed", type=int, default=0)
    uncertainty.add_argument(
        "--demo", action="store_true",
        help="serve in-distribution and noise spectra through a gated "
             "AnalysisService and show Completed vs Abstained outcomes",
    )
    uncertainty.set_defaults(func=_cmd_uncertainty)

    sweep = sub.add_parser(
        "sweep",
        help="plan, run (--resume-able) or report the Fig-5/Fig-6 "
             "campaign grid",
    )
    sweep.add_argument(
        "sweep_action", choices=["plan", "run", "report"],
        help="plan: list cells and cached/pending state; run: execute "
             "pending cells (journaled; --resume continues an "
             "interrupted run); report: render the aggregated surface",
    )
    sweep.add_argument("--cache-dir", required=True,
                       help="artifact cache root (cells + datasets)")
    sweep.add_argument("--journal",
                       help="campaign journal path (enables kill/resume)")
    sweep.add_argument("--compounds", default="N2,O2,CO2")
    sweep.add_argument(
        "--activations", default="relu:softmax,selu:softmax",
        help="comma-separated hidden:output activation pairs",
    )
    sweep.add_argument(
        "--sample-sizes", default="256,1024",
        help="comma-separated training-set sizes",
    )
    sweep.add_argument(
        "--topologies", default="32,64x32",
        help="comma-separated hidden stacks, units joined by 'x' "
             "(e.g. 32,64x32)",
    )
    sweep.add_argument("--mz-start", type=float, default=1.0)
    sweep.add_argument("--mz-stop", type=float, default=50.0)
    sweep.add_argument("--mz-step", type=float, default=0.5)
    sweep.add_argument("--n-eval", type=int, default=256)
    sweep.add_argument("--epochs", type=int, default=4)
    sweep.add_argument("--seed", type=int, default=0)
    sweep.add_argument("--backend", default="serial",
                       choices=["serial", "thread", "process"])
    sweep.add_argument("--workers", type=int, default=None)
    sweep.add_argument("--resume", action="store_true",
                       help="continue a journal-recorded unfinished run")
    sweep.add_argument("--max-cells", type=int, default=None,
                       help="pause after computing this many new cells")
    sweep.add_argument("--partial", action="store_true",
                       help="report: allow summarizing an incomplete "
                            "campaign")
    sweep.add_argument("--out", help="write the report JSON here")
    sweep.set_defaults(func=_cmd_sweep)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
